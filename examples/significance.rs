//! Is RMPI-NE's improvement over RMPI-base statistically significant?
//! Paired evaluation on identical targets + bootstrap test — the honest
//! companion to a mean-of-runs table.
//!
//! ```text
//! cargo run --release --example significance
//! ```

use rmpi::core::{train_model, RmpiConfig, RmpiModel, TrainConfig};
use rmpi::datasets::{build_benchmark, Scale};
use rmpi::eval::protocol::{entity_prediction_paired, EvalConfig};
use rmpi::eval::stats::{paired_bootstrap, sign_flip_test};

fn main() {
    let benchmark = build_benchmark("nell.v2", Scale::Quick);
    let train_cfg = TrainConfig { epochs: 5, max_samples_per_epoch: 600, ..Default::default() };

    let mut base =
        RmpiModel::new(RmpiConfig { dim: 16, ..RmpiConfig::base() }, benchmark.num_relations(), 0);
    let mut ne =
        RmpiModel::new(RmpiConfig { dim: 16, ..RmpiConfig::ne() }, benchmark.num_relations(), 0);
    for (name, model) in [("RMPI-base", &mut base), ("RMPI-NE", &mut ne)] {
        eprintln!("training {name}...");
        train_model(
            model,
            &benchmark.train.graph,
            &benchmark.train.targets,
            &benchmark.train.valid,
            &train_cfg,
        );
    }

    // per-target reciprocal ranks on identical targets & candidate sets
    let test = benchmark.test("TE").expect("TE");
    let eval_cfg =
        EvalConfig { num_candidates: 24, max_targets: 120, seed: 5, ..Default::default() };
    let rrs = entity_prediction_paired(&[&base, &ne], test, &eval_cfg);
    let (rr_base, rr_ne) = (&rrs[0], &rrs[1]);

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!("paired evaluation on {} targets:", rr_base.len());
    println!("  RMPI-base MRR: {:.2}", 100.0 * mean(rr_base));
    println!("  RMPI-NE   MRR: {:.2}", 100.0 * mean(rr_ne));

    let boot = paired_bootstrap(rr_ne, rr_base, 2000, 7);
    let p_flip = sign_flip_test(rr_ne, rr_base, 2000, 7);
    println!(
        "  mean per-target difference: {:+.4} (bootstrap p = {:.3}, sign-flip p = {:.3})",
        boot.mean_diff, boot.p_value, p_flip
    );
    if boot.significant(0.05) {
        println!("  => RMPI-NE's advantage is significant at α = 0.05");
    } else {
        println!("  => not significant at α = 0.05 on this quick-profile run —");
        println!("     rerun with more targets/epochs (or --full scale) for tighter intervals");
    }
}
