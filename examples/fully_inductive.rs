//! Fully inductive completion: both unseen entities *and* unseen relations,
//! with and without ontological-schema enhancement (paper §IV-D).
//!
//! ```text
//! cargo run --release --example fully_inductive
//! ```

use rmpi::core::config::RelationInit;
use rmpi::core::{train_model, RmpiConfig, RmpiModel, ScoringModel, TrainConfig};
use rmpi::datasets::{build_benchmark, Scale};
use rmpi::eval::onto::schema_vectors;
use rmpi::eval::protocol::{evaluate, EvalConfig};

fn main() {
    // nell.v1.v3: the training graph uses version-1 relations; the testing
    // graphs add version-3 relations the model has never seen.
    let benchmark = build_benchmark("nell.v1.v3", Scale::Quick);
    let semi = benchmark.test("TE(semi)").expect("semi test set");
    let fully = benchmark.test("TE(fully)").expect("fully test set");
    let unseen = semi.graph.present_relations().iter().filter(|r| benchmark.is_unseen(**r)).count();
    println!(
        "benchmark {}: {} seen relations in training, {} unseen relations in testing",
        benchmark.name,
        benchmark.seen_relations.len(),
        unseen
    );

    let train_cfg = TrainConfig { epochs: 3, max_samples_per_epoch: 400, ..Default::default() };
    let eval_cfg =
        EvalConfig { num_candidates: 24, max_targets: 80, seed: 3, ..Default::default() };

    // Random Initialized: unseen relations keep untrained embedding rows;
    // only the message passing over neighbouring seen relations helps.
    let cfg = RmpiConfig { dim: 16, ne: true, ..Default::default() };
    let mut random_model = RmpiModel::new(cfg, benchmark.num_relations(), 0);
    train_model(
        &mut random_model,
        &benchmark.train.graph,
        &benchmark.train.targets,
        &benchmark.train.valid,
        &train_cfg,
    );

    // Schema Enhanced: initial relation features are projections of TransE
    // vectors trained on the ontology, which covers unseen relations too.
    let onto = schema_vectors(&benchmark, 32, 60, 17);
    let cfg_s = RmpiConfig { init: RelationInit::Schema, ..cfg };
    let mut schema_model = RmpiModel::with_schema_vectors(cfg_s, onto, 0);
    train_model(
        &mut schema_model,
        &benchmark.train.graph,
        &benchmark.train.targets,
        &benchmark.train.valid,
        &train_cfg,
    );

    for (label, model) in
        [("Random Initialized", &random_model), ("Schema Enhanced", &schema_model)]
    {
        let m_semi = evaluate(model, semi, &eval_cfg);
        let m_fully = evaluate(model, fully, &eval_cfg);
        println!("\n{} ({}):", label, model.name());
        println!(
            "  TE(semi):  AUC-PR {:6.2}  MRR {:6.2}  Hits@10 {:6.2}",
            m_semi.auc_pr, m_semi.mrr, m_semi.hits10
        );
        println!(
            "  TE(fully): AUC-PR {:6.2}  MRR {:6.2}  Hits@10 {:6.2}",
            m_fully.auc_pr, m_fully.mrr, m_fully.hits10
        );
    }
    println!("\nExpected shape (paper Tables II/III): schema enhancement recovers most of the");
    println!("performance lost when every relation in the test subgraph is unseen.");
}
