//! Build your own KG and ontology, then predict a triple with an unseen
//! relation — the paper's Fig. 1 scenario (`spouse_of` emerging at test
//! time), end to end on the public API.
//!
//! ```text
//! cargo run --release --example custom_kg
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rmpi::core::config::RelationInit;
use rmpi::core::{train_model, RmpiConfig, RmpiModel, ScoringModel, TrainConfig};
use rmpi::kg::{io, KnowledgeGraph, Triple, Vocab};
use rmpi::schema::{ClassId, SchemaBuilder, TransEConfig, TransEModel};
use rmpi_autograd::Tensor;
use std::io::Cursor;

/// A family world: many small families with husband/wife/father/son facts,
/// plus a seen `partner_of` relation parallel to `husband_of` in half the
/// families (so parallel-edge patterns are trained). `spouse_of` itself
/// never appears in training — it is the unseen relation of Fig. 1, tied to
/// `husband_of`/`wife_of`/`partner_of` only through the ontology.
fn family_triples(vocab: &mut Vocab, families: usize, offset: usize) -> Vec<Triple> {
    let mut text = String::new();
    for f in offset..offset + families {
        let (h, w, s) = (format!("man{f}"), format!("woman{f}"), format!("boy{f}"));
        text.push_str(&format!("{h}\thusband_of\t{w}\n"));
        text.push_str(&format!("{w}\twife_of\t{h}\n"));
        text.push_str(&format!("{h}\tfather_of\t{s}\n"));
        text.push_str(&format!("{s}\tson_of\t{w}\n"));
        if f % 2 == 0 {
            text.push_str(&format!("{h}\tpartner_of\t{w}\n"));
        }
    }
    io::read_triples(Cursor::new(text), vocab).expect("well-formed TSV")
}

fn main() {
    // 1. Training graph: families 0..120, without the spouse_of relation.
    let mut vocab = Vocab::new();
    let train_triples = family_triples(&mut vocab, 120, 0);
    // make sure spouse_of exists in the relation id space (unseen in training)
    let spouse = vocab.relation("spouse_of");
    let train_graph = KnowledgeGraph::from_triples(train_triples.clone());
    println!(
        "training graph: {} triples, {} relations (spouse_of unseen)",
        train_graph.num_triples(),
        train_graph.num_present_relations()
    );

    // 2. An RDFS ontology: spouse_of is the parent of husband_of/wife_of,
    //    all ranging over Person.
    let person = ClassId(0);
    let num_relations = vocab.relations.len();
    let mut schema = SchemaBuilder::new(num_relations, 1);
    let rel = |v: &Vocab, name: &str| v.relation_id(name).expect("relation interned");
    schema
        .sub_property_of(rel(&vocab, "husband_of"), spouse)
        .sub_property_of(rel(&vocab, "wife_of"), spouse)
        .sub_property_of(rel(&vocab, "partner_of"), spouse);
    for name in ["husband_of", "wife_of", "father_of", "son_of", "partner_of", "spouse_of"] {
        schema.domain(rel(&vocab, name), person).range(rel(&vocab, name), person);
    }
    let schema = schema.build();
    let transe = TransEModel::train(
        &schema,
        TransEConfig { dim: 24, epochs: 150, seed: 5, ..Default::default() },
    );
    let mut onto_data = Vec::new();
    for r in 0..num_relations as u32 {
        onto_data.extend_from_slice(transe.kg_relation_vector(&schema, rmpi::kg::RelationId(r)));
    }
    let onto = Tensor::matrix(num_relations, 24, onto_data);

    // 3. Train a schema-enhanced RMPI model on the family facts.
    let cfg = RmpiConfig { dim: 16, ne: true, init: RelationInit::Schema, ..Default::default() };
    let mut model = RmpiModel::with_schema_vectors(cfg, onto, 0);
    let train_cfg =
        TrainConfig { epochs: 10, max_samples_per_epoch: 480, patience: 0, ..Default::default() };
    let report = train_model(&mut model, &train_graph, train_graph.triples(), &[], &train_cfg);
    println!(
        "trained {}: final epoch loss {:.3}",
        model.name(),
        report.epoch_losses.last().unwrap()
    );

    // 4. Testing graph: brand-new families (unseen entities), and we ask the
    //    Fig. 1 question — does (man, spouse_of, woman) hold?
    let test_triples = family_triples(&mut vocab, 40, 1000);
    let test_graph = KnowledgeGraph::from_triples(test_triples);
    let h = vocab.entity_id("man1005").unwrap();
    let w = vocab.entity_id("woman1005").unwrap();
    let other_w = vocab.entity_id("woman1010").unwrap();
    let boy = vocab.entity_id("boy1005").unwrap();
    let mut rng = StdRng::seed_from_u64(0);

    let candidates = [
        ("(man1005, spouse_of, woman1005)  [true]", Triple { head: h, relation: spouse, tail: w }),
        (
            "(man1005, spouse_of, woman1010)  [wrong partner]",
            Triple { head: h, relation: spouse, tail: other_w },
        ),
        (
            "(man1005, spouse_of, boy1005)    [wrong type]",
            Triple { head: h, relation: spouse, tail: boy },
        ),
    ];
    println!("\nscoring spouse_of candidates on unseen entities (higher = more plausible):");
    let mut scores = Vec::new();
    for (label, t) in candidates {
        let s = model.score(&test_graph, t, &mut rng);
        println!("  {label:<48} {s:>9.4}");
        scores.push(s);
    }
    if scores[0] > scores[1] {
        println!("\nthe true spouse outranks the wrong partner on entities the model has never");
        println!("seen, for a relation it has never seen — fully inductive completion.");
    }
    if scores[2] > scores[0] {
        println!("caveat: the [wrong type] candidate can still score high — uniform negative");
        println!("sampling rarely produces a *related* wrong-typed pair during training, so the");
        println!("parallel-edge pathway for father_of stays weakly constrained. The paper's");
        println!("future-work item on entity clues (RmpiConfig::entity_clues) targets exactly");
        println!("this gap.");
    }
}
