//! Resilient serving: a retrying, failing-over client in front of two
//! replica servers, one of which is killed mid-run.
//!
//! The client never returns a wrong score — the line protocol makes every
//! damaged reply detectable (a response without its trailing newline is
//! damage, never data), so failures are retried on the surviving replica and
//! the caller only ever sees scores bit-identical to the offline model.
//!
//! Since protocol v2 the retry stack rides on persistent pipelined
//! [`Session`]s (one connection per endpoint, demultiplexed by response
//! tag) instead of one connection per request; the final section drives a
//! session directly to show the transport the stack is built on.
//!
//! ```text
//! cargo run --release --example resilient_client
//! ```

use rmpi::client::{BackoffConfig, BreakerConfig};
use rmpi::prelude::*;
use rmpi::serve::{serve, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // 1. A model bound to the unseen-entity test graph, exactly as in
    //    `examples/serving.rs` (training elided: resilience is about the
    //    transport, not the weights).
    let benchmark = build_benchmark("nell.v1", Scale::Quick);
    let model = RmpiModel::new(
        RmpiConfig { dim: 16, ne: true, ..Default::default() },
        benchmark.num_relations(),
        0,
    );
    let test = benchmark.test("TE").expect("TE split");
    let engine = Arc::new(Engine::new(
        model,
        test.graph.clone(),
        EngineConfig::default().with_seed(7).with_cache_capacity(4096).with_threads(1),
    ));

    // 2. Two replica servers over the same engine — interchangeable: the
    //    engine's seeded cache makes every replica answer bit-identically.
    let mut replica_a = serve(Arc::clone(&engine), ServerConfig::default()).expect("replica a");
    let mut replica_b = serve(Arc::clone(&engine), ServerConfig::default()).expect("replica b");
    println!("replicas: {} and {}", replica_a.addr(), replica_b.addr());

    // 3. One failover client over both. The breaker trips an endpoint after
    //    two consecutive failures; its cooldown stays well under
    //    max_retries × backoff.max so a trip costs latency, not errors.
    let mut client = FailoverClient::new(
        vec![replica_a.addr(), replica_b.addr()],
        FailoverConfig {
            client: ClientConfig {
                max_retries: 4,
                backoff: BackoffConfig {
                    base: Duration::from_millis(2),
                    max: Duration::from_millis(50),
                    ..Default::default()
                },
                ..Default::default()
            }
            .with_seed(42),
            breaker: BreakerConfig { trip_after: 2, cooldown: Duration::from_millis(100) },
        },
    );

    // 4. Score test triples through the client; halfway through, kill
    //    replica A. The client notices (connection refused → retryable) and
    //    steers everything to the surviving replica — no caller-visible
    //    errors.
    let targets: Vec<_> = test.targets.iter().take(20).collect();
    let reference: Vec<f32> = engine.score_batch(&test.targets[..20]).expect("reference scores");
    for (i, t) in targets.iter().enumerate() {
        if i == targets.len() / 2 {
            println!("--- killing replica A mid-run ---");
            replica_a.shutdown();
        }
        let score = client
            .score(t.head.0, t.relation.0, t.tail.0)
            .expect("a live replica remains: the request must succeed");
        assert_eq!(
            score.to_bits(),
            reference[i].to_bits(),
            "served score must be bit-identical to the offline engine"
        );
        println!("  score({}, {}, {}) = {score:+.4}", t.head.0, t.relation.0, t.tail.0);
    }

    // 5. What the retry layer did, from its registry-backed counters. The
    //    sessions count stays near the endpoint count — connection reuse is
    //    the point of the pipelined transport.
    let stats = client.stats();
    println!(
        "done: {} requests over {} sessions, {} retries, {} failovers, \
         {} breaker trips, {} errors",
        stats.requests.get(),
        stats.sessions_opened.get(),
        stats.retries.get(),
        stats.failovers.get(),
        stats.breaker_open.get(),
        stats.errors.get(),
    );
    println!("breaker states: {:?}", client.breaker_states());

    // 6. The transport underneath the stack: one explicit session, a whole
    //    burst of requests in flight on one connection, answers
    //    demultiplexed by tag — and still bit-identical.
    let session =
        Session::connect(replica_b.addr(), &ClientConfig::default()).expect("session connect");
    let burst: Vec<(u32, u32, u32)> =
        targets.iter().take(8).map(|t| (t.head.0, t.relation.0, t.tail.0)).collect();
    let scores = session.score_many(&burst).expect("pipelined burst");
    for (i, score) in scores.iter().enumerate() {
        assert_eq!(score.to_bits(), reference[i].to_bits(), "pipelined score must match");
    }
    println!(
        "pipelined burst: {} scores over one proto v{} connection",
        scores.len(),
        session.proto_version()
    );
    replica_b.shutdown();
}
