//! Quickstart: build an inductive benchmark, train RMPI, evaluate it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rmpi::prelude::*;

fn main() {
    // 1. A benchmark from the catalogue: NELL-995-like inductive split v1.
    //    The training and testing graphs share relations but have disjoint
    //    entity sets — the model must reason from structure alone.
    let benchmark = build_benchmark("nell.v1", Scale::Quick);
    println!(
        "benchmark {}: train graph {} triples, test graph {} triples, {} targets",
        benchmark.name,
        benchmark.train.graph.num_triples(),
        benchmark.tests[0].graph.num_triples(),
        benchmark.tests[0].targets.len(),
    );

    // 2. An RMPI model: relational message passing with the NE module.
    let cfg = RmpiConfig { dim: 16, ne: true, ..Default::default() };
    let mut model = RmpiModel::new(cfg, benchmark.num_relations(), 0);
    println!(
        "model: {} ({} weights)",
        ScoringModel::name(&model),
        model.param_store().num_weights()
    );

    // 3. Train with the paper's margin ranking loss and Adam.
    let train_cfg = TrainConfig { epochs: 3, max_samples_per_epoch: 400, ..Default::default() };
    let report = train_model(
        &mut model,
        &benchmark.train.graph,
        &benchmark.train.targets,
        &benchmark.train.valid,
        &train_cfg,
    );
    println!(
        "training: losses per epoch {:?}, best validation accuracy {:.3}",
        report.epoch_losses.iter().map(|l| (l * 100.0).round() / 100.0).collect::<Vec<_>>(),
        report.best_accuracy()
    );

    // 4. Evaluate on the unseen-entity testing graph.
    let eval_cfg =
        EvalConfig { num_candidates: 24, max_targets: 80, seed: 7, ..Default::default() };
    let metrics = evaluate(&model, &benchmark.tests[0], &eval_cfg);
    println!(
        "test metrics: AUC-PR {:.2}  MRR {:.2}  Hits@1 {:.2}  Hits@10 {:.2}  ({} targets)",
        metrics.auc_pr, metrics.mrr, metrics.hits1, metrics.hits10, metrics.num_targets
    );
}
