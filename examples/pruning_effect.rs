//! Measure the computation saved by Algorithm 1's target-relation-guided
//! pruning across the three dataset families.
//!
//! ```text
//! cargo run --release --example pruning_effect
//! ```

use rmpi::datasets::registry::Family;
use rmpi::datasets::world::GraphGenConfig;
use rmpi::kg::KnowledgeGraph;
use rmpi::subgraph::{enclosing_subgraph, PruningSchedule, RelViewGraph};

fn main() {
    println!("node updates required for K-layer message passing, with and without pruning\n");
    println!("{:<8} {:>4} {:>14} {:>12} {:>10}", "family", "K", "pruned", "unpruned", "savings");
    for family in [Family::Wn, Family::Fb, Family::Nell] {
        let world = family.world();
        let groups: Vec<usize> = (0..world.groups().len()).collect();
        let triples = world.generate_triples(
            &groups,
            &GraphGenConfig {
                num_entities: 400,
                num_base_triples: 2000,
                seed: 9,
                ..Default::default()
            },
        );
        let g = KnowledgeGraph::from_triples(triples);
        for k in [2usize, 3] {
            let (mut pruned, mut full) = (0usize, 0usize);
            for &t in g.triples().iter().step_by(g.num_triples() / 64 + 1) {
                let sg = enclosing_subgraph(&g, t, 2);
                let rv = RelViewGraph::from_subgraph(&sg);
                let sched = PruningSchedule::new(&rv, k);
                let (p, f) = sched.update_counts();
                pruned += p;
                full += f;
            }
            let savings = 100.0 * (1.0 - pruned as f64 / full.max(1) as f64);
            println!("{:<8} {:>4} {:>14} {:>12} {:>9.1}%", family.tag(), k, pruned, full, savings);
        }
    }
    println!("\nThe pruned schedule updates only nodes that can still influence the target");
    println!("relation (Algorithm 1, steps 4–8), so deeper stacks save proportionally more.");
}
