//! Serving: train a model, package it as a bundle, reload the bundle and
//! answer ranked queries through the in-process inference engine — then put
//! the same engine behind the TCP edge and score a pipelined burst through
//! a protocol-v2 [`Session`].
//!
//! ```text
//! cargo run --release --example serving
//! ```

use rmpi::prelude::*;
use rmpi::serve::{serve, ServerConfig};
use std::sync::Arc;

fn main() {
    // 1. Train a small model on an inductive benchmark.
    let benchmark = build_benchmark("nell.v1", Scale::Quick);
    let cfg = RmpiConfig { dim: 16, ne: true, ..Default::default() };
    let mut model = RmpiModel::new(cfg, benchmark.num_relations(), 0);
    let train_cfg = TrainConfig { epochs: 2, max_samples_per_epoch: 200, ..Default::default() };
    let report = train_model(
        &mut model,
        &benchmark.train.graph,
        &benchmark.train.targets,
        &benchmark.train.valid,
        &train_cfg,
    );
    println!(
        "trained: {} epochs, best validation accuracy {:.3}",
        report.epoch_losses.len(),
        report.best_accuracy()
    );

    // 2. Package it: config + relation vocabulary + weights in one artifact.
    let path = std::env::temp_dir().join("rmpi-serving-example.bundle");
    let names: Vec<String> =
        (0..benchmark.num_relations()).map(|r| format!("relation_{r}")).collect();
    save_bundle_file(&path, &model, &names).expect("save bundle");
    println!(
        "bundle: wrote {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
    );

    // 3. Reload the bundle — this is what a serving process would do; it
    //    never needs the trainer, only the artifact and a context graph.
    let bundle = load_bundle_file(&path).expect("load bundle");
    println!("bundle: reloaded model with {} relations", bundle.relation_names.len());

    // 4. Serve: bind the model to the unseen-entity test graph and answer
    //    queries through the subgraph cache.
    let test = benchmark.test("TE").expect("TE split");
    let engine = Arc::new(Engine::new(
        bundle.model,
        test.graph.clone(),
        EngineConfig::default().with_seed(7).with_cache_capacity(4096).with_threads(0),
    ));

    for &target in test.targets.iter().take(3) {
        let ranked = engine.rank_tails(target.head, target.relation, 5).expect("rank");
        let names = &bundle.relation_names;
        println!("top tails for ({}, {}):", target.head.0, names[target.relation.0 as usize]);
        for (rank, (entity, score)) in ranked.iter().enumerate() {
            let marker = if *entity == target.tail { "  <- true tail" } else { "" };
            println!("  #{} entity {:<4} score {:+.4}{marker}", rank + 1, entity.0, score);
        }
    }

    // 5. The engine keeps serving counters; scoring the same queries again
    //    hits the cache.
    for &target in test.targets.iter().take(3) {
        engine.rank_tails(target.head, target.relation, 5).expect("rank");
    }
    println!("stats: {}", engine.stats_json());

    // 6. The full metrics registry — per-verb latency percentiles, cache
    //    gauges, and (in a combined process) trainer/pool metrics too.
    println!("metrics: {}", engine.metrics_json());

    // 7. The same engine behind the TCP edge: a client session negotiates
    //    protocol v2 and pipelines a burst of scores over one connection —
    //    the server's micro-batcher coalesces them into engine batch calls,
    //    and every answer is bit-identical to the in-process engine.
    let mut server = serve(Arc::clone(&engine), ServerConfig::default()).expect("bind server");
    let session = Session::connect(server.addr(), &ClientConfig::default()).expect("connect");
    let burst: Vec<(u32, u32, u32)> =
        test.targets.iter().take(8).map(|t| (t.head.0, t.relation.0, t.tail.0)).collect();
    let scores = session.score_many(&burst).expect("pipelined burst");
    let reference = engine.score_batch(&test.targets[..8]).expect("reference");
    for (served, direct) in scores.iter().zip(&reference) {
        assert_eq!(served.to_bits(), direct.to_bits(), "wire scores must match the engine");
    }
    println!(
        "wire: {} pipelined scores over one proto v{} connection at {}",
        scores.len(),
        session.proto_version(),
        server.addr()
    );
    server.shutdown();
    std::fs::remove_file(&path).ok();
}
