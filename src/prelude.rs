//! The everyday-imports prelude: `use rmpi::prelude::*;` pulls in the types
//! that nearly every program touching RMPI needs — graph primitives, the
//! model and trainer, evaluation, benchmark construction, serving, and
//! observability — without reaching into individual sub-crates.
//!
//! ```no_run
//! use rmpi::prelude::*;
//!
//! let benchmark = build_benchmark("nell.v1", Scale::Quick);
//! let mut model = RmpiModel::new(RmpiConfig::default(), benchmark.num_relations(), 0);
//! let report = train_model(
//!     &mut model,
//!     &benchmark.train.graph,
//!     &benchmark.train.targets,
//!     &benchmark.train.valid,
//!     &TrainConfig { epochs: 1, ..Default::default() },
//! );
//! let _ = report.best_accuracy();
//! ```

pub use crate::error::{Error, Result};

// graph primitives
pub use rmpi_kg::{EntityId, KnowledgeGraph, RelationId, Triple};

// model + training
pub use rmpi_core::{
    train_model, CheckpointConfig, RmpiConfig, RmpiModel, ScoringModel, TrainConfig, TrainReport,
    Trainer,
};

// benchmarks
pub use rmpi_datasets::{build_benchmark, Benchmark, Scale, StreamingWorld};

// the out-of-core graph store and the streaming trainer over it
pub use rmpi_core::train_streaming;
pub use rmpi_store::{build_from_sorted, NeighborhoodView, ReadMode, StoreConfig, StoreReader};

// evaluation
pub use rmpi_eval::protocol::evaluate;
pub use rmpi_eval::{EvalConfig, EvalMetrics};

// serving
pub use rmpi_serve::{
    load_bundle_dir, load_bundle_file, save_bundle_dir, save_bundle_file, Bundle, Engine,
    EngineConfig, GraphBackend, ServeStats,
};

// the resilient serving client (pipelined sessions, retries, backoff,
// replica failover); `ProtocolClient` carries the verb methods for both
// retrying client flavours, `Session`/`ClientPool` are the multiplexed
// transport underneath them
pub use rmpi_client::{
    Client, ClientConfig, ClientError, ClientPool, FailoverClient, FailoverConfig, ProtocolClient,
    Session,
};

// observability
/// The process-wide metrics registry (see [`rmpi_obs::global`]).
pub use rmpi_obs::global as metrics;
pub use rmpi_obs::MetricsRegistry;
