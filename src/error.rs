//! A unified error type for the facade.
//!
//! Each workspace crate keeps its own focused error enum; [`Error`] wraps
//! them so an application that trains, checkpoints, bundles and serves in one
//! binary can use a single `Result<T, rmpi::Error>` with `?` throughout.
//! Every variant preserves the underlying error as `source()`, so chains
//! print fully with e.g. `anyhow`-style error walkers or a manual loop over
//! `std::error::Error::source`.

use rmpi_autograd::io::CheckpointError;
use rmpi_client::ClientError;
use rmpi_core::ModelAssemblyError;
use rmpi_runtime::PoolError;
use rmpi_serve::ServeError;
use rmpi_store::StoreError;
use std::fmt;

/// Any error the RMPI workspace can produce, unified for application code.
#[derive(Debug)]
pub enum Error {
    /// Checkpoint / parameter-stream parse or write failure
    /// (`rmpi-autograd`'s `rmpi-params v1` format).
    Checkpoint(CheckpointError),
    /// A parameter set that does not assemble into a model of the stated
    /// configuration.
    Assembly(ModelAssemblyError),
    /// A worker in the data-parallel thread pool panicked.
    Pool(PoolError),
    /// Bundle IO, engine query or TCP front-end failure (`rmpi-serve`) —
    /// including bundle parse errors with byte offsets.
    Serve(ServeError),
    /// On-disk graph store failure (`rmpi-store`) — manifest, segment
    /// corruption, or sort-order violations during a build.
    Store(StoreError),
    /// A serving-client request failed (`rmpi-client`). Kept whole — the
    /// variant (connect vs truncated vs server-rejected, transient vs
    /// fatal) carries the retryability classification the caller may act on.
    Client(ClientError),
    /// Underlying I/O failure outside any of the layers above.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            Error::Assembly(e) => write!(f, "model assembly: {e}"),
            Error::Pool(e) => write!(f, "thread pool: {e}"),
            Error::Serve(e) => write!(f, "serve: {e}"),
            Error::Store(e) => write!(f, "store: {e}"),
            Error::Client(e) => write!(f, "client: {e}"),
            Error::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Checkpoint(e) => Some(e),
            Error::Assembly(e) => Some(e),
            Error::Pool(e) => Some(e),
            Error::Serve(e) => Some(e),
            Error::Store(e) => Some(e),
            Error::Client(e) => Some(e),
            Error::Io(e) => Some(e),
        }
    }
}

impl From<CheckpointError> for Error {
    fn from(e: CheckpointError) -> Self {
        // an Io failure mid-checkpoint is an Io failure, not a format problem
        match e {
            CheckpointError::Io(io) => Error::Io(io),
            other => Error::Checkpoint(other),
        }
    }
}

impl From<ModelAssemblyError> for Error {
    fn from(e: ModelAssemblyError) -> Self {
        Error::Assembly(e)
    }
}

impl From<PoolError> for Error {
    fn from(e: PoolError) -> Self {
        Error::Pool(e)
    }
}

impl From<ServeError> for Error {
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::Io(io) => Error::Io(io),
            other => Error::Serve(other),
        }
    }
}

impl From<StoreError> for Error {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(io) => Error::Io(io),
            other => Error::Store(other),
        }
    }
}

impl From<ClientError> for Error {
    fn from(e: ClientError) -> Self {
        Error::Client(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Convenience alias: `rmpi::Result<T>` = `Result<T, rmpi::Error>`.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    fn take(r: std::result::Result<(), Error>) -> Error {
        r.unwrap_err()
    }

    #[test]
    fn from_impls_route_to_the_right_variant() {
        let e = take(Err(CheckpointError::BadMagic("x".into()).into()));
        assert!(matches!(e, Error::Checkpoint(_)), "{e:?}");
        assert!(e.to_string().starts_with("checkpoint: "), "{e}");

        let e = take(Err(PoolError::WorkerPanicked { index: 1, message: "boom".into() }.into()));
        assert!(matches!(e, Error::Pool(_)), "{e:?}");

        let e = take(Err(ServeError::Overloaded.into()));
        assert!(matches!(e, Error::Serve(_)), "{e:?}");
        assert_eq!(e.to_string(), "serve: server overloaded");

        let e = take(Err(ClientError::TruncatedResponse.into()));
        assert!(matches!(e, Error::Client(_)), "{e:?}");
        assert!(e.to_string().starts_with("client: "), "{e}");

        let e = take(Err(std::io::Error::other("disk").into()));
        assert!(matches!(e, Error::Io(_)), "{e:?}");
    }

    #[test]
    fn io_flattens_from_nested_wrappers() {
        let io = || std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(Error::from(CheckpointError::Io(io())), Error::Io(_)));
        assert!(matches!(Error::from(ServeError::Io(io())), Error::Io(_)));
        assert!(matches!(Error::from(rmpi_store::StoreError::Io(io())), Error::Io(_)));
    }

    #[test]
    fn every_variant_reports_a_source() {
        use std::error::Error as _;
        let all: Vec<Error> = vec![
            CheckpointError::BadMagic("x".into()).into(),
            PoolError::WorkerPanicked { index: 0, message: "p".into() }.into(),
            ServeError::UnknownRelation(9).into(),
            rmpi_store::StoreError::NotAStore("/nowhere".into()).into(),
            ClientError::Io(std::io::Error::new(std::io::ErrorKind::TimedOut, "t")).into(),
            std::io::Error::other("disk").into(),
        ];
        for e in &all {
            assert!(e.source().is_some(), "{e} must preserve its source");
        }
    }
}
