//! # RMPI — Relational Message Passing for Fully Inductive Knowledge Graph Completion
//!
//! A complete Rust reproduction of Geng et al., ICDE 2023. This facade crate
//! re-exports the whole workspace so downstream users depend on one crate:
//!
//! * [`kg`] — knowledge-graph storage, traversal, io and statistics;
//! * [`autograd`] — from-scratch tensors, reverse-mode autodiff, optimisers;
//! * [`subgraph`] — enclosing/disclosing extraction, relation-view transform,
//!   target-guided pruning, negative sampling;
//! * [`schema`] — ontological schema graphs and TransE embeddings;
//! * [`datasets`] — synthetic inductive KGC benchmark generators, including
//!   streaming chunked generation for million-entity worlds;
//! * [`store`] — the out-of-core graph store: sorted on-disk triple
//!   segments behind `GraphAccess`, for worlds too big for RAM;
//! * [`core`] — the RMPI model and trainer (in-memory and store-streaming);
//! * [`baselines`] — GraIL, TACT(-base), CoMPILE and MaKEr-lite;
//! * [`eval`] — metrics, protocols and the experiment runner;
//! * [`serve`] — model bundles and the batched, subgraph-caching inference
//!   service (in-process engine + TCP front end);
//! * [`client`] — the resilient serving client: pipelined multiplexing
//!   sessions (protocol v2 tagged responses) with a pooling layer, timeouts,
//!   classified retryable-vs-fatal errors, seeded exponential backoff, retry
//!   budgets, and multi-replica failover behind per-endpoint circuit
//!   breakers;
//! * [`router`] — the scatter-gather fleet router: sharded `RANK` across
//!   replicas with bit-exact top-k merging, end-to-end deadline budgets,
//!   hedged requests to a standby, and graceful `partial` degradation when
//!   a shard is lost mid-rank;
//! * [`obs`] — the observability layer: process-wide metrics registry
//!   (counters, gauges, latency histograms with percentiles), scoped timing
//!   spans, and a manual clock for deterministic tests;
//! * [`runtime`] — the scoped data-parallel thread pool.
//!
//! Two facade conveniences tie the workspace together:
//!
//! * [`prelude`] re-exports the everyday types (`use rmpi::prelude::*;`);
//! * [`Error`] unifies the per-crate error enums behind one `?`-friendly
//!   type with full `source()` chains.
//!
//! See `examples/quickstart.rs` for an end-to-end tour,
//! `examples/serving.rs` for the train → bundle → serve pipeline, and
//! `examples/resilient_client.rs` for retrying + failover against live
//! servers.

pub mod error;
pub mod prelude;

pub use error::{Error, Result};

pub use rmpi_autograd as autograd;
pub use rmpi_baselines as baselines;
pub use rmpi_client as client;
pub use rmpi_core as core;
pub use rmpi_datasets as datasets;
pub use rmpi_eval as eval;
pub use rmpi_kg as kg;
pub use rmpi_obs as obs;
pub use rmpi_router as router;
pub use rmpi_runtime as runtime;
pub use rmpi_schema as schema;
pub use rmpi_serve as serve;
pub use rmpi_store as store;
pub use rmpi_subgraph as subgraph;
