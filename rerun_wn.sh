#!/bin/bash
set -x
R=results
cargo run --release -p rmpi-bench --bin table1_stats > $R/table1_stats.txt 2>$R/table1_stats.err
cargo run --release -p rmpi-bench --bin dataset_report > $R/dataset_report.txt 2>$R/dataset_report.err
cargo run --release -p rmpi-bench --bin table6_partial -- --datasets wn.v1 --epochs 5 --max-samples 500 > $R/table6_wn_rerun.txt 2>$R/table6_wn_rerun.err
cargo run --release -p rmpi-bench --bin supp_rulen -- --datasets wn.v1 --epochs 5 --max-samples 500 > $R/supp_rulen_wn.txt 2>$R/supp_rulen_wn.err
cargo run --release -p rmpi-bench --bin ablation_extensions -- --datasets wn.v1 --epochs 5 --max-samples 500 > $R/ablation_wn.txt 2>$R/ablation_wn.err
echo WN_RERUN_DONE
