//! RMPI model configuration.

/// How the enclosing and disclosing representations are fused for scoring.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fusion {
    /// Eq. 15: `score = W (h_rt^K + h_d)`.
    Sum,
    /// Eq. 16: `score = W (W3 [h_rt^K ⊕ h_d])`.
    Concat,
    /// Extension (paper §VI future work: "more robust fusion functions"):
    /// a learned elementwise gate, `score = W (g ⊙ h_rt^K + (1−g) ⊙ h_d)`
    /// with `g = σ(W_g [h_rt^K ⊕ h_d])`.
    Gated,
}

/// How relation-node initial features are obtained.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RelationInit {
    /// A learnable embedding table, randomly initialised — unseen relations
    /// keep their untrained rows (the paper's *Random Initialized* setting).
    Random,
    /// Projection of schema-graph TransE vectors through two linear layers
    /// (Eq. 10) — the *Schema Enhanced* setting.
    Schema,
}

/// Hyper-parameters of the RMPI family. The defaults are the paper's stated
/// best configuration (§IV-B).
#[derive(Clone, Copy, Debug)]
pub struct RmpiConfig {
    /// Relation embedding dimension (paper: 32).
    pub dim: usize,
    /// Message passing layers K (paper: 2).
    pub num_layers: usize,
    /// Subgraph extraction hop K (paper: 2).
    pub hop: usize,
    /// Enable the disclosing-subgraph NE module.
    pub ne: bool,
    /// Enable target-aware neighbourhood attention (TA).
    pub ta: bool,
    /// Fusion function used when `ne` is on.
    pub fusion: Fusion,
    /// Negative slope of LeakyReLU in attention (paper: 0.2).
    pub leaky_slope: f32,
    /// Edge dropout rate applied to subgraph edges during training
    /// (paper: 0.5).
    pub edge_dropout: f64,
    /// Initialisation mode for relation features.
    pub init: RelationInit,
    /// Hidden width of the schema projection (Eq. 10); `dim` if 0.
    pub schema_hidden: usize,
    /// Safety cap on enclosing-subgraph edges (uniform downsampling beyond).
    pub max_subgraph_edges: usize,
    /// Extension (paper §VI future work: "assembling nonnegligible reasoning
    /// clues from entities"): fold a histogram of the subgraph entities'
    /// double-radius labels into the scoring input.
    pub entity_clues: bool,
}

impl Default for RmpiConfig {
    fn default() -> Self {
        RmpiConfig {
            dim: 32,
            num_layers: 2,
            hop: 2,
            ne: false,
            ta: false,
            fusion: Fusion::Sum,
            leaky_slope: 0.2,
            edge_dropout: 0.5,
            init: RelationInit::Random,
            schema_hidden: 0,
            max_subgraph_edges: 300,
            entity_clues: false,
        }
    }
}

impl RmpiConfig {
    /// RMPI-base: no NE, no TA.
    pub fn base() -> Self {
        Self::default()
    }

    /// RMPI-NE: disclosing aggregation on.
    pub fn ne() -> Self {
        RmpiConfig { ne: true, ..Self::default() }
    }

    /// RMPI-TA: target-aware attention on.
    pub fn ta() -> Self {
        RmpiConfig { ta: true, ..Self::default() }
    }

    /// RMPI-NE-TA: both techniques on.
    pub fn ne_ta() -> Self {
        RmpiConfig { ne: true, ta: true, ..Self::default() }
    }

    /// The same configuration with schema-enhanced initialisation.
    pub fn with_schema(self) -> Self {
        RmpiConfig { init: RelationInit::Schema, ..self }
    }

    /// Effective hidden width of the schema projection.
    pub fn schema_hidden_dim(&self) -> usize {
        if self.schema_hidden == 0 {
            self.dim
        } else {
            self.schema_hidden
        }
    }

    /// Human-readable variant name, matching the paper's tables.
    pub fn variant_name(&self) -> String {
        let mut s = String::from("RMPI");
        match (self.ne, self.ta) {
            (false, false) => s.push_str("-base"),
            (true, false) => s.push_str("-NE"),
            (false, true) => s.push_str("-TA"),
            (true, true) => s.push_str("-NE-TA"),
        }
        if self.ne {
            s.push_str(match self.fusion {
                Fusion::Sum => "(S)",
                Fusion::Concat => "(C)",
                Fusion::Gated => "(G)",
            });
        }
        if self.entity_clues {
            s.push_str("+EC");
        }
        if self.init == RelationInit::Schema {
            s.push_str("+schema");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_names() {
        assert_eq!(RmpiConfig::base().variant_name(), "RMPI-base");
        assert_eq!(RmpiConfig::ne().variant_name(), "RMPI-NE(S)");
        assert_eq!(
            RmpiConfig { fusion: Fusion::Concat, ..RmpiConfig::ne_ta() }.variant_name(),
            "RMPI-NE-TA(C)"
        );
        assert_eq!(RmpiConfig::base().with_schema().variant_name(), "RMPI-base+schema");
        assert_eq!(RmpiConfig::ta().variant_name(), "RMPI-TA");
        assert_eq!(
            RmpiConfig { fusion: Fusion::Gated, entity_clues: true, ..RmpiConfig::ne() }
                .variant_name(),
            "RMPI-NE(G)+EC"
        );
    }

    #[test]
    fn defaults_match_paper() {
        let c = RmpiConfig::default();
        assert_eq!(c.dim, 32);
        assert_eq!(c.num_layers, 2);
        assert_eq!(c.hop, 2);
        assert_eq!(c.leaky_slope, 0.2);
        assert_eq!(c.edge_dropout, 0.5);
    }

    #[test]
    fn schema_hidden_defaults_to_dim() {
        assert_eq!(RmpiConfig::default().schema_hidden_dim(), 32);
        assert_eq!(RmpiConfig { schema_hidden: 64, ..Default::default() }.schema_hidden_dim(), 64);
    }
}
