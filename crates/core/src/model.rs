//! The assembled RMPI model.

use crate::config::{Fusion, RelationInit, RmpiConfig};
use crate::encode::RelationEncoder;
use crate::layers::{relational_message_passing, AttentionConfig, MessagePassingWeights};
use crate::ne::{disclosing_aggregate, NeWeights};
use crate::sample::{prepare_sample, SampleInput};
use crate::traits::{Mode, ScoringModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rmpi_autograd::{init, ParamId, ParamStore, Tape, Tensor, Var};
use rmpi_kg::{GraphAccess, RelationId, Triple};
use rmpi_subgraph::relview::NUM_EDGE_TYPES;
use std::fmt;

/// RMPI with all its variants (base / NE / TA / NE-TA, SUM / CONC fusion,
/// random / schema initialisation) selected by [`RmpiConfig`].
#[derive(Clone, Debug)]
pub struct RmpiModel {
    cfg: RmpiConfig,
    store: ParamStore,
    encoder: RelationEncoder,
    mp: MessagePassingWeights,
    ne_weights: Option<NeWeights>,
    score_w: ParamId,
    fuse_w3: Option<ParamId>,
    fuse_gate: Option<ParamId>,
    ent_w: Option<ParamId>,
    num_relations: usize,
}

impl RmpiModel {
    /// Build a randomly initialised model over `num_relations` relation ids.
    ///
    /// Panics if `cfg.init` is [`RelationInit::Schema`] — use
    /// [`RmpiModel::with_schema_vectors`] for that path.
    pub fn new(cfg: RmpiConfig, num_relations: usize, seed: u64) -> Self {
        assert_eq!(cfg.init, RelationInit::Random, "schema init requires with_schema_vectors()");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let encoder = RelationEncoder::new_random(&mut store, num_relations, cfg.dim, &mut rng);
        Self::finish(cfg, store, encoder, num_relations, &mut rng)
    }

    /// Build a schema-enhanced model: initial relation features are
    /// projections (Eq. 10) of `onto` — a `(num_relations, onto_dim)` matrix
    /// of schema TransE vectors covering seen *and* unseen relations.
    pub fn with_schema_vectors(cfg: RmpiConfig, onto: Tensor, seed: u64) -> Self {
        assert_eq!(cfg.init, RelationInit::Schema, "config must request schema init");
        let num_relations = onto.rows();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let encoder = RelationEncoder::new_schema(&mut store, onto, &cfg, &mut rng);
        Self::finish(cfg, store, encoder, num_relations, &mut rng)
    }

    fn finish(
        cfg: RmpiConfig,
        mut store: ParamStore,
        encoder: RelationEncoder,
        num_relations: usize,
        rng: &mut StdRng,
    ) -> Self {
        let mp = MessagePassingWeights::new(&mut store, "mp", cfg.num_layers, cfg.dim, rng);
        let ne_weights = if cfg.ne { Some(NeWeights::new(&mut store, cfg.dim, rng)) } else { None };
        let fuse_w3 = if cfg.ne && cfg.fusion == Fusion::Concat {
            Some(store.create("fuse_w3", init::xavier_uniform(&[cfg.dim, 2 * cfg.dim], rng)))
        } else {
            None
        };
        let fuse_gate = if cfg.ne && cfg.fusion == Fusion::Gated {
            Some(store.create("fuse_gate", init::xavier_uniform(&[cfg.dim, 2 * cfg.dim], rng)))
        } else {
            None
        };
        let ent_w = if cfg.entity_clues {
            let hist_dim = crate::sample::label_histogram_len(cfg.hop + 1);
            Some(store.create("ent_w", init::xavier_uniform(&[cfg.dim, hist_dim], rng)))
        } else {
            None
        };
        let score_w = store.create("score_w", init::xavier_uniform(&[cfg.dim], rng));
        RmpiModel {
            cfg,
            store,
            encoder,
            mp,
            ne_weights,
            score_w,
            fuse_w3,
            fuse_gate,
            ent_w,
            num_relations,
        }
    }

    /// Reassemble a model from a loaded parameter store — the bundle-loading
    /// path: every handle the forward pass needs is looked up by the name
    /// [`RmpiModel::new`] would have created it under, and shapes are checked
    /// against `cfg` so a config/checkpoint mismatch fails loudly instead of
    /// scoring garbage. Schema-initialised models additionally need their
    /// fixed `onto` vectors back (they live outside the store).
    pub fn from_store(
        cfg: RmpiConfig,
        num_relations: usize,
        store: ParamStore,
        onto: Option<Tensor>,
    ) -> Result<Self, ModelAssemblyError> {
        let mut expected: Vec<String> = Vec::new();
        let mut lookup = |name: String, shape: &[usize]| -> Result<ParamId, ModelAssemblyError> {
            let id =
                store.get(&name).ok_or_else(|| ModelAssemblyError::MissingParam(name.clone()))?;
            let got = store.value(id).shape();
            if got != shape {
                return Err(ModelAssemblyError::ShapeMismatch {
                    name,
                    expected: shape.to_vec(),
                    got: got.to_vec(),
                });
            }
            expected.push(name);
            Ok(id)
        };

        let encoder = match cfg.init {
            RelationInit::Random => {
                let emb = lookup("rel_emb".into(), &[num_relations.max(1), cfg.dim])?;
                RelationEncoder::Random { emb }
            }
            RelationInit::Schema => {
                let onto = onto.ok_or(ModelAssemblyError::MissingSchemaVectors)?;
                if onto.rows() != num_relations {
                    return Err(ModelAssemblyError::SchemaVectorRows {
                        expected: num_relations,
                        got: onto.rows(),
                    });
                }
                let hidden = cfg.schema_hidden_dim();
                let w2 = lookup("onto_w2".into(), &[hidden, onto.cols()])?;
                let w1 = lookup("onto_w1".into(), &[cfg.dim, hidden])?;
                RelationEncoder::Schema { onto, w1, w2 }
            }
        };
        let w = (0..cfg.num_layers)
            .map(|k| {
                (0..NUM_EDGE_TYPES)
                    .map(|e| lookup(format!("mp_l{k}_e{e}"), &[cfg.dim, cfg.dim]))
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mp = MessagePassingWeights { w };
        let ne_weights = if cfg.ne {
            Some(NeWeights { wd: lookup("ne_wd".into(), &[cfg.dim, cfg.dim])? })
        } else {
            None
        };
        let fuse_w3 = if cfg.ne && cfg.fusion == Fusion::Concat {
            Some(lookup("fuse_w3".into(), &[cfg.dim, 2 * cfg.dim])?)
        } else {
            None
        };
        let fuse_gate = if cfg.ne && cfg.fusion == Fusion::Gated {
            Some(lookup("fuse_gate".into(), &[cfg.dim, 2 * cfg.dim])?)
        } else {
            None
        };
        let ent_w = if cfg.entity_clues {
            let hist_dim = crate::sample::label_histogram_len(cfg.hop + 1);
            Some(lookup("ent_w".into(), &[cfg.dim, hist_dim])?)
        } else {
            None
        };
        let score_w = lookup("score_w".into(), &[cfg.dim])?;

        // a parameter the config does not call for means the checkpoint was
        // written by a different variant — refuse rather than silently ignore
        if store.len() != expected.len() {
            for id in store.ids() {
                if !expected.iter().any(|n| n == store.name(id)) {
                    return Err(ModelAssemblyError::UnexpectedParam(store.name(id).to_owned()));
                }
            }
        }
        Ok(RmpiModel {
            cfg,
            store,
            encoder,
            mp,
            ne_weights,
            score_w,
            fuse_w3,
            fuse_gate,
            ent_w,
            num_relations,
        })
    }

    /// The model configuration.
    pub fn config(&self) -> &RmpiConfig {
        &self.cfg
    }

    /// Size of the relation id space the model covers.
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }

    /// The fixed schema TransE vectors, when `cfg.init` is schema.
    pub fn schema_vectors(&self) -> Option<&Tensor> {
        self.encoder.schema_vectors()
    }

    /// Build the deterministic (eval-mode) forward input for `target`, with
    /// all stochastic choices (oversized-subgraph downsampling) drawn from a
    /// fresh RNG seeded with `seed`. This is the extraction half of
    /// [`ScoringModel::score`]: scoring the returned sample via
    /// [`RmpiModel::score_sample`] is bit-identical to
    /// `self.score(graph, target, &mut StdRng::seed_from_u64(seed))` — which
    /// is what lets a serving cache store the sample and replay it later.
    pub fn prepare_eval_sample<G: GraphAccess + ?Sized>(
        &self,
        graph: &G,
        target: Triple,
        seed: u64,
    ) -> SampleInput {
        let mut rng = StdRng::seed_from_u64(seed);
        prepare_sample(graph, target, &self.cfg, Mode::Eval, &mut rng)
    }

    /// Record the score of an already-prepared sample on `tape` — the
    /// cache-hit scoring path. The forward pass past sample preparation is
    /// fully deterministic, so the result depends only on the sample and the
    /// parameters.
    pub fn score_sample_on_tape(&self, tape: &mut Tape, sample: &SampleInput) -> Var {
        let target = sample.target;
        assert!(
            target.relation.index() < self.num_relations,
            "relation {} outside the model's id space ({})",
            target.relation,
            self.num_relations
        );

        // every relation whose h^0 the pass needs
        let mut rels: Vec<RelationId> = sample.relview.nodes.iter().map(|n| n.relation).collect();
        rels.extend_from_slice(&sample.disclosing_rels);
        rels.push(target.relation);
        let h0_map = self.encoder.encode(tape, &self.store, &rels);

        let h0: Vec<Option<Var>> =
            sample.relview.nodes.iter().map(|n| Some(h0_map[&n.relation])).collect();
        let h_rt = relational_message_passing(
            tape,
            &self.store,
            &self.mp,
            AttentionConfig { enabled: self.cfg.ta, leaky_slope: self.cfg.leaky_slope },
            &sample.relview,
            &sample.schedule,
            &h0,
            self.cfg.dim,
        );

        let w = tape.param(&self.store, self.score_w);
        let mut fused = match self.ne_weights {
            Some(ne) => {
                let h_t0 = h0_map[&target.relation];
                let neighbors: Vec<Var> =
                    sample.disclosing_rels.iter().map(|r| h0_map[r]).collect();
                let h_d = disclosing_aggregate(
                    tape,
                    &self.store,
                    ne,
                    h_t0,
                    &neighbors,
                    self.cfg.leaky_slope,
                    self.cfg.dim,
                );
                match self.cfg.fusion {
                    Fusion::Sum => tape.add(h_rt, h_d),
                    Fusion::Concat => {
                        let cat = tape.concat(&[h_rt, h_d]);
                        let w3 =
                            tape.param(&self.store, self.fuse_w3.expect("concat fusion weight"));
                        tape.matvec(w3, cat)
                    }
                    Fusion::Gated => {
                        let cat = tape.concat(&[h_rt, h_d]);
                        let wg =
                            tape.param(&self.store, self.fuse_gate.expect("gated fusion weight"));
                        let logits = tape.matvec(wg, cat);
                        let g = tape.sigmoid(logits);
                        let ones = tape.constant(Tensor::full(&[self.cfg.dim], 1.0));
                        let g_inv = tape.sub(ones, g);
                        let a = tape.mul(g, h_rt);
                        let b = tape.mul(g_inv, h_d);
                        tape.add(a, b)
                    }
                }
            }
            None => h_rt,
        };
        if let Some(ent_w) = self.ent_w {
            let hist = sample.label_histogram.as_ref().expect("entity-clue histogram");
            let hist_v = tape.constant(Tensor::vector(hist.clone()));
            let wv = tape.param(&self.store, ent_w);
            let lin = tape.matvec(wv, hist_v);
            let clue = tape.relu(lin);
            fused = tape.add(fused, clue);
        }
        tape.dot(w, fused)
    }

    /// Eagerly score an already-prepared sample.
    pub fn score_sample(&self, sample: &SampleInput) -> f32 {
        let mut tape = Tape::new();
        let v = self.score_sample_on_tape(&mut tape, sample);
        tape.value(v).item()
    }
}

/// Errors from [`RmpiModel::from_store`]: the parameter store does not match
/// what the configuration says the model should look like.
#[derive(Debug)]
pub enum ModelAssemblyError {
    /// A parameter the config calls for is absent.
    MissingParam(String),
    /// A parameter exists but with the wrong shape.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Shape the config implies.
        expected: Vec<usize>,
        /// Shape found in the store.
        got: Vec<usize>,
    },
    /// The store holds a parameter the config does not call for.
    UnexpectedParam(String),
    /// Schema init requested but no schema vectors supplied.
    MissingSchemaVectors,
    /// Schema vectors do not cover the relation id space.
    SchemaVectorRows {
        /// Relations the model must cover.
        expected: usize,
        /// Rows the supplied matrix has.
        got: usize,
    },
}

impl fmt::Display for ModelAssemblyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelAssemblyError::MissingParam(name) => write!(f, "missing parameter {name:?}"),
            ModelAssemblyError::ShapeMismatch { name, expected, got } => {
                write!(f, "parameter {name:?} has shape {got:?}, config implies {expected:?}")
            }
            ModelAssemblyError::UnexpectedParam(name) => {
                write!(f, "unexpected parameter {name:?} for this configuration")
            }
            ModelAssemblyError::MissingSchemaVectors => {
                write!(f, "schema-initialised model needs its schema vectors")
            }
            ModelAssemblyError::SchemaVectorRows { expected, got } => {
                write!(f, "schema vectors cover {got} relations, model needs {expected}")
            }
        }
    }
}

impl std::error::Error for ModelAssemblyError {}

impl ScoringModel for RmpiModel {
    fn param_store(&self) -> &ParamStore {
        &self.store
    }

    fn param_store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn score_on_tape(
        &self,
        tape: &mut Tape,
        graph: &dyn GraphAccess,
        target: Triple,
        mode: Mode,
        rng: &mut StdRng,
    ) -> Var {
        let sample = prepare_sample(graph, target, &self.cfg, mode, rng);
        self.score_sample_on_tape(tape, &sample)
    }

    fn context_radius(&self) -> usize {
        self.cfg.hop
    }

    fn name(&self) -> String {
        self.cfg.variant_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RmpiConfig;
    use rmpi_kg::KnowledgeGraph;

    fn toy_graph() -> KnowledgeGraph {
        KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
            Triple::new(3u32, 4u32, 4u32),
        ])
    }

    fn small_cfg() -> RmpiConfig {
        RmpiConfig { dim: 8, edge_dropout: 0.0, ..Default::default() }
    }

    #[test]
    fn all_variants_produce_finite_scores() {
        let g = toy_graph();
        let target = Triple::new(0u32, 5u32, 3u32);
        for cfg in [
            small_cfg(),
            RmpiConfig { ne: true, ..small_cfg() },
            RmpiConfig { ta: true, ..small_cfg() },
            RmpiConfig { ne: true, ta: true, ..small_cfg() },
            RmpiConfig { ne: true, fusion: Fusion::Concat, ..small_cfg() },
        ] {
            let model = RmpiModel::new(cfg, 6, 0);
            let mut rng = StdRng::seed_from_u64(0);
            let s = model.score(&g, target, &mut rng);
            assert!(s.is_finite(), "{}: score {s}", model.name());
        }
    }

    #[test]
    fn eval_scores_are_deterministic() {
        let g = toy_graph();
        let target = Triple::new(0u32, 5u32, 3u32);
        let model = RmpiModel::new(RmpiConfig { ne: true, ta: true, ..small_cfg() }, 6, 1);
        let a = model.score(&g, target, &mut StdRng::seed_from_u64(0));
        let b = model.score(&g, target, &mut StdRng::seed_from_u64(99));
        assert_eq!(a, b, "eval forward must not depend on the rng");
    }

    #[test]
    fn unseen_relation_scores_without_panicking() {
        let g = toy_graph();
        // relation 5 never occurs in the graph: the fully-inductive case
        let target = Triple::new(0u32, 5u32, 3u32);
        let model = RmpiModel::new(small_cfg(), 6, 2);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(model.score(&g, target, &mut rng).is_finite());
    }

    #[test]
    #[should_panic(expected = "outside the model's id space")]
    fn out_of_space_relation_panics() {
        let g = toy_graph();
        let model = RmpiModel::new(small_cfg(), 6, 2);
        let mut rng = StdRng::seed_from_u64(3);
        model.score(&g, Triple::new(0u32, 17u32, 3u32), &mut rng);
    }

    #[test]
    fn schema_model_uses_onto_vectors() {
        let g = toy_graph();
        let target = Triple::new(0u32, 5u32, 3u32);
        let onto_a = Tensor::matrix(6, 10, vec![0.1; 60]);
        let onto_b = Tensor::matrix(6, 10, (0..60).map(|i| (i as f32 * 0.37).sin()).collect());
        let cfg = RmpiConfig { init: RelationInit::Schema, ..small_cfg() };
        let ma = RmpiModel::with_schema_vectors(cfg, onto_a, 7);
        let mb = RmpiModel::with_schema_vectors(cfg, onto_b, 7);
        let mut rng = StdRng::seed_from_u64(0);
        let sa = ma.score(&g, target, &mut rng);
        let sb = mb.score(&g, target, &mut rng);
        assert_ne!(sa, sb, "different schema vectors must change the score");
    }

    #[test]
    fn gradients_reach_scoring_head() {
        let g = toy_graph();
        let target = Triple::new(0u32, 5u32, 3u32);
        let mut model = RmpiModel::new(RmpiConfig { ne: true, ..small_cfg() }, 6, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut tape = Tape::new();
        let s = model.score_on_tape(&mut tape, &g, target, Mode::Eval, &mut rng);
        tape.backward(s, model.param_store_mut());
        let store = model.param_store();
        assert!(store.grad(store.get("score_w").unwrap()).norm() > 0.0);
        assert!(store.grad(store.get("rel_emb").unwrap()).norm() > 0.0);
        assert!(store.grad(store.get("ne_wd").unwrap()).norm() > 0.0);
    }

    #[test]
    fn gated_fusion_and_entity_clues_score_and_backprop() {
        let g = toy_graph();
        let target = Triple::new(0u32, 5u32, 3u32);
        let cfg = RmpiConfig { ne: true, fusion: Fusion::Gated, entity_clues: true, ..small_cfg() };
        let mut model = RmpiModel::new(cfg, 6, 8);
        assert_eq!(model.name(), "RMPI-NE(G)+EC");
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape = Tape::new();
        let s = model.score_on_tape(&mut tape, &g, target, Mode::Eval, &mut rng);
        assert!(tape.value(s).item().is_finite());
        tape.backward(s, model.param_store_mut());
        let store = model.param_store();
        assert!(store.grad(store.get("fuse_gate").unwrap()).norm() > 0.0);
        assert!(store.grad(store.get("ent_w").unwrap()).norm() > 0.0);
    }

    #[test]
    fn fusion_variants_differ() {
        let g = toy_graph();
        let target = Triple::new(0u32, 5u32, 3u32);
        let mut rng = StdRng::seed_from_u64(2);
        let mut scores = Vec::new();
        for fusion in [Fusion::Sum, Fusion::Concat, Fusion::Gated] {
            let cfg = RmpiConfig { ne: true, fusion, ..small_cfg() };
            let model = RmpiModel::new(cfg, 6, 9);
            scores.push(model.score(&g, target, &mut rng));
        }
        assert_ne!(scores[0], scores[1]);
        assert_ne!(scores[0], scores[2]);
    }

    #[test]
    fn prepared_sample_scores_match_direct_scoring() {
        let g = toy_graph();
        let target = Triple::new(0u32, 5u32, 3u32);
        let model = RmpiModel::new(RmpiConfig { ne: true, ta: true, ..small_cfg() }, 6, 11);
        let direct = model.score(&g, target, &mut StdRng::seed_from_u64(42));
        let sample = model.prepare_eval_sample(&g, target, 42);
        assert_eq!(model.score_sample(&sample), direct);
        // replaying the same sample (the cache-hit path) stays bit-identical
        assert_eq!(model.score_sample(&sample), direct);
    }

    #[test]
    fn from_store_reassembles_bitwise_identical_model() {
        let g = toy_graph();
        let target = Triple::new(0u32, 5u32, 3u32);
        for cfg in [
            small_cfg(),
            RmpiConfig { ne: true, ta: true, ..small_cfg() },
            RmpiConfig { ne: true, fusion: Fusion::Gated, entity_clues: true, ..small_cfg() },
        ] {
            let model = RmpiModel::new(cfg, 6, 13);
            let rebuilt = RmpiModel::from_store(cfg, 6, model.param_store().clone(), None)
                .expect("reassembly must accept the model's own store");
            let mut rng = StdRng::seed_from_u64(0);
            let a = model.score(&g, target, &mut rng);
            let b = rebuilt.score(&g, target, &mut StdRng::seed_from_u64(0));
            assert_eq!(a, b, "{}", model.name());
        }
    }

    #[test]
    fn from_store_rejects_mismatched_configs() {
        let base = RmpiModel::new(small_cfg(), 6, 0);
        // config wants NE weights the checkpoint lacks
        let err = RmpiModel::from_store(
            RmpiConfig { ne: true, ..small_cfg() },
            6,
            base.param_store().clone(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, ModelAssemblyError::MissingParam(_)), "{err}");
        // checkpoint has NE weights the config does not call for
        let ne_model = RmpiModel::new(RmpiConfig { ne: true, ..small_cfg() }, 6, 0);
        let err = RmpiModel::from_store(small_cfg(), 6, ne_model.param_store().clone(), None)
            .unwrap_err();
        assert!(matches!(err, ModelAssemblyError::UnexpectedParam(_)), "{err}");
        // wrong dimension
        let err = RmpiModel::from_store(
            RmpiConfig { dim: 16, ..small_cfg() },
            6,
            base.param_store().clone(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, ModelAssemblyError::ShapeMismatch { .. }), "{err}");
    }

    #[test]
    fn from_store_schema_model_needs_onto() {
        let cfg = RmpiConfig { init: RelationInit::Schema, ..small_cfg() };
        let onto = Tensor::matrix(6, 10, vec![0.2; 60]);
        let model = RmpiModel::with_schema_vectors(cfg, onto.clone(), 3);
        assert!(model.schema_vectors().is_some());
        let err = RmpiModel::from_store(cfg, 6, model.param_store().clone(), None).unwrap_err();
        assert!(matches!(err, ModelAssemblyError::MissingSchemaVectors), "{err}");
        let rebuilt =
            RmpiModel::from_store(cfg, 6, model.param_store().clone(), Some(onto)).unwrap();
        let g = toy_graph();
        let t = Triple::new(0u32, 5u32, 3u32);
        let a = model.score(&g, t, &mut StdRng::seed_from_u64(1));
        let b = rebuilt.score(&g, t, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_subgraph_still_scores_with_ne() {
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(5u32, 1u32, 6u32),
        ]);
        let target = Triple::new(0u32, 2u32, 5u32);
        let model = RmpiModel::new(RmpiConfig { ne: true, ..small_cfg() }, 4, 6);
        let mut rng = StdRng::seed_from_u64(7);
        assert!(model.score(&g, target, &mut rng).is_finite());
    }
}
