//! The assembled RMPI model.

use crate::config::{Fusion, RelationInit, RmpiConfig};
use crate::encode::RelationEncoder;
use crate::layers::{relational_message_passing, AttentionConfig, MessagePassingWeights};
use crate::ne::{disclosing_aggregate, NeWeights};
use crate::sample::prepare_sample;
use crate::traits::{Mode, ScoringModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rmpi_autograd::{init, ParamId, ParamStore, Tape, Tensor, Var};
use rmpi_kg::{KnowledgeGraph, RelationId, Triple};

/// RMPI with all its variants (base / NE / TA / NE-TA, SUM / CONC fusion,
/// random / schema initialisation) selected by [`RmpiConfig`].
#[derive(Clone, Debug)]
pub struct RmpiModel {
    cfg: RmpiConfig,
    store: ParamStore,
    encoder: RelationEncoder,
    mp: MessagePassingWeights,
    ne_weights: Option<NeWeights>,
    score_w: ParamId,
    fuse_w3: Option<ParamId>,
    fuse_gate: Option<ParamId>,
    ent_w: Option<ParamId>,
    num_relations: usize,
}

impl RmpiModel {
    /// Build a randomly initialised model over `num_relations` relation ids.
    ///
    /// Panics if `cfg.init` is [`RelationInit::Schema`] — use
    /// [`RmpiModel::with_schema_vectors`] for that path.
    pub fn new(cfg: RmpiConfig, num_relations: usize, seed: u64) -> Self {
        assert_eq!(cfg.init, RelationInit::Random, "schema init requires with_schema_vectors()");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let encoder = RelationEncoder::new_random(&mut store, num_relations, cfg.dim, &mut rng);
        Self::finish(cfg, store, encoder, num_relations, &mut rng)
    }

    /// Build a schema-enhanced model: initial relation features are
    /// projections (Eq. 10) of `onto` — a `(num_relations, onto_dim)` matrix
    /// of schema TransE vectors covering seen *and* unseen relations.
    pub fn with_schema_vectors(cfg: RmpiConfig, onto: Tensor, seed: u64) -> Self {
        assert_eq!(cfg.init, RelationInit::Schema, "config must request schema init");
        let num_relations = onto.rows();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let encoder = RelationEncoder::new_schema(&mut store, onto, &cfg, &mut rng);
        Self::finish(cfg, store, encoder, num_relations, &mut rng)
    }

    fn finish(
        cfg: RmpiConfig,
        mut store: ParamStore,
        encoder: RelationEncoder,
        num_relations: usize,
        rng: &mut StdRng,
    ) -> Self {
        let mp = MessagePassingWeights::new(&mut store, "mp", cfg.num_layers, cfg.dim, rng);
        let ne_weights = if cfg.ne { Some(NeWeights::new(&mut store, cfg.dim, rng)) } else { None };
        let fuse_w3 = if cfg.ne && cfg.fusion == Fusion::Concat {
            Some(store.create("fuse_w3", init::xavier_uniform(&[cfg.dim, 2 * cfg.dim], rng)))
        } else {
            None
        };
        let fuse_gate = if cfg.ne && cfg.fusion == Fusion::Gated {
            Some(store.create("fuse_gate", init::xavier_uniform(&[cfg.dim, 2 * cfg.dim], rng)))
        } else {
            None
        };
        let ent_w = if cfg.entity_clues {
            let hist_dim = crate::sample::label_histogram_len(cfg.hop + 1);
            Some(store.create("ent_w", init::xavier_uniform(&[cfg.dim, hist_dim], rng)))
        } else {
            None
        };
        let score_w = store.create("score_w", init::xavier_uniform(&[cfg.dim], rng));
        RmpiModel { cfg, store, encoder, mp, ne_weights, score_w, fuse_w3, fuse_gate, ent_w, num_relations }
    }

    /// The model configuration.
    pub fn config(&self) -> &RmpiConfig {
        &self.cfg
    }

    /// Size of the relation id space the model covers.
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }
}

impl ScoringModel for RmpiModel {
    fn param_store(&self) -> &ParamStore {
        &self.store
    }

    fn param_store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn score_on_tape(
        &self,
        tape: &mut Tape,
        graph: &KnowledgeGraph,
        target: Triple,
        mode: Mode,
        rng: &mut StdRng,
    ) -> Var {
        assert!(
            target.relation.index() < self.num_relations,
            "relation {} outside the model's id space ({})",
            target.relation,
            self.num_relations
        );
        let sample = prepare_sample(graph, target, &self.cfg, mode, rng);

        // every relation whose h^0 the pass needs
        let mut rels: Vec<RelationId> = sample.relview.nodes.iter().map(|n| n.relation).collect();
        rels.extend_from_slice(&sample.disclosing_rels);
        rels.push(target.relation);
        let h0_map = self.encoder.encode(tape, &self.store, &rels);

        let h0: Vec<Option<Var>> =
            sample.relview.nodes.iter().map(|n| Some(h0_map[&n.relation])).collect();
        let h_rt = relational_message_passing(
            tape,
            &self.store,
            &self.mp,
            AttentionConfig { enabled: self.cfg.ta, leaky_slope: self.cfg.leaky_slope },
            &sample.relview,
            &sample.schedule,
            &h0,
            self.cfg.dim,
        );

        let w = tape.param(&self.store, self.score_w);
        let mut fused = match self.ne_weights {
            Some(ne) => {
                let h_t0 = h0_map[&target.relation];
                let neighbors: Vec<Var> = sample.disclosing_rels.iter().map(|r| h0_map[r]).collect();
                let h_d = disclosing_aggregate(
                    tape,
                    &self.store,
                    ne,
                    h_t0,
                    &neighbors,
                    self.cfg.leaky_slope,
                    self.cfg.dim,
                );
                match self.cfg.fusion {
                    Fusion::Sum => tape.add(h_rt, h_d),
                    Fusion::Concat => {
                        let cat = tape.concat(&[h_rt, h_d]);
                        let w3 = tape.param(&self.store, self.fuse_w3.expect("concat fusion weight"));
                        tape.matvec(w3, cat)
                    }
                    Fusion::Gated => {
                        let cat = tape.concat(&[h_rt, h_d]);
                        let wg = tape.param(&self.store, self.fuse_gate.expect("gated fusion weight"));
                        let logits = tape.matvec(wg, cat);
                        let g = tape.sigmoid(logits);
                        let ones = tape.constant(Tensor::full(&[self.cfg.dim], 1.0));
                        let g_inv = tape.sub(ones, g);
                        let a = tape.mul(g, h_rt);
                        let b = tape.mul(g_inv, h_d);
                        tape.add(a, b)
                    }
                }
            }
            None => h_rt,
        };
        if let Some(ent_w) = self.ent_w {
            let hist = sample.label_histogram.as_ref().expect("entity-clue histogram");
            let hist_v = tape.constant(Tensor::vector(hist.clone()));
            let wv = tape.param(&self.store, ent_w);
            let lin = tape.matvec(wv, hist_v);
            let clue = tape.relu(lin);
            fused = tape.add(fused, clue);
        }
        tape.dot(w, fused)
    }

    fn name(&self) -> String {
        self.cfg.variant_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RmpiConfig;

    fn toy_graph() -> KnowledgeGraph {
        KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
            Triple::new(3u32, 4u32, 4u32),
        ])
    }

    fn small_cfg() -> RmpiConfig {
        RmpiConfig { dim: 8, edge_dropout: 0.0, ..Default::default() }
    }

    #[test]
    fn all_variants_produce_finite_scores() {
        let g = toy_graph();
        let target = Triple::new(0u32, 5u32, 3u32);
        for cfg in [
            small_cfg(),
            RmpiConfig { ne: true, ..small_cfg() },
            RmpiConfig { ta: true, ..small_cfg() },
            RmpiConfig { ne: true, ta: true, ..small_cfg() },
            RmpiConfig { ne: true, fusion: Fusion::Concat, ..small_cfg() },
        ] {
            let model = RmpiModel::new(cfg, 6, 0);
            let mut rng = StdRng::seed_from_u64(0);
            let s = model.score(&g, target, &mut rng);
            assert!(s.is_finite(), "{}: score {s}", model.name());
        }
    }

    #[test]
    fn eval_scores_are_deterministic() {
        let g = toy_graph();
        let target = Triple::new(0u32, 5u32, 3u32);
        let model = RmpiModel::new(RmpiConfig { ne: true, ta: true, ..small_cfg() }, 6, 1);
        let a = model.score(&g, target, &mut StdRng::seed_from_u64(0));
        let b = model.score(&g, target, &mut StdRng::seed_from_u64(99));
        assert_eq!(a, b, "eval forward must not depend on the rng");
    }

    #[test]
    fn unseen_relation_scores_without_panicking() {
        let g = toy_graph();
        // relation 5 never occurs in the graph: the fully-inductive case
        let target = Triple::new(0u32, 5u32, 3u32);
        let model = RmpiModel::new(small_cfg(), 6, 2);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(model.score(&g, target, &mut rng).is_finite());
    }

    #[test]
    #[should_panic(expected = "outside the model's id space")]
    fn out_of_space_relation_panics() {
        let g = toy_graph();
        let model = RmpiModel::new(small_cfg(), 6, 2);
        let mut rng = StdRng::seed_from_u64(3);
        model.score(&g, Triple::new(0u32, 17u32, 3u32), &mut rng);
    }

    #[test]
    fn schema_model_uses_onto_vectors() {
        let g = toy_graph();
        let target = Triple::new(0u32, 5u32, 3u32);
        let onto_a = Tensor::matrix(6, 10, vec![0.1; 60]);
        let onto_b = Tensor::matrix(6, 10, (0..60).map(|i| (i as f32 * 0.37).sin()).collect());
        let cfg = RmpiConfig { init: RelationInit::Schema, ..small_cfg() };
        let ma = RmpiModel::with_schema_vectors(cfg, onto_a, 7);
        let mb = RmpiModel::with_schema_vectors(cfg, onto_b, 7);
        let mut rng = StdRng::seed_from_u64(0);
        let sa = ma.score(&g, target, &mut rng);
        let sb = mb.score(&g, target, &mut rng);
        assert_ne!(sa, sb, "different schema vectors must change the score");
    }

    #[test]
    fn gradients_reach_scoring_head() {
        let g = toy_graph();
        let target = Triple::new(0u32, 5u32, 3u32);
        let mut model = RmpiModel::new(RmpiConfig { ne: true, ..small_cfg() }, 6, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut tape = Tape::new();
        let s = model.score_on_tape(&mut tape, &g, target, Mode::Eval, &mut rng);
        tape.backward(s, model.param_store_mut());
        let store = model.param_store();
        assert!(store.grad(store.get("score_w").unwrap()).norm() > 0.0);
        assert!(store.grad(store.get("rel_emb").unwrap()).norm() > 0.0);
        assert!(store.grad(store.get("ne_wd").unwrap()).norm() > 0.0);
    }

    #[test]
    fn gated_fusion_and_entity_clues_score_and_backprop() {
        let g = toy_graph();
        let target = Triple::new(0u32, 5u32, 3u32);
        let cfg = RmpiConfig { ne: true, fusion: Fusion::Gated, entity_clues: true, ..small_cfg() };
        let mut model = RmpiModel::new(cfg, 6, 8);
        assert_eq!(model.name(), "RMPI-NE(G)+EC");
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape = Tape::new();
        let s = model.score_on_tape(&mut tape, &g, target, Mode::Eval, &mut rng);
        assert!(tape.value(s).item().is_finite());
        tape.backward(s, model.param_store_mut());
        let store = model.param_store();
        assert!(store.grad(store.get("fuse_gate").unwrap()).norm() > 0.0);
        assert!(store.grad(store.get("ent_w").unwrap()).norm() > 0.0);
    }

    #[test]
    fn fusion_variants_differ() {
        let g = toy_graph();
        let target = Triple::new(0u32, 5u32, 3u32);
        let mut rng = StdRng::seed_from_u64(2);
        let mut scores = Vec::new();
        for fusion in [Fusion::Sum, Fusion::Concat, Fusion::Gated] {
            let cfg = RmpiConfig { ne: true, fusion, ..small_cfg() };
            let model = RmpiModel::new(cfg, 6, 9);
            scores.push(model.score(&g, target, &mut rng));
        }
        assert_ne!(scores[0], scores[1]);
        assert_ne!(scores[0], scores[2]);
    }

    #[test]
    fn empty_subgraph_still_scores_with_ne() {
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(5u32, 1u32, 6u32),
        ]);
        let target = Triple::new(0u32, 2u32, 5u32);
        let model = RmpiModel::new(RmpiConfig { ne: true, ..small_cfg() }, 4, 6);
        let mut rng = StdRng::seed_from_u64(7);
        assert!(model.score(&g, target, &mut rng).is_finite());
    }
}
