//! The RMPI model (paper §III) and a generic subgraph-model trainer.
//!
//! RMPI scores a candidate triple by reasoning over the *relation view* of
//! its enclosing subgraph:
//!
//! 1. extract the K-hop enclosing subgraph, transform it to a relation-view
//!    graph with the target triple as node 0 ([`sample`]);
//! 2. initialise every relation node from either a learnable embedding table
//!    or a projection of schema TransE vectors (Eq. 10, [`encode`]);
//! 3. run K pruned relational message passing layers with per-edge-type
//!    transforms and optional target-aware attention (Eq. 6–9, [`layers`]);
//! 4. optionally aggregate the one-hop disclosing neighbourhood to rescue
//!    empty subgraphs (Eq. 13–14, [`ne`]);
//! 5. score through a linear readout with SUM or CONC fusion
//!    (Eq. 11/15/16, inside [`model`]).
//!
//! Everything trainable is expressed through [`rmpi_autograd`], so one
//! [`trainer::train_model`] loop (margin ranking loss Eq. 12 + Adam) serves
//! RMPI and all baselines via the [`ScoringModel`] trait.

pub mod checkpoint;
pub mod config;
pub mod encode;
pub mod layers;
pub mod loss;
pub mod model;
pub mod ne;
pub mod sample;
pub mod stream;
pub mod trainer;
pub mod traits;

pub use checkpoint::{latest_checkpoint, load_checkpoint, save_checkpoint, TrainCheckpoint};
pub use config::{Fusion, RelationInit, RmpiConfig};
pub use model::{ModelAssemblyError, RmpiModel};
pub use sample::SampleInput;
pub use stream::{train_streaming, IndexPermutation, StreamReport};
pub use trainer::{
    train_model, CheckpointConfig, DivergencePolicy, TrainConfig, TrainEvent, TrainReport, Trainer,
};
pub use traits::{Mode, ScoringModel};
