//! Disclosing-subgraph neighbourhood aggregation — the NE module
//! (paper §III-F, Eq. 13–14).
//!
//! When the enclosing subgraph is empty there is nothing for message passing
//! to reason over; the one-hop *disclosing* neighbourhood of the target
//! relation node still carries discriminative signal (e.g. the relations a
//! plausible head entity participates in). The module attends over the
//! *initial* embeddings of those neighbour relations.

use rand::rngs::StdRng;
use rmpi_autograd::{init, ParamId, ParamStore, Tape, Tensor, Var};

/// The NE module's single linear transform `W^d`.
#[derive(Clone, Copy, Debug)]
pub struct NeWeights {
    /// `(dim, dim)` transform applied to every node.
    pub wd: ParamId,
}

impl NeWeights {
    /// Register `W^d`.
    pub fn new(store: &mut ParamStore, dim: usize, rng: &mut StdRng) -> Self {
        NeWeights { wd: store.create("ne_wd", init::xavier_uniform(&[dim, dim], rng)) }
    }
}

/// Eq. 13–14: attention-weighted aggregation of the disclosing one-hop
/// neighbour embeddings. `h_target0` and `neighbors0` are initial (`h^0`)
/// representations. Returns a zero vector when the neighbourhood is empty.
pub fn disclosing_aggregate(
    tape: &mut Tape,
    store: &ParamStore,
    weights: NeWeights,
    h_target0: Var,
    neighbors0: &[Var],
    leaky_slope: f32,
    dim: usize,
) -> Var {
    if neighbors0.is_empty() {
        return tape.constant(Tensor::zeros(&[dim]));
    }
    let wd = tape.param(store, weights.wd);
    let q = tape.matvec(wd, h_target0);
    let transformed: Vec<Var> = neighbors0.iter().map(|&n| tape.matvec(wd, n)).collect();
    let logits: Vec<Var> = transformed.iter().map(|&t| tape.dot(q, t)).collect();
    let cat = tape.concat(&logits);
    let act = tape.leaky_relu(cat, leaky_slope);
    let att = tape.softmax(act);
    let stacked = tape.stack(&transformed);
    let pooled = tape.vecmat(att, stacked);
    tape.relu(pooled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rmpi_autograd::gradcheck::check_gradients;

    #[test]
    fn empty_neighborhood_gives_zeros() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let w = NeWeights::new(&mut store, 4, &mut rng);
        let mut tape = Tape::new();
        let t0 = tape.constant(Tensor::vector(vec![1.0; 4]));
        let out = disclosing_aggregate(&mut tape, &store, w, t0, &[], 0.2, 4);
        assert_eq!(tape.value(out).data(), &[0.0; 4]);
    }

    #[test]
    fn output_is_nonnegative_dim_vector() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let w = NeWeights::new(&mut store, 5, &mut rng);
        let mut tape = Tape::new();
        let t0 = tape.constant(init::normal(&[5], 1.0, &mut rng));
        let n1 = tape.constant(init::normal(&[5], 1.0, &mut rng));
        let n2 = tape.constant(init::normal(&[5], 1.0, &mut rng));
        let out = disclosing_aggregate(&mut tape, &store, w, t0, &[n1, n2], 0.2, 5);
        let v = tape.value(out);
        assert_eq!(v.shape(), &[5]);
        assert!(v.data().iter().all(|&x| x >= 0.0), "ReLU output must be nonnegative");
    }

    #[test]
    fn attention_prefers_similar_neighbors() {
        // With W^d = I, a neighbour equal to the target should receive more
        // attention weight than an orthogonal one — verify via the pooled
        // output leaning towards the similar neighbour's direction.
        let mut store = ParamStore::new();
        let dim = 4;
        let eye = {
            let mut t = Tensor::zeros(&[dim, dim]);
            for i in 0..dim {
                t.row_mut(i)[i] = 1.0;
            }
            t
        };
        let wd = store.create("ne_wd", eye);
        let w = NeWeights { wd };
        let mut tape = Tape::new();
        let t0 = tape.constant(Tensor::vector(vec![2.0, 0.0, 0.0, 0.0]));
        let similar = tape.constant(Tensor::vector(vec![2.0, 0.0, 0.0, 0.0]));
        let orthogonal = tape.constant(Tensor::vector(vec![0.0, 2.0, 0.0, 0.0]));
        let out = disclosing_aggregate(&mut tape, &store, w, t0, &[similar, orthogonal], 0.2, dim);
        let v = tape.value(out);
        assert!(v.data()[0] > v.data()[1], "similar neighbour should dominate: {v:?}");
    }

    #[test]
    fn gradcheck_ne_module() {
        check_gradients(
            &[
                (
                    "ne_wd",
                    Tensor::matrix(3, 3, vec![0.5, -0.1, 0.2, 0.3, 0.4, -0.2, 0.1, 0.0, 0.6]),
                ),
                ("t0", Tensor::vector(vec![0.4, -0.3, 0.2])),
                ("n0", Tensor::vector(vec![0.1, 0.5, -0.4])),
                ("n1", Tensor::vector(vec![-0.2, 0.3, 0.7])),
            ],
            |tape, store| {
                let w = NeWeights { wd: store.get("ne_wd").unwrap() };
                let t0 = tape.param(store, store.get("t0").unwrap());
                let n0 = tape.param(store, store.get("n0").unwrap());
                let n1 = tape.param(store, store.get("n1").unwrap());
                let out = disclosing_aggregate(tape, store, w, t0, &[n0, n1], 0.2, 3);
                let s = tape.sigmoid(out);
                tape.sum(s)
            },
        );
    }
}
