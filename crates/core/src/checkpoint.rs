//! Crash-safe training checkpoints (`rmpi-ckpt v1`).
//!
//! A checkpoint is a **directory** holding everything needed to continue a
//! training run bit-identically:
//!
//! ```text
//! <root>/
//!   LATEST                 # name of the newest complete checkpoint dir
//!   ckpt-000003/           # written at the end of epoch 2 (next_epoch = 3)
//!     manifest.txt         # rmpi-ckpt v1: counters, RNG seed, Adam scalars
//!     params.ckpt          # live parameters        (rmpi-params v1)
//!     best.ckpt            # best-validation snapshot
//!     adam_m.ckpt          # Adam first moments, named like the parameters
//!     adam_v.ckpt          # Adam second moments
//! ```
//!
//! Durability protocol: every file is written with
//! [`rmpi_autograd::io::atomic_write_bytes`] semantics into a temp directory,
//! the directory is renamed to its final `ckpt-NNNNNN` name (a single atomic
//! step), and only then is `LATEST` atomically rewritten to point at it. A
//! crash at any instant leaves `LATEST` pointing at the previous complete
//! checkpoint; torn state is unreachable.
//!
//! All randomness in the trainer is derived from `(cfg.seed, stream, epoch,
//! position)` via [`rmpi_runtime::mix_seed`], so the RNG "stream state" a
//! resume needs is exactly `seed` + `next_epoch` — both in the manifest. The
//! manifest also pins the Adam learning rate, which divergence rollback may
//! have decayed below the configured value.

use rmpi_autograd::io::{atomic_write_bytes, load_params_file, save_params_file, CheckpointError};
use rmpi_autograd::optim::AdamState;
use rmpi_autograd::{ParamStore, Tensor};
use std::path::{Path, PathBuf};

/// Manifest header line.
const MAGIC: &str = "rmpi-ckpt v1";
/// Name of the pointer file selecting the newest complete checkpoint.
const LATEST: &str = "LATEST";
/// Prefix of checkpoint directory names.
const DIR_PREFIX: &str = "ckpt-";

/// Everything needed to continue a training run bit-identically from an
/// epoch boundary.
#[derive(Clone, Debug)]
pub struct TrainCheckpoint {
    /// First epoch the resumed run should execute (epochs `0..next_epoch`
    /// are complete).
    pub next_epoch: usize,
    /// The `TrainConfig::seed` of the run that wrote this checkpoint; resume
    /// refuses to continue under a different seed.
    pub seed: u64,
    /// Adam learning rate in effect (divergence rollback may have decayed it
    /// below the configured value).
    pub adam_lr: f32,
    /// Adam step count.
    pub adam_t: u64,
    /// Adam first moments, by parameter index.
    pub adam_m: Vec<Tensor>,
    /// Adam second moments, by parameter index.
    pub adam_v: Vec<Tensor>,
    /// Epoch whose parameters are the best-so-far snapshot.
    pub best_epoch: usize,
    /// Best validation accuracy seen so far (`-inf` before any validation).
    pub best_acc: f32,
    /// Epochs since the best accuracy improved (early-stopping state).
    pub since_best: usize,
    /// Mean margin loss per completed epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation accuracy per completed epoch.
    pub valid_accuracy: Vec<f32>,
    /// Batches dropped by the divergence guard so far.
    pub skipped_batches: usize,
    /// Batches whose gradients were sanitised by the divergence guard.
    pub sanitized_batches: usize,
    /// Divergence rollbacks performed so far.
    pub rollbacks: usize,
    /// Live parameters at the epoch boundary.
    pub params: ParamStore,
    /// Best-validation parameter snapshot.
    pub best_params: ParamStore,
}

impl TrainCheckpoint {
    /// The Adam moment buffers as an [`AdamState`] (cloning the tensors).
    pub fn adam_state(&self) -> AdamState {
        AdamState { t: self.adam_t, m: self.adam_m.clone(), v: self.adam_v.clone() }
    }
}

fn parse_err(line: usize, message: String) -> CheckpointError {
    CheckpointError::Parse { line, message }
}

/// Pack per-parameter moment tensors into a parameter store named like
/// `params`, padding with zeros for parameters the optimiser has not touched
/// yet (lazily-created parameters right before a checkpoint).
fn moments_to_store(params: &ParamStore, moments: &[Tensor]) -> ParamStore {
    let mut store = ParamStore::new();
    for (i, id) in params.ids().enumerate() {
        let tensor =
            moments.get(i).cloned().unwrap_or_else(|| Tensor::zeros(params.value(id).shape()));
        store.create(params.name(id), tensor);
    }
    store
}

/// Unpack a moment store back into an index-ordered tensor vector, checking
/// that its names mirror `params` exactly.
fn store_to_moments(
    params: &ParamStore,
    store: &ParamStore,
    what: &str,
) -> Result<Vec<Tensor>, CheckpointError> {
    if store.len() != params.len() {
        return Err(parse_err(
            0,
            format!(
                "{what} holds {} tensors but the checkpoint has {} parameters",
                store.len(),
                params.len()
            ),
        ));
    }
    let mut out = Vec::with_capacity(params.len());
    for id in params.ids() {
        let name = params.name(id);
        let mid = store.get(name).ok_or_else(|| {
            parse_err(0, format!("{what} is missing moments for parameter {name:?}"))
        })?;
        out.push(store.value(mid).clone());
    }
    Ok(out)
}

fn render_manifest(ckpt: &TrainCheckpoint) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    let mut kv = |k: &str, v: String| {
        out.push_str(k);
        out.push(' ');
        out.push_str(&v);
        out.push('\n');
    };
    kv("next_epoch", ckpt.next_epoch.to_string());
    kv("seed", ckpt.seed.to_string());
    kv("adam_lr", ckpt.adam_lr.to_string());
    kv("adam_t", ckpt.adam_t.to_string());
    kv("best_epoch", ckpt.best_epoch.to_string());
    kv("best_acc", ckpt.best_acc.to_string());
    kv("since_best", ckpt.since_best.to_string());
    kv("skipped_batches", ckpt.skipped_batches.to_string());
    kv("sanitized_batches", ckpt.sanitized_batches.to_string());
    kv("rollbacks", ckpt.rollbacks.to_string());
    let join = |xs: &[f32]| xs.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(" ");
    kv("epoch_losses", join(&ckpt.epoch_losses));
    kv("valid_accuracy", join(&ckpt.valid_accuracy));
    out
}

/// Write `ckpt` under `root` and flip `LATEST` to it. Returns the final
/// checkpoint directory. Crash-safe: a failure at any point leaves the
/// previous checkpoint (and `LATEST`) fully intact.
pub fn save_checkpoint<P: AsRef<Path>>(
    root: P,
    ckpt: &TrainCheckpoint,
) -> Result<PathBuf, CheckpointError> {
    let root = root.as_ref();
    std::fs::create_dir_all(root)?;
    let tmp = root.join(format!(".tmp-{DIR_PREFIX}{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp)?;
    let written = (|| -> Result<(), CheckpointError> {
        save_params_file(tmp.join("params.ckpt"), &ckpt.params)?;
        save_params_file(tmp.join("best.ckpt"), &ckpt.best_params)?;
        save_params_file(tmp.join("adam_m.ckpt"), &moments_to_store(&ckpt.params, &ckpt.adam_m))?;
        save_params_file(tmp.join("adam_v.ckpt"), &moments_to_store(&ckpt.params, &ckpt.adam_v))?;
        atomic_write_bytes(tmp.join("manifest.txt"), render_manifest(ckpt).as_bytes())?;
        Ok(())
    })();
    if let Err(e) = written {
        let _ = std::fs::remove_dir_all(&tmp);
        return Err(e);
    }
    let name = format!("{DIR_PREFIX}{:06}", ckpt.next_epoch);
    let target = root.join(&name);
    // replacing an existing same-epoch checkpoint (e.g. a re-run after
    // resume) — LATEST still points somewhere valid throughout
    let _ = std::fs::remove_dir_all(&target);
    if let Err(e) = std::fs::rename(&tmp, &target) {
        let _ = std::fs::remove_dir_all(&tmp);
        return Err(e.into());
    }
    atomic_write_bytes(root.join(LATEST), name.as_bytes())?;
    Ok(target)
}

/// The checkpoint directory `LATEST` points at, or `None` when `root` holds
/// no complete checkpoint yet.
pub fn latest_checkpoint<P: AsRef<Path>>(root: P) -> Result<Option<PathBuf>, CheckpointError> {
    let root = root.as_ref();
    let pointer = root.join(LATEST);
    let name = match std::fs::read_to_string(&pointer) {
        Ok(s) => s.trim().to_owned(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if name.is_empty() || name.contains(['/', '\\']) {
        return Err(parse_err(1, format!("LATEST holds an invalid checkpoint name {name:?}")));
    }
    let dir = root.join(&name);
    if !dir.is_dir() {
        return Err(parse_err(1, format!("LATEST points at missing checkpoint {name:?}")));
    }
    Ok(Some(dir))
}

/// Load one checkpoint directory (as returned by [`latest_checkpoint`]).
pub fn load_checkpoint<P: AsRef<Path>>(dir: P) -> Result<TrainCheckpoint, CheckpointError> {
    let dir = dir.as_ref();
    let manifest = std::fs::read_to_string(dir.join("manifest.txt"))?;
    let mut lines = manifest.lines();
    if lines.next() != Some(MAGIC) {
        return Err(CheckpointError::BadMagic(
            manifest.lines().next().unwrap_or_default().to_owned(),
        ));
    }

    let params = load_params_file(dir.join("params.ckpt"))?;
    let best_params = load_params_file(dir.join("best.ckpt"))?;
    let adam_m =
        store_to_moments(&params, &load_params_file(dir.join("adam_m.ckpt"))?, "adam_m.ckpt")?;
    let adam_v =
        store_to_moments(&params, &load_params_file(dir.join("adam_v.ckpt"))?, "adam_v.ckpt")?;

    let mut ckpt = TrainCheckpoint {
        next_epoch: 0,
        seed: 0,
        adam_lr: 0.0,
        adam_t: 0,
        adam_m,
        adam_v,
        best_epoch: 0,
        best_acc: f32::NEG_INFINITY,
        since_best: 0,
        epoch_losses: Vec::new(),
        valid_accuracy: Vec::new(),
        skipped_batches: 0,
        sanitized_batches: 0,
        rollbacks: 0,
        params,
        best_params,
    };
    let mut seen_next_epoch = false;
    for (i, line) in lines.enumerate() {
        let lineno = i + 2;
        if line.trim().is_empty() {
            continue;
        }
        let (key, rest) = line.split_once(' ').unwrap_or((line.trim(), ""));
        let rest = rest.trim();
        macro_rules! scalar {
            ($what:expr) => {
                rest.parse().map_err(|e| parse_err(lineno, format!("bad {}: {e}", $what)))?
            };
        }
        let floats = |what: &str| -> Result<Vec<f32>, CheckpointError> {
            rest.split_whitespace()
                .map(|p| p.parse().map_err(|e| parse_err(lineno, format!("bad {what} value: {e}"))))
                .collect()
        };
        match key {
            "next_epoch" => {
                ckpt.next_epoch = scalar!("next_epoch");
                seen_next_epoch = true;
            }
            "seed" => ckpt.seed = scalar!("seed"),
            "adam_lr" => ckpt.adam_lr = scalar!("adam_lr"),
            "adam_t" => ckpt.adam_t = scalar!("adam_t"),
            "best_epoch" => ckpt.best_epoch = scalar!("best_epoch"),
            "best_acc" => ckpt.best_acc = scalar!("best_acc"),
            "since_best" => ckpt.since_best = scalar!("since_best"),
            "skipped_batches" => ckpt.skipped_batches = scalar!("skipped_batches"),
            "sanitized_batches" => ckpt.sanitized_batches = scalar!("sanitized_batches"),
            "rollbacks" => ckpt.rollbacks = scalar!("rollbacks"),
            "epoch_losses" => ckpt.epoch_losses = floats("epoch_losses")?,
            "valid_accuracy" => ckpt.valid_accuracy = floats("valid_accuracy")?,
            other => return Err(parse_err(lineno, format!("unknown manifest key {other:?}"))),
        }
    }
    if !seen_next_epoch {
        return Err(parse_err(0, "manifest is missing next_epoch".into()));
    }
    if ckpt.epoch_losses.len() != ckpt.next_epoch || ckpt.valid_accuracy.len() != ckpt.next_epoch {
        return Err(parse_err(
            0,
            format!(
                "manifest histories ({} losses, {} accuracies) do not cover {} completed epochs",
                ckpt.epoch_losses.len(),
                ckpt.valid_accuracy.len(),
                ckpt.next_epoch
            ),
        ));
    }
    Ok(ckpt)
}

/// Delete the oldest complete checkpoints so at most `keep` remain (the one
/// `LATEST` points at is never deleted). Best-effort: I/O failures here must
/// never interrupt training.
pub fn prune_checkpoints<P: AsRef<Path>>(root: P, keep: usize) {
    let root = root.as_ref();
    let keep = keep.max(1);
    let latest = latest_checkpoint(root).ok().flatten();
    let Ok(entries) = std::fs::read_dir(root) else { return };
    let mut dirs: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.is_dir()
                && p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with(DIR_PREFIX))
        })
        .collect();
    dirs.sort();
    if dirs.len() <= keep {
        return;
    }
    let excess = dirs.len() - keep;
    for dir in dirs.into_iter().take(excess) {
        if Some(&dir) == latest.as_ref() {
            continue;
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rmpi_autograd::init;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rmpi-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_checkpoint() -> TrainCheckpoint {
        let mut rng = StdRng::seed_from_u64(7);
        let mut params = ParamStore::new();
        params.create("w", init::xavier_uniform(&[3, 4], &mut rng));
        params.create("b", init::normal(&[5], 0.3, &mut rng));
        let best_params = params.clone();
        let adam_m: Vec<Tensor> =
            params.ids().map(|id| Tensor::zeros(params.value(id).shape())).collect();
        let mut adam_v = adam_m.clone();
        adam_v[0].data_mut()[0] = 0.25;
        TrainCheckpoint {
            next_epoch: 3,
            seed: 17,
            adam_lr: 5e-4,
            adam_t: 42,
            adam_m,
            adam_v,
            best_epoch: 1,
            best_acc: 0.8125,
            since_best: 1,
            epoch_losses: vec![0.5, 0.375, 0.25],
            valid_accuracy: vec![0.5, 0.8125, 0.75],
            skipped_batches: 2,
            sanitized_batches: 1,
            rollbacks: 0,
            params,
            best_params,
        }
    }

    #[test]
    fn save_load_roundtrip_is_exact() {
        let _lock = rmpi_testutil::failpoint::exclusive();
        let root = tmp_root("rt");
        let ckpt = sample_checkpoint();
        let dir = save_checkpoint(&root, &ckpt).unwrap();
        assert_eq!(latest_checkpoint(&root).unwrap().as_deref(), Some(dir.as_path()));
        let loaded = load_checkpoint(&dir).unwrap();
        assert_eq!(loaded.next_epoch, 3);
        assert_eq!(loaded.seed, 17);
        assert_eq!(loaded.adam_lr, 5e-4);
        assert_eq!(loaded.adam_t, 42);
        assert_eq!(loaded.best_epoch, 1);
        assert_eq!(loaded.best_acc, 0.8125);
        assert_eq!(loaded.since_best, 1);
        assert_eq!(loaded.epoch_losses, ckpt.epoch_losses);
        assert_eq!(loaded.valid_accuracy, ckpt.valid_accuracy);
        assert_eq!((loaded.skipped_batches, loaded.sanitized_batches, loaded.rollbacks), (2, 1, 0));
        for (id, lid) in ckpt.params.ids().zip(loaded.params.ids()) {
            assert_eq!(ckpt.params.name(id), loaded.params.name(lid), "parameter order preserved");
            assert_eq!(ckpt.params.value(id), loaded.params.value(lid));
        }
        assert_eq!(loaded.adam_v[0].data()[0], 0.25);
        assert_eq!(loaded.adam_m.len(), 2);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn neg_infinity_best_acc_roundtrips() {
        let _lock = rmpi_testutil::failpoint::exclusive();
        let root = tmp_root("inf");
        let mut ckpt = sample_checkpoint();
        ckpt.best_acc = f32::NEG_INFINITY;
        let dir = save_checkpoint(&root, &ckpt).unwrap();
        assert_eq!(load_checkpoint(dir).unwrap().best_acc, f32::NEG_INFINITY);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn empty_root_has_no_latest() {
        let root = tmp_root("empty");
        assert!(latest_checkpoint(&root).unwrap().is_none());
    }

    #[test]
    fn failed_save_leaves_previous_checkpoint_authoritative() {
        use rmpi_testutil::failpoint::{self, Action};
        let _lock = failpoint::exclusive();
        let root = tmp_root("crash");
        let mut ckpt = sample_checkpoint();
        ckpt.next_epoch = 1;
        ckpt.epoch_losses.truncate(1);
        ckpt.valid_accuracy.truncate(1);
        let first = save_checkpoint(&root, &ckpt).unwrap();

        // crash while writing the *second* file of the next checkpoint
        ckpt.next_epoch = 2;
        ckpt.epoch_losses = vec![0.5, 0.4];
        ckpt.valid_accuracy = vec![0.5, 0.6];
        failpoint::arm_after(
            rmpi_autograd::io::WRITE_FAILPOINT,
            Action::IoError("disk died mid-checkpoint".into()),
            1,
        );
        let err = save_checkpoint(&root, &ckpt).unwrap_err();
        failpoint::disarm_all();
        assert!(err.to_string().contains("disk died"), "{err}");

        // LATEST still points at the complete first checkpoint, which loads
        assert_eq!(latest_checkpoint(&root).unwrap().as_deref(), Some(first.as_path()));
        assert_eq!(load_checkpoint(&first).unwrap().next_epoch, 1);
        // the aborted temp directory is gone
        let leftovers: Vec<_> = std::fs::read_dir(&root)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "aborted temp dirs must be cleaned up");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn prune_keeps_newest_and_latest() {
        let _lock = rmpi_testutil::failpoint::exclusive();
        let root = tmp_root("prune");
        let mut ckpt = sample_checkpoint();
        for epoch in 1..=4 {
            ckpt.next_epoch = epoch;
            ckpt.epoch_losses = vec![0.5; epoch];
            ckpt.valid_accuracy = vec![0.5; epoch];
            save_checkpoint(&root, &ckpt).unwrap();
        }
        prune_checkpoints(&root, 2);
        let mut names: Vec<String> = std::fs::read_dir(&root)
            .unwrap()
            .flatten()
            .filter(|e| e.path().is_dir())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(names, vec!["ckpt-000003", "ckpt-000004"]);
        assert!(latest_checkpoint(&root).unwrap().unwrap().ends_with("ckpt-000004"));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_rejected_with_line_numbers() {
        let _lock = rmpi_testutil::failpoint::exclusive();
        let root = tmp_root("corrupt");
        let dir = save_checkpoint(&root, &sample_checkpoint()).unwrap();
        let manifest = dir.join("manifest.txt");
        let text = std::fs::read_to_string(&manifest).unwrap();
        std::fs::write(&manifest, text.replace("adam_t 42", "adam_t forty-two")).unwrap();
        let err = load_checkpoint(&dir).unwrap_err();
        assert!(matches!(err, CheckpointError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("adam_t"), "{err}");

        std::fs::write(&manifest, "not a manifest\n").unwrap();
        assert!(matches!(load_checkpoint(&dir).unwrap_err(), CheckpointError::BadMagic(_)));
        std::fs::remove_dir_all(&root).unwrap();
    }
}
