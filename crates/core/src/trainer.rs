//! Generic training loop for subgraph scoring models (paper §III-E).
//!
//! Mini-batching works by gradient accumulation: each sample builds its own
//! tape (positive + corrupted negative + margin ranking loss), backward
//! writes into a per-sample [`rmpi_autograd::GradBuffer`], and Adam steps
//! once per batch. Validation tracks the pairwise ranking accuracy on held-
//! out triples; the best parameter snapshot is restored at the end.
//!
//! # Data parallelism
//!
//! Each minibatch is sharded across a [`ThreadPool`] ([`TrainConfig::threads`]
//! workers): every worker runs forward + backward for its samples against the
//! shared read-only model and returns `(loss, GradBuffer)` per sample. The
//! main thread then folds the buffers into the store *in sample-index order*,
//! so the sequence of floating-point additions is identical to the sequential
//! loop's, and steps the optimiser once. All randomness (negative sampling,
//! dropout, validation corruption) comes from per-sample RNGs seeded by
//! [`mix_seed`]`(cfg.seed, stream, sample_key)` — a function of the sample's
//! position, never of the thread that happens to run it. Together these make
//! training **bit-identical across thread counts** (see `DESIGN.md`,
//! "Threading model").

use crate::loss::margin_ranking_loss;
use crate::traits::{Mode, ScoringModel};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rmpi_autograd::optim::Adam;
use rmpi_autograd::{GradBuffer, Tape};
use rmpi_kg::{KnowledgeGraph, Triple};
use rmpi_runtime::{mix_seed, ThreadPool};
use rmpi_subgraph::NegativeSampler;

/// RNG stream ids for [`mix_seed`] — one per independent use of randomness,
/// so draws in one stream can never alias draws in another.
mod stream {
    /// Per-epoch shuffling of the training targets.
    pub const SHUFFLE: u64 = 1;
    /// Per-sample training randomness (negative sampling + dropout).
    pub const TRAIN: u64 = 2;
    /// Per-epoch shuffling of the validation subset.
    pub const VALID_SHUFFLE: u64 = 3;
    /// Per-sample validation randomness (negative sampling).
    pub const VALID: u64 = 4;
}

/// Pack `(epoch, position)` into one 64-bit per-sample key. Positions are
/// bounded by the dataset size, far below 2^40.
fn sample_key(epoch: usize, pos: usize) -> u64 {
    ((epoch as u64) << 40) | pos as u64
}

/// Training hyper-parameters. Defaults follow §IV-B: Adam lr 1e-3, batch 16,
/// margin 10.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Passes over the (capped) target set.
    pub epochs: usize,
    /// Samples per optimiser step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Ranking margin γ.
    pub margin: f32,
    /// Cap on targets used per epoch (0 = all).
    pub max_samples_per_epoch: usize,
    /// Global gradient-norm clip (0 = off).
    pub grad_clip: f32,
    /// Early-stopping patience in epochs (0 = off).
    pub patience: usize,
    /// Cap on validation triples scored per epoch (0 = all).
    pub max_valid_samples: usize,
    /// RNG seed (shuffling, negative sampling, dropout).
    pub seed: u64,
    /// Worker threads for batch processing and validation scoring
    /// (`0` = one per available core). The result is bit-identical for every
    /// value — this knob trades wall-clock time only.
    pub threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 16,
            lr: 1e-3,
            margin: 10.0,
            max_samples_per_epoch: 2000,
            grad_clip: 5.0,
            patience: 3,
            max_valid_samples: 200,
            seed: 0,
            threads: 1,
        }
    }
}

/// What happened during training.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Mean margin loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation pairwise ranking accuracy per epoch (positive scored above
    /// its corrupted negative).
    pub valid_accuracy: Vec<f32>,
    /// Epoch whose parameters were kept (0-based).
    pub best_epoch: usize,
}

impl TrainReport {
    /// Final (restored) validation accuracy.
    pub fn best_accuracy(&self) -> f32 {
        self.valid_accuracy.get(self.best_epoch).copied().unwrap_or(0.0)
    }
}

/// Train `model` on `targets` against `graph`; `valid` steers early stopping.
///
/// With `cfg.threads > 1` each minibatch is sharded across a scoped worker
/// pool; the result is bit-identical to `threads == 1` (see module docs).
pub fn train_model<M: ScoringModel + Sync>(
    model: &mut M,
    graph: &KnowledgeGraph,
    targets: &[Triple],
    valid: &[Triple],
    cfg: &TrainConfig,
) -> TrainReport {
    assert!(!targets.is_empty(), "no training targets");
    assert!(cfg.batch_size > 0, "batch_size must be positive");
    let sampler = NegativeSampler::from_graph(graph);
    let pool = ThreadPool::new(cfg.threads);
    let mut adam = Adam::new(cfg.lr);
    let mut report = TrainReport::default();
    let mut best_acc = f32::NEG_INFINITY;
    let mut best_store = model.param_store().clone();
    let mut since_best = 0usize;

    for epoch in 0..cfg.epochs {
        let mut order: Vec<Triple> = targets.to_vec();
        let mut shuffle_rng = StdRng::seed_from_u64(mix_seed(cfg.seed, stream::SHUFFLE, epoch as u64));
        order.shuffle(&mut shuffle_rng);
        if cfg.max_samples_per_epoch > 0 {
            order.truncate(cfg.max_samples_per_epoch);
        }

        let mut epoch_loss = 0.0f64;
        model.param_store_mut().zero_grad();
        for (batch_idx, batch) in order.chunks(cfg.batch_size).enumerate() {
            let base = batch_idx * cfg.batch_size;
            // Fan the batch out: each worker reuses one tape across its shard
            // and returns (loss, gradient buffer) per sample. The model and
            // graph are only read.
            let results: Vec<(f32, GradBuffer)> = {
                let model: &M = model;
                pool.map_init(batch.len(), Tape::new, |tape, i| {
                    let pos = batch[i];
                    let mut rng =
                        StdRng::seed_from_u64(mix_seed(cfg.seed, stream::TRAIN, sample_key(epoch, base + i)));
                    let neg = sampler.corrupt(pos, graph, &mut rng);
                    tape.reset();
                    let sp = model.score_on_tape(tape, graph, pos, Mode::Train, &mut rng);
                    let sn = model.score_on_tape(tape, graph, neg, Mode::Train, &mut rng);
                    let loss = margin_ranking_loss(tape, sp, sn, cfg.margin);
                    let mut buf = GradBuffer::new();
                    tape.backward_into(loss, &mut buf);
                    (tape.value(loss).item(), buf)
                })
            };
            // Ordered reduce: fold per-sample buffers into the store in
            // sample-index order — the same addition sequence as the
            // sequential loop, hence bit-identical parameters.
            for (loss, buf) in &results {
                epoch_loss += *loss as f64;
                buf.add_to(model.param_store_mut());
            }
            step(model, &mut adam, cfg, batch.len());
        }
        report.epoch_losses.push((epoch_loss / order.len() as f64) as f32);

        let acc = validation_accuracy(model, graph, valid, cfg, &pool, epoch as u64);
        report.valid_accuracy.push(acc);
        if acc > best_acc {
            best_acc = acc;
            best_store = model.param_store().clone();
            report.best_epoch = epoch;
            since_best = 0;
        } else {
            since_best += 1;
            if cfg.patience > 0 && since_best >= cfg.patience {
                break;
            }
        }
    }
    *model.param_store_mut() = best_store;
    report
}

fn step<M: ScoringModel>(model: &mut M, adam: &mut Adam, cfg: &TrainConfig, batch_len: usize) {
    let store = model.param_store_mut();
    // average over the batch
    store.scale_grads(1.0 / batch_len as f32);
    if cfg.grad_clip > 0.0 {
        let norm = store.grad_norm();
        if norm > cfg.grad_clip {
            store.scale_grads(cfg.grad_clip / norm);
        }
    }
    adam.step(store);
    store.zero_grad();
}

/// Pairwise ranking accuracy on validation triples: fraction where the
/// positive outscores one corrupted negative. Returns 0 when `valid` is
/// empty (every epoch ties and the last snapshot wins).
///
/// Candidate scoring fans out over the pool; each win is an integer, so the
/// sum is order-independent and the result thread-count-invariant.
fn validation_accuracy<M: ScoringModel + Sync>(
    model: &M,
    graph: &KnowledgeGraph,
    valid: &[Triple],
    cfg: &TrainConfig,
    pool: &ThreadPool,
    epoch: u64,
) -> f32 {
    if valid.is_empty() {
        return 0.0;
    }
    let sampler = NegativeSampler::from_graph(graph);
    let mut subset: Vec<Triple> = valid.to_vec();
    let mut shuffle_rng = StdRng::seed_from_u64(mix_seed(cfg.seed, stream::VALID_SHUFFLE, epoch));
    subset.shuffle(&mut shuffle_rng);
    if cfg.max_valid_samples > 0 {
        subset.truncate(cfg.max_valid_samples);
    }
    let wins: u32 = pool
        .map_indexed(subset.len(), |i| {
            let pos = subset[i];
            let mut rng =
                StdRng::seed_from_u64(mix_seed(cfg.seed, stream::VALID, sample_key(epoch as usize, i)));
            let neg = sampler.corrupt(pos, graph, &mut rng);
            u32::from(model.score(graph, pos, &mut rng) > model.score(graph, neg, &mut rng))
        })
        .iter()
        .sum();
    wins as f32 / subset.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RmpiConfig;
    use crate::model::RmpiModel;
    use rmpi_datasets::world::{GraphGenConfig, WorldConfig};
    use rmpi_datasets::World;

    /// A tiny planted-rule world where composition conclusions are perfectly
    /// learnable from the enclosing subgraph.
    fn tiny_data() -> (KnowledgeGraph, Vec<Triple>, Vec<Triple>) {
        let world = World::new(WorldConfig {
            comp_groups: 2,
            long_groups: 0,
            inv_groups: 1,
            sym_groups: 0,
            sub_groups: 0,
            noise_relations: 0,
            ..Default::default()
        });
        let groups: Vec<usize> = (0..world.groups().len()).collect();
        let triples = world.generate_triples(
            &groups,
            &GraphGenConfig { num_entities: 120, num_base_triples: 420, noise_frac: 0.0, seed: 5, ..Default::default() },
        );
        let split = rmpi_kg::split_triples(&triples, 0.15, 0.0, 3);
        let graph = KnowledgeGraph::from_triples(split.train.clone());
        (graph, split.train, split.valid)
    }

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let (graph, targets, valid) = tiny_data();
        let mut model = RmpiModel::new(RmpiConfig { dim: 16, edge_dropout: 0.2, ..Default::default() }, 8, 0);
        let cfg = TrainConfig {
            epochs: 4,
            max_samples_per_epoch: 250,
            max_valid_samples: 80,
            patience: 0,
            seed: 1,
            ..Default::default()
        };
        let report = train_model(&mut model, &graph, &targets, &valid, &cfg);
        assert_eq!(report.epoch_losses.len(), 4);
        assert!(
            report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap(),
            "loss should drop: {:?}",
            report.epoch_losses
        );
        assert!(
            report.best_accuracy() > 0.6,
            "trained model should beat chance on validation: {:?}",
            report.valid_accuracy
        );
    }

    #[test]
    fn early_stopping_respects_patience() {
        let (graph, targets, valid) = tiny_data();
        let mut model = RmpiModel::new(RmpiConfig { dim: 8, ..Default::default() }, 8, 2);
        let cfg = TrainConfig {
            epochs: 50,
            max_samples_per_epoch: 40,
            max_valid_samples: 30,
            patience: 2,
            seed: 2,
            ..Default::default()
        };
        let report = train_model(&mut model, &graph, &targets, &valid, &cfg);
        assert!(report.epoch_losses.len() < 50, "patience should stop early");
    }

    #[test]
    fn best_params_are_restored() {
        let (graph, targets, valid) = tiny_data();
        let mut model = RmpiModel::new(RmpiConfig { dim: 8, ..Default::default() }, 8, 3);
        let cfg = TrainConfig {
            epochs: 3,
            max_samples_per_epoch: 60,
            max_valid_samples: 40,
            patience: 0,
            seed: 3,
            ..Default::default()
        };
        let report = train_model(&mut model, &graph, &targets, &valid, &cfg);
        // re-evaluating with restored params reproduces the best epoch's accuracy signal
        let acc = validation_accuracy(&model, &graph, &valid, &cfg, &ThreadPool::sequential(), 99);
        assert!(
            acc >= report.best_accuracy() - 0.25,
            "restored accuracy {acc} far below best {}",
            report.best_accuracy()
        );
    }

    #[test]
    #[should_panic(expected = "no training targets")]
    fn empty_targets_rejected() {
        let (graph, _, _) = tiny_data();
        let mut model = RmpiModel::new(RmpiConfig::default(), 8, 0);
        train_model(&mut model, &graph, &[], &[], &TrainConfig::default());
    }
}
