//! Generic training loop for subgraph scoring models (paper §III-E).
//!
//! Mini-batching works by gradient accumulation: each sample builds its own
//! tape (positive + corrupted negative + margin ranking loss), backward
//! writes into a per-sample [`rmpi_autograd::GradBuffer`], and Adam steps
//! once per batch. Validation tracks the pairwise ranking accuracy on held-
//! out triples; the best parameter snapshot is restored at the end.
//!
//! # Data parallelism
//!
//! Each minibatch is sharded across a [`ThreadPool`] ([`TrainConfig::threads`]
//! workers): every worker runs forward + backward for its samples against the
//! shared read-only model and returns `(loss, GradBuffer)` per sample. The
//! main thread then folds the buffers into the store *in sample-index order*,
//! so the sequence of floating-point additions is identical to the sequential
//! loop's, and steps the optimiser once. All randomness (negative sampling,
//! dropout, validation corruption) comes from per-sample RNGs seeded by
//! [`mix_seed`]`(cfg.seed, stream, sample_key)` — a function of the sample's
//! position, never of the thread that happens to run it. Together these make
//! training **bit-identical across thread counts** (see `DESIGN.md`,
//! "Threading model").
//!
//! # Fault tolerance
//!
//! [`Trainer`] wraps the same loop with three safety layers (`DESIGN.md` §9):
//!
//! * **Crash-safe checkpoints** — [`Trainer::with_checkpointing`] writes a
//!   [`crate::checkpoint::TrainCheckpoint`] at epoch boundaries.
//!   Because every random draw is keyed by `(seed, stream, epoch, position)`,
//!   an epoch boundary pins the *entire* RNG state: resuming via
//!   [`Trainer::resume_from`] and replaying the interrupted epoch is
//!   bit-identical to a run that never crashed, at any thread count.
//! * **Divergence guards** — after folding each batch's gradients, the loop
//!   checks the batch losses and the global gradient norm for non-finite
//!   values and applies the configured [`DivergencePolicy`].
//! * **Panic isolation** — batch fan-out uses
//!   [`ThreadPool::try_map_init`]; a worker panic fails only that batch
//!   (reported as [`TrainEvent::BatchFailed`]) and training continues.
//!
//! Progress and every fault decision surface through the [`TrainEvent`]
//! callback channel ([`Trainer::on_event`]).

use crate::checkpoint::{latest_checkpoint, load_checkpoint, save_checkpoint, TrainCheckpoint};
use crate::loss::margin_ranking_loss;
use crate::traits::{Mode, ScoringModel};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rmpi_autograd::io::CheckpointError;
use rmpi_autograd::optim::{Adam, AdamState};
use rmpi_autograd::{BackwardScratch, GradBuffer, ParamStore, Tape, Tensor};
use rmpi_kg::{CsrGraph, KnowledgeGraph, Triple};
use rmpi_obs::{Counter, Histogram};
use rmpi_runtime::{mix_seed, PoolError, ThreadPool};
use rmpi_subgraph::NegativeSampler;
use rmpi_testutil::failpoint;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Instant;

/// Failpoint hit once per training sample with the sample's loss value; the
/// `nan` action turns the loss non-finite (fault-injection tests).
pub const LOSS_FAILPOINT: &str = "trainer::loss";
/// Failpoint hit once per batch after gradients are folded; the `nan` action
/// poisons one gradient entry (fault-injection tests).
pub const GRAD_FAILPOINT: &str = "trainer::grad";

/// RNG stream ids for [`mix_seed`] — one per independent use of randomness,
/// so draws in one stream can never alias draws in another. Shared with the
/// store-backed loop in [`crate::stream`] so that a sample at the same
/// `(epoch, position)` draws identically under either backend.
pub(crate) mod rng_stream {
    /// Per-epoch shuffling of the training targets.
    pub const SHUFFLE: u64 = 1;
    /// Per-sample training randomness (negative sampling + dropout).
    pub const TRAIN: u64 = 2;
    /// Per-epoch shuffling of the validation subset.
    pub const VALID_SHUFFLE: u64 = 3;
    /// Per-sample validation randomness (negative sampling).
    pub const VALID: u64 = 4;
}

/// Pack `(epoch, position)` into one 64-bit per-sample key. Positions are
/// bounded by the dataset size, far below 2^40.
pub(crate) fn sample_key(epoch: usize, pos: usize) -> u64 {
    ((epoch as u64) << 40) | pos as u64
}

/// Handles into the global metrics registry for the trainer's phases and
/// fault counters, resolved once per process so the hot loop pays only
/// relaxed atomic recording (see `DESIGN.md` §10). Purely observational:
/// nothing here feeds back into computation, so training stays bit-identical
/// across thread counts with instrumentation on.
struct TrainerMetrics {
    /// `trainer.forward.us` — per-sample forward passes (positive +
    /// negative scoring and the loss node).
    forward: Histogram,
    /// `trainer.backward.us` — per-sample backward passes.
    backward: Histogram,
    /// `trainer.optim_step.us` — per-batch Adam steps (incl. clipping).
    optim_step: Histogram,
    /// `trainer.checkpoint_write.us` — checkpoint save + prune.
    checkpoint_write: Histogram,
    /// `trainer.validation.us` — per-epoch validation scoring.
    validation: Histogram,
    /// `trainer.epoch.us` — whole epochs, wall clock.
    epoch: Histogram,
    /// `trainer.epochs.count` — epochs completed.
    epochs: Counter,
    /// `trainer.batches.count` — batches processed (any outcome).
    batches: Counter,
    /// `trainer.samples.count` — samples whose gradients were computed.
    samples: Counter,
    /// `trainer.batches_skipped.count` — divergence-guard skips.
    batches_skipped: Counter,
    /// `trainer.batches_failed.count` — worker-panic batch drops.
    batches_failed: Counter,
    /// `trainer.batches_sanitized.count` — clip-and-warn sanitisations.
    batches_sanitized: Counter,
    /// `trainer.nonfinite.count` — non-finite loss/grad-norm detections.
    nonfinite: Counter,
    /// `trainer.rollbacks.count` — divergence rollbacks performed.
    rollbacks: Counter,
}

fn trainer_metrics() -> &'static TrainerMetrics {
    static METRICS: OnceLock<TrainerMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = rmpi_obs::global();
        TrainerMetrics {
            forward: reg.histogram("trainer.forward.us"),
            backward: reg.histogram("trainer.backward.us"),
            optim_step: reg.histogram("trainer.optim_step.us"),
            checkpoint_write: reg.histogram("trainer.checkpoint_write.us"),
            validation: reg.histogram("trainer.validation.us"),
            epoch: reg.histogram("trainer.epoch.us"),
            epochs: reg.counter("trainer.epochs.count"),
            batches: reg.counter("trainer.batches.count"),
            samples: reg.counter("trainer.samples.count"),
            batches_skipped: reg.counter("trainer.batches_skipped.count"),
            batches_failed: reg.counter("trainer.batches_failed.count"),
            batches_sanitized: reg.counter("trainer.batches_sanitized.count"),
            nonfinite: reg.counter("trainer.nonfinite.count"),
            rollbacks: reg.counter("trainer.rollbacks.count"),
        }
    })
}

/// What to do when a batch produces a non-finite loss or gradient norm.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum DivergencePolicy {
    /// Drop the poisoned batch's gradients and move on (default).
    #[default]
    SkipBatch,
    /// Zero the non-finite gradient entries, then step with what remains.
    ClipAndWarn,
    /// Restore parameters and optimiser state from the last epoch boundary
    /// and multiply the learning rate by `lr_decay`. Falls back to skipping
    /// the batch when no boundary snapshot exists yet.
    Rollback {
        /// Multiplied into the Adam learning rate on every rollback.
        lr_decay: f32,
    },
    /// Stop training immediately; the best snapshot so far is restored.
    Abort,
}

/// Progress and fault notifications emitted by [`Trainer::train`].
#[derive(Clone, Debug)]
pub enum TrainEvent {
    /// Training continued from a checkpoint; `epoch` is the first epoch run.
    Resumed {
        /// First epoch the resumed run executes.
        epoch: usize,
    },
    /// A batch finished (stepped, skipped, sanitised or rolled back).
    BatchEnd {
        /// Epoch index.
        epoch: usize,
        /// Batch index within the epoch.
        batch: usize,
    },
    /// An epoch finished (after validation and checkpointing).
    EpochEnd {
        /// Epoch index.
        epoch: usize,
        /// Mean margin loss over the epoch's counted samples.
        loss: f32,
        /// Validation pairwise ranking accuracy.
        accuracy: f32,
    },
    /// A batch produced a non-finite loss or gradient norm; the configured
    /// [`DivergencePolicy`] decides what happens next.
    NonFinite {
        /// Epoch index.
        epoch: usize,
        /// Batch index within the epoch.
        batch: usize,
        /// Sum of the batch's sample losses (may be NaN/inf).
        loss: f32,
        /// Global gradient norm after folding the batch (may be NaN/inf).
        grad_norm: f32,
    },
    /// The divergence guard dropped this batch's gradients.
    BatchSkipped {
        /// Epoch index.
        epoch: usize,
        /// Batch index within the epoch.
        batch: usize,
    },
    /// A worker panicked while processing this batch; the batch was dropped.
    BatchFailed {
        /// Epoch index.
        epoch: usize,
        /// Batch index within the epoch.
        batch: usize,
        /// The worker's panic message.
        message: String,
    },
    /// The clip-and-warn policy zeroed non-finite gradient entries.
    GradSanitized {
        /// Epoch index.
        epoch: usize,
        /// Batch index within the epoch.
        batch: usize,
        /// Number of gradient entries zeroed.
        zeroed: usize,
    },
    /// The rollback policy restored the last epoch-boundary snapshot.
    RolledBack {
        /// Epoch in which the divergence occurred.
        epoch: usize,
        /// Batch index within the epoch.
        batch: usize,
        /// Epoch boundary the parameters were restored to.
        restored_epoch: usize,
        /// Learning rate after decay.
        lr: f32,
    },
    /// A checkpoint was written and `LATEST` now points at it.
    CheckpointSaved {
        /// Epoch just completed.
        epoch: usize,
        /// The checkpoint directory.
        path: PathBuf,
    },
    /// Writing a checkpoint failed; training continues on the previous one.
    CheckpointFailed {
        /// Epoch just completed.
        epoch: usize,
        /// Why the save failed.
        message: String,
    },
    /// Validation scoring failed (worker panic); the epoch records accuracy 0.
    ValidationFailed {
        /// Epoch index.
        epoch: usize,
        /// The worker's panic message.
        message: String,
    },
    /// The abort policy stopped training.
    Aborted {
        /// Epoch in which the divergence occurred.
        epoch: usize,
        /// Batch index within the epoch.
        batch: usize,
    },
}

/// Training hyper-parameters. Defaults follow §IV-B: Adam lr 1e-3, batch 16,
/// margin 10.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Passes over the (capped) target set.
    pub epochs: usize,
    /// Samples per optimiser step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Ranking margin γ.
    pub margin: f32,
    /// Cap on targets used per epoch (0 = all).
    pub max_samples_per_epoch: usize,
    /// Global gradient-norm clip (0 = off).
    pub grad_clip: f32,
    /// Early-stopping patience in epochs (0 = off).
    pub patience: usize,
    /// Cap on validation triples scored per epoch (0 = all).
    pub max_valid_samples: usize,
    /// RNG seed (shuffling, negative sampling, dropout).
    pub seed: u64,
    /// Worker threads for batch processing and validation scoring
    /// (`0` = one per available core). The result is bit-identical for every
    /// value — this knob trades wall-clock time only.
    pub threads: usize,
    /// What to do when a batch turns up non-finite (see [`DivergencePolicy`]).
    pub divergence: DivergencePolicy,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 16,
            lr: 1e-3,
            margin: 10.0,
            max_samples_per_epoch: 2000,
            grad_clip: 5.0,
            patience: 3,
            max_valid_samples: 200,
            seed: 0,
            threads: 1,
            divergence: DivergencePolicy::SkipBatch,
        }
    }
}

/// Where and how often [`Trainer`] writes checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Root directory; checkpoints land in `<dir>/ckpt-NNNNNN/` with a
    /// `LATEST` pointer file alongside.
    pub dir: PathBuf,
    /// Write every N epochs (values below 1 behave as 1).
    pub every_epochs: usize,
    /// Keep at most this many checkpoint directories (0 = keep all).
    pub keep: usize,
}

impl CheckpointConfig {
    /// Checkpoint into `dir` every epoch, keeping the two newest.
    pub fn new<P: Into<PathBuf>>(dir: P) -> Self {
        CheckpointConfig { dir: dir.into(), every_epochs: 1, keep: 2 }
    }

    /// Set the checkpoint root directory.
    pub fn with_dir<P: Into<PathBuf>>(mut self, dir: P) -> Self {
        self.dir = dir.into();
        self
    }

    /// Write a checkpoint every `n` epochs (values below 1 behave as 1).
    pub fn with_every_epochs(mut self, n: usize) -> Self {
        self.every_epochs = n;
        self
    }

    /// Keep at most `n` checkpoint directories (0 = keep all).
    pub fn with_keep(mut self, n: usize) -> Self {
        self.keep = n;
        self
    }
}

impl Default for CheckpointConfig {
    /// Checkpoints under `./checkpoints`, every epoch, keeping the two
    /// newest — equivalent to `CheckpointConfig::new("checkpoints")`.
    fn default() -> Self {
        CheckpointConfig::new("checkpoints")
    }
}

/// What happened during training.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Mean margin loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation pairwise ranking accuracy per epoch (positive scored above
    /// its corrupted negative).
    pub valid_accuracy: Vec<f32>,
    /// Epoch whose parameters were kept (0-based).
    pub best_epoch: usize,
    /// Batches dropped by the divergence guard or by worker panics.
    pub skipped_batches: usize,
    /// Batches whose gradients were sanitised (clip-and-warn policy).
    pub sanitized_batches: usize,
    /// Divergence rollbacks performed.
    pub rollbacks: usize,
    /// `true` when the abort policy stopped training early.
    pub aborted: bool,
    /// First epoch executed when training resumed from a checkpoint.
    pub resumed_from: Option<usize>,
}

impl TrainReport {
    /// Final (restored) validation accuracy.
    pub fn best_accuracy(&self) -> f32 {
        self.valid_accuracy.get(self.best_epoch).copied().unwrap_or(0.0)
    }
}

/// Train `model` on `targets` against `graph`; `valid` steers early stopping.
///
/// Equivalent to `Trainer::new(*cfg).train(...)` — no checkpointing, no
/// callback. With `cfg.threads > 1` each minibatch is sharded across a scoped
/// worker pool; the result is bit-identical to `threads == 1` (see module
/// docs).
pub fn train_model<M: ScoringModel + Sync>(
    model: &mut M,
    graph: &KnowledgeGraph,
    targets: &[Triple],
    valid: &[Triple],
    cfg: &TrainConfig,
) -> TrainReport {
    Trainer::new(*cfg).train(model, graph, targets, valid)
}

/// The crash-safe training driver: checkpointing, resume, divergence guards
/// and a [`TrainEvent`] callback around the data-parallel loop.
///
/// ```no_run
/// # use rmpi_core::trainer::{CheckpointConfig, Trainer, TrainConfig};
/// # let (model, graph, targets, valid): (rmpi_core::RmpiModel, rmpi_kg::KnowledgeGraph, Vec<rmpi_kg::Triple>, Vec<rmpi_kg::Triple>) = unimplemented!();
/// # let mut model = model;
/// let cfg = TrainConfig::default();
/// let report = Trainer::new(cfg)
///     .with_checkpointing(CheckpointConfig::new("run/checkpoints"))
///     .resume_latest("run/checkpoints")  // no-op on a fresh directory
///     .unwrap()
///     .train(&mut model, &graph, &targets, &valid);
/// ```
/// The boxed observer invoked by [`Trainer`] on every [`TrainEvent`].
pub type EventCallback<'cb> = Box<dyn FnMut(&TrainEvent) + 'cb>;

pub struct Trainer<'cb> {
    cfg: TrainConfig,
    checkpoint: Option<CheckpointConfig>,
    resume: Option<TrainCheckpoint>,
    callback: Option<EventCallback<'cb>>,
}

impl<'cb> Trainer<'cb> {
    /// A trainer with no checkpointing and no callback.
    pub fn new(cfg: TrainConfig) -> Self {
        Trainer { cfg, checkpoint: None, resume: None, callback: None }
    }

    /// Write crash-safe checkpoints while training (see [`CheckpointConfig`]).
    pub fn with_checkpointing(mut self, ck: CheckpointConfig) -> Self {
        self.checkpoint = Some(ck);
        self
    }

    /// Continue bit-identically from the checkpoint directory `dir` (one
    /// `ckpt-NNNNNN` directory, e.g. from
    /// [`latest_checkpoint`](crate::checkpoint::latest_checkpoint)).
    pub fn resume_from<P: AsRef<Path>>(mut self, dir: P) -> Result<Self, CheckpointError> {
        self.resume = Some(load_checkpoint(dir)?);
        Ok(self)
    }

    /// Continue from an already-loaded checkpoint.
    pub fn resume_from_checkpoint(mut self, ckpt: TrainCheckpoint) -> Self {
        self.resume = Some(ckpt);
        self
    }

    /// Continue from the newest complete checkpoint under `root`, or start
    /// fresh when `root` holds none — the restart-after-crash one-liner.
    pub fn resume_latest<P: AsRef<Path>>(mut self, root: P) -> Result<Self, CheckpointError> {
        if let Some(dir) = latest_checkpoint(root)? {
            self.resume = Some(load_checkpoint(dir)?);
        }
        Ok(self)
    }

    /// Receive a [`TrainEvent`] for every batch, epoch and fault decision.
    pub fn on_event(mut self, f: impl FnMut(&TrainEvent) + 'cb) -> Self {
        self.callback = Some(Box::new(f));
        self
    }

    /// Run the training loop. See [`train_model`] for the underlying
    /// algorithm and the module docs for the fault-tolerance layers.
    pub fn train<M: ScoringModel + Sync>(
        mut self,
        model: &mut M,
        graph: &KnowledgeGraph,
        targets: &[Triple],
        valid: &[Triple],
    ) -> TrainReport {
        let cfg = self.cfg;
        assert!(!targets.is_empty(), "no training targets");
        assert!(cfg.batch_size > 0, "batch_size must be positive");
        let sampler = NegativeSampler::from_graph(graph);
        // All per-sample scoring walks adjacency through the CSR arenas
        // (contiguous, no per-entity Vec indirection); built once per run.
        let csr = CsrGraph::from_graph(graph);
        let pool = ThreadPool::new(cfg.threads);
        let mut adam = Adam::new(cfg.lr);
        let mut report = TrainReport::default();
        let mut best_acc = f32::NEG_INFINITY;
        let mut best_store = model.param_store().clone();
        let mut since_best = 0usize;
        let mut cb = self.callback.take();
        let mut emit = move |ev: TrainEvent| {
            if let Some(f) = cb.as_mut() {
                f(&ev);
            }
        };

        let mut start_epoch = 0usize;
        if let Some(ck) = self.resume.take() {
            assert!(
                ck.seed == cfg.seed,
                "checkpoint was written under seed {} but the config says {}; resuming under a \
                 different seed cannot reproduce the interrupted run",
                ck.seed,
                cfg.seed
            );
            check_resume_params(model.param_store(), &ck.params);
            adam.lr = ck.adam_lr;
            adam.restore_state(AdamState { t: ck.adam_t, m: ck.adam_m, v: ck.adam_v });
            best_acc = ck.best_acc;
            since_best = ck.since_best;
            best_store = ck.best_params;
            report.best_epoch = ck.best_epoch;
            report.epoch_losses = ck.epoch_losses;
            report.valid_accuracy = ck.valid_accuracy;
            report.skipped_batches = ck.skipped_batches;
            report.sanitized_batches = ck.sanitized_batches;
            report.rollbacks = ck.rollbacks;
            *model.param_store_mut() = ck.params;
            start_epoch = ck.next_epoch;
            report.resumed_from = Some(start_epoch);
            emit(TrainEvent::Resumed { epoch: start_epoch });
        }

        // Epoch-boundary snapshot for the rollback policy: (params, optimiser
        // state, boundary epoch). Only maintained when the policy needs it —
        // it costs a full parameter clone per epoch.
        let track_rollback = matches!(cfg.divergence, DivergencePolicy::Rollback { .. });
        let mut last_good: Option<(ParamStore, AdamState, usize)> =
            track_rollback.then(|| (model.param_store().clone(), adam.export_state(), start_epoch));

        let metrics = trainer_metrics();
        'epochs: for epoch in start_epoch..cfg.epochs {
            let epoch_start = Instant::now();
            // A checkpoint can be written with the patience budget already
            // exhausted (the run stops right after saving it); a resume from
            // such a checkpoint must stop here too, not train further.
            if cfg.patience > 0 && since_best >= cfg.patience {
                break;
            }
            let mut order: Vec<Triple> = targets.to_vec();
            let mut shuffle_rng =
                StdRng::seed_from_u64(mix_seed(cfg.seed, rng_stream::SHUFFLE, epoch as u64));
            order.shuffle(&mut shuffle_rng);
            if cfg.max_samples_per_epoch > 0 {
                order.truncate(cfg.max_samples_per_epoch);
            }

            let mut epoch_loss = 0.0f64;
            let mut counted = 0usize;
            model.param_store_mut().zero_grad();
            for (batch_idx, batch) in order.chunks(cfg.batch_size).enumerate() {
                let base = batch_idx * cfg.batch_size;
                // Fan the batch out: each worker reuses one tape across its
                // shard and returns (loss, gradient buffer) per sample. The
                // model and graph are only read.
                let results: Result<Vec<(f32, GradBuffer)>, PoolError> = {
                    let model: &M = model;
                    pool.try_map_init(batch.len(), Tape::new, |tape, i| {
                        let pos = batch[i];
                        let mut rng = StdRng::seed_from_u64(mix_seed(
                            cfg.seed,
                            rng_stream::TRAIN,
                            sample_key(epoch, base + i),
                        ));
                        let neg = sampler.corrupt(pos, graph, &mut rng);
                        tape.reset();
                        let forward_start = Instant::now();
                        let sp = model.score_on_tape(tape, &csr, pos, Mode::Train, &mut rng);
                        let sn = model.score_on_tape(tape, &csr, neg, Mode::Train, &mut rng);
                        let loss = margin_ranking_loss(tape, sp, sn, cfg.margin);
                        metrics.forward.record_duration(forward_start.elapsed());
                        let mut buf = GradBuffer::new();
                        let backward_start = Instant::now();
                        rmpi_runtime::with_scratch(|scratch: &mut BackwardScratch| {
                            tape.backward_into_with(loss, scratch, &mut buf);
                        });
                        metrics.backward.record_duration(backward_start.elapsed());
                        (failpoint::nan32(LOSS_FAILPOINT, tape.value(loss).item()), buf)
                    })
                };
                let results = match results {
                    Ok(r) => r,
                    Err(e) => {
                        // A panicking worker poisons only its batch: drop any
                        // partial gradients and keep training.
                        report.skipped_batches += 1;
                        metrics.batches_failed.inc();
                        metrics.batches.inc();
                        model.param_store_mut().zero_grad();
                        emit(TrainEvent::BatchFailed {
                            epoch,
                            batch: batch_idx,
                            message: e.to_string(),
                        });
                        emit(TrainEvent::BatchEnd { epoch, batch: batch_idx });
                        continue;
                    }
                };
                // Ordered reduce: fold per-sample buffers into the store in
                // sample-index order — the same addition sequence as the
                // sequential loop, hence bit-identical parameters.
                for (_, buf) in &results {
                    buf.add_to(model.param_store_mut());
                }
                maybe_poison_grads(model.param_store_mut());
                let batch_loss: f64 = results.iter().map(|(l, _)| *l as f64).sum();
                let losses_finite = results.iter().all(|(l, _)| l.is_finite());
                let grad_norm = model.param_store().grad_norm();
                metrics.samples.add(results.len() as u64);
                if losses_finite && grad_norm.is_finite() {
                    epoch_loss += batch_loss;
                    counted += results.len();
                    step(model, &mut adam, &cfg, batch.len());
                } else {
                    metrics.nonfinite.inc();
                    emit(TrainEvent::NonFinite {
                        epoch,
                        batch: batch_idx,
                        loss: batch_loss as f32,
                        grad_norm,
                    });
                    match cfg.divergence {
                        DivergencePolicy::SkipBatch => {
                            report.skipped_batches += 1;
                            metrics.batches_skipped.inc();
                            model.param_store_mut().zero_grad();
                            emit(TrainEvent::BatchSkipped { epoch, batch: batch_idx });
                        }
                        DivergencePolicy::ClipAndWarn => {
                            let zeroed = model.param_store_mut().sanitize_grads();
                            report.sanitized_batches += 1;
                            metrics.batches_sanitized.inc();
                            emit(TrainEvent::GradSanitized { epoch, batch: batch_idx, zeroed });
                            for (l, _) in &results {
                                if l.is_finite() {
                                    epoch_loss += *l as f64;
                                    counted += 1;
                                }
                            }
                            step(model, &mut adam, &cfg, batch.len());
                        }
                        DivergencePolicy::Rollback { lr_decay } => {
                            if let Some((params, state, boundary)) = last_good.as_ref() {
                                *model.param_store_mut() = params.clone();
                                adam.restore_state(state.clone());
                                adam.lr *= lr_decay;
                                report.rollbacks += 1;
                                metrics.rollbacks.inc();
                                emit(TrainEvent::RolledBack {
                                    epoch,
                                    batch: batch_idx,
                                    restored_epoch: *boundary,
                                    lr: adam.lr,
                                });
                            } else {
                                report.skipped_batches += 1;
                                metrics.batches_skipped.inc();
                                model.param_store_mut().zero_grad();
                                emit(TrainEvent::BatchSkipped { epoch, batch: batch_idx });
                            }
                        }
                        DivergencePolicy::Abort => {
                            report.aborted = true;
                            emit(TrainEvent::Aborted { epoch, batch: batch_idx });
                            break 'epochs;
                        }
                    }
                }
                metrics.batches.inc();
                emit(TrainEvent::BatchEnd { epoch, batch: batch_idx });
            }
            let mean_loss = if counted == 0 { 0.0 } else { (epoch_loss / counted as f64) as f32 };
            report.epoch_losses.push(mean_loss);

            let validation_start = Instant::now();
            let acc =
                match try_validation_accuracy(model, graph, &csr, valid, &cfg, &pool, epoch as u64)
                {
                    Ok(acc) => acc,
                    Err(e) => {
                        emit(TrainEvent::ValidationFailed { epoch, message: e.to_string() });
                        0.0
                    }
                };
            metrics.validation.record_duration(validation_start.elapsed());
            report.valid_accuracy.push(acc);
            if acc > best_acc {
                best_acc = acc;
                best_store = model.param_store().clone();
                report.best_epoch = epoch;
                since_best = 0;
            } else {
                since_best += 1;
            }

            if track_rollback {
                last_good = Some((model.param_store().clone(), adam.export_state(), epoch + 1));
            }

            if let Some(ck) = &self.checkpoint {
                if (epoch + 1) % ck.every_epochs.max(1) == 0 {
                    let checkpoint_start = Instant::now();
                    let state = adam.export_state();
                    let snapshot = TrainCheckpoint {
                        next_epoch: epoch + 1,
                        seed: cfg.seed,
                        adam_lr: adam.lr,
                        adam_t: state.t,
                        adam_m: state.m,
                        adam_v: state.v,
                        best_epoch: report.best_epoch,
                        best_acc,
                        since_best,
                        epoch_losses: report.epoch_losses.clone(),
                        valid_accuracy: report.valid_accuracy.clone(),
                        skipped_batches: report.skipped_batches,
                        sanitized_batches: report.sanitized_batches,
                        rollbacks: report.rollbacks,
                        params: model.param_store().clone(),
                        best_params: best_store.clone(),
                    };
                    match save_checkpoint(&ck.dir, &snapshot) {
                        Ok(path) => {
                            emit(TrainEvent::CheckpointSaved { epoch, path });
                            if ck.keep > 0 {
                                crate::checkpoint::prune_checkpoints(&ck.dir, ck.keep);
                            }
                        }
                        Err(e) => {
                            emit(TrainEvent::CheckpointFailed { epoch, message: e.to_string() })
                        }
                    }
                    metrics.checkpoint_write.record_duration(checkpoint_start.elapsed());
                }
            }

            metrics.epochs.inc();
            metrics.epoch.record_duration(epoch_start.elapsed());
            emit(TrainEvent::EpochEnd { epoch, loss: mean_loss, accuracy: acc });
            if cfg.patience > 0 && since_best >= cfg.patience {
                break;
            }
        }
        *model.param_store_mut() = best_store;
        report
    }
}

/// A resumed model must agree with the checkpoint on every parameter it
/// created at construction time — same name, same dense index (gradient
/// buffers reduce by index), same shape. The checkpoint may hold *extra*
/// parameters the original run created lazily; they ride along untouched.
fn check_resume_params(fresh: &ParamStore, loaded: &ParamStore) {
    assert!(
        loaded.len() >= fresh.len(),
        "checkpoint holds {} parameters but the model defines {}; \
         was it written by a different model configuration?",
        loaded.len(),
        fresh.len()
    );
    for id in fresh.ids() {
        let name = fresh.name(id);
        let lid =
            loaded.get(name).unwrap_or_else(|| panic!("checkpoint is missing parameter {name:?}"));
        assert!(
            lid == id,
            "parameter {name:?} sits at index {} in the checkpoint but {} in the model; \
         parameter creation order must match for resume to be exact",
            lid.index(),
            id.index()
        );
        assert!(
            loaded.value(lid).shape() == fresh.value(id).shape(),
            "parameter {name:?} has shape {:?} in the checkpoint but {:?} in the model",
            loaded.value(lid).shape(),
            fresh.value(id).shape()
        );
    }
}

/// Inject a NaN into the first gradient entry when the `trainer::grad`
/// failpoint is armed with the `nan` action (no-op in production: one relaxed
/// atomic load).
fn maybe_poison_grads(store: &mut ParamStore) {
    if matches!(failpoint::check(GRAD_FAILPOINT), Some(failpoint::Action::Nan)) {
        if let Some(id) = store.ids().next() {
            let mut poison = Tensor::zeros(store.grad(id).shape());
            poison.data_mut()[0] = f32::NAN;
            store.accumulate_grad(id, &poison);
        }
    }
}

pub(crate) fn step<M: ScoringModel>(
    model: &mut M,
    adam: &mut Adam,
    cfg: &TrainConfig,
    batch_len: usize,
) {
    let step_start = Instant::now();
    let store = model.param_store_mut();
    // average over the batch
    store.scale_grads(1.0 / batch_len as f32);
    if cfg.grad_clip > 0.0 {
        let norm = store.grad_norm();
        if norm > cfg.grad_clip {
            store.scale_grads(cfg.grad_clip / norm);
        }
    }
    adam.step(store);
    store.zero_grad();
    trainer_metrics().optim_step.record_duration(step_start.elapsed());
}

/// Pairwise ranking accuracy on validation triples: fraction where the
/// positive outscores one corrupted negative. Returns 0 when `valid` is
/// empty (every epoch ties and the last snapshot wins). Worker panics
/// surface as `Err` — the trainer records the epoch as accuracy 0 rather
/// than dying.
///
/// Candidate scoring fans out over the pool; each win is an integer, so the
/// sum is order-independent and the result thread-count-invariant.
pub(crate) fn try_validation_accuracy<M: ScoringModel + Sync>(
    model: &M,
    graph: &KnowledgeGraph,
    csr: &CsrGraph,
    valid: &[Triple],
    cfg: &TrainConfig,
    pool: &ThreadPool,
    epoch: u64,
) -> Result<f32, PoolError> {
    if valid.is_empty() {
        return Ok(0.0);
    }
    let sampler = NegativeSampler::from_graph(graph);
    let mut subset: Vec<Triple> = valid.to_vec();
    let mut shuffle_rng =
        StdRng::seed_from_u64(mix_seed(cfg.seed, rng_stream::VALID_SHUFFLE, epoch));
    subset.shuffle(&mut shuffle_rng);
    if cfg.max_valid_samples > 0 {
        subset.truncate(cfg.max_valid_samples);
    }
    let wins: u32 = pool
        .try_map_indexed(subset.len(), |i| {
            let pos = subset[i];
            let mut rng = StdRng::seed_from_u64(mix_seed(
                cfg.seed,
                rng_stream::VALID,
                sample_key(epoch as usize, i),
            ));
            let neg = sampler.corrupt(pos, graph, &mut rng);
            u32::from(model.score(csr, pos, &mut rng) > model.score(csr, neg, &mut rng))
        })?
        .iter()
        .sum();
    Ok(wins as f32 / subset.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RmpiConfig;
    use crate::model::RmpiModel;
    use rmpi_datasets::world::{GraphGenConfig, WorldConfig};
    use rmpi_datasets::World;
    use std::cell::RefCell;

    /// A tiny planted-rule world where composition conclusions are perfectly
    /// learnable from the enclosing subgraph.
    fn tiny_data() -> (KnowledgeGraph, Vec<Triple>, Vec<Triple>) {
        let world = World::new(WorldConfig {
            comp_groups: 2,
            long_groups: 0,
            inv_groups: 1,
            sym_groups: 0,
            sub_groups: 0,
            noise_relations: 0,
            ..Default::default()
        });
        let groups: Vec<usize> = (0..world.groups().len()).collect();
        let triples = world.generate_triples(
            &groups,
            &GraphGenConfig {
                num_entities: 120,
                num_base_triples: 420,
                noise_frac: 0.0,
                seed: 5,
                ..Default::default()
            },
        );
        let split = rmpi_kg::split_triples(&triples, 0.15, 0.0, 3);
        let graph = KnowledgeGraph::from_triples(split.train.clone());
        (graph, split.train, split.valid)
    }

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let (graph, targets, valid) = tiny_data();
        let mut model =
            RmpiModel::new(RmpiConfig { dim: 16, edge_dropout: 0.2, ..Default::default() }, 8, 0);
        let cfg = TrainConfig {
            epochs: 4,
            max_samples_per_epoch: 250,
            max_valid_samples: 80,
            patience: 0,
            seed: 1,
            ..Default::default()
        };
        let report = train_model(&mut model, &graph, &targets, &valid, &cfg);
        assert_eq!(report.epoch_losses.len(), 4);
        assert!(
            report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap(),
            "loss should drop: {:?}",
            report.epoch_losses
        );
        assert!(
            report.best_accuracy() > 0.6,
            "trained model should beat chance on validation: {:?}",
            report.valid_accuracy
        );
        assert_eq!(report.skipped_batches, 0);
        assert!(!report.aborted);
    }

    #[test]
    fn early_stopping_respects_patience() {
        let (graph, targets, valid) = tiny_data();
        let mut model = RmpiModel::new(RmpiConfig { dim: 8, ..Default::default() }, 8, 2);
        let cfg = TrainConfig {
            epochs: 50,
            max_samples_per_epoch: 40,
            max_valid_samples: 30,
            patience: 2,
            seed: 2,
            ..Default::default()
        };
        let report = train_model(&mut model, &graph, &targets, &valid, &cfg);
        assert!(report.epoch_losses.len() < 50, "patience should stop early");
    }

    #[test]
    fn best_params_are_restored() {
        let (graph, targets, valid) = tiny_data();
        let mut model = RmpiModel::new(RmpiConfig { dim: 8, ..Default::default() }, 8, 3);
        let cfg = TrainConfig {
            epochs: 3,
            max_samples_per_epoch: 60,
            max_valid_samples: 40,
            patience: 0,
            seed: 3,
            ..Default::default()
        };
        let report = train_model(&mut model, &graph, &targets, &valid, &cfg);
        // re-evaluating with restored params reproduces the best epoch's accuracy signal
        let csr = CsrGraph::from_graph(&graph);
        let acc = try_validation_accuracy(
            &model,
            &graph,
            &csr,
            &valid,
            &cfg,
            &ThreadPool::sequential(),
            99,
        )
        .unwrap();
        assert!(
            acc >= report.best_accuracy() - 0.25,
            "restored accuracy {acc} far below best {}",
            report.best_accuracy()
        );
    }

    #[test]
    #[should_panic(expected = "no training targets")]
    fn empty_targets_rejected() {
        let (graph, _, _) = tiny_data();
        let mut model = RmpiModel::new(RmpiConfig::default(), 8, 0);
        train_model(&mut model, &graph, &[], &[], &TrainConfig::default());
    }

    #[test]
    fn callback_sees_batches_and_epochs() {
        let (graph, targets, valid) = tiny_data();
        let mut model = RmpiModel::new(RmpiConfig { dim: 8, ..Default::default() }, 8, 4);
        let cfg = TrainConfig {
            epochs: 2,
            max_samples_per_epoch: 32,
            max_valid_samples: 20,
            patience: 0,
            seed: 4,
            ..Default::default()
        };
        let events: RefCell<Vec<TrainEvent>> = RefCell::new(Vec::new());
        let report = Trainer::new(cfg)
            .on_event(|ev| events.borrow_mut().push(ev.clone()))
            .train(&mut model, &graph, &targets, &valid);
        let events = events.into_inner();
        let epoch_ends = events.iter().filter(|e| matches!(e, TrainEvent::EpochEnd { .. })).count();
        let batch_ends = events.iter().filter(|e| matches!(e, TrainEvent::BatchEnd { .. })).count();
        assert_eq!(epoch_ends, 2);
        // 32 samples at batch 16 = 2 batches per epoch
        assert_eq!(batch_ends, 4);
        assert_eq!(report.epoch_losses.len(), 2);
        assert!(
            !events.iter().any(|e| matches!(e, TrainEvent::CheckpointSaved { .. })),
            "no checkpointing configured"
        );
    }
}
