//! Initial relation features `h_r^0`: learnable embeddings or schema
//! projections (Eq. 10).

use crate::config::RmpiConfig;
use rand::rngs::StdRng;
use rmpi_autograd::{init, ParamId, ParamStore, Tape, Tensor, Var};
use rmpi_kg::RelationId;
use std::collections::HashMap;

/// Produces initial embeddings for relation ids on a tape.
#[derive(Clone, Debug)]
pub enum RelationEncoder {
    /// Rows of a learnable `(num_relations, dim)` table.
    Random {
        /// The embedding table parameter.
        emb: ParamId,
    },
    /// `h^0 = W1 (W2 h^onto)` over fixed schema TransE vectors.
    Schema {
        /// Fixed `(num_relations, onto_dim)` semantic vectors.
        onto: Tensor,
        /// Outer projection `(dim, hidden)`.
        w1: ParamId,
        /// Inner projection `(hidden, onto_dim)`.
        w2: ParamId,
    },
}

impl RelationEncoder {
    /// Create the random-table encoder, registering its parameter.
    pub fn new_random(
        store: &mut ParamStore,
        num_relations: usize,
        dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let emb = store.create("rel_emb", init::xavier_uniform(&[num_relations.max(1), dim], rng));
        RelationEncoder::Random { emb }
    }

    /// Create the schema-projection encoder (Eq. 10). `onto` must have one
    /// row per relation in the id space.
    pub fn new_schema(
        store: &mut ParamStore,
        onto: Tensor,
        cfg: &RmpiConfig,
        rng: &mut StdRng,
    ) -> Self {
        let hidden = cfg.schema_hidden_dim();
        let onto_dim = onto.cols();
        let w2 = store.create("onto_w2", init::xavier_uniform(&[hidden, onto_dim], rng));
        let w1 = store.create("onto_w1", init::xavier_uniform(&[cfg.dim, hidden], rng));
        RelationEncoder::Schema { onto, w1, w2 }
    }

    /// The fixed schema TransE vectors, when this is the schema encoder.
    pub fn schema_vectors(&self) -> Option<&Tensor> {
        match self {
            RelationEncoder::Random { .. } => None,
            RelationEncoder::Schema { onto, .. } => Some(onto),
        }
    }

    /// Number of relations covered.
    pub fn num_relations(&self, store: &ParamStore) -> usize {
        match self {
            RelationEncoder::Random { emb } => store.value(*emb).rows(),
            RelationEncoder::Schema { onto, .. } => onto.rows(),
        }
    }

    /// Record `h^0` vars for each distinct relation in `rels`.
    pub fn encode(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        rels: &[RelationId],
    ) -> HashMap<RelationId, Var> {
        let mut distinct: Vec<RelationId> = rels.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let mut out = HashMap::with_capacity(distinct.len());
        match self {
            RelationEncoder::Random { emb } => {
                let table = tape.param(store, *emb);
                for r in distinct {
                    out.insert(r, tape.row(table, r.index()));
                }
            }
            RelationEncoder::Schema { onto, w1, w2 } => {
                let w1v = tape.param(store, *w1);
                let w2v = tape.param(store, *w2);
                for r in distinct {
                    let sem = tape.constant(Tensor::vector(onto.row(r.index()).to_vec()));
                    let hidden = tape.matvec(w2v, sem);
                    out.insert(r, tape.matvec(w1v, hidden));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn random_encoder_returns_table_rows() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let enc = RelationEncoder::new_random(&mut store, 5, 8, &mut rng);
        assert_eq!(enc.num_relations(&store), 5);
        let mut tape = Tape::new();
        let m = enc.encode(&mut tape, &store, &[RelationId(2), RelationId(2), RelationId(0)]);
        assert_eq!(m.len(), 2);
        let emb = store.get("rel_emb").unwrap();
        assert_eq!(tape.value(m[&RelationId(2)]).data(), store.value(emb).row(2));
    }

    #[test]
    fn schema_encoder_projects_to_model_dim() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let onto = Tensor::matrix(3, 10, (0..30).map(|i| i as f32 * 0.1).collect());
        let cfg = RmpiConfig { dim: 4, ..Default::default() };
        let enc = RelationEncoder::new_schema(&mut store, onto, &cfg, &mut rng);
        assert_eq!(enc.num_relations(&store), 3);
        let mut tape = Tape::new();
        let m = enc.encode(&mut tape, &store, &[RelationId(1)]);
        assert_eq!(tape.value(m[&RelationId(1)]).shape(), &[4]);
    }

    #[test]
    fn schema_projection_is_trainable() {
        // gradient should reach w1/w2 through the projection
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let onto = Tensor::matrix(2, 6, vec![0.3; 12]);
        let cfg = RmpiConfig { dim: 3, ..Default::default() };
        let enc = RelationEncoder::new_schema(&mut store, onto, &cfg, &mut rng);
        let mut tape = Tape::new();
        let m = enc.encode(&mut tape, &store, &[RelationId(0)]);
        let loss = tape.sum(m[&RelationId(0)]);
        tape.backward(loss, &mut store);
        let g1 = store.grad(store.get("onto_w1").unwrap()).norm();
        let g2 = store.grad(store.get("onto_w2").unwrap()).norm();
        assert!(g1 > 0.0 && g2 > 0.0, "projection grads: {g1}, {g2}");
    }

    #[test]
    fn distinct_relations_have_distinct_embeddings() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let enc = RelationEncoder::new_random(&mut store, 4, 16, &mut rng);
        let mut tape = Tape::new();
        let m = enc.encode(&mut tape, &store, &[RelationId(0), RelationId(1)]);
        assert_ne!(tape.value(m[&RelationId(0)]).data(), tape.value(m[&RelationId(1)]).data());
    }
}
