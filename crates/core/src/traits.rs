//! The common interface between subgraph scoring models and the trainer /
//! evaluation protocols.

use rand::rngs::StdRng;
use rmpi_autograd::{ParamStore, Tape, Var};
use rmpi_kg::{GraphAccess, Triple};

/// Whether a forward pass is a training pass (dropout active) or an
/// evaluation pass (deterministic).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Training: edge dropout and any other stochastic regularisers apply.
    Train,
    /// Evaluation: deterministic forward.
    Eval,
}

/// A model that scores a candidate triple against a context graph by
/// subgraph reasoning. Implemented by RMPI and all baselines, which is what
/// lets one trainer and one evaluation harness serve every method.
pub trait ScoringModel {
    /// The trainable parameters.
    fn param_store(&self) -> &ParamStore;

    /// Mutable access for the optimiser.
    fn param_store_mut(&mut self) -> &mut ParamStore;

    /// Record the score of `target` (higher = more plausible) on `tape`.
    fn score_on_tape(
        &self,
        tape: &mut Tape,
        graph: &dyn GraphAccess,
        target: Triple,
        mode: Mode,
        rng: &mut StdRng,
    ) -> Var;

    /// Convenience: evaluate the score eagerly.
    fn score(&self, graph: &dyn GraphAccess, target: Triple, rng: &mut StdRng) -> f32 {
        let mut tape = Tape::new();
        let v = self.score_on_tape(&mut tape, graph, target, Mode::Eval, rng);
        tape.value(v).item()
    }

    /// Hops of graph context [`ScoringModel::score_on_tape`] reads around the
    /// target's endpoints (adjacency queries only — membership tests and
    /// triple lookups are not bounded by it). Out-of-core backends pin
    /// exactly this neighbourhood in RAM before scoring; in-memory backends
    /// ignore it. Understating it makes store-backed scoring silently see a
    /// truncated graph, which the equivalence tests catch in debug builds.
    fn context_radius(&self) -> usize;

    /// A short display name (e.g. `"RMPI-NE"`).
    fn name(&self) -> String;
}

impl<M: ScoringModel + ?Sized> ScoringModel for Box<M> {
    fn param_store(&self) -> &ParamStore {
        (**self).param_store()
    }

    fn param_store_mut(&mut self) -> &mut ParamStore {
        (**self).param_store_mut()
    }

    fn score_on_tape(
        &self,
        tape: &mut Tape,
        graph: &dyn GraphAccess,
        target: Triple,
        mode: Mode,
        rng: &mut StdRng,
    ) -> Var {
        (**self).score_on_tape(tape, graph, target, mode, rng)
    }

    fn context_radius(&self) -> usize {
        (**self).context_radius()
    }

    fn name(&self) -> String {
        (**self).name()
    }
}
