//! Margin ranking loss (paper Eq. 12).

use rmpi_autograd::{Tape, Var};

/// `max(0, score(neg) - score(pos) + margin)` for one positive/negative pair.
/// Both scores must be one-element variables.
pub fn margin_ranking_loss(tape: &mut Tape, pos: Var, neg: Var, margin: f32) -> Var {
    let diff = tape.sub(neg, pos);
    let shifted = tape.add_scalar(diff, margin);
    tape.relu(shifted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmpi_autograd::{ParamStore, Tensor};

    fn eval(pos: f32, neg: f32, margin: f32) -> f32 {
        let mut tape = Tape::new();
        let p = tape.constant(Tensor::scalar(pos));
        let n = tape.constant(Tensor::scalar(neg));
        let l = margin_ranking_loss(&mut tape, p, n, margin);
        tape.value(l).item()
    }

    #[test]
    fn zero_when_margin_satisfied() {
        assert_eq!(eval(12.0, 1.0, 10.0), 0.0);
        assert_eq!(eval(10.0, 0.0, 10.0), 0.0);
    }

    #[test]
    fn linear_when_violated() {
        assert_eq!(eval(0.0, 0.0, 10.0), 10.0);
        assert_eq!(eval(3.0, 5.0, 10.0), 12.0);
    }

    #[test]
    fn gradient_pushes_scores_apart() {
        let mut store = ParamStore::new();
        let p = store.create("p", Tensor::scalar(0.0));
        let n = store.create("n", Tensor::scalar(0.0));
        let mut tape = Tape::new();
        let pv = tape.param(&store, p);
        let nv = tape.param(&store, n);
        let l = margin_ranking_loss(&mut tape, pv, nv, 5.0);
        tape.backward(l, &mut store);
        assert_eq!(store.grad(p).item(), -1.0, "positive score should increase");
        assert_eq!(store.grad(n).item(), 1.0, "negative score should decrease");
    }

    #[test]
    fn no_gradient_once_satisfied() {
        let mut store = ParamStore::new();
        let p = store.create("p", Tensor::scalar(20.0));
        let n = store.create("n", Tensor::scalar(0.0));
        let mut tape = Tape::new();
        let pv = tape.param(&store, p);
        let nv = tape.param(&store, n);
        let l = margin_ranking_loss(&mut tape, pv, nv, 5.0);
        tape.backward(l, &mut store);
        assert_eq!(store.grad(p).item(), 0.0);
        assert_eq!(store.grad(n).item(), 0.0);
    }
}
