//! Out-of-core training: the same loop as [`crate::trainer`], fed from an
//! on-disk [`rmpi_store::StoreReader`] instead of an in-memory graph.
//!
//! Two things change when the graph no longer fits in RAM:
//!
//! * **The target list is the store itself.** Every stored triple is a
//!   training target, addressed by its record index. Shuffling a
//!   ten-million-element index vector per epoch would cost 80 MB, so the
//!   epoch order comes from a seeded *format-preserving permutation*
//!   ([`IndexPermutation`]: a four-round Feistel network over the smallest
//!   even-bit domain covering the index range, cycle-walked back into
//!   `[0, n)`). O(1) memory, deterministic in `(seed, epoch)`, and every
//!   index appears exactly once per epoch.
//! * **Adjacency is pinned per sample.** Each worker owns a reusable
//!   [`NeighborhoodView`]; before scoring a target it pins the
//!   [`ScoringModel::context_radius`]-hop neighbourhood of the target's
//!   endpoints, so `score_on_tape` sees exactly the subgraph it would have
//!   read from an in-memory CSR. Peak memory is bounded by the pinned
//!   neighbourhood, the block cache and the model — never by graph size.
//!
//! Everything else — gradient accumulation, the ordered fold, Adam, the
//! margin loss, per-sample RNG keying via
//! [`mix_seed`]`(seed, stream, sample_key(epoch, pos))` — is shared with the
//! in-memory trainer, which keeps the streaming loop **bit-identical across
//! thread counts** for the same reasons (see `trainer` module docs). The
//! validation pass draws the identical RNG sequence per sample as
//! `trainer::try_validation_accuracy`, so streaming validation reproduces
//! the in-memory accuracy exactly (a unit test pins this).
//!
//! Divergence handling is the skip-batch policy only: a non-finite loss or
//! gradient norm drops that batch's gradients, as does a worker panic. The
//! richer policies (rollback, clip-and-warn) live with the checkpointing
//! driver in [`crate::trainer`].

use crate::loss::margin_ranking_loss;
use crate::trainer::{rng_stream, sample_key, step, TrainConfig};
use crate::traits::{Mode, ScoringModel};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rmpi_autograd::optim::Adam;
use rmpi_autograd::{BackwardScratch, GradBuffer, Tape};
use rmpi_kg::Triple;
use rmpi_obs::{Counter, Histogram};
use rmpi_runtime::{mix_seed, PoolError, ThreadPool};
use rmpi_store::{NeighborhoodView, StoreReader};
use rmpi_subgraph::NegativeSampler;
use std::sync::OnceLock;
use std::time::Instant;

/// SplitMix64 finaliser: the Feistel round function's mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded bijection on `[0, n)` in O(1) memory: a balanced four-round
/// Feistel network over `[0, 2^(2h))` (the smallest even-bit domain covering
/// `n`, so at most `4n`), cycle-walked until the image lands below `n`.
/// Four rounds of a keyed PRF make the permutation indistinguishable from
/// random for shuffling purposes; cycle-walking terminates because the walk
/// stays inside one cycle of a finite permutation that contains its in-range
/// starting point.
#[derive(Clone, Copy, Debug)]
pub struct IndexPermutation {
    n: u64,
    half_bits: u32,
    half_mask: u64,
    keys: [u64; 4],
}

impl IndexPermutation {
    /// The permutation of `[0, n)` selected by `seed`. `n` must be positive.
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n > 0, "empty index range");
        let bits = (64 - (n.max(2) - 1).leading_zeros()).max(2);
        let half_bits = bits.div_ceil(2);
        let mut keys = [0u64; 4];
        let mut s = seed;
        for k in &mut keys {
            s = splitmix64(s);
            *k = s;
        }
        IndexPermutation { n, half_bits, half_mask: (1u64 << half_bits) - 1, keys }
    }

    /// Where index `i` lands; `i` must be below `n`.
    pub fn apply(&self, i: u64) -> u64 {
        debug_assert!(i < self.n, "index {i} outside [0, {})", self.n);
        let mut x = i;
        loop {
            x = self.feistel(x);
            if x < self.n {
                return x;
            }
        }
    }

    fn feistel(&self, x: u64) -> u64 {
        let mut l = x >> self.half_bits;
        let mut r = x & self.half_mask;
        for &k in &self.keys {
            let f = splitmix64(r ^ k) & self.half_mask;
            (l, r) = (r, l ^ f);
        }
        (l << self.half_bits) | r
    }
}

/// `stream_trainer.*` metric handles, resolved once per process.
struct StreamMetrics {
    /// `stream_trainer.pin.us` — per-sample neighbourhood pinning (all IO).
    pin: Histogram,
    /// `stream_trainer.samples.count` — samples whose gradients were folded.
    samples: Counter,
    /// `stream_trainer.batches.count` — batches processed (any outcome).
    batches: Counter,
    /// `stream_trainer.batches_skipped.count` — non-finite or panicked
    /// batches dropped.
    batches_skipped: Counter,
    /// `stream_trainer.epochs.count` — epochs completed.
    epochs: Counter,
}

fn stream_metrics() -> &'static StreamMetrics {
    static METRICS: OnceLock<StreamMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = rmpi_obs::global();
        StreamMetrics {
            pin: reg.histogram("stream_trainer.pin.us"),
            samples: reg.counter("stream_trainer.samples.count"),
            batches: reg.counter("stream_trainer.batches.count"),
            batches_skipped: reg.counter("stream_trainer.batches_skipped.count"),
            epochs: reg.counter("stream_trainer.epochs.count"),
        }
    })
}

/// What happened during a streaming run.
#[derive(Clone, Debug, Default)]
pub struct StreamReport {
    /// Mean margin loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation pairwise ranking accuracy per epoch.
    pub valid_accuracy: Vec<f32>,
    /// Epoch whose parameters were kept (0-based).
    pub best_epoch: usize,
    /// Batches dropped (non-finite loss/gradients or worker panic).
    pub skipped_batches: usize,
    /// Samples whose gradients reached the optimiser.
    pub samples: usize,
}

impl StreamReport {
    /// Final (restored) validation accuracy.
    pub fn best_accuracy(&self) -> f32 {
        self.valid_accuracy.get(self.best_epoch).copied().unwrap_or(0.0)
    }
}

/// Train `model` on every triple of the store; `valid` steers early stopping
/// and the best-snapshot restore exactly as in [`crate::trainer::train_model`].
///
/// Honoured [`TrainConfig`] fields: `epochs`, `batch_size`, `lr`, `margin`,
/// `max_samples_per_epoch`, `grad_clip`, `patience`, `max_valid_samples`,
/// `seed`, `threads`. `divergence` is fixed to skip-batch semantics (see the
/// module docs). Bit-identical across `threads` values.
pub fn train_streaming<M: ScoringModel + Sync>(
    model: &mut M,
    reader: &StoreReader,
    valid: &[Triple],
    cfg: &TrainConfig,
) -> StreamReport {
    let n = reader.num_triples() as u64;
    assert!(n > 0, "no training targets in the store");
    assert!(cfg.batch_size > 0, "batch_size must be positive");
    let sampler = NegativeSampler::from_pool(reader.present_entities());
    let pool = ThreadPool::new(cfg.threads);
    let radius = model.context_radius();
    let mut adam = Adam::new(cfg.lr);
    let mut report = StreamReport::default();
    let mut best_acc = f32::NEG_INFINITY;
    let mut best_store = model.param_store().clone();
    let mut since_best = 0usize;
    let metrics = stream_metrics();

    for epoch in 0..cfg.epochs {
        let perm = IndexPermutation::new(n, mix_seed(cfg.seed, rng_stream::SHUFFLE, epoch as u64));
        let take = if cfg.max_samples_per_epoch > 0 {
            n.min(cfg.max_samples_per_epoch as u64) as usize
        } else {
            n as usize
        };

        let mut epoch_loss = 0.0f64;
        let mut counted = 0usize;
        model.param_store_mut().zero_grad();
        let mut base = 0usize;
        while base < take {
            let len = cfg.batch_size.min(take - base);
            let results: Result<Vec<(f32, GradBuffer)>, PoolError> = {
                let model: &M = model;
                let sampler = &sampler;
                pool.try_map_init(
                    len,
                    || (Tape::new(), NeighborhoodView::new(reader)),
                    |(tape, view), i| {
                        let idx = perm.apply((base + i) as u64);
                        let pos = reader.triple_at(idx).expect("store read failed (target)");
                        let mut rng = StdRng::seed_from_u64(mix_seed(
                            cfg.seed,
                            rng_stream::TRAIN,
                            sample_key(epoch, base + i),
                        ));
                        // Same draw order as the in-memory loop: corrupt
                        // first (membership tests bypass the pin), then
                        // score positive and negative.
                        let neg = sampler.corrupt(pos, &*view, &mut rng);
                        tape.reset();
                        let pin_start = Instant::now();
                        view.pin(pos.head, pos.tail, radius).expect("store read failed (pin)");
                        metrics.pin.record_duration(pin_start.elapsed());
                        let sp = model.score_on_tape(tape, &*view, pos, Mode::Train, &mut rng);
                        let pin_start = Instant::now();
                        view.pin(neg.head, neg.tail, radius).expect("store read failed (pin)");
                        metrics.pin.record_duration(pin_start.elapsed());
                        let sn = model.score_on_tape(tape, &*view, neg, Mode::Train, &mut rng);
                        let loss = margin_ranking_loss(tape, sp, sn, cfg.margin);
                        let mut buf = GradBuffer::new();
                        rmpi_runtime::with_scratch(|scratch: &mut BackwardScratch| {
                            tape.backward_into_with(loss, scratch, &mut buf);
                        });
                        (tape.value(loss).item(), buf)
                    },
                )
            };
            metrics.batches.inc();
            let results = match results {
                Ok(r) => r,
                Err(_) => {
                    report.skipped_batches += 1;
                    metrics.batches_skipped.inc();
                    model.param_store_mut().zero_grad();
                    base += len;
                    continue;
                }
            };
            // Ordered reduce — same addition sequence at any thread count.
            for (_, buf) in &results {
                buf.add_to(model.param_store_mut());
            }
            let losses_finite = results.iter().all(|(l, _)| l.is_finite());
            let grad_norm = model.param_store().grad_norm();
            if losses_finite && grad_norm.is_finite() {
                epoch_loss += results.iter().map(|(l, _)| *l as f64).sum::<f64>();
                counted += results.len();
                metrics.samples.add(results.len() as u64);
                step(model, &mut adam, cfg, len);
            } else {
                report.skipped_batches += 1;
                metrics.batches_skipped.inc();
                model.param_store_mut().zero_grad();
            }
            base += len;
        }
        report.samples += counted;
        let mean_loss = if counted == 0 { 0.0 } else { (epoch_loss / counted as f64) as f32 };
        report.epoch_losses.push(mean_loss);

        let acc = streaming_accuracy(model, reader, valid, cfg, &pool, epoch as u64).unwrap_or(0.0);
        report.valid_accuracy.push(acc);
        if acc > best_acc {
            best_acc = acc;
            best_store = model.param_store().clone();
            report.best_epoch = epoch;
            since_best = 0;
        } else {
            since_best += 1;
        }
        metrics.epochs.inc();
        if cfg.patience > 0 && since_best >= cfg.patience {
            break;
        }
    }
    *model.param_store_mut() = best_store;
    report
}

/// Pairwise ranking accuracy over `valid`, scored against pinned
/// neighbourhoods. Per-sample RNG keying matches the in-memory
/// `try_validation_accuracy` exactly, so for the same model and validation
/// set the two backends report the same number. Worker panics surface as
/// `Err`; the epoch then records accuracy 0.
pub fn streaming_accuracy<M: ScoringModel + Sync>(
    model: &M,
    reader: &StoreReader,
    valid: &[Triple],
    cfg: &TrainConfig,
    pool: &ThreadPool,
    epoch: u64,
) -> Result<f32, PoolError> {
    if valid.is_empty() {
        return Ok(0.0);
    }
    let sampler = NegativeSampler::from_pool(reader.present_entities());
    let mut subset: Vec<Triple> = valid.to_vec();
    let mut shuffle_rng =
        StdRng::seed_from_u64(mix_seed(cfg.seed, rng_stream::VALID_SHUFFLE, epoch));
    subset.shuffle(&mut shuffle_rng);
    if cfg.max_valid_samples > 0 {
        subset.truncate(cfg.max_valid_samples);
    }
    let radius = model.context_radius();
    let wins: u32 = pool
        .try_map_init(
            subset.len(),
            || NeighborhoodView::new(reader),
            |view, i| {
                let pos = subset[i];
                let mut rng = StdRng::seed_from_u64(mix_seed(
                    cfg.seed,
                    rng_stream::VALID,
                    sample_key(epoch as usize, i),
                ));
                let neg = sampler.corrupt(pos, &*view, &mut rng);
                view.pin(pos.head, pos.tail, radius).expect("store read failed (pin)");
                let sp = model.score(&*view, pos, &mut rng);
                view.pin(neg.head, neg.tail, radius).expect("store read failed (pin)");
                let sn = model.score(&*view, neg, &mut rng);
                u32::from(sp > sn)
            },
        )?
        .iter()
        .sum();
    Ok(wins as f32 / subset.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RmpiConfig;
    use crate::model::RmpiModel;
    use rmpi_autograd::ParamStore;
    use rmpi_datasets::world::{GraphGenConfig, WorldConfig};
    use rmpi_datasets::World;
    use rmpi_kg::KnowledgeGraph;
    use rmpi_store::{build_from_graph, ReadMode, StoreConfig};
    use std::path::PathBuf;

    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rmpi-stream-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_data() -> (KnowledgeGraph, Vec<Triple>) {
        let world = World::new(WorldConfig {
            comp_groups: 2,
            long_groups: 0,
            inv_groups: 1,
            sym_groups: 0,
            sub_groups: 0,
            noise_relations: 0,
            ..Default::default()
        });
        let groups: Vec<usize> = (0..world.groups().len()).collect();
        let triples = world.generate_triples(
            &groups,
            &GraphGenConfig {
                num_entities: 120,
                num_base_triples: 420,
                noise_frac: 0.0,
                seed: 5,
                ..Default::default()
            },
        );
        let split = rmpi_kg::split_triples(&triples, 0.15, 0.0, 3);
        (KnowledgeGraph::from_triples(split.train), split.valid)
    }

    #[test]
    fn index_permutation_is_a_bijection() {
        for n in [1u64, 2, 3, 7, 64, 100, 1000] {
            for seed in [0u64, 1, 42] {
                let perm = IndexPermutation::new(n, seed);
                let mut image: Vec<u64> = (0..n).map(|i| perm.apply(i)).collect();
                image.sort_unstable();
                assert!(image.iter().copied().eq(0..n), "n={n} seed={seed}");
            }
        }
        // Different seeds give different orders (n big enough to collide
        // only with negligible probability).
        let a: Vec<u64> = (0..100).map(|i| IndexPermutation::new(100, 1).apply(i)).collect();
        let b: Vec<u64> = (0..100).map(|i| IndexPermutation::new(100, 2).apply(i)).collect();
        assert_ne!(a, b);
    }

    fn params_of<M: ScoringModel>(model: &M) -> Vec<(String, Vec<f32>)> {
        let store: &ParamStore = model.param_store();
        store.ids().map(|id| (store.name(id).to_owned(), store.value(id).data().to_vec())).collect()
    }

    #[test]
    fn streaming_training_is_thread_count_invariant_and_learns() {
        let (graph, valid) = tiny_data();
        let dir = temp_store("threads");
        build_from_graph(&dir, StoreConfig::default(), &graph).unwrap();
        let reader = rmpi_store::StoreReader::open(&dir, ReadMode::default()).unwrap();
        let cfg = TrainConfig {
            epochs: 3,
            max_samples_per_epoch: 120,
            max_valid_samples: 60,
            patience: 0,
            seed: 7,
            threads: 1,
            ..Default::default()
        };
        let mk = || {
            RmpiModel::new(RmpiConfig { dim: 12, edge_dropout: 0.2, ..Default::default() }, 8, 0)
        };

        let mut m1 = mk();
        let r1 = train_streaming(&mut m1, &reader, &valid, &cfg);
        let mut m4 = mk();
        let r4 = train_streaming(&mut m4, &reader, &valid, &TrainConfig { threads: 4, ..cfg });

        assert_eq!(r1.epoch_losses, r4.epoch_losses, "losses must be bit-identical");
        assert_eq!(r1.valid_accuracy, r4.valid_accuracy);
        assert_eq!(params_of(&m1), params_of(&m4), "params must be bit-identical");
        assert!(
            r1.epoch_losses.last().unwrap() < r1.epoch_losses.first().unwrap(),
            "loss should drop: {:?}",
            r1.epoch_losses
        );
        assert!(r1.best_accuracy() > 0.5, "accuracy {:?}", r1.valid_accuracy);
        assert_eq!(r1.skipped_batches, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_validation_matches_in_memory_exactly() {
        let (graph, valid) = tiny_data();
        let dir = temp_store("validation");
        build_from_graph(&dir, StoreConfig::default(), &graph).unwrap();
        let reader =
            rmpi_store::StoreReader::open(&dir, ReadMode::Stream { cache_blocks: 8 }).unwrap();
        let model = RmpiModel::new(RmpiConfig { dim: 8, ..Default::default() }, 8, 3);
        let cfg = TrainConfig { max_valid_samples: 50, seed: 11, ..Default::default() };
        let pool = ThreadPool::sequential();
        let csr = rmpi_kg::CsrGraph::from_graph(&graph);
        for epoch in [0u64, 1, 5] {
            let streamed = streaming_accuracy(&model, &reader, &valid, &cfg, &pool, epoch).unwrap();
            let resident = crate::trainer::try_validation_accuracy(
                &model, &graph, &csr, &valid, &cfg, &pool, epoch,
            )
            .unwrap();
            assert_eq!(streamed, resident, "epoch {epoch}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
