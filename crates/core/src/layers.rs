//! Relational message passing layers (paper Eq. 6–9, Algorithm 1).

use rand::rngs::StdRng;
use rmpi_autograd::{init, ParamId, ParamStore, Tape, Tensor, Var};
use rmpi_subgraph::relview::{RelViewGraph, NUM_EDGE_TYPES, TARGET_NODE};
use rmpi_subgraph::PruningSchedule;

/// Per-layer, per-edge-type transformation matrices `W_e^k`.
#[derive(Clone, Debug)]
pub struct MessagePassingWeights {
    /// `w[k][e]` is the `(dim, dim)` matrix for edge type `e` at layer `k`.
    pub w: Vec<Vec<ParamId>>,
}

impl MessagePassingWeights {
    /// Register the `num_layers × 6` matrices under `prefix`.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        num_layers: usize,
        dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let w = (0..num_layers)
            .map(|k| {
                (0..NUM_EDGE_TYPES)
                    .map(|e| {
                        store.create(
                            &format!("{prefix}_l{k}_e{e}"),
                            init::xavier_uniform(&[dim, dim], rng),
                        )
                    })
                    .collect()
            })
            .collect();
        MessagePassingWeights { w }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.w.len()
    }
}

/// Attention behaviour of the aggregation.
#[derive(Clone, Copy, Debug)]
pub struct AttentionConfig {
    /// Target-aware attention on/off (RMPI-TA).
    pub enabled: bool,
    /// LeakyReLU negative slope for the attention logits.
    pub leaky_slope: f32,
}

/// Run K layers of pruned relational message passing and return the target
/// node's final representation `h_{r_t}^K`.
///
/// `h0` must provide an initial representation for every node in
/// `schedule.relevant_nodes()` (node-indexed). Nodes outside the pruned set
/// are never touched — that is the efficiency win of Algorithm 1.
#[allow(clippy::too_many_arguments)]
pub fn relational_message_passing(
    tape: &mut Tape,
    store: &ParamStore,
    weights: &MessagePassingWeights,
    attention: AttentionConfig,
    rv: &RelViewGraph,
    schedule: &PruningSchedule,
    h0: &[Option<Var>],
    dim: usize,
) -> Var {
    let k_layers = weights.num_layers();
    assert_eq!(schedule.k, k_layers, "schedule depth must match layer count");
    let mut h: Vec<Option<Var>> = h0.to_vec();
    assert!(h[TARGET_NODE].is_some(), "target node needs an initial representation");

    // materialise W_e^k vars lazily per layer
    for layer in 1..=k_layers {
        let wk: Vec<Var> = weights.w[layer - 1].iter().map(|&id| tape.param(store, id)).collect();
        let active = schedule.active_nodes(layer);
        let h_target_prev = h[TARGET_NODE].expect("target representation");
        let mut updates: Vec<(usize, Var)> = Vec::with_capacity(active.len());
        for &node in &active {
            let incoming = rv.incoming(node);
            if incoming.is_empty() {
                continue; // nothing to aggregate; representation carries over
            }
            let h_prev = h[node].expect("active node must be initialised");
            let is_final_target = layer == k_layers && node == TARGET_NODE;

            // group incoming neighbours by edge type
            let mut groups: [Vec<usize>; NUM_EDGE_TYPES] = Default::default();
            for e in incoming {
                if h[e.src].is_some() {
                    groups[e.etype.index()].push(e.src);
                }
            }

            let mut type_sums: Vec<Var> = Vec::new();
            for (etype, members) in groups.iter().enumerate() {
                if members.is_empty() {
                    continue;
                }
                // transformed messages W_e h_j
                let msgs: Vec<Var> = members
                    .iter()
                    .map(|&j| tape.matvec(wk[etype], h[j].expect("initialised")))
                    .collect();
                let stacked = tape.stack(&msgs);
                let weights_vec = if attention.enabled && !is_final_target {
                    // Eq. 7: softmax over this edge-type group of
                    // LeakyReLU(h_rt^{k-1} · h_rj^{k-1})
                    let logits: Vec<Var> = members
                        .iter()
                        .map(|&j| tape.dot(h_target_prev, h[j].expect("initialised")))
                        .collect();
                    let cat = tape.concat(&logits);
                    let act = tape.leaky_relu(cat, attention.leaky_slope);
                    tape.softmax(act)
                } else {
                    // Eq. 6 without attention / Eq. 9 final equal aggregation
                    tape.constant(Tensor::full(&[members.len()], 1.0))
                };
                type_sums.push(tape.vecmat(weights_vec, stacked));
            }

            let agg = match type_sums.len() {
                0 => tape.constant(Tensor::zeros(&[dim])),
                1 => type_sums[0],
                _ => {
                    let mut acc = type_sums[0];
                    for &t in &type_sums[1..] {
                        acc = tape.add(acc, t);
                    }
                    acc
                }
            };
            // σ1 = ReLU in both Eq. 6 and Eq. 9
            let activated = tape.relu(agg);
            // residual combine (Eq. 8 / Eq. 9)
            let combined = tape.add(activated, h_prev);
            updates.push((node, combined));
        }
        for (node, var) in updates {
            h[node] = Some(var);
        }
    }
    h[TARGET_NODE].expect("target representation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rmpi_autograd::gradcheck::check_gradients;
    use rmpi_kg::{KnowledgeGraph, Triple};
    use rmpi_subgraph::enclosing_subgraph;

    fn setup() -> (RelViewGraph, PruningSchedule) {
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
        ]);
        let sg = enclosing_subgraph(&g, Triple::new(0u32, 9u32, 3u32), 2);
        let rv = RelViewGraph::from_subgraph(&sg);
        let sched = PruningSchedule::new(&rv, 2);
        (rv, sched)
    }

    fn run_once(ta: bool) -> Vec<f32> {
        let (rv, sched) = setup();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let dim = 6;
        let weights = MessagePassingWeights::new(&mut store, "mp", 2, dim, &mut rng);
        let emb = store.create("emb", init::xavier_uniform(&[10, dim], &mut rng));
        let mut tape = Tape::new();
        let table = tape.param(&store, emb);
        let h0: Vec<Option<Var>> =
            rv.nodes.iter().map(|n| Some(tape.row(table, n.relation.index()))).collect();
        let out = relational_message_passing(
            &mut tape,
            &store,
            &weights,
            AttentionConfig { enabled: ta, leaky_slope: 0.2 },
            &rv,
            &sched,
            &h0,
            dim,
        );
        tape.value(out).data().to_vec()
    }

    #[test]
    fn produces_dim_sized_output() {
        assert_eq!(run_once(false).len(), 6);
        assert_eq!(run_once(true).len(), 6);
    }

    #[test]
    fn attention_changes_the_output() {
        assert_ne!(run_once(false), run_once(true));
    }

    #[test]
    fn isolated_target_passes_through_initial_embedding() {
        // relview with only the target node
        let g = KnowledgeGraph::from_triples(vec![Triple::new(7u32, 0u32, 8u32)]);
        let sg = enclosing_subgraph(&g, Triple::new(0u32, 1u32, 1u32), 2);
        let rv = RelViewGraph::from_subgraph(&sg);
        let sched = PruningSchedule::new(&rv, 2);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(6);
        let dim = 4;
        let weights = MessagePassingWeights::new(&mut store, "mp", 2, dim, &mut rng);
        let mut tape = Tape::new();
        let h0v = tape.constant(Tensor::vector(vec![1.0, -2.0, 3.0, 0.5]));
        let out = relational_message_passing(
            &mut tape,
            &store,
            &weights,
            AttentionConfig { enabled: false, leaky_slope: 0.2 },
            &rv,
            &sched,
            &[Some(h0v)],
            dim,
        );
        assert_eq!(tape.value(out).data(), &[1.0, -2.0, 3.0, 0.5]);
    }

    #[test]
    fn gradients_flow_to_all_layer_weights() {
        let (rv, sched) = setup();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let dim = 4;
        let weights = MessagePassingWeights::new(&mut store, "mp", 2, dim, &mut rng);
        let emb = store.create("emb", init::xavier_uniform(&[10, dim], &mut rng));
        let mut tape = Tape::new();
        let table = tape.param(&store, emb);
        let h0: Vec<Option<Var>> =
            rv.nodes.iter().map(|n| Some(tape.row(table, n.relation.index()))).collect();
        let out = relational_message_passing(
            &mut tape,
            &store,
            &weights,
            AttentionConfig { enabled: true, leaky_slope: 0.2 },
            &rv,
            &sched,
            &h0,
            dim,
        );
        let loss = tape.sum(out);
        tape.backward(loss, &mut store);
        assert!(store.grad(emb).norm() > 0.0, "embedding grads must flow");
        // the target's 1-hop neighbours exist, so at least one last-layer W_e
        // must receive gradient
        let last_layer_grad: f32 = weights.w[1].iter().map(|&id| store.grad(id).norm()).sum();
        assert!(last_layer_grad > 0.0, "final-layer weights must receive gradient");
    }

    /// Algorithm 1's central correctness claim: pruning skips only updates
    /// that cannot influence the target, so the target's final representation
    /// must be bit-identical to unpruned (all-nodes-every-layer) passing.
    #[test]
    fn pruned_schedule_matches_full_schedule_on_target() {
        for ta in [false, true] {
            for k in 1..=3 {
                let (rv, _) = setup();
                let pruned = PruningSchedule::new(&rv, k);
                let full = PruningSchedule { dist: vec![0; rv.num_nodes()], k };
                let mut store = ParamStore::new();
                let mut rng = StdRng::seed_from_u64(11);
                let dim = 5;
                let weights = MessagePassingWeights::new(&mut store, "mp", k, dim, &mut rng);
                let emb = store.create("emb", init::xavier_uniform(&[10, dim], &mut rng));
                let run = |sched: &PruningSchedule| -> Vec<f32> {
                    let mut tape = Tape::new();
                    let table = tape.param(&store, emb);
                    let h0: Vec<Option<Var>> = rv
                        .nodes
                        .iter()
                        .map(|n| Some(tape.row(table, n.relation.index())))
                        .collect();
                    let out = relational_message_passing(
                        &mut tape,
                        &store,
                        &weights,
                        AttentionConfig { enabled: ta, leaky_slope: 0.2 },
                        &rv,
                        sched,
                        &h0,
                        dim,
                    );
                    tape.value(out).data().to_vec()
                };
                assert_eq!(
                    run(&pruned),
                    run(&full),
                    "ta={ta} k={k}: pruning changed the target output"
                );
            }
        }
    }

    #[test]
    fn gradcheck_through_message_passing() {
        let (rv, sched) = setup();
        let dim = 3;
        let mut rng = StdRng::seed_from_u64(8);
        // build named params: emb + 2 layers x 6 types
        let mut params: Vec<(String, Tensor)> =
            vec![("emb".to_owned(), init::xavier_uniform(&[10, dim], &mut rng))];
        for k in 0..2 {
            for e in 0..NUM_EDGE_TYPES {
                params.push((format!("mp_l{k}_e{e}"), init::xavier_uniform(&[dim, dim], &mut rng)));
            }
        }
        let named: Vec<(&str, Tensor)> =
            params.iter().map(|(n, t)| (n.as_str(), t.clone())).collect();
        check_gradients(&named, |tape, store| {
            let weights = MessagePassingWeights {
                w: (0..2)
                    .map(|k| {
                        (0..NUM_EDGE_TYPES)
                            .map(|e| store.get(&format!("mp_l{k}_e{e}")).unwrap())
                            .collect()
                    })
                    .collect(),
            };
            let table = tape.param(store, store.get("emb").unwrap());
            let h0: Vec<Option<Var>> =
                rv.nodes.iter().map(|n| Some(tape.row(table, n.relation.index()))).collect();
            let out = relational_message_passing(
                tape,
                store,
                &weights,
                AttentionConfig { enabled: true, leaky_slope: 0.2 },
                &rv,
                &sched,
                &h0,
                dim,
            );
            let t = tape.tanh(out);
            tape.sum(t)
        });
    }
}
