//! Per-target forward-pass inputs: subgraph extraction, edge dropout,
//! relation-view transform, pruning schedule and disclosing neighbours.

use crate::config::RmpiConfig;
use crate::traits::Mode;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rmpi_kg::{GraphAccess, RelationId, Triple};
use rmpi_subgraph::{
    double_radius_labels, enclosing_subgraph, PruningSchedule, RelViewGraph, Subgraph,
};

/// Everything the RMPI forward pass needs for one target triple.
#[derive(Clone, Debug)]
pub struct SampleInput {
    /// Relation view of the (possibly edge-dropped) enclosing subgraph.
    pub relview: RelViewGraph,
    /// Pruned layer schedule over `relview`.
    pub schedule: PruningSchedule,
    /// Relations labelling the target's one-hop *disclosing* neighbourhood
    /// (deduplicated) — the NE module's input.
    pub disclosing_rels: Vec<RelationId>,
    /// The target triple.
    pub target: Triple,
    /// Whether the enclosing subgraph had no edges before transformation.
    pub enclosing_empty: bool,
    /// Normalised histogram of the subgraph entities' double-radius labels
    /// (present only when `cfg.entity_clues` is on).
    pub label_histogram: Option<Vec<f32>>,
}

/// Build the forward-pass input for `target` against `graph`.
///
/// In [`Mode::Train`], subgraph edges are dropped independently with
/// probability `cfg.edge_dropout` (the paper's edge dropout); oversized
/// subgraphs are uniformly downsampled to `cfg.max_subgraph_edges` in both
/// modes.
pub fn prepare_sample<G: GraphAccess + ?Sized>(
    graph: &G,
    target: Triple,
    cfg: &RmpiConfig,
    mode: Mode,
    rng: &mut StdRng,
) -> SampleInput {
    // `core.extract.us` times the full input preparation (extraction,
    // budget, relation view, schedule) — the phase the paper's efficiency
    // analysis singles out. Handle cached per process; recording is a few
    // relaxed atomics.
    static EXTRACT_US: std::sync::OnceLock<rmpi_obs::Histogram> = std::sync::OnceLock::new();
    static EXTRACT_EDGES: std::sync::OnceLock<rmpi_obs::Counter> = std::sync::OnceLock::new();
    static EXTRACT_ENTITIES: std::sync::OnceLock<rmpi_obs::Counter> = std::sync::OnceLock::new();
    let extract_us = EXTRACT_US.get_or_init(|| rmpi_obs::global().histogram("core.extract.us"));
    let extract_start = std::time::Instant::now();
    let mut sg = enclosing_subgraph(graph, target, cfg.hop);
    EXTRACT_EDGES
        .get_or_init(|| rmpi_obs::global().counter("core.extract.edges"))
        .add(sg.num_edges() as u64);
    EXTRACT_ENTITIES
        .get_or_init(|| rmpi_obs::global().counter("core.extract.entities"))
        .add(sg.num_entities() as u64);
    let enclosing_empty = sg.is_empty();
    apply_edge_budget(&mut sg, cfg, mode, rng);
    let relview = RelViewGraph::from_subgraph(&sg);
    let schedule = PruningSchedule::new(&relview, cfg.num_layers);

    let disclosing_rels =
        if cfg.ne { disclosing_one_hop_relations(graph, target, cfg.hop) } else { Vec::new() };

    let label_histogram = cfg.entity_clues.then(|| label_histogram(&sg, cfg.hop + 1));

    extract_us.record_duration(extract_start.elapsed());
    SampleInput { relview, schedule, disclosing_rels, target, enclosing_empty, label_histogram }
}

/// Length of the entity-clue histogram for a given maximum label distance.
pub fn label_histogram_len(max_dist: usize) -> usize {
    2 * (max_dist + 1)
}

/// Normalised histogram of double-radius labels over the subgraph entities:
/// counts of each `d(i,u)` value followed by counts of each `d(i,v)` value,
/// both divided by the number of entities.
pub fn label_histogram(sg: &Subgraph, max_dist: usize) -> Vec<f32> {
    let labels = double_radius_labels(sg, max_dist);
    let w = max_dist + 1;
    let mut hist = vec![0f32; 2 * w];
    for l in labels.values() {
        hist[l.du.min(max_dist)] += 1.0;
        hist[w + l.dv.min(max_dist)] += 1.0;
    }
    let n = labels.len().max(1) as f32;
    for h in &mut hist {
        *h /= n;
    }
    hist
}

/// Edge dropout (training) and the hard size cap (both modes).
fn apply_edge_budget(sg: &mut Subgraph, cfg: &RmpiConfig, mode: Mode, rng: &mut StdRng) {
    if mode == Mode::Train && cfg.edge_dropout > 0.0 {
        sg.triples.retain(|_| !rng.gen_bool(cfg.edge_dropout));
    }
    if sg.triples.len() > cfg.max_subgraph_edges {
        sg.triples.shuffle(rng);
        sg.triples.truncate(cfg.max_subgraph_edges);
        sg.triples.sort_unstable();
    }
}

/// Distinct relations of the target's one-hop disclosing neighbourhood: all
/// edges incident to the target head or tail (§III-F samples the one-hop
/// neighbours of the target relation node in the disclosing relation view —
/// which are exactly the edges sharing an entity with the target).
///
/// Computed by scanning the four adjacency lists of the endpoints directly —
/// for `hop >= 1` that set equals "edges of the disclosing subgraph incident
/// to an endpoint" (an edge touching an endpoint always has its other end
/// within one hop, hence inside the subgraph), without paying for a full
/// K-hop extraction. At `hop == 0` the disclosing subgraph retains only the
/// endpoints themselves, so edges leaving the pair are excluded.
pub fn disclosing_one_hop_relations<G: GraphAccess + ?Sized>(
    graph: &G,
    target: Triple,
    hop: usize,
) -> Vec<RelationId> {
    let (u, v) = (target.head, target.tail);
    let mut rels: Vec<RelationId> = Vec::new();
    let endpoints = if u == v { &[u][..] } else { &[u, v][..] };
    for &e in endpoints {
        for edge in graph.out_edges(e).iter().chain(graph.in_edges(e)) {
            if hop == 0 && edge.neighbor != u && edge.neighbor != v {
                continue;
            }
            let t = graph.triple(edge.triple_idx);
            if t == target {
                continue;
            }
            rels.push(t.relation);
        }
    }
    rels.sort_unstable();
    rels.dedup();
    rels
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rmpi_kg::KnowledgeGraph;

    fn graph() -> KnowledgeGraph {
        KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
            Triple::new(3u32, 4u32, 4u32),
        ])
    }

    fn cfg() -> RmpiConfig {
        RmpiConfig { ne: true, edge_dropout: 0.0, ..Default::default() }
    }

    #[test]
    fn eval_mode_is_deterministic_and_complete() {
        let g = graph();
        let t = Triple::new(0u32, 9u32, 3u32);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let s = prepare_sample(&g, t, &cfg(), Mode::Eval, &mut rng);
        assert_eq!(s.relview.num_nodes(), 5); // 4 enclosing edges + target
        assert!(!s.enclosing_empty);
        assert_eq!(s.target, t);
    }

    #[test]
    fn train_mode_dropout_removes_edges() {
        let g = graph();
        let t = Triple::new(0u32, 9u32, 3u32);
        let cfg = RmpiConfig { edge_dropout: 0.99, ..cfg() };
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = prepare_sample(&g, t, &cfg, Mode::Train, &mut rng);
        assert!(s.relview.num_nodes() < 5, "dropout at 0.99 should remove edges");
    }

    #[test]
    fn size_cap_applies() {
        // star graph: many parallel edges between 0 and 1
        let triples: Vec<Triple> = (0..50u32).map(|r| Triple::new(0u32, r, 1u32)).collect();
        let g = KnowledgeGraph::from_triples(triples);
        let t = Triple::new(0u32, 99u32, 1u32);
        let cfg = RmpiConfig {
            max_subgraph_edges: 10,
            ne: false,
            edge_dropout: 0.0,
            ..Default::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let s = prepare_sample(&g, t, &cfg, Mode::Eval, &mut rng);
        assert_eq!(s.relview.num_nodes(), 11);
    }

    #[test]
    fn disclosing_relations_cover_pendant_edges() {
        let g = graph();
        let t = Triple::new(0u32, 9u32, 3u32);
        let rels = disclosing_one_hop_relations(&g, t, 2);
        // edges incident to 0 or 3: r0, r1, r2, r3, r4 (3->4 pendant)
        assert_eq!(
            rels,
            vec![RelationId(0), RelationId(1), RelationId(2), RelationId(3), RelationId(4)]
        );
    }

    #[test]
    fn empty_enclosing_flag_set() {
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(5u32, 0u32, 6u32),
        ]);
        let t = Triple::new(0u32, 9u32, 5u32);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let s = prepare_sample(&g, t, &cfg(), Mode::Eval, &mut rng);
        assert!(s.enclosing_empty);
        assert_eq!(s.relview.num_nodes(), 1);
        // disclosing still sees the pendant edges at both endpoints
        assert!(!s.disclosing_rels.is_empty());
    }

    #[test]
    fn entity_clue_histogram_is_normalized() {
        let g = graph();
        let t = Triple::new(0u32, 9u32, 3u32);
        let cfg =
            RmpiConfig { entity_clues: true, ne: false, edge_dropout: 0.0, ..Default::default() };
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let s = prepare_sample(&g, t, &cfg, Mode::Eval, &mut rng);
        let hist = s.label_histogram.expect("histogram requested");
        assert_eq!(hist.len(), label_histogram_len(cfg.hop + 1));
        // each half of the histogram sums to 1 (one label per entity)
        let w = hist.len() / 2;
        let du_sum: f32 = hist[..w].iter().sum();
        let dv_sum: f32 = hist[w..].iter().sum();
        assert!((du_sum - 1.0).abs() < 1e-5, "du half sums to {du_sum}");
        assert!((dv_sum - 1.0).abs() < 1e-5, "dv half sums to {dv_sum}");
    }

    #[test]
    fn ne_disabled_skips_disclosing_work() {
        let g = graph();
        let t = Triple::new(0u32, 9u32, 3u32);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let cfg = RmpiConfig { ne: false, edge_dropout: 0.0, ..Default::default() };
        let s = prepare_sample(&g, t, &cfg, Mode::Eval, &mut rng);
        assert!(s.disclosing_rels.is_empty());
    }
}
