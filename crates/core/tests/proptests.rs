//! Property-based tests over the RMPI model: every variant produces finite,
//! deterministic scores on arbitrary graphs, and the margin loss behaves.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rmpi_core::config::Fusion;
use rmpi_core::loss::margin_ranking_loss;
use rmpi_core::{RmpiConfig, RmpiModel, ScoringModel};
use rmpi_kg::{KnowledgeGraph, Triple};

fn arb_graph() -> impl Strategy<Value = (KnowledgeGraph, Triple)> {
    (prop::collection::vec((0u32..12, 0u32..4, 0u32..12), 1..40), (0u32..12, 0u32..6, 0u32..12))
        .prop_map(|(edges, (h, r, t))| {
            let triples: Vec<Triple> = edges
                .into_iter()
                .filter(|(a, _, b)| a != b)
                .map(|(a, rel, b)| Triple::new(a, rel, b))
                .collect();
            let triples =
                if triples.is_empty() { vec![Triple::new(0u32, 0u32, 1u32)] } else { triples };
            (KnowledgeGraph::from_triples(triples), Triple::new(h, r, t))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_variants_finite_and_deterministic((g, target) in arb_graph(), seed in 0u64..20) {
        for cfg in [
            RmpiConfig { dim: 6, edge_dropout: 0.0, ..RmpiConfig::base() },
            RmpiConfig { dim: 6, edge_dropout: 0.0, ..RmpiConfig::ne() },
            RmpiConfig { dim: 6, edge_dropout: 0.0, ..RmpiConfig::ne_ta() },
            RmpiConfig { dim: 6, edge_dropout: 0.0, fusion: Fusion::Gated, ..RmpiConfig::ne() },
            RmpiConfig { dim: 6, edge_dropout: 0.0, entity_clues: true, ..RmpiConfig::base() },
        ] {
            let model = RmpiModel::new(cfg, 6, seed);
            let a = model.score(&g, target, &mut StdRng::seed_from_u64(0));
            let b = model.score(&g, target, &mut StdRng::seed_from_u64(77));
            prop_assert!(a.is_finite(), "{}: non-finite score", model.name());
            prop_assert_eq!(a, b, "eval scoring must ignore the rng");
        }
    }

    #[test]
    fn backward_never_produces_nan((g, target) in arb_graph(), seed in 0u64..20) {
        use rmpi_autograd::Tape;
        use rmpi_core::Mode;
        let cfg = RmpiConfig { dim: 6, edge_dropout: 0.0, ..RmpiConfig::ne_ta() };
        let mut model = RmpiModel::new(cfg, 6, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tape = Tape::new();
        let s = model.score_on_tape(&mut tape, &g, target, Mode::Eval, &mut rng);
        tape.backward(s, model.param_store_mut());
        let store = model.param_store();
        for id in store.ids() {
            prop_assert!(
                store.grad(id).data().iter().all(|x| x.is_finite()),
                "non-finite gradient in {}",
                store.name(id)
            );
        }
    }

    #[test]
    fn margin_loss_bounds(pos in -20.0f32..20.0, neg in -20.0f32..20.0, margin in 0.0f32..15.0) {
        use rmpi_autograd::{Tape, Tensor};
        let mut tape = Tape::new();
        let p = tape.constant(Tensor::scalar(pos));
        let n = tape.constant(Tensor::scalar(neg));
        let l = margin_ranking_loss(&mut tape, p, n, margin);
        let v = tape.value(l).item();
        prop_assert!(v >= 0.0);
        prop_assert!((v - (neg - pos + margin).max(0.0)).abs() < 1e-4);
    }
}
