//! Kill-and-resume pinning: a training run interrupted mid-epoch and resumed
//! from its last checkpoint must finish **bit-identical** to a run that was
//! never interrupted — at every thread count.
//!
//! The interruption is a panic raised from the `TrainEvent::BatchEnd`
//! callback (the main training thread), which unwinds out of
//! `Trainer::train` exactly like a crash would: no teardown code runs, only
//! what was already durably checkpointed survives.

use rmpi_core::trainer::{CheckpointConfig, Trainer};
use rmpi_core::{
    latest_checkpoint, load_checkpoint, RmpiConfig, RmpiModel, ScoringModel, TrainConfig,
    TrainEvent, TrainReport,
};
use rmpi_datasets::world::{GraphGenConfig, WorldConfig};
use rmpi_datasets::World;
use rmpi_kg::{KnowledgeGraph, Triple};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

fn tiny_data() -> (KnowledgeGraph, Vec<Triple>, Vec<Triple>) {
    let world = World::new(WorldConfig {
        comp_groups: 2,
        long_groups: 0,
        inv_groups: 1,
        sym_groups: 0,
        sub_groups: 0,
        noise_relations: 0,
        ..Default::default()
    });
    let groups: Vec<usize> = (0..world.groups().len()).collect();
    let triples = world.generate_triples(
        &groups,
        &GraphGenConfig {
            num_entities: 120,
            num_base_triples: 420,
            noise_frac: 0.0,
            seed: 5,
            ..Default::default()
        },
    );
    let split = rmpi_kg::split_triples(&triples, 0.15, 0.0, 3);
    let graph = KnowledgeGraph::from_triples(split.train.clone());
    (graph, split.train, split.valid)
}

fn fresh_model() -> RmpiModel {
    RmpiModel::new(RmpiConfig { dim: 8, ..Default::default() }, 8, 11)
}

fn train_cfg(threads: usize) -> TrainConfig {
    TrainConfig {
        epochs: 3,
        batch_size: 16,
        max_samples_per_epoch: 48, // 3 batches per epoch
        max_valid_samples: 20,
        patience: 0,
        seed: 21,
        threads,
        ..Default::default()
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rmpi-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_params_identical(a: &RmpiModel, b: &RmpiModel, what: &str) {
    let (pa, pb) = (a.param_store(), b.param_store());
    assert_eq!(pa.len(), pb.len(), "{what}: parameter count");
    for (ia, ib) in pa.ids().zip(pb.ids()) {
        assert_eq!(pa.name(ia), pb.name(ib), "{what}: parameter order");
        assert_eq!(
            pa.value(ia).data(),
            pb.value(ib).data(),
            "{what}: parameter {:?} must be bit-identical",
            pa.name(ia)
        );
    }
}

fn assert_reports_match(full: &TrainReport, resumed: &TrainReport, what: &str) {
    assert_eq!(full.epoch_losses, resumed.epoch_losses, "{what}: epoch losses");
    assert_eq!(full.valid_accuracy, resumed.valid_accuracy, "{what}: validation accuracy");
    assert_eq!(full.best_epoch, resumed.best_epoch, "{what}: best epoch");
}

#[test]
fn kill_mid_epoch_then_resume_is_bit_identical() {
    let (graph, targets, valid) = tiny_data();
    for threads in [1, 2, 4] {
        let cfg = train_cfg(threads);

        // Reference: the run that never crashes.
        let mut reference = fresh_model();
        let full = Trainer::new(cfg).train(&mut reference, &graph, &targets, &valid);
        assert_eq!(full.epoch_losses.len(), 3);

        // Crashing run: checkpoint every epoch, die in the middle of epoch 1
        // (after epoch 0's checkpoint landed, with epoch 1 half done).
        let root = tmp_dir(&format!("mid-{threads}"));
        let mut victim = fresh_model();
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            Trainer::new(cfg)
                .with_checkpointing(CheckpointConfig::new(&root))
                .on_event(|ev| {
                    if let TrainEvent::BatchEnd { epoch: 1, batch: 1 } = ev {
                        panic!("simulated crash mid-epoch");
                    }
                })
                .train(&mut victim, &graph, &targets, &valid)
        }));
        assert!(crashed.is_err(), "the injected crash must unwind out of train()");
        let ckpt_dir = latest_checkpoint(&root)
            .unwrap()
            .expect("epoch 0 checkpoint must have been written before the crash");
        assert_eq!(load_checkpoint(&ckpt_dir).unwrap().next_epoch, 1);

        // Resume: a fresh process would construct the model the same way,
        // then continue from the newest checkpoint.
        let mut survivor = fresh_model();
        let resumed = Trainer::new(cfg).resume_latest(&root).unwrap().train(
            &mut survivor,
            &graph,
            &targets,
            &valid,
        );

        assert_eq!(resumed.resumed_from, Some(1), "threads={threads}");
        assert_reports_match(&full, &resumed, &format!("threads={threads}"));
        assert_params_identical(&reference, &survivor, &format!("threads={threads}"));
        std::fs::remove_dir_all(&root).unwrap();
    }
}

#[test]
fn crash_before_first_checkpoint_resumes_from_scratch() {
    let (graph, targets, valid) = tiny_data();
    let cfg = train_cfg(2);

    let mut reference = fresh_model();
    let full = Trainer::new(cfg).train(&mut reference, &graph, &targets, &valid);

    // Die during epoch 0: no checkpoint exists yet.
    let root = tmp_dir("scratch");
    let mut victim = fresh_model();
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        Trainer::new(cfg)
            .with_checkpointing(CheckpointConfig::new(&root))
            .on_event(|ev| {
                if let TrainEvent::BatchEnd { epoch: 0, batch: 0 } = ev {
                    panic!("simulated crash before any checkpoint");
                }
            })
            .train(&mut victim, &graph, &targets, &valid)
    }));
    assert!(crashed.is_err());
    assert!(latest_checkpoint(&root).unwrap().is_none(), "no checkpoint should exist yet");

    // resume_latest on an empty root is a fresh start — still bit-identical.
    let mut survivor = fresh_model();
    let resumed = Trainer::new(cfg).resume_latest(&root).unwrap().train(
        &mut survivor,
        &graph,
        &targets,
        &valid,
    );
    assert_eq!(resumed.resumed_from, None);
    assert_reports_match(&full, &resumed, "from-scratch");
    assert_params_identical(&reference, &survivor, "from-scratch");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn resume_preserves_early_stopping_decision() {
    // A checkpoint written in the same epoch the patience budget runs out
    // must not train further when resumed: the resumed run stops at once and
    // restores the same best snapshot.
    let (graph, targets, valid) = tiny_data();
    let cfg = TrainConfig { epochs: 30, patience: 2, ..train_cfg(1) };

    let mut reference = fresh_model();
    let full = Trainer::new(cfg).train(&mut reference, &graph, &targets, &valid);
    let ran = full.epoch_losses.len();
    assert!(ran < 30, "patience must stop the reference run early");

    // Checkpointed run (uninterrupted) leaves its final checkpoint behind...
    let root = tmp_dir("patience");
    let mut victim = fresh_model();
    let checkpointed = Trainer::new(cfg).with_checkpointing(CheckpointConfig::new(&root)).train(
        &mut victim,
        &graph,
        &targets,
        &valid,
    );
    assert_eq!(checkpointed.epoch_losses.len(), ran);

    // ...and a resume from it must refuse to run more epochs.
    let mut survivor = fresh_model();
    let resumed = Trainer::new(cfg).resume_latest(&root).unwrap().train(
        &mut survivor,
        &graph,
        &targets,
        &valid,
    );
    assert_eq!(resumed.epoch_losses.len(), ran, "resume must honour the exhausted patience");
    assert_reports_match(&full, &resumed, "patience");
    assert_params_identical(&reference, &survivor, "patience");
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn resume_under_wrong_seed_is_refused() {
    let (graph, targets, valid) = tiny_data();
    let cfg = train_cfg(1);
    let root = tmp_dir("seed");
    let mut model = fresh_model();
    Trainer::new(cfg)
        .with_checkpointing(CheckpointConfig::new(&root))
        .train(&mut model, &graph, &targets, &valid);

    let bad = TrainConfig { seed: 99, ..cfg };
    let mut other = fresh_model();
    let err = catch_unwind(AssertUnwindSafe(|| {
        Trainer::new(bad).resume_latest(&root).unwrap().train(&mut other, &graph, &targets, &valid)
    }));
    let payload = err.unwrap_err();
    let msg = rmpi_runtime::panic_message(payload.as_ref());
    assert!(msg.contains("seed"), "refusal must name the seed mismatch: {msg}");
    std::fs::remove_dir_all(&root).unwrap();
}
