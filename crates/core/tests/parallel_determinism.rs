//! Thread-count invariance: training with 1 worker and with 4 workers must
//! produce *bit-identical* parameters and reports. This is the contract the
//! data-parallel engine promises (DESIGN.md, "Threading model") — per-sample
//! RNG streams plus ordered gradient reduction make the schedule invisible.

use rmpi_core::{train_model, RmpiConfig, RmpiModel, ScoringModel, TrainConfig, TrainReport};
use rmpi_datasets::world::{GraphGenConfig, WorldConfig};
use rmpi_datasets::World;
use rmpi_kg::{KnowledgeGraph, Triple};

fn tiny_data() -> (KnowledgeGraph, Vec<Triple>, Vec<Triple>) {
    let world = World::new(WorldConfig {
        comp_groups: 2,
        long_groups: 0,
        inv_groups: 1,
        sym_groups: 0,
        sub_groups: 0,
        noise_relations: 0,
        ..Default::default()
    });
    let groups: Vec<usize> = (0..world.groups().len()).collect();
    let triples = world.generate_triples(
        &groups,
        &GraphGenConfig {
            num_entities: 100,
            num_base_triples: 320,
            noise_frac: 0.0,
            seed: 8,
            ..Default::default()
        },
    );
    let split = rmpi_kg::split_triples(&triples, 0.15, 0.0, 3);
    let graph = KnowledgeGraph::from_triples(split.train.clone());
    (graph, split.train, split.valid)
}

fn train_with(threads: usize) -> (RmpiModel, TrainReport) {
    let (graph, targets, valid) = tiny_data();
    let mut model =
        RmpiModel::new(RmpiConfig { dim: 10, edge_dropout: 0.2, ..Default::default() }, 8, 42);
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 8,
        max_samples_per_epoch: 120,
        max_valid_samples: 40,
        patience: 0,
        seed: 7,
        threads,
        ..Default::default()
    };
    let report = train_model(&mut model, &graph, &targets, &valid, &cfg);
    (model, report)
}

#[test]
fn thread_count_does_not_change_results() {
    let (m1, r1) = train_with(1);
    let (m4, r4) = train_with(4);

    assert_eq!(r1.epoch_losses, r4.epoch_losses, "epoch losses must match bit-for-bit");
    assert_eq!(r1.valid_accuracy, r4.valid_accuracy, "validation accuracies must match");
    assert_eq!(r1.best_epoch, r4.best_epoch);

    let (s1, s4) = (m1.param_store(), m4.param_store());
    assert_eq!(s1.len(), s4.len());
    for id in s1.ids() {
        assert_eq!(
            s1.value(id).data(),
            s4.value(id).data(),
            "parameter {:?} diverged between 1 and 4 threads",
            s1.name(id)
        );
    }
}

#[test]
fn zero_threads_resolves_to_all_cores_and_stays_deterministic() {
    let (m1, r1) = train_with(1);
    let (m0, r0) = train_with(0);
    assert_eq!(r1.epoch_losses, r0.epoch_losses);
    for id in m1.param_store().ids() {
        assert_eq!(m1.param_store().value(id).data(), m0.param_store().value(id).data());
    }
}
