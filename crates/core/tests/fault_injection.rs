//! Divergence-guard and panic-isolation behaviour under injected faults.
//!
//! Every test arms global failpoints, so each takes the process-wide
//! `failpoint::exclusive()` lock for its whole body — they serialise against
//! each other, and running them in their own test binary keeps the armed
//! failpoints away from the ordinary unit tests.

use rmpi_core::trainer::{CheckpointConfig, Trainer, GRAD_FAILPOINT, LOSS_FAILPOINT};
use rmpi_core::{
    latest_checkpoint, load_checkpoint, DivergencePolicy, RmpiConfig, RmpiModel, ScoringModel,
    TrainConfig, TrainEvent,
};
use rmpi_datasets::world::{GraphGenConfig, WorldConfig};
use rmpi_datasets::World;
use rmpi_kg::{KnowledgeGraph, Triple};
use rmpi_testutil::failpoint::{self, Action};
use std::cell::RefCell;
use std::path::PathBuf;

fn tiny_data() -> (KnowledgeGraph, Vec<Triple>, Vec<Triple>) {
    let world = World::new(WorldConfig {
        comp_groups: 2,
        long_groups: 0,
        inv_groups: 1,
        sym_groups: 0,
        sub_groups: 0,
        noise_relations: 0,
        ..Default::default()
    });
    let groups: Vec<usize> = (0..world.groups().len()).collect();
    let triples = world.generate_triples(
        &groups,
        &GraphGenConfig {
            num_entities: 120,
            num_base_triples: 420,
            noise_frac: 0.0,
            seed: 5,
            ..Default::default()
        },
    );
    let split = rmpi_kg::split_triples(&triples, 0.15, 0.0, 3);
    let graph = KnowledgeGraph::from_triples(split.train.clone());
    (graph, split.train, split.valid)
}

fn fresh_model() -> RmpiModel {
    RmpiModel::new(RmpiConfig { dim: 8, ..Default::default() }, 8, 31)
}

fn train_cfg(divergence: DivergencePolicy) -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch_size: 16,
        max_samples_per_epoch: 48,
        max_valid_samples: 20,
        patience: 0,
        seed: 41,
        threads: 2,
        divergence,
        ..Default::default()
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rmpi-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn nan_loss_under_skip_batch_drops_the_batch_and_training_survives() {
    let _lock = failpoint::exclusive();
    let (graph, targets, valid) = tiny_data();
    let mut model = fresh_model();
    // every sample of the first batch reports a NaN loss; the callback
    // disarms after the guard fires once, so the rest of the run is healthy
    failpoint::arm(LOSS_FAILPOINT, Action::Nan);
    let events: RefCell<Vec<TrainEvent>> = RefCell::new(Vec::new());
    let report = Trainer::new(train_cfg(DivergencePolicy::SkipBatch))
        .on_event(|ev| {
            if matches!(ev, TrainEvent::BatchSkipped { .. }) {
                failpoint::disarm(LOSS_FAILPOINT);
            }
            events.borrow_mut().push(ev.clone());
        })
        .train(&mut model, &graph, &targets, &valid);
    failpoint::disarm_all();

    assert_eq!(report.skipped_batches, 1, "exactly one poisoned batch");
    assert_eq!(report.epoch_losses.len(), 2, "training must run to completion");
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()), "{:?}", report.epoch_losses);
    assert!(model
        .param_store()
        .ids()
        .all(|id| { model.param_store().value(id).data().iter().all(|x| x.is_finite()) }));
    let events = events.into_inner();
    assert!(events.iter().any(|e| matches!(
        e,
        TrainEvent::NonFinite { epoch: 0, batch: 0, loss, .. } if loss.is_nan()
    )));
}

#[test]
fn nan_grads_under_clip_and_warn_are_sanitized_and_stepped() {
    let _lock = failpoint::exclusive();
    let (graph, targets, valid) = tiny_data();
    let mut model = fresh_model();
    failpoint::arm(GRAD_FAILPOINT, Action::Nan);
    let events: RefCell<Vec<TrainEvent>> = RefCell::new(Vec::new());
    let report = Trainer::new(train_cfg(DivergencePolicy::ClipAndWarn))
        .on_event(|ev| {
            if matches!(ev, TrainEvent::GradSanitized { .. }) {
                failpoint::disarm(GRAD_FAILPOINT);
            }
            events.borrow_mut().push(ev.clone());
        })
        .train(&mut model, &graph, &targets, &valid);
    failpoint::disarm_all();

    assert_eq!(report.sanitized_batches, 1);
    assert_eq!(report.skipped_batches, 0, "clip-and-warn keeps the batch");
    assert_eq!(report.epoch_losses.len(), 2);
    let events = events.into_inner();
    assert!(
        events.iter().any(|e| matches!(
            e,
            TrainEvent::GradSanitized { epoch: 0, batch: 0, zeroed } if *zeroed >= 1
        )),
        "the sanitizer must report how many entries it zeroed"
    );
    assert!(model
        .param_store()
        .ids()
        .all(|id| { model.param_store().value(id).data().iter().all(|x| x.is_finite()) }));
}

#[test]
fn rollback_policy_restores_epoch_boundary_and_decays_lr() {
    let _lock = failpoint::exclusive();
    let (graph, targets, valid) = tiny_data();
    let mut model = fresh_model();
    let cfg = TrainConfig { epochs: 3, ..train_cfg(DivergencePolicy::Rollback { lr_decay: 0.5 }) };
    let events: RefCell<Vec<TrainEvent>> = RefCell::new(Vec::new());
    // poison a gradient in epoch 1, after the epoch-0 boundary snapshot exists
    let report = Trainer::new(cfg)
        .on_event(|ev| {
            match ev {
                TrainEvent::EpochEnd { epoch: 0, .. } => {
                    failpoint::arm(GRAD_FAILPOINT, Action::Nan)
                }
                TrainEvent::RolledBack { .. } => failpoint::disarm(GRAD_FAILPOINT),
                _ => {}
            }
            events.borrow_mut().push(ev.clone());
        })
        .train(&mut model, &graph, &targets, &valid);
    failpoint::disarm_all();

    assert_eq!(report.rollbacks, 1);
    assert_eq!(report.epoch_losses.len(), 3, "training continues after the rollback");
    let events = events.into_inner();
    let rolled = events
        .iter()
        .find_map(|e| match e {
            TrainEvent::RolledBack { epoch, restored_epoch, lr, .. } => {
                Some((*epoch, *restored_epoch, *lr))
            }
            _ => None,
        })
        .expect("a RolledBack event must be emitted");
    assert_eq!(rolled.0, 1, "divergence hit in epoch 1");
    assert_eq!(rolled.1, 1, "restored to the epoch-1 boundary snapshot");
    assert!(
        (rolled.2 - cfg.lr * 0.5).abs() < 1e-12,
        "learning rate must decay by the configured factor: {}",
        rolled.2
    );
}

#[test]
fn abort_policy_stops_training_immediately() {
    let _lock = failpoint::exclusive();
    let (graph, targets, valid) = tiny_data();
    let mut model = fresh_model();
    failpoint::arm(LOSS_FAILPOINT, Action::Nan);
    let report = Trainer::new(train_cfg(DivergencePolicy::Abort))
        .train(&mut model, &graph, &targets, &valid);
    failpoint::disarm_all();

    assert!(report.aborted);
    assert!(report.epoch_losses.is_empty(), "aborted in the first batch, before any epoch ended");
    assert_eq!(report.skipped_batches, 0);
}

#[test]
fn worker_panic_fails_only_its_batch() {
    let _lock = failpoint::exclusive();
    let (graph, targets, valid) = tiny_data();
    let mut model = fresh_model();
    failpoint::arm(
        rmpi_runtime::pool::SHARD_FAILPOINT,
        Action::Panic("injected worker crash".into()),
    );
    let events: RefCell<Vec<TrainEvent>> = RefCell::new(Vec::new());
    let report = Trainer::new(train_cfg(DivergencePolicy::SkipBatch))
        .on_event(|ev| {
            if matches!(ev, TrainEvent::BatchFailed { .. }) {
                failpoint::disarm(rmpi_runtime::pool::SHARD_FAILPOINT);
            }
            events.borrow_mut().push(ev.clone());
        })
        .train(&mut model, &graph, &targets, &valid);
    failpoint::disarm_all();

    assert_eq!(report.skipped_batches, 1, "the panicking batch is dropped, nothing else");
    assert_eq!(report.epoch_losses.len(), 2, "training survives the worker panic");
    let events = events.into_inner();
    assert!(
        events.iter().any(|e| matches!(
            e,
            TrainEvent::BatchFailed { epoch: 0, batch: 0, message } if message.contains("injected worker crash")
        )),
        "the panic message must surface in the event"
    );
}

#[test]
fn checkpoint_write_failure_keeps_training_and_previous_checkpoint() {
    let _lock = failpoint::exclusive();
    let (graph, targets, valid) = tiny_data();
    let root = tmp_dir("ckfail");
    let mut model = fresh_model();
    let events: RefCell<Vec<TrainEvent>> = RefCell::new(Vec::new());
    // let epoch 0's checkpoint land, then fail every write during epoch 1's
    let report = Trainer::new(train_cfg(DivergencePolicy::SkipBatch))
        .with_checkpointing(CheckpointConfig::new(&root))
        .on_event(|ev| {
            match ev {
                TrainEvent::CheckpointSaved { .. } => {
                    failpoint::arm(
                        rmpi_autograd::io::WRITE_FAILPOINT,
                        Action::IoError("checkpoint disk unplugged".into()),
                    );
                }
                TrainEvent::CheckpointFailed { .. } => {
                    failpoint::disarm(rmpi_autograd::io::WRITE_FAILPOINT);
                }
                _ => {}
            }
            events.borrow_mut().push(ev.clone());
        })
        .train(&mut model, &graph, &targets, &valid);
    failpoint::disarm_all();

    assert_eq!(report.epoch_losses.len(), 2, "a failed checkpoint must not stop training");
    let events = events.into_inner();
    assert!(events.iter().any(|e| matches!(e, TrainEvent::CheckpointSaved { epoch: 0, .. })));
    assert!(events.iter().any(|e| matches!(
        e,
        TrainEvent::CheckpointFailed { epoch: 1, message } if message.contains("disk unplugged")
    )));
    // LATEST still points at the complete epoch-0 checkpoint and it loads
    let dir = latest_checkpoint(&root).unwrap().expect("epoch 0 checkpoint survives");
    assert!(dir.ends_with("ckpt-000001"));
    assert_eq!(load_checkpoint(&dir).unwrap().next_epoch, 1);
    std::fs::remove_dir_all(&root).unwrap();
}
