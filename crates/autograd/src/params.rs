//! Named trainable parameters with accumulated gradients.

use crate::tensor::Tensor;
use std::collections::HashMap;

/// Handle to one parameter inside a [`ParamStore`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The parameter's dense index (stable for the store's lifetime).
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuild a handle from a dense index (crate-internal: used by
    /// [`crate::GradBuffer`] iteration, which stores gradients by index).
    pub(crate) fn from_index(i: usize) -> Self {
        ParamId(i)
    }
}

/// A flat registry of named parameters, their values and their gradients.
///
/// Gradients *accumulate* across [`crate::Tape::backward`] calls until
/// [`ParamStore::zero_grad`] — which is what makes mini-batching by gradient
/// accumulation (one tape per sample) correct.
#[derive(Clone, Debug, Default)]
pub struct ParamStore {
    names: Vec<String>,
    by_name: HashMap<String, ParamId>,
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new parameter. Panics if the name is taken (parameter
    /// creation is a model-construction-time activity; collisions are bugs).
    pub fn create(&mut self, name: &str, value: Tensor) -> ParamId {
        assert!(!self.by_name.contains_key(name), "parameter {name:?} already exists");
        let id = ParamId(self.values.len());
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        self.grads.push(Tensor::zeros(value.shape()));
        self.values.push(value);
        id
    }

    /// Fetch an existing parameter id by name.
    pub fn get(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).copied()
    }

    /// Fetch an existing id or create the parameter from `init`.
    pub fn get_or_create_with(&mut self, name: &str, init: impl FnOnce() -> Tensor) -> ParamId {
        if let Some(id) = self.get(name) {
            return id;
        }
        self.create(name, init())
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable value (used by optimisers and by schema-vector injection).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Add `delta` into the parameter's gradient accumulator.
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Tensor) {
        self.grads[id.0].axpy(1.0, delta);
    }

    /// Reset all gradients to zero.
    pub fn zero_grad(&mut self) {
        for g in &mut self.grads {
            g.zero_();
        }
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_weights(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// The name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterate ids in creation order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// Apply `f(value, grad)` to every parameter — the optimiser entry point.
    pub fn for_each_mut(&mut self, mut f: impl FnMut(usize, &mut Tensor, &Tensor)) {
        for i in 0..self.values.len() {
            f(i, &mut self.values[i], &self.grads[i]);
        }
    }

    /// Global L2 norm of all gradients (for clipping / diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.grads.iter().map(|g| g.data().iter().map(|x| x * x).sum::<f32>()).sum::<f32>().sqrt()
    }

    /// Scale every gradient by `c` (gradient clipping).
    pub fn scale_grads(&mut self, c: f32) {
        for g in &mut self.grads {
            *g = g.scale(c);
        }
    }

    /// Zero every non-finite gradient entry, returning how many were zeroed.
    /// This is the clip-and-warn divergence policy's repair step: finite
    /// gradient components still step, poisoned ones are dropped.
    pub fn sanitize_grads(&mut self) -> usize {
        let mut zeroed = 0;
        for g in &mut self.grads {
            for x in g.data_mut() {
                if !x.is_finite() {
                    *x = 0.0;
                    zeroed += 1;
                }
            }
        }
        zeroed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup() {
        let mut s = ParamStore::new();
        let w = s.create("w", Tensor::vector(vec![1.0, 2.0]));
        assert_eq!(s.get("w"), Some(w));
        assert_eq!(s.get("x"), None);
        assert_eq!(s.value(w).data(), &[1.0, 2.0]);
        assert_eq!(s.name(w), "w");
        assert_eq!(s.len(), 1);
        assert_eq!(s.num_weights(), 2);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_name_panics() {
        let mut s = ParamStore::new();
        s.create("w", Tensor::scalar(0.0));
        s.create("w", Tensor::scalar(1.0));
    }

    #[test]
    fn get_or_create_runs_init_once() {
        let mut s = ParamStore::new();
        let a = s.get_or_create_with("e", || Tensor::scalar(5.0));
        let b = s.get_or_create_with("e", || panic!("should not re-init"));
        assert_eq!(a, b);
        assert_eq!(s.value(a).item(), 5.0);
    }

    #[test]
    fn grads_accumulate_and_reset() {
        let mut s = ParamStore::new();
        let w = s.create("w", Tensor::vector(vec![0.0, 0.0]));
        s.accumulate_grad(w, &Tensor::vector(vec![1.0, 2.0]));
        s.accumulate_grad(w, &Tensor::vector(vec![1.0, 2.0]));
        assert_eq!(s.grad(w).data(), &[2.0, 4.0]);
        assert!((s.grad_norm() - (4.0f32 + 16.0).sqrt()).abs() < 1e-6);
        s.scale_grads(0.5);
        assert_eq!(s.grad(w).data(), &[1.0, 2.0]);
        s.zero_grad();
        assert_eq!(s.grad(w).data(), &[0.0, 0.0]);
    }

    #[test]
    fn sanitize_zeroes_only_non_finite_entries() {
        let mut s = ParamStore::new();
        let w = s.create("w", Tensor::vector(vec![0.0; 4]));
        s.accumulate_grad(w, &Tensor::vector(vec![1.0, f32::NAN, f32::INFINITY, -2.0]));
        assert!(!s.grad_norm().is_finite());
        assert_eq!(s.sanitize_grads(), 2);
        assert_eq!(s.grad(w).data(), &[1.0, 0.0, 0.0, -2.0]);
        assert!(s.grad_norm().is_finite());
        assert_eq!(s.sanitize_grads(), 0, "second pass finds nothing");
    }
}
