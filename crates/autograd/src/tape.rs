//! Gradient tape: eager forward evaluation with recorded ops, reverse-mode
//! backward pass.
//!
//! A [`Tape`] is built per forward pass (per training sample) — or reused
//! across samples via [`Tape::reset`], which keeps the node arena's capacity.
//! Every op method computes its value immediately and records a node;
//! [`Tape::backward_into`] seeds the loss gradient, walks the nodes in
//! reverse and writes parameter gradients into a detached [`GradBuffer`]
//! (so the whole pass needs only `&ParamStore` and can run on any worker
//! thread). [`Tape::backward`] is the single-threaded convenience wrapper
//! that folds the buffer straight into a store. Tapes are cheap `Vec`s — no
//! `Rc`/`RefCell` graph plumbing — because subgraph models rebuild the graph
//! for every sample anyway.
//!
//! Binary elementwise ops (`add`, `sub`, `mul`) support one special broadcast:
//! a one-element operand is broadcast against the other side, with the
//! corresponding gradient summed on the way back. That is the only broadcast
//! the models need (scalar gates and attention weights).

use crate::grad::GradBuffer;
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Var(usize);

#[derive(Clone, Debug)]
enum Op {
    Constant,
    Param(ParamId),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    AddScalar(Var),
    MatMul(Var, Var),
    MatVec(Var, Var),
    VecMat(Var, Var),
    Dot(Var, Var),
    Relu(Var),
    LeakyRelu(Var, f32),
    Sigmoid(Var),
    Tanh(Var),
    Softmax(Var),
    Sum(Var),
    Mean(Var),
    Concat(Vec<Var>),
    Stack(Vec<Var>),
    Row(Var, usize),
    Gather(Var, Vec<usize>),
    Index(Var, usize),
    Transpose(Var),
    Dropout(Var, Vec<f32>),
}

struct Node {
    op: Op,
    value: Tensor,
}

/// The gradient tape. See module docs.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// A fresh, empty tape.
    pub fn new() -> Self {
        Tape { nodes: Vec::with_capacity(256) }
    }

    fn push(&mut self, op: Op, value: Tensor) -> Var {
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    /// The current value of a variable.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Drop all recorded nodes but keep the arena's capacity, so one tape can
    /// be reused across the samples of a batch without reallocating.
    pub fn reset(&mut self) {
        self.nodes.clear();
    }

    // ------------------------------------------------------------------ leaves

    /// Record a non-trainable constant.
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(Op::Constant, value)
    }

    /// Record a trainable parameter (value copied from the store).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.push(Op::Param(id), store.value(id).clone())
    }

    // --------------------------------------------------------- elementwise ops

    fn bcast(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        if a.shape() == b.shape() {
            let data = a.data().iter().zip(b.data()).map(|(&x, &y)| f(x, y)).collect();
            Tensor::matrix_or_vector(a.shape(), data)
        } else if b.len() == 1 {
            let s = b.data()[0];
            a.map(|x| f(x, s))
        } else if a.len() == 1 {
            let s = a.data()[0];
            b.map(|y| f(s, y))
        } else {
            panic!(
                "shape mismatch {:?} vs {:?} (only scalar broadcast supported)",
                a.shape(),
                b.shape()
            );
        }
    }

    /// `a + b` (same shape, or one side a one-element tensor).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = Self::bcast(self.value(a), self.value(b), |x, y| x + y);
        self.push(Op::Add(a, b), v)
    }

    /// `a - b` (same broadcast rule as [`Tape::add`]).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = Self::bcast(self.value(a), self.value(b), |x, y| x - y);
        self.push(Op::Sub(a, b), v)
    }

    /// Elementwise `a * b` (same broadcast rule as [`Tape::add`]).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = Self::bcast(self.value(a), self.value(b), |x, y| x * y);
        self.push(Op::Mul(a, b), v)
    }

    /// `c * a` for a compile-time constant `c`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).scale(c);
        self.push(Op::Scale(a, c), v)
    }

    /// `a + c` elementwise for a constant `c`.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).map(|x| x + c);
        self.push(Op::AddScalar(a), v)
    }

    // ------------------------------------------------------------ linear algebra

    /// Matrix product `(m,k) x (k,n)`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), v)
    }

    /// Matrix-vector product `(m,k) x [k] -> [m]`.
    pub fn matvec(&mut self, a: Var, x: Var) -> Var {
        let v = self.value(a).matvec(self.value(x));
        self.push(Op::MatVec(a, x), v)
    }

    /// Vector-matrix product `[k] x (k,n) -> [n]`.
    pub fn vecmat(&mut self, x: Var, a: Var) -> Var {
        let v = self.value(x).vecmat(self.value(a));
        self.push(Op::VecMat(x, a), v)
    }

    /// Dot product of two rank-1 variables, as a one-element tensor.
    pub fn dot(&mut self, x: Var, y: Var) -> Var {
        let v = Tensor::scalar(self.value(x).dot(self.value(y)));
        self.push(Op::Dot(x, y), v)
    }

    /// Transpose of a rank-2 variable.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose();
        self.push(Op::Transpose(a), v)
    }

    // ---------------------------------------------------------------- activations

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        let v = self.value(a).map(|x| if x >= 0.0 { x } else { slope * x });
        self.push(Op::LeakyRelu(a, slope), v)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a), v)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::tanh);
        self.push(Op::Tanh(a), v)
    }

    /// Numerically stable softmax over a rank-1 variable.
    pub fn softmax(&mut self, a: Var) -> Var {
        let x = self.value(a);
        assert_eq!(x.shape().len(), 1, "softmax requires rank 1");
        let max = x.data().iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = x.data().iter().map(|&v| (v - max).exp()).collect();
        let z: f32 = exps.iter().sum();
        let v = Tensor::vector(exps.into_iter().map(|e| e / z).collect());
        self.push(Op::Softmax(a), v)
    }

    // ----------------------------------------------------------------- reductions

    /// Sum of all elements, as a one-element tensor.
    pub fn sum(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).sum());
        self.push(Op::Sum(a), v)
    }

    /// Mean of all elements, as a one-element tensor.
    pub fn mean(&mut self, a: Var) -> Var {
        let t = self.value(a);
        let v = Tensor::scalar(t.sum() / t.len() as f32);
        self.push(Op::Mean(a), v)
    }

    // -------------------------------------------------------------- restructuring

    /// Concatenate rank-1 variables into one longer vector.
    pub fn concat(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat of zero vars");
        let mut data = Vec::new();
        for &p in parts {
            let t = self.value(p);
            assert_eq!(t.shape().len(), 1, "concat requires rank-1 inputs");
            data.extend_from_slice(t.data());
        }
        self.push(Op::Concat(parts.to_vec()), Tensor::vector(data))
    }

    /// Stack `n` rank-1 variables of length `d` into an `(n, d)` matrix.
    pub fn stack(&mut self, rows: &[Var]) -> Var {
        assert!(!rows.is_empty(), "stack of zero vars");
        let d = self.value(rows[0]).len();
        let mut data = Vec::with_capacity(rows.len() * d);
        for &r in rows {
            let t = self.value(r);
            assert_eq!(t.shape(), &[d], "stack rows must share length {d}");
            data.extend_from_slice(t.data());
        }
        self.push(Op::Stack(rows.to_vec()), Tensor::matrix(rows.len(), d, data))
    }

    /// Select row `i` of a rank-2 variable as a vector.
    pub fn row(&mut self, m: Var, i: usize) -> Var {
        let v = Tensor::vector(self.value(m).row(i).to_vec());
        self.push(Op::Row(m, i), v)
    }

    /// Select multiple rows of a rank-2 variable (embedding lookup). Repeated
    /// indices are allowed; their gradients scatter-add.
    pub fn gather(&mut self, m: Var, indices: &[usize]) -> Var {
        let t = self.value(m);
        let c = t.cols();
        let mut data = Vec::with_capacity(indices.len() * c);
        for &i in indices {
            data.extend_from_slice(t.row(i));
        }
        let v = Tensor::matrix(indices.len(), c, data);
        self.push(Op::Gather(m, indices.to_vec()), v)
    }

    /// Select element `i` of a rank-1 variable, as a one-element tensor.
    pub fn index(&mut self, x: Var, i: usize) -> Var {
        let v = Tensor::scalar(self.value(x).data()[i]);
        self.push(Op::Index(x, i), v)
    }

    /// Inverted dropout: elements are zeroed with probability `rate` and the
    /// survivors scaled by `1/(1-rate)`. The mask is sampled here and stored
    /// for the backward pass. `rate == 0` records a pass-through node.
    pub fn dropout<R: rand::Rng>(&mut self, a: Var, rate: f32, rng: &mut R) -> Var {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0,1)");
        let t = self.value(a);
        let keep = 1.0 - rate;
        let mask: Vec<f32> = (0..t.len())
            .map(|_| if rate > 0.0 && rng.gen::<f32>() < rate { 0.0 } else { 1.0 / keep })
            .collect();
        let data = t.data().iter().zip(&mask).map(|(x, m)| x * m).collect();
        let v = Tensor::matrix_or_vector(t.shape(), data);
        self.push(Op::Dropout(a, mask), v)
    }

    // ------------------------------------------------------------------ backward

    /// Reverse-mode gradient pass from `loss` (which must be one element),
    /// accumulating parameter gradients into `store`.
    ///
    /// Convenience wrapper over [`Tape::backward_into`] for single-threaded
    /// callers: runs the pass into a fresh [`GradBuffer`] and folds it into
    /// the store immediately.
    pub fn backward(&self, loss: Var, store: &mut ParamStore) {
        let mut buf = GradBuffer::new();
        self.backward_into(loss, &mut buf);
        buf.add_to(store);
    }

    /// Reverse-mode gradient pass from `loss` (which must be one element),
    /// writing parameter gradients into `out`.
    ///
    /// The tape and the buffer are both detached from any [`ParamStore`], so
    /// this needs no mutable access to shared state: worker threads run
    /// forward + `backward_into` against `&ParamStore` and hand their buffers
    /// back for a deterministic ordered reduce (see [`GradBuffer`]).
    ///
    /// Allocates a fresh node-gradient table per call; hot loops should hold
    /// a [`BackwardScratch`] and use [`Tape::backward_into_with`] instead.
    pub fn backward_into(&self, loss: Var, out: &mut GradBuffer) {
        let mut scratch = BackwardScratch::new();
        self.backward_into_with(loss, &mut scratch, out);
    }

    /// [`Tape::backward_into`] with a caller-owned node-gradient table.
    ///
    /// The scratch's backing vector is reused across calls (a backward pass
    /// leaves every slot empty), so repeated passes over same-sized tapes
    /// skip the per-call table allocation. The gradient values produced are
    /// bit-identical to [`Tape::backward_into`]: the walk order and the
    /// accumulation order do not depend on the scratch's history.
    pub fn backward_into_with(
        &self,
        loss: Var,
        scratch: &mut BackwardScratch,
        out: &mut GradBuffer,
    ) {
        assert_eq!(self.value(loss).len(), 1, "backward seed must be a one-element tensor");
        let mut grads = std::mem::take(&mut scratch.grads);
        grads.clear();
        grads.resize_with(loss.0 + 1, || None);
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for i in (0..=loss.0).rev() {
            let g = match grads[i].take() {
                Some(g) => g,
                None => continue,
            };
            let node = &self.nodes[i];
            match &node.op {
                Op::Constant => {}
                Op::Param(id) => out.add_assign(*id, g),
                Op::Add(a, b) => {
                    self.bcast_back(&mut grads, *a, &g, 1.0);
                    self.bcast_back(&mut grads, *b, &g, 1.0);
                }
                Op::Sub(a, b) => {
                    self.bcast_back(&mut grads, *a, &g, 1.0);
                    self.bcast_back(&mut grads, *b, &g, -1.0);
                }
                Op::Mul(a, b) => {
                    let (va, vb) = (self.value(*a), self.value(*b));
                    let ga = Self::bcast(&g, vb, |x, y| x * y);
                    let gb = Self::bcast(&g, va, |x, y| x * y);
                    self.bcast_back_tensor(&mut grads, *a, ga);
                    self.bcast_back_tensor(&mut grads, *b, gb);
                }
                Op::Scale(a, c) => accumulate(&mut grads, *a, g.scale(*c)),
                Op::AddScalar(a) => accumulate(&mut grads, *a, g),
                Op::MatMul(a, b) => {
                    let (va, vb) = (self.value(*a), self.value(*b));
                    // grad_a = g·bᵀ and grad_b = aᵀ·g via the transpose-free
                    // blocked kernels (no intermediate transpose allocation).
                    accumulate(&mut grads, *a, g.matmul_nt(vb));
                    accumulate(&mut grads, *b, va.matmul_tn(&g));
                }
                Op::MatVec(a, x) => {
                    let (va, vx) = (self.value(*a), self.value(*x));
                    // y = A x: dA_ij = g_i * x_j ; dx = A^T g
                    let (m, k) = (va.rows(), va.cols());
                    let mut da = vec![0.0f32; m * k];
                    for r in 0..m {
                        let gi = g.data()[r];
                        if gi != 0.0 {
                            for c in 0..k {
                                da[r * k + c] = gi * vx.data()[c];
                            }
                        }
                    }
                    accumulate(&mut grads, *a, Tensor::matrix(m, k, da));
                    // dx = Aᵀg computed as the row-combination g·A — walks A
                    // by contiguous rows instead of materialising Aᵀ.
                    accumulate(&mut grads, *x, g.vecmat(va));
                }
                Op::VecMat(x, a) => {
                    let (vx, va) = (self.value(*x), self.value(*a));
                    // y = x A: dx = A g ; dA_ij = x_i * g_j
                    accumulate(&mut grads, *x, va.matvec(&g));
                    let (k, n) = (va.rows(), va.cols());
                    let mut da = vec![0.0f32; k * n];
                    for r in 0..k {
                        let xi = vx.data()[r];
                        if xi != 0.0 {
                            for c in 0..n {
                                da[r * n + c] = xi * g.data()[c];
                            }
                        }
                    }
                    accumulate(&mut grads, *a, Tensor::matrix(k, n, da));
                }
                Op::Dot(x, y) => {
                    let s = g.item();
                    let (vx, vy) = (self.value(*x), self.value(*y));
                    accumulate(&mut grads, *x, vy.scale(s));
                    accumulate(&mut grads, *y, vx.scale(s));
                }
                Op::Relu(a) => {
                    let va = self.value(*a);
                    let gd = g
                        .data()
                        .iter()
                        .zip(va.data())
                        .map(|(&gi, &x)| if x > 0.0 { gi } else { 0.0 })
                        .collect();
                    accumulate(&mut grads, *a, Tensor::matrix_or_vector(va.shape(), gd));
                }
                Op::LeakyRelu(a, slope) => {
                    let va = self.value(*a);
                    let gd = g
                        .data()
                        .iter()
                        .zip(va.data())
                        .map(|(&gi, &x)| if x >= 0.0 { gi } else { gi * slope })
                        .collect();
                    accumulate(&mut grads, *a, Tensor::matrix_or_vector(va.shape(), gd));
                }
                Op::Sigmoid(a) => {
                    let out = &node.value;
                    let gd = g
                        .data()
                        .iter()
                        .zip(out.data())
                        .map(|(&gi, &s)| gi * s * (1.0 - s))
                        .collect();
                    accumulate(&mut grads, *a, Tensor::matrix_or_vector(out.shape(), gd));
                }
                Op::Tanh(a) => {
                    let out = &node.value;
                    let gd = g
                        .data()
                        .iter()
                        .zip(out.data())
                        .map(|(&gi, &t)| gi * (1.0 - t * t))
                        .collect();
                    accumulate(&mut grads, *a, Tensor::matrix_or_vector(out.shape(), gd));
                }
                Op::Softmax(a) => {
                    let s = &node.value;
                    let inner: f32 = g.data().iter().zip(s.data()).map(|(&gi, &si)| gi * si).sum();
                    let gd =
                        g.data().iter().zip(s.data()).map(|(&gi, &si)| si * (gi - inner)).collect();
                    accumulate(&mut grads, *a, Tensor::vector(gd));
                }
                Op::Sum(a) => {
                    let va = self.value(*a);
                    accumulate(&mut grads, *a, Tensor::full(va.shape(), g.item()));
                }
                Op::Mean(a) => {
                    let va = self.value(*a);
                    accumulate(
                        &mut grads,
                        *a,
                        Tensor::full(va.shape(), g.item() / va.len() as f32),
                    );
                }
                Op::Concat(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let n = self.value(p).len();
                        accumulate(&mut grads, p, Tensor::vector(g.data()[off..off + n].to_vec()));
                        off += n;
                    }
                }
                Op::Stack(rows) => {
                    let d = self.value(rows[0]).len();
                    for (r, &p) in rows.iter().enumerate() {
                        accumulate(
                            &mut grads,
                            p,
                            Tensor::vector(g.data()[r * d..(r + 1) * d].to_vec()),
                        );
                    }
                }
                Op::Row(m, i) => {
                    let vm = self.value(*m);
                    let mut t = Tensor::zeros(vm.shape());
                    t.row_mut(*i).copy_from_slice(g.data());
                    accumulate(&mut grads, *m, t);
                }
                Op::Gather(m, indices) => {
                    let vm = self.value(*m);
                    let c = vm.cols();
                    let mut t = Tensor::zeros(vm.shape());
                    for (r, &i) in indices.iter().enumerate() {
                        let row = t.row_mut(i);
                        for (dst, src) in row.iter_mut().zip(&g.data()[r * c..(r + 1) * c]) {
                            *dst += src;
                        }
                    }
                    accumulate(&mut grads, *m, t);
                }
                Op::Index(x, i) => {
                    let vx = self.value(*x);
                    let mut t = Tensor::zeros(vx.shape());
                    t.data_mut()[*i] = g.item();
                    accumulate(&mut grads, *x, t);
                }
                Op::Transpose(a) => accumulate(&mut grads, *a, g.transpose()),
                Op::Dropout(a, mask) => {
                    let gd = g.data().iter().zip(mask).map(|(&gi, &m)| gi * m).collect();
                    let va = self.value(*a);
                    accumulate(&mut grads, *a, Tensor::matrix_or_vector(va.shape(), gd));
                }
            }
        }
        // Hand the (now all-None) table back for the next pass.
        scratch.grads = grads;
    }

    /// Accumulate `g * sign` into `target`'s gradient slot, collapsing a
    /// broadcast (target was a one-element tensor) by summation.
    fn bcast_back(&self, grads: &mut [Option<Tensor>], target: Var, g: &Tensor, sign: f32) {
        self.bcast_back_tensor(grads, target, g.scale(sign));
    }

    fn bcast_back_tensor(&self, grads: &mut [Option<Tensor>], target: Var, g: Tensor) {
        let vt = self.value(target);
        let g = if vt.len() == 1 && g.len() != 1 { Tensor::scalar(g.sum()) } else { g };
        accumulate(grads, target, g);
    }
}

/// Reusable node-gradient table for [`Tape::backward_into_with`].
///
/// Holds the per-node `Option<Tensor>` slots a backward pass walks; keeping
/// one of these per worker thread (or per training loop) amortises the table
/// allocation across samples. The pass drains every slot, so reuse carries no
/// state between calls — only capacity.
#[derive(Debug, Default)]
pub struct BackwardScratch {
    grads: Vec<Option<Tensor>>,
}

impl BackwardScratch {
    /// An empty scratch; the table grows to the tape's size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of node slots currently allocated (capacity metric for tests).
    pub fn capacity(&self) -> usize {
        self.grads.capacity()
    }
}

fn accumulate(grads: &mut [Option<Tensor>], v: Var, g: Tensor) {
    match &mut grads[v.0] {
        Some(existing) => existing.axpy(1.0, &g),
        slot @ None => *slot = Some(g),
    }
}

impl Tensor {
    /// Internal helper: rebuild a tensor with `shape` from raw `data`.
    pub(crate) fn matrix_or_vector(shape: &[usize], data: Vec<f32>) -> Tensor {
        match shape.len() {
            1 => Tensor::vector(data),
            2 => Tensor::matrix(shape[0], shape[1], data),
            _ => unreachable!("rank limited to 1/2"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use crate::params::ParamStore;

    fn store_with(name: &str, t: Tensor) -> (ParamStore, ParamId) {
        let mut s = ParamStore::new();
        let id = s.create(name, t);
        (s, id)
    }

    #[test]
    fn forward_values() {
        let mut tape = Tape::new();
        let a = tape.constant(Tensor::vector(vec![1.0, -2.0]));
        let r = tape.relu(a);
        assert_eq!(tape.value(r).data(), &[1.0, 0.0]);
        let l = tape.leaky_relu(a, 0.1);
        assert_eq!(tape.value(l).data(), &[1.0, -0.2]);
        let s = tape.softmax(a);
        let sv = tape.value(s).data().to_vec();
        assert!((sv.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(sv[0] > sv[1]);
    }

    #[test]
    fn scalar_broadcast_add_mul() {
        let mut tape = Tape::new();
        let v = tape.constant(Tensor::vector(vec![1.0, 2.0, 3.0]));
        let s = tape.constant(Tensor::scalar(10.0));
        let a = tape.add(v, s);
        assert_eq!(tape.value(a).data(), &[11.0, 12.0, 13.0]);
        let m = tape.mul(s, v);
        assert_eq!(tape.value(m).data(), &[10.0, 20.0, 30.0]);
    }

    #[test]
    fn simple_chain_backward() {
        // loss = sum(relu(W x)) for W = [[1,-1],[2,0]], x = [3, 4]
        let (mut store, w) = store_with("w", Tensor::matrix(2, 2, vec![1.0, -1.0, 2.0, 0.0]));
        let mut tape = Tape::new();
        let wv = tape.param(&store, w);
        let x = tape.constant(Tensor::vector(vec![3.0, 4.0]));
        let y = tape.matvec(wv, x); // [-1, 6]
        let r = tape.relu(y); // [0, 6]
        let loss = tape.sum(r);
        assert_eq!(tape.value(loss).item(), 6.0);
        tape.backward(loss, &mut store);
        // only second row active: dW = [[0,0],[3,4]]
        assert_eq!(store.grad(w).data(), &[0.0, 0.0, 3.0, 4.0]);
    }

    #[test]
    fn grads_accumulate_across_tapes() {
        let (mut store, w) = store_with("w", Tensor::vector(vec![2.0]));
        for _ in 0..3 {
            let mut tape = Tape::new();
            let wv = tape.param(&store, w);
            let loss = tape.sum(wv);
            tape.backward(loss, &mut store);
        }
        assert_eq!(store.grad(w).data(), &[3.0]);
    }

    #[test]
    fn gradcheck_matmul_chain() {
        check_gradients(
            &[
                ("a", Tensor::matrix(2, 3, vec![0.5, -0.2, 0.3, 0.1, 0.7, -0.4])),
                ("b", Tensor::matrix(3, 2, vec![0.2; 6])),
            ],
            |tape, store| {
                let a = tape.param(store, store.get("a").unwrap());
                let b = tape.param(store, store.get("b").unwrap());
                let c = tape.matmul(a, b);
                let t = tape.tanh(c);
                tape.sum(t)
            },
        );
    }

    #[test]
    fn gradcheck_attention_like_block() {
        // softmax over dots, weighted sum via vecmat — the RMPI attention shape
        check_gradients(
            &[
                ("q", Tensor::vector(vec![0.3, -0.5, 0.8])),
                (
                    "k",
                    Tensor::matrix(
                        4,
                        3,
                        vec![0.1, 0.2, -0.3, 0.5, -0.1, 0.4, -0.2, 0.3, 0.6, 0.05, -0.4, 0.2],
                    ),
                ),
            ],
            |tape, store| {
                let q = tape.param(store, store.get("q").unwrap());
                let k = tape.param(store, store.get("k").unwrap());
                let scores = tape.matvec(k, q);
                let lr = tape.leaky_relu(scores, 0.2);
                let att = tape.softmax(lr);
                let pooled = tape.vecmat(att, k);
                let sig = tape.sigmoid(pooled);
                tape.sum(sig)
            },
        );
    }

    #[test]
    fn gradcheck_restructuring_ops() {
        check_gradients(
            &[("m", Tensor::matrix(3, 2, vec![0.5, -0.2, 0.3, 0.1, 0.7, -0.4]))],
            |tape, store| {
                let m = tape.param(store, store.get("m").unwrap());
                let r0 = tape.row(m, 0);
                let r2 = tape.row(m, 2);
                let cat = tape.concat(&[r0, r2]);
                let g = tape.gather(m, &[1, 1, 2]);
                let t = tape.transpose(g);
                let flat = tape.sum(t);
                let s = tape.sum(cat);
                let both = tape.add(flat, s);
                tape.mean(both)
            },
        );
    }

    #[test]
    fn gradcheck_stack_index_dot() {
        check_gradients(
            &[("x", Tensor::vector(vec![0.4, -0.3])), ("y", Tensor::vector(vec![0.2, 0.9]))],
            |tape, store| {
                let x = tape.param(store, store.get("x").unwrap());
                let y = tape.param(store, store.get("y").unwrap());
                let st = tape.stack(&[x, y]);
                let d = tape.dot(x, y);
                let i = tape.index(x, 1);
                let sm = tape.sum(st);
                let a = tape.add(d, i);
                let b = tape.add(a, sm);
                let sc = tape.scale(b, 0.5);
                tape.add_scalar(sc, 1.0)
            },
        );
    }

    #[test]
    fn gradcheck_sub_mul_broadcast() {
        check_gradients(
            &[("x", Tensor::vector(vec![0.4, -0.3, 0.8])), ("s", Tensor::scalar(0.7))],
            |tape, store| {
                let x = tape.param(store, store.get("x").unwrap());
                let s = tape.param(store, store.get("s").unwrap());
                let d = tape.sub(x, s);
                let m = tape.mul(d, s);
                let sg = tape.sigmoid(m);
                tape.sum(sg)
            },
        );
    }

    #[test]
    fn dropout_zero_rate_is_identity() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let a = tape.constant(Tensor::vector(vec![1.0, 2.0]));
        let d = tape.dropout(a, 0.0, &mut rng);
        assert_eq!(tape.value(d).data(), &[1.0, 2.0]);
    }

    #[test]
    fn dropout_preserves_expectation() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut tape = Tape::new();
        let a = tape.constant(Tensor::vector(vec![1.0; n]));
        let d = tape.dropout(a, 0.5, &mut rng);
        let mean = tape.value(d).sum() / n as f32;
        assert!((mean - 1.0).abs() < 0.05, "inverted dropout mean {mean}");
    }

    #[test]
    fn backward_through_dropout_respects_mask() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let (mut store, w) = store_with("w", Tensor::vector(vec![1.0; 8]));
        let mut tape = Tape::new();
        let wv = tape.param(&store, w);
        let d = tape.dropout(wv, 0.5, &mut rng);
        let loss = tape.sum(d);
        tape.backward(loss, &mut store);
        // gradient equals the mask: zeros where dropped, 2.0 where kept
        for (&g, &v) in store.grad(w).data().iter().zip(tape.value(d).data()) {
            assert_eq!(g, v); // input was all ones
        }
    }

    #[test]
    #[should_panic(expected = "one-element")]
    fn backward_requires_scalar_loss() {
        let mut store = ParamStore::new();
        let mut tape = Tape::new();
        let a = tape.constant(Tensor::vector(vec![1.0, 2.0]));
        tape.backward(a, &mut store);
    }

    #[test]
    fn backward_into_matches_backward() {
        let make = |tape: &mut Tape, store: &ParamStore, w: ParamId| {
            let wv = tape.param(store, w);
            let x = tape.constant(Tensor::vector(vec![0.3, -0.8]));
            let y = tape.matvec(wv, x);
            let t = tape.tanh(y);
            tape.sum(t)
        };
        let (mut store, w) = store_with("w", Tensor::matrix(2, 2, vec![0.5, -0.2, 0.1, 0.9]));
        let mut tape = Tape::new();
        let loss = make(&mut tape, &store, w);
        tape.backward(loss, &mut store);

        let mut buf = crate::GradBuffer::new();
        let mut tape2 = Tape::new();
        let loss2 = make(&mut tape2, &store, w);
        tape2.backward_into(loss2, &mut buf);
        assert_eq!(buf.get(w).unwrap().data(), store.grad(w).data());
    }

    #[test]
    fn reset_keeps_tape_usable() {
        let (mut store, w) = store_with("w", Tensor::vector(vec![2.0, 3.0]));
        let mut tape = Tape::new();
        for _ in 0..3 {
            tape.reset();
            assert!(tape.is_empty());
            let wv = tape.param(&store, w);
            let s = tape.mul(wv, wv);
            let loss = tape.sum(s);
            tape.backward(loss, &mut store);
            assert_eq!(tape.len(), 3);
        }
        // three identical passes accumulated: dL/dw = 3 * 2w
        assert_eq!(store.grad(w).data(), &[12.0, 18.0]);
    }

    #[test]
    fn gradcheck_matmul_blocked_shapes() {
        // shapes that are not multiples of the kernel tile sizes, so the
        // blocked nn/nt/tn paths all hit their edge-handling code
        let a: Vec<f32> = (0..5 * 7).map(|i| ((i * 37 % 19) as f32 - 9.0) / 23.0).collect();
        let b: Vec<f32> = (0..7 * 3).map(|i| ((i * 53 % 17) as f32 - 8.0) / 19.0).collect();
        check_gradients(
            &[("a", Tensor::matrix(5, 7, a)), ("b", Tensor::matrix(7, 3, b))],
            |tape, store| {
                let a = tape.param(store, store.get("a").unwrap());
                let b = tape.param(store, store.get("b").unwrap());
                let c = tape.matmul(a, b);
                let t = tape.tanh(c);
                tape.sum(t)
            },
        );
    }

    #[test]
    fn diamond_dependency_sums_gradients() {
        // loss = sum(x * x) -> dL/dx = 2x
        let (mut store, x) = store_with("x", Tensor::vector(vec![3.0, -1.0]));
        let mut tape = Tape::new();
        let xv = tape.param(&store, x);
        let sq = tape.mul(xv, xv);
        let loss = tape.sum(sq);
        tape.backward(loss, &mut store);
        assert_eq!(store.grad(x).data(), &[6.0, -2.0]);
    }
}
