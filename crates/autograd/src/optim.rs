//! First-order optimisers over a [`ParamStore`].

use crate::params::ParamStore;
use crate::tensor::Tensor;

/// Plain stochastic gradient descent with optional weight decay.
#[derive(Clone, Copy, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// L2 weight decay coefficient (0 disables).
    pub weight_decay: f32,
}

impl Sgd {
    /// SGD with the given learning rate, no weight decay.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, weight_decay: 0.0 }
    }

    /// Apply one step using the store's accumulated gradients.
    pub fn step(&self, store: &mut ParamStore) {
        let (lr, wd) = (self.lr, self.weight_decay);
        store.for_each_mut(|_, value, grad| {
            for (v, g) in value.data_mut().iter_mut().zip(grad.data()) {
                *v -= lr * (g + wd * *v);
            }
        });
    }
}

/// A checkpointable snapshot of [`Adam`]'s internal state: the step count
/// and the first/second moment buffers, indexed by parameter index.
#[derive(Clone, Debug, Default)]
pub struct AdamState {
    /// Steps taken so far (drives bias correction).
    pub t: u64,
    /// First-moment estimates per parameter.
    pub m: Vec<Tensor>,
    /// Second-moment estimates per parameter.
    pub v: Vec<Tensor>,
}

/// Adam (Kingma & Ba, 2015) with bias correction — the paper's optimiser
/// (lr 1e-3).
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stabiliser.
    pub eps: f32,
    /// L2 weight decay coefficient (0 disables).
    pub weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with standard betas (0.9 / 0.999) and eps 1e-8.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adam with L2 weight decay added to the gradient (the classic, not
    /// decoupled, variant — matching `torch.optim.Adam(weight_decay=..)`).
    pub fn with_weight_decay(lr: f32, weight_decay: f32) -> Self {
        Adam { weight_decay, ..Adam::new(lr) }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Snapshot the optimiser's internal state (step count + moment buffers)
    /// for checkpointing. Restoring the snapshot with [`Adam::restore_state`]
    /// continues the update sequence bit-identically.
    pub fn export_state(&self) -> AdamState {
        AdamState { t: self.t, m: self.m.clone(), v: self.v.clone() }
    }

    /// Replace the optimiser's internal state with a snapshot taken by
    /// [`Adam::export_state`] (hyper-parameters are kept as configured).
    pub fn restore_state(&mut self, state: AdamState) {
        self.t = state.t;
        self.m = state.m;
        self.v = state.v;
    }

    /// Apply one update using the store's accumulated gradients.
    ///
    /// Moment buffers are allocated lazily, keyed by parameter index; newly
    /// created parameters (e.g. lazily-registered relation embeddings) get
    /// fresh zero moments.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let (m, v) = (&mut self.m, &mut self.v);
        store.for_each_mut(|i, value, grad| {
            while m.len() <= i {
                m.push(Tensor::zeros(value.shape()));
                v.push(Tensor::zeros(value.shape()));
            }
            let mi = &mut m[i];
            let vi = &mut v[i];
            for k in 0..value.len() {
                let g = grad.data()[k] + wd * value.data()[k];
                let md = &mut mi.data_mut()[k];
                *md = b1 * *md + (1.0 - b1) * g;
                let vd = &mut vi.data_mut()[k];
                *vd = b2 * *vd + (1.0 - b2) * g * g;
                let mhat = *md / bc1;
                let vhat = *vd / bc2;
                value.data_mut()[k] -= lr * mhat / (vhat.sqrt() + eps);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimise f(x) = (x - 3)^2 and check convergence.
    fn quadratic_loss(store: &ParamStore) -> (Tape, crate::tape::Var) {
        let mut tape = Tape::new();
        let x = tape.param(store, store.get("x").unwrap());
        let c = tape.constant(Tensor::scalar(3.0));
        let d = tape.sub(x, c);
        let sq = tape.mul(d, d);
        let loss = tape.sum(sq);
        (tape, loss)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut store = ParamStore::new();
        store.create("x", Tensor::scalar(0.0));
        let opt = Sgd::new(0.1);
        for _ in 0..100 {
            store.zero_grad();
            let (tape, loss) = quadratic_loss(&store);
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        let x = store.value(store.get("x").unwrap()).item();
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        store.create("x", Tensor::scalar(0.0));
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            store.zero_grad();
            let (tape, loss) = quadratic_loss(&store);
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        let x = store.value(store.get("x").unwrap()).item();
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn adam_handles_lazily_added_params() {
        let mut store = ParamStore::new();
        store.create("a", Tensor::scalar(1.0));
        let mut opt = Adam::new(0.05);
        for step in 0..200 {
            if step == 50 {
                store.create("b", Tensor::scalar(-1.0));
            }
            store.zero_grad();
            let mut tape = Tape::new();
            let a = tape.param(&store, store.get("a").unwrap());
            let mut loss = {
                let sq = tape.mul(a, a);
                tape.sum(sq)
            };
            if let Some(bid) = store.get("b") {
                let b = tape.param(&store, bid);
                let sqb = tape.mul(b, b);
                let sb = tape.sum(sqb);
                loss = tape.add(loss, sb);
            }
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        assert!(store.value(store.get("a").unwrap()).item().abs() < 0.05);
        assert!(store.value(store.get("b").unwrap()).item().abs() < 0.15);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut store = ParamStore::new();
        store.create("x", Tensor::scalar(5.0));
        let opt = Sgd { lr: 0.1, weight_decay: 1.0 };
        // zero gradient, decay only
        store.zero_grad();
        opt.step(&mut store);
        let x = store.value(store.get("x").unwrap()).item();
        assert!((x - 4.5).abs() < 1e-6);
    }
}
