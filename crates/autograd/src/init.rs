//! Weight initialisers.

use crate::tensor::Tensor;
use rand::Rng;
use rand_distr_shim::StandardNormalShim;

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. For rank-1 shapes, fan_in = len and
/// fan_out = 1.
pub fn xavier_uniform<R: Rng>(shape: &[usize], rng: &mut R) -> Tensor {
    let (fan_in, fan_out) = match shape {
        [n] => (*n, 1),
        [r, c] => (*c, *r),
        _ => panic!("unsupported shape {shape:?}"),
    };
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let data = (0..shape.iter().product::<usize>()).map(|_| rng.gen_range(-a..a)).collect();
    Tensor::matrix_or_vector(shape, data)
}

/// Uniform initialisation on `(-bound, bound)`.
pub fn uniform<R: Rng>(shape: &[usize], bound: f32, rng: &mut R) -> Tensor {
    let data = (0..shape.iter().product::<usize>()).map(|_| rng.gen_range(-bound..bound)).collect();
    Tensor::matrix_or_vector(shape, data)
}

/// Gaussian initialisation with the given standard deviation (Box–Muller).
pub fn normal<R: Rng>(shape: &[usize], std: f32, rng: &mut R) -> Tensor {
    let data = (0..shape.iter().product::<usize>())
        .map(|_| StandardNormalShim::sample(rng) * std)
        .collect();
    Tensor::matrix_or_vector(shape, data)
}

/// Minimal standard-normal sampler (Box–Muller) so we do not need the
/// `rand_distr` crate.
mod rand_distr_shim {
    use rand::Rng;

    pub struct StandardNormalShim;

    impl StandardNormalShim {
        pub fn sample<R: Rng>(rng: &mut R) -> f32 {
            loop {
                let u1: f32 = rng.gen::<f32>();
                if u1 <= f32::MIN_POSITIVE {
                    continue;
                }
                let u2: f32 = rng.gen::<f32>();
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds_respected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let t = xavier_uniform(&[64, 32], &mut rng);
        let a = (6.0 / 96.0f32).sqrt();
        assert!(t.data().iter().all(|&x| x > -a && x < a));
        assert_eq!(t.shape(), &[64, 32]);
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let t = uniform(&[100], 0.5, &mut rng);
        assert!(t.data().iter().all(|&x| x.abs() < 0.5));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let t = normal(&[10_000], 2.0, &mut rng);
        let mean = t.sum() / t.len() as f32;
        let var = t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = xavier_uniform(&[8, 8], &mut rand::rngs::StdRng::seed_from_u64(9));
        let b = xavier_uniform(&[8, 8], &mut rand::rngs::StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
