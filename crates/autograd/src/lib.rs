//! From-scratch dense tensors and reverse-mode automatic differentiation.
//!
//! The RMPI models need a small, predictable subset of what PyTorch provides:
//! dense `f32` tensors of rank 1–2, the ops used by relational message
//! passing (matmul, elementwise arithmetic, ReLU/LeakyReLU/sigmoid/tanh,
//! softmax, concat/stack/gather, reductions, dropout), reverse-mode gradients
//! and the Adam optimiser. This crate implements exactly that:
//!
//! * [`Tensor`] — shape + row-major `Vec<f32>` storage with checked ops;
//! * [`Tape`] — a gradient tape: forward calls record nodes, [`Tape::backward`]
//!   walks them in reverse and routes gradients into a [`ParamStore`];
//! * [`ParamStore`] — named trainable parameters with accumulated gradients;
//! * [`optim`] — SGD and Adam;
//! * [`init`] — Xavier/uniform/normal initialisers;
//! * [`gradcheck`] — central-finite-difference gradient verification used
//!   throughout the test suite.
//!
//! Every differentiable op's backward rule is validated against finite
//! differences in its module tests, so models built on top can trust the
//! gradients unconditionally.
//!
//! ```
//! use rmpi_autograd::{optim::Sgd, ParamStore, Tape, Tensor};
//!
//! // minimise f(x) = (x - 3)^2 by gradient descent
//! let mut store = ParamStore::new();
//! let x = store.create("x", Tensor::scalar(0.0));
//! let opt = Sgd::new(0.2);
//! for _ in 0..50 {
//!     store.zero_grad();
//!     let mut tape = Tape::new();
//!     let xv = tape.param(&store, x);
//!     let c = tape.constant(Tensor::scalar(3.0));
//!     let d = tape.sub(xv, c);
//!     let sq = tape.mul(d, d);
//!     let loss = tape.sum(sq);
//!     tape.backward(loss, &mut store);
//!     opt.step(&mut store);
//! }
//! assert!((store.value(x).item() - 3.0).abs() < 1e-3);
//! ```

pub mod counters;
pub mod grad;
pub mod gradcheck;
pub mod init;
pub mod io;
pub mod kernels;
pub mod optim;
pub mod params;
pub mod tape;
pub mod tensor;

pub use grad::GradBuffer;
pub use io::{
    atomic_write_bytes, load_params, load_params_file, save_params, save_params_file,
    CheckpointError,
};
pub use params::{ParamId, ParamStore};
pub use tape::{BackwardScratch, Tape, Var};
pub use tensor::Tensor;
