//! Parameter persistence: a plain-text checkpoint format for [`ParamStore`].
//!
//! Format (line-oriented, UTF-8):
//!
//! ```text
//! rmpi-params v1
//! <name> <rank> <dim...> <value value ...>
//! ```
//!
//! Values are written with full `f32` round-trip precision via the Ryu-style
//! shortest representation Rust's formatter provides, so save → load is
//! bit-exact.
//!
//! Loading is strict: duplicate parameter names, non-finite values (a NaN or
//! Inf weight means the checkpoint is corrupt — nothing downstream can score
//! with it) and shape/value-count mismatches are all rejected with the
//! offending line number.

use crate::params::ParamStore;
use crate::tensor::Tensor;
use std::fmt;
use std::io::{BufRead, Write};

/// Checkpoint header line.
const MAGIC: &str = "rmpi-params v1";

/// Errors from checkpoint parsing.
#[derive(Debug)]
pub enum CheckpointError {
    /// Header line missing or wrong version.
    BadMagic(String),
    /// A malformed record line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic(got) => write!(f, "bad checkpoint header {got:?}"),
            CheckpointError::Parse { line, message } => write!(f, "checkpoint parse error at line {line}: {message}"),
            CheckpointError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Serialise every parameter (values only; gradients are transient).
pub fn save_params<W: Write>(w: &mut W, store: &ParamStore) -> Result<(), CheckpointError> {
    writeln!(w, "{MAGIC}")?;
    for id in store.ids() {
        let t = store.value(id);
        write!(w, "{} {}", store.name(id), t.shape().len())?;
        for d in t.shape() {
            write!(w, " {d}")?;
        }
        for v in t.data() {
            write!(w, " {v}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Parse a checkpoint into a fresh store (creation order = file order).
pub fn load_params<R: BufRead>(r: R) -> Result<ParamStore, CheckpointError> {
    let mut lines = r.lines();
    let header = lines.next().transpose()?.unwrap_or_default();
    if header != MAGIC {
        return Err(CheckpointError::BadMagic(header));
    }
    let mut store = ParamStore::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let lineno = i + 2;
        let mut parts = line.split_whitespace();
        let err = |message: String| CheckpointError::Parse { line: lineno, message };
        let name = parts.next().ok_or_else(|| err("missing name".into()))?;
        if store.get(name).is_some() {
            return Err(err(format!("duplicate parameter {name:?}")));
        }
        let rank: usize = parts
            .next()
            .ok_or_else(|| err("missing rank".into()))?
            .parse()
            .map_err(|e| err(format!("bad rank: {e}")))?;
        if !(1..=2).contains(&rank) {
            return Err(err(format!("unsupported rank {rank}")));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            let d: usize = parts
                .next()
                .ok_or_else(|| err("missing dimension".into()))?
                .parse()
                .map_err(|e| err(format!("bad dimension: {e}")))?;
            shape.push(d);
        }
        let expect: usize = shape.iter().product();
        let mut data = Vec::with_capacity(expect);
        for p in parts {
            let v = p.parse::<f32>().map_err(|e| err(format!("bad value: {e}")))?;
            if !v.is_finite() {
                return Err(err(format!("non-finite value {v} in parameter {name:?}")));
            }
            data.push(v);
        }
        if data.len() != expect {
            return Err(err(format!("expected {expect} values, got {}", data.len())));
        }
        let tensor = match rank {
            1 => Tensor::vector(data),
            _ => Tensor::matrix(shape[0], shape[1], data),
        };
        store.create(name, tensor);
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::SeedableRng;
    use std::io::Cursor;

    #[test]
    fn roundtrip_is_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        store.create("w", init::xavier_uniform(&[3, 4], &mut rng));
        store.create("b", init::normal(&[7], 0.5, &mut rng));
        let mut buf = Vec::new();
        save_params(&mut buf, &store).unwrap();
        let loaded = load_params(Cursor::new(&buf)).unwrap();
        assert_eq!(loaded.len(), 2);
        for id in store.ids() {
            let lid = loaded.get(store.name(id)).expect("name preserved");
            assert_eq!(loaded.value(lid), store.value(id), "param {} drifted", store.name(id));
        }
    }

    #[test]
    fn preserves_creation_order() {
        let mut store = ParamStore::new();
        store.create("z_last", Tensor::scalar(1.0));
        store.create("a_first", Tensor::scalar(2.0));
        let mut buf = Vec::new();
        save_params(&mut buf, &store).unwrap();
        let loaded = load_params(Cursor::new(&buf)).unwrap();
        let names: Vec<&str> = loaded.ids().map(|id| loaded.name(id)).collect();
        assert_eq!(names, vec!["z_last", "a_first"]);
    }

    #[test]
    fn rejects_bad_header() {
        let err = load_params(Cursor::new("wrong v9\n")).unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic(_)));
    }

    #[test]
    fn rejects_truncated_record() {
        let input = format!("{MAGIC}\nw 2 3 4 1.0 2.0\n");
        let err = load_params(Cursor::new(input)).unwrap_err();
        match err {
            CheckpointError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn rejects_unsupported_rank() {
        let input = format!("{MAGIC}\nw 3 1 1 1 0.0\n");
        assert!(load_params(Cursor::new(input)).is_err());
    }

    #[test]
    fn io_error_exposes_source() {
        let underlying = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "cut short");
        let err = CheckpointError::from(underlying);
        let source = std::error::Error::source(&err).expect("Io variant must carry its cause");
        assert!(source.to_string().contains("cut short"));
        let parse = CheckpointError::Parse { line: 1, message: "x".into() };
        assert!(std::error::Error::source(&parse).is_none());
    }

    #[test]
    fn rejects_duplicate_parameter_names() {
        let input = format!("{MAGIC}\nw 1 1 0.5\nw 1 1 0.25\n");
        let err = load_params(Cursor::new(input)).unwrap_err();
        match err {
            CheckpointError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("duplicate"), "message: {message}");
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn rejects_non_finite_values() {
        for bad in ["NaN", "inf", "-inf"] {
            let input = format!("{MAGIC}\nw 1 2 1.0 {bad}\n");
            let err = load_params(Cursor::new(input)).unwrap_err();
            match err {
                CheckpointError::Parse { line, message } => {
                    assert_eq!(line, 2);
                    assert!(message.contains("non-finite"), "{bad}: {message}");
                }
                other => panic!("unexpected {other}"),
            }
        }
    }

    #[test]
    fn rejects_value_count_mismatch() {
        // too many values is as corrupt as too few
        let input = format!("{MAGIC}\nw 1 2 1.0 2.0 3.0\n");
        assert!(load_params(Cursor::new(input)).is_err());
    }

    #[test]
    fn special_values_roundtrip() {
        let mut store = ParamStore::new();
        store.create("edge", Tensor::vector(vec![f32::MIN_POSITIVE, -0.0, 1e30, -1e-30]));
        let mut buf = Vec::new();
        save_params(&mut buf, &store).unwrap();
        let loaded = load_params(Cursor::new(&buf)).unwrap();
        let lid = loaded.get("edge").unwrap();
        assert_eq!(loaded.value(lid).data(), store.value(store.get("edge").unwrap()).data());
    }
}
