//! Parameter persistence: a plain-text checkpoint format for [`ParamStore`].
//!
//! Format (line-oriented, UTF-8):
//!
//! ```text
//! rmpi-params v1
//! <name> <rank> <dim...> <value value ...>
//! ```
//!
//! Values are written with full `f32` round-trip precision via the Ryu-style
//! shortest representation Rust's formatter provides, so save → load is
//! bit-exact.
//!
//! Loading is strict: duplicate parameter names, non-finite values (a NaN or
//! Inf weight means the checkpoint is corrupt — nothing downstream can score
//! with it) and shape/value-count mismatches are all rejected with the
//! offending line number.
//!
//! File-level helpers are **crash-safe**: [`save_params_file`] (and the
//! general [`atomic_write_bytes`]) serialise to a temp file in the target's
//! directory, fsync it, and atomically rename it over the destination — so a
//! failure or kill mid-write can never leave a truncated checkpoint behind;
//! the previous file, if any, survives untouched.

use crate::params::ParamStore;
use crate::tensor::Tensor;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Checkpoint header line.
const MAGIC: &str = "rmpi-params v1";

/// Errors from checkpoint parsing.
#[derive(Debug)]
pub enum CheckpointError {
    /// Header line missing or wrong version.
    BadMagic(String),
    /// A malformed record line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic(got) => write!(f, "bad checkpoint header {got:?}"),
            CheckpointError::Parse { line, message } => {
                write!(f, "checkpoint parse error at line {line}: {message}")
            }
            CheckpointError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Serialise every parameter (values only; gradients are transient).
pub fn save_params<W: Write>(w: &mut W, store: &ParamStore) -> Result<(), CheckpointError> {
    writeln!(w, "{MAGIC}")?;
    for id in store.ids() {
        let t = store.value(id);
        write!(w, "{} {}", store.name(id), t.shape().len())?;
        for d in t.shape() {
            write!(w, " {d}")?;
        }
        for v in t.data() {
            write!(w, " {v}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Failpoint name consulted by [`atomic_write_bytes`] while the temp file is
/// being written — arm it with `io_error` or `truncate(n)` to simulate a
/// crash mid-checkpoint.
pub const WRITE_FAILPOINT: &str = "io::atomic_write";

/// Write `bytes` to `path` atomically: the data goes to a temp file in the
/// same directory, is flushed and fsynced, and only then renamed over the
/// destination (followed by a directory fsync where the platform supports
/// it). On any failure the destination is untouched and the temp file is
/// removed — readers never observe a partial file.
pub fn atomic_write_bytes<P: AsRef<Path>>(path: P, bytes: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::other(format!("path {} has no file name", path.display()))
    })?;
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let tmp = parent.join(format!(".{}.tmp-{}", file_name.to_string_lossy(), std::process::id()));
    let written = (|| -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        if let Some(n) = rmpi_testutil::failpoint::fs_write(WRITE_FAILPOINT)? {
            // simulate a crash mid-write: part of the payload lands in the
            // temp file, then the write "dies"
            f.write_all(&bytes[..n.min(bytes.len())])?;
            return Err(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                format!("failpoint {WRITE_FAILPOINT}: write truncated at {n} bytes"),
            ));
        }
        f.write_all(bytes)?;
        f.sync_all()?;
        Ok(())
    })()
    .and_then(|()| std::fs::rename(&tmp, path));
    match written {
        Ok(()) => {
            // persist the rename itself; the write still succeeded if this
            // fails (not all platforms allow fsync on a directory handle),
            // but the failure is counted and logged rather than swallowed
            match std::fs::File::open(&parent).and_then(|dir| dir.sync_all()) {
                Ok(()) => {}
                Err(e) => rmpi_obs::note_dir_fsync_failure(&parent, &e),
            }
            Ok(())
        }
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Save a checkpoint to `path` with atomic write-to-temp + fsync + rename
/// semantics: on failure the previous file at `path` is untouched.
pub fn save_params_file<P: AsRef<Path>>(
    path: P,
    store: &ParamStore,
) -> Result<(), CheckpointError> {
    let mut buf = Vec::new();
    save_params(&mut buf, store)?;
    atomic_write_bytes(path, &buf)?;
    Ok(())
}

/// Load a checkpoint from `path`.
pub fn load_params_file<P: AsRef<Path>>(path: P) -> Result<ParamStore, CheckpointError> {
    load_params(BufReader::new(std::fs::File::open(path)?))
}

/// Parse a checkpoint into a fresh store (creation order = file order).
pub fn load_params<R: BufRead>(r: R) -> Result<ParamStore, CheckpointError> {
    let mut lines = r.lines();
    let header = lines.next().transpose()?.unwrap_or_default();
    if header != MAGIC {
        return Err(CheckpointError::BadMagic(header));
    }
    let mut store = ParamStore::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let lineno = i + 2;
        let mut parts = line.split_whitespace();
        let err = |message: String| CheckpointError::Parse { line: lineno, message };
        let name = parts.next().ok_or_else(|| err("missing name".into()))?;
        if store.get(name).is_some() {
            return Err(err(format!("duplicate parameter {name:?}")));
        }
        let rank: usize = parts
            .next()
            .ok_or_else(|| err("missing rank".into()))?
            .parse()
            .map_err(|e| err(format!("bad rank: {e}")))?;
        if !(1..=2).contains(&rank) {
            return Err(err(format!("unsupported rank {rank}")));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            let d: usize = parts
                .next()
                .ok_or_else(|| err("missing dimension".into()))?
                .parse()
                .map_err(|e| err(format!("bad dimension: {e}")))?;
            shape.push(d);
        }
        let expect: usize = shape.iter().product();
        let mut data = Vec::with_capacity(expect);
        for p in parts {
            let v = p.parse::<f32>().map_err(|e| err(format!("bad value: {e}")))?;
            if !v.is_finite() {
                return Err(err(format!("non-finite value {v} in parameter {name:?}")));
            }
            data.push(v);
        }
        if data.len() != expect {
            return Err(err(format!("expected {expect} values, got {}", data.len())));
        }
        let tensor = match rank {
            1 => Tensor::vector(data),
            _ => Tensor::matrix(shape[0], shape[1], data),
        };
        store.create(name, tensor);
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::SeedableRng;
    use std::io::Cursor;

    #[test]
    fn roundtrip_is_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        store.create("w", init::xavier_uniform(&[3, 4], &mut rng));
        store.create("b", init::normal(&[7], 0.5, &mut rng));
        let mut buf = Vec::new();
        save_params(&mut buf, &store).unwrap();
        let loaded = load_params(Cursor::new(&buf)).unwrap();
        assert_eq!(loaded.len(), 2);
        for id in store.ids() {
            let lid = loaded.get(store.name(id)).expect("name preserved");
            assert_eq!(loaded.value(lid), store.value(id), "param {} drifted", store.name(id));
        }
    }

    #[test]
    fn preserves_creation_order() {
        let mut store = ParamStore::new();
        store.create("z_last", Tensor::scalar(1.0));
        store.create("a_first", Tensor::scalar(2.0));
        let mut buf = Vec::new();
        save_params(&mut buf, &store).unwrap();
        let loaded = load_params(Cursor::new(&buf)).unwrap();
        let names: Vec<&str> = loaded.ids().map(|id| loaded.name(id)).collect();
        assert_eq!(names, vec!["z_last", "a_first"]);
    }

    #[test]
    fn rejects_bad_header() {
        let err = load_params(Cursor::new("wrong v9\n")).unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic(_)));
    }

    #[test]
    fn rejects_truncated_record() {
        let input = format!("{MAGIC}\nw 2 3 4 1.0 2.0\n");
        let err = load_params(Cursor::new(input)).unwrap_err();
        match err {
            CheckpointError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn rejects_unsupported_rank() {
        let input = format!("{MAGIC}\nw 3 1 1 1 0.0\n");
        assert!(load_params(Cursor::new(input)).is_err());
    }

    #[test]
    fn io_error_exposes_source() {
        let underlying = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "cut short");
        let err = CheckpointError::from(underlying);
        let source = std::error::Error::source(&err).expect("Io variant must carry its cause");
        assert!(source.to_string().contains("cut short"));
        let parse = CheckpointError::Parse { line: 1, message: "x".into() };
        assert!(std::error::Error::source(&parse).is_none());
    }

    #[test]
    fn rejects_duplicate_parameter_names() {
        let input = format!("{MAGIC}\nw 1 1 0.5\nw 1 1 0.25\n");
        let err = load_params(Cursor::new(input)).unwrap_err();
        match err {
            CheckpointError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("duplicate"), "message: {message}");
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn rejects_non_finite_values() {
        for bad in ["NaN", "inf", "-inf"] {
            let input = format!("{MAGIC}\nw 1 2 1.0 {bad}\n");
            let err = load_params(Cursor::new(input)).unwrap_err();
            match err {
                CheckpointError::Parse { line, message } => {
                    assert_eq!(line, 2);
                    assert!(message.contains("non-finite"), "{bad}: {message}");
                }
                other => panic!("unexpected {other}"),
            }
        }
    }

    #[test]
    fn rejects_value_count_mismatch() {
        // too many values is as corrupt as too few
        let input = format!("{MAGIC}\nw 1 2 1.0 2.0 3.0\n");
        assert!(load_params(Cursor::new(input)).is_err());
    }

    #[test]
    fn file_roundtrip_via_atomic_write() {
        let _lock = rmpi_testutil::failpoint::exclusive();
        let dir = std::env::temp_dir().join(format!("rmpi-io-at-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("params.ckpt");
        let mut store = ParamStore::new();
        store.create("w", Tensor::vector(vec![1.0, -2.5, 0.125]));
        save_params_file(&path, &store).unwrap();
        let loaded = load_params_file(&path).unwrap();
        assert_eq!(loaded.value(loaded.get("w").unwrap()).data(), &[1.0, -2.5, 0.125]);
        // no temp litter left behind
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_write_leaves_original_untouched() {
        use rmpi_testutil::failpoint::{self, Action};
        let _lock = failpoint::exclusive();
        let dir = std::env::temp_dir().join(format!("rmpi-io-fp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("params.ckpt");
        let mut store = ParamStore::new();
        store.create("w", Tensor::vector(vec![3.0, 4.0]));
        save_params_file(&path, &store).unwrap();
        let original = std::fs::read(&path).unwrap();

        let mut bigger = ParamStore::new();
        bigger.create("w", Tensor::vector(vec![9.0; 64]));
        for action in [Action::IoError("disk full".into()), Action::Truncate(10)] {
            failpoint::arm(WRITE_FAILPOINT, action);
            let err = save_params_file(&path, &bigger).unwrap_err();
            failpoint::disarm(WRITE_FAILPOINT);
            assert!(matches!(err, CheckpointError::Io(_)), "{err}");
            assert_eq!(
                std::fs::read(&path).unwrap(),
                original,
                "a failed save must leave the previous checkpoint byte-identical"
            );
            // and the aborted temp file is cleaned up
            assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
            // the surviving file still parses
            assert!(load_params_file(&path).is_ok());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn adam_state_roundtrips_through_export() {
        use crate::optim::Adam;
        let mut store = ParamStore::new();
        let w = store.create("w", Tensor::vector(vec![1.0, 2.0]));
        let mut adam = Adam::new(0.01);
        store.accumulate_grad(w, &Tensor::vector(vec![0.5, -0.5]));
        adam.step(&mut store);
        let state = adam.export_state();
        assert_eq!(state.t, 1);

        // continue one branch with the live optimiser and another with a
        // fresh optimiser restored from the snapshot: same gradients in,
        // identical parameters out
        let mut live = store.clone();
        let mut restored = store.clone();
        let mut adam2 = Adam::new(0.01);
        adam2.restore_state(state);
        live.accumulate_grad(w, &Tensor::vector(vec![0.25, 0.75]));
        restored.accumulate_grad(w, &Tensor::vector(vec![0.25, 0.75]));
        adam.step(&mut live);
        adam2.step(&mut restored);
        assert_eq!(
            live.value(w).data(),
            restored.value(w).data(),
            "a restored optimiser must continue bit-identically"
        );
    }

    #[test]
    fn special_values_roundtrip() {
        let mut store = ParamStore::new();
        store.create("edge", Tensor::vector(vec![f32::MIN_POSITIVE, -0.0, 1e30, -1e-30]));
        let mut buf = Vec::new();
        save_params(&mut buf, &store).unwrap();
        let loaded = load_params(Cursor::new(&buf)).unwrap();
        let lid = loaded.get("edge").unwrap();
        assert_eq!(loaded.value(lid).data(), store.value(store.get("edge").unwrap()).data());
    }
}
