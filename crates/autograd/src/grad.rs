//! Detachable gradient buffers.
//!
//! [`crate::Tape::backward_into`] writes parameter gradients into a
//! [`GradBuffer`] instead of mutating the [`ParamStore`] directly. That one
//! change is what makes the whole engine data-parallel: the forward/backward
//! pass then needs only `&ParamStore` (read-only, `Sync`), so any number of
//! workers can run samples concurrently and hand back one buffer each.
//!
//! Buffers are merged with a *deterministic ordered reduce*: the trainer adds
//! per-sample buffers into the store in sample-index order, so the sequence
//! of floating-point additions is exactly the sequence the sequential loop
//! performs — parallel and sequential training produce bit-identical
//! parameters (see `DESIGN.md`, "Threading model").

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Per-parameter gradient accumulator detached from any [`ParamStore`].
///
/// Slots are allocated lazily: a sample's subgraph usually touches a small
/// subset of the parameters (gathered relation embeddings, the layers it
/// actually ran), and untouched parameters cost nothing.
#[derive(Clone, Debug, Default)]
pub struct GradBuffer {
    slots: Vec<Option<Tensor>>,
}

impl GradBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` into the slot for `id` (taking ownership avoids a copy
    /// for the first — usually only — contribution).
    pub fn add_assign(&mut self, id: ParamId, delta: Tensor) {
        let i = id.index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        match &mut self.slots[i] {
            Some(existing) => existing.axpy(1.0, &delta),
            slot @ None => *slot = Some(delta),
        }
    }

    /// The accumulated gradient for `id`, if any op touched it.
    pub fn get(&self, id: ParamId) -> Option<&Tensor> {
        self.slots.get(id.index()).and_then(Option::as_ref)
    }

    /// `true` when no gradient has been recorded.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Iterate recorded gradients in parameter-index order.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|t| (ParamId::from_index(i), t)))
    }

    /// Merge `other` into `self`, slot by slot in parameter-index order.
    pub fn merge(&mut self, other: GradBuffer) {
        for (i, slot) in other.slots.into_iter().enumerate() {
            if let Some(g) = slot {
                self.add_assign(ParamId::from_index(i), g);
            }
        }
    }

    /// Add every recorded gradient into the store's accumulators, in
    /// parameter-index order (the ordered-reduce step).
    pub fn add_to(&self, store: &mut ParamStore) {
        for (id, g) in self.iter() {
            store.accumulate_grad(id, g);
        }
    }

    /// Drop all recorded gradients but keep the slot table's capacity.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store3() -> (ParamStore, ParamId, ParamId, ParamId) {
        let mut s = ParamStore::new();
        let a = s.create("a", Tensor::vector(vec![0.0, 0.0]));
        let b = s.create("b", Tensor::scalar(0.0));
        let c = s.create("c", Tensor::vector(vec![0.0; 3]));
        (s, a, b, c)
    }

    #[test]
    fn accumulates_and_merges_in_index_order() {
        let (_, a, _, c) = store3();
        let mut x = GradBuffer::new();
        x.add_assign(a, Tensor::vector(vec![1.0, 2.0]));
        x.add_assign(a, Tensor::vector(vec![0.5, 0.5]));
        assert_eq!(x.get(a).unwrap().data(), &[1.5, 2.5]);
        assert!(x.get(c).is_none());

        let mut y = GradBuffer::new();
        y.add_assign(c, Tensor::vector(vec![1.0, 1.0, 1.0]));
        x.merge(y);
        assert_eq!(x.get(c).unwrap().data(), &[1.0, 1.0, 1.0]);
        let ids: Vec<usize> = x.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![a.index(), c.index()], "iteration is index-ordered");
    }

    #[test]
    fn add_to_matches_direct_accumulation() {
        let (mut store, a, b, _) = store3();
        let mut buf = GradBuffer::new();
        buf.add_assign(b, Tensor::scalar(3.0));
        buf.add_assign(a, Tensor::vector(vec![1.0, -1.0]));
        buf.add_to(&mut store);
        buf.add_to(&mut store);
        assert_eq!(store.grad(a).data(), &[2.0, -2.0]);
        assert_eq!(store.grad(b).data(), &[6.0]);
    }

    #[test]
    fn clear_keeps_capacity_and_empties() {
        let (_, a, _, _) = store3();
        let mut buf = GradBuffer::new();
        assert!(buf.is_empty());
        buf.add_assign(a, Tensor::scalar(1.0));
        assert!(!buf.is_empty());
        buf.clear();
        assert!(buf.is_empty());
        assert!(buf.get(a).is_none());
    }
}
