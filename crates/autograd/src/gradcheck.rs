//! Central finite-difference gradient checking.
//!
//! Used throughout the workspace's test suites to validate that every
//! backward rule — and every model built from them — produces correct
//! gradients. f32 precision limits accuracy to roughly 1e-2 relative
//! tolerance with the default epsilon, which is ample to catch a wrong or
//! missing gradient term (those show up as order-of-magnitude errors).

use crate::params::ParamStore;
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Default perturbation size for finite differences.
pub const DEFAULT_EPS: f32 = 1e-2;
/// Default tolerance on the combined relative/absolute error.
pub const DEFAULT_TOL: f32 = 2e-2;

/// Compare analytic gradients with central finite differences and panic with
/// a diagnostic on mismatch.
///
/// `params` lists the named tensors to create; `f` builds the forward pass on
/// a fresh tape and returns the scalar loss variable.
pub fn check_gradients(params: &[(&str, Tensor)], f: impl Fn(&mut Tape, &ParamStore) -> Var) {
    check_gradients_with(params, f, DEFAULT_EPS, DEFAULT_TOL)
}

/// [`check_gradients`] with explicit epsilon and tolerance.
pub fn check_gradients_with(
    params: &[(&str, Tensor)],
    f: impl Fn(&mut Tape, &ParamStore) -> Var,
    eps: f32,
    tol: f32,
) {
    let mut store = ParamStore::new();
    for (name, t) in params {
        store.create(name, t.clone());
    }

    // analytic gradients
    store.zero_grad();
    let mut tape = Tape::new();
    let loss = f(&mut tape, &store);
    tape.backward(loss, &mut store);
    let analytic: Vec<Tensor> = store.ids().map(|id| store.grad(id).clone()).collect();

    // finite differences
    for (pi, id) in store.ids().collect::<Vec<_>>().into_iter().enumerate() {
        let n = store.value(id).len();
        for k in 0..n {
            let orig = store.value(id).data()[k];

            store.value_mut(id).data_mut()[k] = orig + eps;
            let mut tp = Tape::new();
            let lp = f(&mut tp, &store);
            let plus = tp.value(lp).item();

            store.value_mut(id).data_mut()[k] = orig - eps;
            let mut tm = Tape::new();
            let lm = f(&mut tm, &store);
            let minus = tm.value(lm).item();

            store.value_mut(id).data_mut()[k] = orig;

            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic[pi].data()[k];
            let err = (a - numeric).abs() / (1.0 + a.abs().max(numeric.abs()));
            assert!(
                err <= tol,
                "gradient mismatch for param {:?} element {k}: analytic {a}, numeric {numeric} (err {err})",
                store.name(id),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_for_correct_gradient() {
        check_gradients(&[("x", Tensor::vector(vec![0.5, -1.5]))], |tape, store| {
            let x = tape.param(store, store.get("x").unwrap());
            let s = tape.sigmoid(x);
            tape.sum(s)
        });
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn catches_wrong_gradient() {
        // A forward function that is *not* differentiable-consistent across
        // calls: uses the parameter value only on the analytic pass shape but
        // a constant otherwise would be contrived; instead check that an
        // intentionally non-smooth mismatch is caught by comparing f(x)=|x|
        // near 0 where finite differences disagree with the relu-style
        // subgradient convention used analytically.
        check_gradients_with(
            &[("x", Tensor::vector(vec![1e-4]))],
            |tape, store| {
                let x = tape.param(store, store.get("x").unwrap());
                // |x| built as relu(x) + relu(-x); analytic grad at +1e-4 is 1,
                // numeric central difference at eps=1e-2 is ~0 -> mismatch.
                let n = tape.scale(x, -1.0);
                let a = tape.relu(x);
                let b = tape.relu(n);
                let s = tape.add(a, b);
                tape.sum(s)
            },
            1e-2,
            1e-3,
        );
    }
}
