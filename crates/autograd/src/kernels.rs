//! Cache-blocked matrix-multiply kernels.
//!
//! Three variants cover everything the tape needs without ever materialising
//! a transpose:
//!
//! * [`matmul_nn`] — `C += A·B` (forward pass);
//! * [`matmul_nt`] — `C += A·Bᵀ` with `B` stored un-transposed (the
//!   `grad_a = g·bᵀ` rule: every output element is a dot product of two
//!   contiguous rows);
//! * [`matmul_tn`] — `C += Aᵀ·B` with `A` stored un-transposed (the
//!   `grad_b = aᵀ·g` rule: a sequence of rank-1 updates over contiguous
//!   rows).
//!
//! All loops are tiled so the working set of each inner loop nest fits in L1,
//! and every inner loop walks contiguous memory in both operands so the
//! compiler can autovectorise it. For a fixed output element the reduction
//! over the shared dimension always runs in ascending index order — blocking
//! changes *which* elements are computed together, never the order of the
//! floating-point additions — so results are bitwise independent of the tile
//! sizes.

/// Rows of the output tile kept hot per block.
const BI: usize = 32;
/// Shared-dimension tile: `BK` rows of `B` (or `A` in the `tn` case) are
/// streamed through L1 per block.
const BK: usize = 64;

/// `out += a · b` for row-major `a` (`m`×`k`), `b` (`k`×`n`), `out` (`m`×`n`).
///
/// `out` is *accumulated into*, not overwritten — callers that want a plain
/// product pass a zeroed buffer. Tiled i-k-j: the inner loop is an `axpy`
/// over a contiguous row of `b` into a contiguous row of `out`. Rows of the
/// left operand that are exactly zero (ReLU/dropout masks) are skipped; this
/// cannot change the result because `0 · x` contributes nothing to a sum that
/// is accumulated in the same order either way.
pub fn matmul_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i0 in (0..m).step_by(BI) {
        let i1 = (i0 + BI).min(m);
        for p0 in (0..k).step_by(BK) {
            let p1 = (p0 + BK).min(k);
            for i in i0..i1 {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut out[i * n..(i + 1) * n];
                for p in p0..p1 {
                    let av = arow[p];
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
    }
}

/// `out += a · bᵀ` for row-major `a` (`m`×`k`), `b` (`n`×`k`), `out` (`m`×`n`).
///
/// `b` is the *un-transposed* right operand: `out[i][j] = Σₚ a[i][p]·b[j][p]`,
/// a dot product of two contiguous rows. This is the `grad_a = g·bᵀ` backward
/// rule without ever materialising `bᵀ`. Tiled over `i` and `j` so a block of
/// `b` rows stays in L1 while `BI` rows of `a` stream past it.
pub fn matmul_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    for i0 in (0..m).step_by(BI) {
        let i1 = (i0 + BI).min(m);
        for j0 in (0..n).step_by(BK) {
            let j1 = (j0 + BK).min(n);
            for i in i0..i1 {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut out[i * n..(i + 1) * n];
                for j in j0..j1 {
                    let brow = &b[j * k..(j + 1) * k];
                    let dot: f32 = arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
                    orow[j] += dot;
                }
            }
        }
    }
}

/// `out += aᵀ · b` for row-major `a` (`k`×`m`), `b` (`k`×`n`), `out` (`m`×`n`).
///
/// `a` is the *un-transposed* left operand: `out[i][j] = Σₚ a[p][i]·b[p][j]`.
/// This is the `grad_b = aᵀ·g` backward rule, computed as rank-1 updates:
/// each shared-dimension index `p` scatters `a[p][i] · b_row_p` into output
/// row `i`. Tiled over output rows so a block of `out` stays hot while the
/// `p` loop streams `a` and `b` rows through it.
pub fn matmul_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i0 in (0..m).step_by(BI) {
        let i1 = (i0 + BI).min(m);
        for p in 0..k {
            let arow = &a[p * m..(p + 1) * m];
            let brow = &b[p * n..(p + 1) * n];
            for i in i0..i1 {
                let av = arow[i];
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Textbook triple loop, the reference the blocked kernels must match.
    fn naive_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    out[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        out
    }

    fn transpose(r: usize, c: usize, x: &[f32]) -> Vec<f32> {
        let mut t = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                t[j * r + i] = x[i * c + j];
            }
        }
        t
    }

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // deterministic pseudo-random values with some exact zeros mixed in
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                if state % 7 == 0 {
                    0.0
                } else {
                    ((state >> 8) as f32 / (1u32 << 24) as f32) - 0.5
                }
            })
            .collect()
    }

    // Shapes chosen to exercise every tiling edge: smaller than one block,
    // exactly one block, one-past-a-block boundary, and multi-block.
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (3, 5, 2),
        (8, 8, 8),
        (31, 64, 33),
        (32, 65, 64),
        (70, 70, 70),
        (1, 130, 1),
    ];

    #[test]
    fn nn_matches_naive_on_all_shapes() {
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut out = vec![0.0; m * n];
            matmul_nn(m, k, n, &a, &b, &mut out);
            assert_eq!(out, naive_nn(m, k, n, &a, &b), "nn {m}x{k}x{n}");
        }
    }

    #[test]
    fn nt_matches_naive_against_explicit_transpose() {
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, 3);
            let bt = fill(n * k, 4); // B stored as (n, k)
            let b = transpose(n, k, &bt); // materialised (k, n) for the reference
            let mut out = vec![0.0; m * n];
            matmul_nt(m, k, n, &a, &bt, &mut out);
            let expect = naive_nn(m, k, n, &a, &b);
            for (got, want) in out.iter().zip(&expect) {
                assert!((got - want).abs() <= 1e-5, "nt {m}x{k}x{n}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn tn_matches_naive_against_explicit_transpose() {
        for &(m, k, n) in SHAPES {
            let at = fill(k * m, 5); // A stored as (k, m)
            let b = fill(k * n, 6);
            let a = transpose(k, m, &at); // materialised (m, k) for the reference
            let mut out = vec![0.0; m * n];
            matmul_tn(m, k, n, &at, &b, &mut out);
            let expect = naive_nn(m, k, n, &a, &b);
            for (got, want) in out.iter().zip(&expect) {
                assert!((got - want).abs() <= 1e-5, "tn {m}x{k}x{n}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn kernels_accumulate_rather_than_overwrite() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        let mut out = [10.0];
        matmul_nn(1, 2, 1, &a, &b, &mut out);
        assert_eq!(out, [10.0 + 11.0]);
        let mut out = [1.0];
        matmul_nt(1, 2, 1, &a, &b, &mut out);
        assert_eq!(out, [1.0 + 11.0]);
        // aᵀ(2x1)·b(1x2): out[i][j] = a[0][i]*b[0][j]
        let mut out = [0.5, 0.0, 0.0, 0.0];
        matmul_tn(2, 1, 2, &a, &b, &mut out);
        assert_eq!(out, [0.5 + 3.0, 4.0, 6.0, 8.0]);
    }
}
