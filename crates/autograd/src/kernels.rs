//! Cache-blocked, autovectorizer-friendly matrix-multiply kernels.
//!
//! Three variants cover everything the tape needs without ever materialising
//! a transpose:
//!
//! * [`matmul_nn`] — `C += A·B` (forward pass);
//! * [`matmul_nt`] — `C += A·Bᵀ` with `B` stored un-transposed (the
//!   `grad_a = g·bᵀ` rule: every output element is a dot product of two
//!   contiguous rows);
//! * [`matmul_tn`] — `C += Aᵀ·B` with `A` stored un-transposed (the
//!   `grad_b = aᵀ·g` rule: a sequence of rank-1 updates over contiguous
//!   rows).
//!
//! All loops are tiled so the working set of each inner loop nest fits in L1,
//! and — the part the codegen actually cares about — every inner loop is a
//! zip over slices whose lengths the compiler can prove equal
//! (`chunks_exact` + `zip`), so there are **no index bounds checks inside the
//! hot loops** and the autovectorizer can lower them to packed SIMD.
//!
//! FP-order contract: `matmul_nn` accumulates each output element strictly in
//! ascending shared-dimension order — blocking changes *which* elements are
//! computed together, never the order of the floating-point additions — so
//! its results are bitwise independent of the tile sizes (pinned by
//! `nn_matches_naive_on_all_shapes`). `matmul_nt` uses an 8-lane chunked dot
//! ([`dot_chunked`]) that reassociates the reduction; its results differ from
//! the naive order only by rounding (tests compare at `1e-5`).
//!
//! Every kernel reports its algorithmic FLOP and byte traffic to
//! [`crate::counters`] — two relaxed atomic adds per call.

use crate::counters;

/// Rows of the output tile kept hot per block.
const BI: usize = 32;
/// Shared-dimension tile: `BK` rows of `B` (or `A` in the `tn` case) are
/// streamed through L1 per block.
const BK: usize = 64;

/// Accumulator lanes for the chunked dot product: wide enough to hide FMA
/// latency on any SIMD width the autovectorizer picks, small enough to stay
/// in registers.
const LANES: usize = 8;

/// Dot product with `LANES` independent accumulators.
///
/// The lane split reassociates the sum (bitwise ≠ a strict left fold, equal
/// within rounding); each lane's partial runs in ascending index order, and
/// the final lane reduction is a fixed-shape tree, so the result is
/// deterministic for a given input length.
#[inline]
pub(crate) fn dot_chunked(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = [0.0f32; LANES];
    let xc = x.chunks_exact(LANES);
    let yc = y.chunks_exact(LANES);
    let (xr, yr) = (xc.remainder(), yc.remainder());
    for (xs, ys) in xc.zip(yc) {
        let xs: &[f32; LANES] = xs.try_into().unwrap();
        let ys: &[f32; LANES] = ys.try_into().unwrap();
        for l in 0..LANES {
            acc[l] += xs[l] * ys[l];
        }
    }
    let mut tail = 0.0f32;
    for (a, b) in xr.iter().zip(yr) {
        tail += a * b;
    }
    let head = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    head + tail
}

/// `out += a · b` for row-major `a` (`m`×`k`), `b` (`k`×`n`), `out` (`m`×`n`).
///
/// `out` is *accumulated into*, not overwritten — callers that want a plain
/// product pass a zeroed buffer. Tiled i-k-j: the inner loop is an `axpy`
/// over a contiguous row of `b` into a contiguous row of `out`. Rows of the
/// left operand that are exactly zero (ReLU/dropout masks) are skipped; this
/// cannot change the result because `0 · x` contributes nothing to a sum that
/// is accumulated in the same order either way.
pub fn matmul_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    counters::record(2 * (m * k * n) as u64, 4 * (m * k + k * n + 2 * m * n) as u64);
    if n == 0 {
        return;
    }
    for i0 in (0..m).step_by(BI) {
        let i1 = (i0 + BI).min(m);
        for p0 in (0..k).step_by(BK) {
            let p1 = (p0 + BK).min(k);
            // `chunks_exact(n)` over the block of B rows: each chunk is one
            // row, and the zip with the A sub-row needs no indexing at all.
            let bblock = b[p0 * n..p1 * n].chunks_exact(n);
            for i in i0..i1 {
                let arow = &a[i * k + p0..i * k + p1];
                let orow = &mut out[i * n..(i + 1) * n];
                for (&av, brow) in arow.iter().zip(bblock.clone()) {
                    if av == 0.0 {
                        continue;
                    }
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
    }
}

/// `out += a · bᵀ` for row-major `a` (`m`×`k`), `b` (`n`×`k`), `out` (`m`×`n`).
///
/// `b` is the *un-transposed* right operand: `out[i][j] = Σₚ a[i][p]·b[j][p]`,
/// a dot product of two contiguous rows. This is the `grad_a = g·bᵀ` backward
/// rule without ever materialising `bᵀ`. Tiled over `i` and `j` so a block of
/// `b` rows stays in L1 while `BI` rows of `a` stream past it; each dot runs
/// through the multi-accumulator [`dot_chunked`].
pub fn matmul_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    counters::record(2 * (m * k * n) as u64, 4 * (m * k + n * k + 2 * m * n) as u64);
    if k == 0 {
        return;
    }
    for i0 in (0..m).step_by(BI) {
        let i1 = (i0 + BI).min(m);
        for j0 in (0..n).step_by(BK) {
            let j1 = (j0 + BK).min(n);
            let bblock = b[j0 * k..j1 * k].chunks_exact(k);
            for i in i0..i1 {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut out[i * n + j0..i * n + j1];
                for (o, brow) in orow.iter_mut().zip(bblock.clone()) {
                    *o += dot_chunked(arow, brow);
                }
            }
        }
    }
}

/// `out += aᵀ · b` for row-major `a` (`k`×`m`), `b` (`k`×`n`), `out` (`m`×`n`).
///
/// `a` is the *un-transposed* left operand: `out[i][j] = Σₚ a[p][i]·b[p][j]`.
/// This is the `grad_b = aᵀ·g` backward rule, computed as rank-1 updates:
/// each shared-dimension index `p` scatters `a[p][i] · b_row_p` into output
/// row `i`. Tiled over output rows so a block of `out` stays hot while the
/// `p` loop streams `a` and `b` rows through it. Like `matmul_nn`, each
/// output element accumulates in ascending `p` order.
pub fn matmul_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    counters::record(2 * (m * k * n) as u64, 4 * (k * m + k * n + 2 * m * n) as u64);
    for i0 in (0..m).step_by(BI) {
        let i1 = (i0 + BI).min(m);
        for p in 0..k {
            let arow = &a[p * m + i0..p * m + i1];
            let brow = &b[p * n..(p + 1) * n];
            for (di, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let i = i0 + di;
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Textbook triple loop, the reference the blocked kernels must match.
    fn naive_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    out[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        out
    }

    fn transpose(r: usize, c: usize, x: &[f32]) -> Vec<f32> {
        let mut t = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                t[j * r + i] = x[i * c + j];
            }
        }
        t
    }

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // deterministic pseudo-random values with some exact zeros mixed in
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                if state % 7 == 0 {
                    0.0
                } else {
                    ((state >> 8) as f32 / (1u32 << 24) as f32) - 0.5
                }
            })
            .collect()
    }

    // Shapes chosen to exercise every tiling edge: smaller than one block,
    // exactly one block, one-past-a-block boundary, and multi-block.
    const SHAPES: &[(usize, usize, usize)] =
        &[(1, 1, 1), (3, 5, 2), (8, 8, 8), (31, 64, 33), (32, 65, 64), (70, 70, 70), (1, 130, 1)];

    #[test]
    fn nn_matches_naive_on_all_shapes() {
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut out = vec![0.0; m * n];
            matmul_nn(m, k, n, &a, &b, &mut out);
            assert_eq!(out, naive_nn(m, k, n, &a, &b), "nn {m}x{k}x{n}");
        }
    }

    #[test]
    fn nt_matches_naive_against_explicit_transpose() {
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, 3);
            let bt = fill(n * k, 4); // B stored as (n, k)
            let b = transpose(n, k, &bt); // materialised (k, n) for the reference
            let mut out = vec![0.0; m * n];
            matmul_nt(m, k, n, &a, &bt, &mut out);
            let expect = naive_nn(m, k, n, &a, &b);
            for (got, want) in out.iter().zip(&expect) {
                assert!((got - want).abs() <= 1e-5, "nt {m}x{k}x{n}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn tn_matches_naive_against_explicit_transpose() {
        for &(m, k, n) in SHAPES {
            let at = fill(k * m, 5); // A stored as (k, m)
            let b = fill(k * n, 6);
            let a = transpose(k, m, &at); // materialised (m, k) for the reference
            let mut out = vec![0.0; m * n];
            matmul_tn(m, k, n, &at, &b, &mut out);
            let expect = naive_nn(m, k, n, &a, &b);
            for (got, want) in out.iter().zip(&expect) {
                assert!((got - want).abs() <= 1e-5, "tn {m}x{k}x{n}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn kernels_accumulate_rather_than_overwrite() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        let mut out = [10.0];
        matmul_nn(1, 2, 1, &a, &b, &mut out);
        assert_eq!(out, [10.0 + 11.0]);
        let mut out = [1.0];
        matmul_nt(1, 2, 1, &a, &b, &mut out);
        assert_eq!(out, [1.0 + 11.0]);
        // aᵀ(2x1)·b(1x2): out[i][j] = a[0][i]*b[0][j]
        let mut out = [0.5, 0.0, 0.0, 0.0];
        matmul_tn(2, 1, 2, &a, &b, &mut out);
        assert_eq!(out, [0.5 + 3.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn dot_chunked_matches_naive_within_rounding() {
        for len in [0usize, 1, 7, 8, 9, 16, 63, 64, 65, 257] {
            let x = fill(len, 7);
            let y = fill(len, 8);
            let naive: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            let got = dot_chunked(&x, &y);
            assert!(
                (got - naive).abs() <= 1e-5 * (1.0 + naive.abs()),
                "len {len}: {got} vs {naive}"
            );
        }
    }

    #[test]
    fn kernels_report_traffic() {
        let before = crate::counters::snapshot();
        let a = fill(32 * 16, 9);
        let b = fill(16 * 8, 10);
        let mut out = vec![0.0; 32 * 8];
        matmul_nn(32, 16, 8, &a, &b, &mut out);
        let after = crate::counters::snapshot();
        assert!(after.flops >= before.flops + 2 * 32 * 16 * 8);
        assert!(after.bytes > before.bytes);
    }
}
