//! Dense row-major `f32` tensors of rank 1 or 2.
//!
//! Shapes are validated eagerly with panics — in a training loop a shape
//! mismatch is a programming error, never data-dependent, so failing fast is
//! the right contract (matching ndarray/PyTorch semantics).

use crate::counters;
use crate::kernels::dot_chunked;
use std::fmt;

/// A dense tensor: `shape` (rank 1 or 2) and row-major `data`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Rank-1 tensor from raw data.
    pub fn vector(data: Vec<f32>) -> Self {
        let n = data.len();
        Tensor { shape: vec![n], data }
    }

    /// Rank-2 tensor from raw row-major data; `data.len()` must equal `rows * cols`.
    pub fn matrix(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length {} != {rows}x{cols}", data.len());
        Tensor { shape: vec![rows, cols], data }
    }

    /// All-zero tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(matches!(shape.len(), 1 | 2), "only rank 1/2 supported, got {shape:?}");
        Tensor { shape: shape.to_vec(), data: vec![0.0; shape.iter().product()] }
    }

    /// Tensor of the given shape filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        assert!(matches!(shape.len(), 1 | 2), "only rank 1/2 supported, got {shape:?}");
        Tensor { shape: shape.to_vec(), data: vec![value; shape.iter().product()] }
    }

    /// A single-element rank-1 tensor (the representation used for scalars).
    pub fn scalar(value: f32) -> Self {
        Tensor::vector(vec![value])
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// The single element of a one-element tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "item() on tensor of shape {:?}", self.shape);
        self.data[0]
    }

    /// Number of rows (rank-2) or elements (rank-1).
    pub fn rows(&self) -> usize {
        self.shape[0]
    }

    /// Number of columns of a rank-2 tensor.
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "cols() on rank-{} tensor", self.shape.len());
        self.shape[1]
    }

    /// Element `(i, j)` of a rank-2 tensor.
    pub fn at(&self, i: usize, j: usize) -> f32 {
        assert_eq!(self.shape.len(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Row `i` of a rank-2 tensor as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.shape.len(), 2);
        let c = self.shape[1];
        &self.data[i * c..(i + 1) * c]
    }

    /// Mutable row `i` of a rank-2 tensor.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert_eq!(self.shape.len(), 2);
        let c = self.shape[1];
        &mut self.data[i * c..(i + 1) * c]
    }

    /// Elementwise addition (shapes must match).
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "add shape mismatch {:?} vs {:?}",
            self.shape, other.shape
        );
        counters::record(self.len() as u64, 12 * self.len() as u64);
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Tensor { shape: self.shape.clone(), data }
    }

    /// In-place elementwise `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "axpy shape mismatch {:?} vs {:?}",
            self.shape, other.shape
        );
        counters::record(2 * self.len() as u64, 12 * self.len() as u64);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "sub shape mismatch {:?} vs {:?}",
            self.shape, other.shape
        );
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Tensor { shape: self.shape.clone(), data }
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "mul shape mismatch {:?} vs {:?}",
            self.shape, other.shape
        );
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect();
        Tensor { shape: self.shape.clone(), data }
    }

    /// Multiply every element by `c`.
    pub fn scale(&self, c: f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|a| a * c).collect() }
    }

    /// Apply `f` elementwise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&a| f(a)).collect() }
    }

    /// Matrix product of two rank-2 tensors: `(m,k) x (k,n) -> (m,n)`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        crate::kernels::matmul_nn(m, k, n, &self.data, &other.data, &mut out);
        Tensor { shape: vec![m, n], data: out }
    }

    /// `self · otherᵀ` without materialising the transpose:
    /// `(m,k) x (n,k)ᵀ -> (m,n)`. This is the `grad_a = g·bᵀ` backward rule.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul_nt lhs must be rank 2");
        assert_eq!(other.shape.len(), 2, "matmul_nt rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_nt inner dims {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        crate::kernels::matmul_nt(m, k, n, &self.data, &other.data, &mut out);
        Tensor { shape: vec![m, n], data: out }
    }

    /// `selfᵀ · other` without materialising the transpose:
    /// `(k,m)ᵀ x (k,n) -> (m,n)`. This is the `grad_b = aᵀ·g` backward rule.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul_tn lhs must be rank 2");
        assert_eq!(other.shape.len(), 2, "matmul_tn rhs must be rank 2");
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_tn inner dims {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        crate::kernels::matmul_tn(m, k, n, &self.data, &other.data, &mut out);
        Tensor { shape: vec![m, n], data: out }
    }

    /// Matrix-vector product: `(m,k) x [k] -> [m]`.
    ///
    /// Each output element is a multi-accumulator chunked dot of a contiguous
    /// matrix row against `x`.
    pub fn matvec(&self, x: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(x.shape.len(), 1);
        let (m, k) = (self.shape[0], self.shape[1]);
        assert_eq!(k, x.shape[0], "matvec inner dims {k} vs {}", x.shape[0]);
        counters::record(2 * (m * k) as u64, 4 * (m * k + k + m) as u64);
        let mut out = vec![0.0f32; m];
        if k > 0 {
            for (o, row) in out.iter_mut().zip(self.data.chunks_exact(k)) {
                *o = dot_chunked(row, &x.data);
            }
        }
        Tensor::vector(out)
    }

    /// Vector-matrix product: `[k] x (k,n) -> [n]`.
    pub fn vecmat(&self, m: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 1);
        assert_eq!(m.shape.len(), 2);
        let k = self.shape[0];
        assert_eq!(k, m.shape[0], "vecmat inner dims {k} vs {}", m.shape[0]);
        let n = m.shape[1];
        counters::record(2 * (k * n) as u64, 4 * (k * n + k + n) as u64);
        let mut out = vec![0.0f32; n];
        if n > 0 {
            for (&a, brow) in self.data.iter().zip(m.data.chunks_exact(n)) {
                if a == 0.0 {
                    continue;
                }
                for (o, b) in out.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        Tensor::vector(out)
    }

    /// Dot product of two rank-1 tensors (multi-accumulator chunked
    /// reduction: deterministic, reassociated relative to a strict left
    /// fold).
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape.len(), 1);
        assert_eq!(self.shape, other.shape, "dot shape mismatch");
        counters::record(2 * self.len() as u64, 8 * self.len() as u64);
        dot_chunked(&self.data, &other.data)
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor { shape: vec![n, m], data: out }
    }

    /// Sum of all elements (chunked 8-lane reduction; deterministic,
    /// reassociated relative to a strict left fold).
    pub fn sum(&self) -> f32 {
        let mut acc = [0.0f32; 8];
        let chunks = self.data.chunks_exact(8);
        let rem = chunks.remainder();
        for c in chunks {
            let c: &[f32; 8] = c.try_into().unwrap();
            for l in 0..8 {
                acc[l] += c[l];
            }
        }
        let mut tail = 0.0f32;
        for &v in rem {
            tail += v;
        }
        ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
    }

    /// Euclidean norm of all elements (same chunked reduction as [`Tensor::sum`]).
    pub fn norm(&self) -> f32 {
        let mut acc = [0.0f32; 8];
        let chunks = self.data.chunks_exact(8);
        let rem = chunks.remainder();
        for c in chunks {
            let c: &[f32; 8] = c.try_into().unwrap();
            for l in 0..8 {
                acc[l] += c[l] * c[l];
            }
        }
        let mut tail = 0.0f32;
        for &v in rem {
            tail += v * v;
        }
        (((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail)
            .sqrt()
    }

    /// Set all elements to zero (reuse allocation).
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|a| *a = 0.0);
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.len() <= 8 {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "[{:?}, ...; {}]", &self.data[..8.min(self.len())], self.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let v = Tensor::vector(vec![1.0, 2.0, 3.0]);
        assert_eq!(v.shape(), &[3]);
        assert_eq!(v.len(), 3);
        let m = Tensor::matrix(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.at(1, 0), 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(Tensor::scalar(7.0).item(), 7.0);
        assert_eq!(Tensor::zeros(&[2, 3]).len(), 6);
        assert_eq!(Tensor::full(&[2], 5.0).data(), &[5.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "matrix data length")]
    fn bad_matrix_size_panics() {
        Tensor::matrix(2, 2, vec![1.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::vector(vec![1.0, 2.0]);
        let b = Tensor::vector(vec![3.0, 5.0]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
        assert_eq!(a.map(|x| x + 1.0).data(), &[2.0, 3.0]);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.data(), &[7.0, 12.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::matrix(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::matrix(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matvec_vecmat_dot() {
        let a = Tensor::matrix(2, 3, vec![1., 0., 2., 0., 1., 1.]);
        let x = Tensor::vector(vec![1., 2., 3.]);
        assert_eq!(a.matvec(&x).data(), &[7., 5.]);
        let y = Tensor::vector(vec![1., 1.]);
        assert_eq!(y.vecmat(&a).data(), &[1., 1., 3.]);
        assert_eq!(x.dot(&x), 14.0);
    }

    #[test]
    fn matmul_nt_tn_match_explicit_transpose() {
        let a = Tensor::matrix(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::matrix(4, 3, (1..=12).map(|x| x as f32).collect());
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
        let c = Tensor::matrix(2, 4, (1..=8).map(|x| x as f32).collect());
        assert_eq!(a.matmul_tn(&c), a.transpose().matmul(&c));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::matrix(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let t = a.transpose();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at(0, 1), 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn reductions() {
        let a = Tensor::vector(vec![3.0, 4.0]);
        assert_eq!(a.sum(), 7.0);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        let mut b = a.clone();
        b.zero_();
        assert_eq!(b.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        Tensor::vector(vec![1.0]).add(&Tensor::vector(vec![1.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::matrix(2, 3, vec![0.0; 6]);
        let b = Tensor::matrix(2, 2, vec![0.0; 4]);
        a.matmul(&b);
    }
}
