//! Process-wide kernel traffic counters: floating-point operations issued and
//! bytes moved by the dense kernels in [`crate::kernels`] and
//! [`crate::tensor`].
//!
//! The bench harness brackets a phase with [`reset`]/[`snapshot`] and reports
//! achieved FLOP/s and effective bandwidth next to wall-clock numbers, which
//! turns "this phase got faster" into "this phase now moves N bytes per
//! sample". Counting is two relaxed atomic adds per *kernel call* (not per
//! element), so the hot loops are unaffected.
//!
//! Byte counts are *algorithmic* traffic — each operand counted once, output
//! counted read+write for accumulating kernels — not measured cache misses.

use std::sync::atomic::{AtomicU64, Ordering};

static FLOPS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A point-in-time reading of the kernel counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Floating-point operations issued (multiply and add counted separately).
    pub flops: u64,
    /// Algorithmic bytes moved (operands + outputs, `f32` = 4 bytes).
    pub bytes: u64,
}

/// Record one kernel call's traffic.
#[inline]
pub(crate) fn record(flops: u64, bytes: u64) {
    FLOPS.fetch_add(flops, Ordering::Relaxed);
    BYTES.fetch_add(bytes, Ordering::Relaxed);
}

/// Current cumulative counters.
pub fn snapshot() -> KernelCounters {
    KernelCounters { flops: FLOPS.load(Ordering::Relaxed), bytes: BYTES.load(Ordering::Relaxed) }
}

/// Zero both counters (bench-phase bracket; racing kernels may slip between
/// the two stores, which is harmless for reporting).
pub fn reset() {
    FLOPS.store(0, Ordering::Relaxed);
    BYTES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let before = snapshot();
        record(10, 40);
        record(5, 20);
        let after = snapshot();
        // >= (not ==): parallel tests in this binary also issue kernel calls
        assert!(after.flops >= before.flops + 15, "flops {} -> {}", before.flops, after.flops);
        assert!(after.bytes >= before.bytes + 60, "bytes {} -> {}", before.bytes, after.bytes);
    }
}
