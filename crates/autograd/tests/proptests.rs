//! Property-based tests for tensors and the tape.

use proptest::prelude::*;
use rmpi_autograd::gradcheck::check_gradients_with;
use rmpi_autograd::{Tape, Tensor};

fn arb_vec(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-2.0f32..2.0, n..=n)
}

proptest! {
    #[test]
    fn add_commutes(a in arb_vec(6), b in arb_vec(6)) {
        let (ta, tb) = (Tensor::vector(a), Tensor::vector(b));
        prop_assert_eq!(ta.add(&tb), tb.add(&ta));
    }

    #[test]
    fn transpose_is_involutive(data in arb_vec(12)) {
        let m = Tensor::matrix(3, 4, data);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matvec_matches_matmul(mdata in arb_vec(12), xdata in arb_vec(4)) {
        let m = Tensor::matrix(3, 4, mdata);
        let x = Tensor::vector(xdata.clone());
        let via_matvec = m.matvec(&x);
        let xm = Tensor::matrix(4, 1, xdata);
        let via_matmul = m.matmul(&xm);
        for i in 0..3 {
            prop_assert!((via_matvec.data()[i] - via_matmul.data()[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn dot_is_symmetric_and_cauchy_schwarz(a in arb_vec(8), b in arb_vec(8)) {
        let (ta, tb) = (Tensor::vector(a), Tensor::vector(b));
        prop_assert!((ta.dot(&tb) - tb.dot(&ta)).abs() < 1e-4);
        prop_assert!(ta.dot(&tb).abs() <= ta.norm() * tb.norm() + 1e-3);
    }

    #[test]
    fn softmax_is_a_distribution(data in arb_vec(7)) {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::vector(data));
        let s = tape.softmax(x);
        let v = tape.value(s);
        prop_assert!((v.sum() - 1.0).abs() < 1e-5);
        prop_assert!(v.data().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn softmax_is_shift_invariant(data in arb_vec(5), shift in -3.0f32..3.0) {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::vector(data.clone()));
        let s1 = tape.softmax(x);
        let shifted = tape.constant(Tensor::vector(data.iter().map(|v| v + shift).collect()));
        let s2 = tape.softmax(shifted);
        for (a, b) in tape.value(s1).data().iter().zip(tape.value(s2).data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn relu_leakyrelu_agree_on_positives(data in arb_vec(6)) {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::vector(data.clone()));
        let r = tape.relu(x);
        let l = tape.leaky_relu(x, 0.2);
        for ((orig, a), b) in data.iter().zip(tape.value(r).data()).zip(tape.value(l).data()) {
            if *orig >= 0.0 {
                prop_assert_eq!(a, b);
            } else {
                prop_assert_eq!(*a, 0.0);
                prop_assert!((b - 0.2 * orig).abs() < 1e-5);
            }
        }
    }

    /// Randomised gradient check through a composite expression — smooth ops
    /// only, inputs kept away from kink points.
    #[test]
    fn gradcheck_random_smooth_network(
        w in prop::collection::vec(0.1f32..0.9, 12),
        x in prop::collection::vec(0.1f32..0.9, 4),
    ) {
        check_gradients_with(
            &[("w", Tensor::matrix(3, 4, w)), ("x", Tensor::vector(x))],
            |tape, store| {
                let wv = tape.param(store, store.get("w").unwrap());
                let xv = tape.param(store, store.get("x").unwrap());
                let h = tape.matvec(wv, xv);
                let t = tape.tanh(h);
                let s = tape.softmax(t);
                let sg = tape.sigmoid(s);
                tape.mean(sg)
            },
            1e-2,
            5e-2,
        );
    }
}
