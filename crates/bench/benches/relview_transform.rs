//! Criterion bench: entity-view → relation-view (line graph) transform.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmpi_datasets::registry::Family;
use rmpi_datasets::world::GraphGenConfig;
use rmpi_kg::KnowledgeGraph;
use rmpi_subgraph::{enclosing_subgraph, RelViewGraph, Subgraph};

fn samples(family: Family) -> Vec<Subgraph> {
    let world = family.world();
    let groups: Vec<usize> = (0..world.groups().len()).collect();
    let triples = world.generate_triples(
        &groups,
        &GraphGenConfig {
            num_entities: 400,
            num_base_triples: 2000,
            seed: 5,
            ..Default::default()
        },
    );
    let g = KnowledgeGraph::from_triples(triples);
    g.triples()
        .iter()
        .step_by(g.num_triples() / 32 + 1)
        .map(|&t| enclosing_subgraph(&g, t, 2))
        .filter(|sg| !sg.is_empty())
        .collect()
}

fn bench_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("relview_transform");
    for family in [Family::Wn, Family::Fb, Family::Nell] {
        let sgs = samples(family);
        group.bench_with_input(BenchmarkId::new("transform", family.tag()), &sgs, |b, sgs| {
            b.iter(|| {
                let mut edges = 0usize;
                for sg in sgs {
                    edges += RelViewGraph::from_subgraph(sg).num_edges();
                }
                edges
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transform);
criterion_main!(benches);
