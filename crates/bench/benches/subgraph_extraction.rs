//! Criterion bench: K-hop enclosing/disclosing subgraph extraction
//! throughput on generated graphs of the three family profiles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmpi_datasets::registry::Family;
use rmpi_datasets::world::GraphGenConfig;
use rmpi_kg::KnowledgeGraph;
use rmpi_subgraph::{disclosing_subgraph, enclosing_subgraph};

fn bench_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("subgraph_extraction");
    for family in [Family::Wn, Family::Fb, Family::Nell] {
        let world = family.world();
        let groups: Vec<usize> = (0..world.groups().len()).collect();
        let triples = world.generate_triples(
            &groups,
            &GraphGenConfig {
                num_entities: 500,
                num_base_triples: 2500,
                seed: 3,
                ..Default::default()
            },
        );
        let g = KnowledgeGraph::from_triples(triples);
        let targets: Vec<_> =
            g.triples().iter().step_by(g.num_triples() / 64 + 1).copied().collect();

        group.bench_with_input(BenchmarkId::new("enclosing_2hop", family.tag()), &g, |b, g| {
            b.iter(|| {
                let mut edges = 0usize;
                for &t in &targets {
                    edges += enclosing_subgraph(g, t, 2).num_edges();
                }
                edges
            })
        });
        group.bench_with_input(BenchmarkId::new("disclosing_2hop", family.tag()), &g, |b, g| {
            b.iter(|| {
                let mut edges = 0usize;
                for &t in &targets {
                    edges += disclosing_subgraph(g, t, 2).num_edges();
                }
                edges
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
