//! Criterion bench: metric computation on large score pools.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmpi_eval::{average_precision, hits_at, mean_reciprocal_rank};

fn bench_metrics(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let scored: Vec<(f32, bool)> =
        (0..100_000).map(|_| (rng.gen::<f32>(), rng.gen_bool(0.5))).collect();
    let ranks: Vec<usize> = (0..100_000).map(|_| rng.gen_range(1..100)).collect();

    c.bench_function("average_precision_100k", |b| b.iter(|| average_precision(&scored)));
    c.bench_function("mrr_hits_100k", |b| {
        b.iter(|| mean_reciprocal_rank(&ranks) + hits_at(&ranks, 10))
    });
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
