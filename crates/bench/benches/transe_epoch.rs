//! Criterion bench: TransE training throughput on a schema graph.

use criterion::{criterion_group, criterion_main, Criterion};
use rmpi_datasets::registry::Family;
use rmpi_schema::{TransEConfig, TransEModel};

fn bench_transe(c: &mut Criterion) {
    let schema = Family::Nell.world().schema_graph();
    c.bench_function("transe_5_epochs_nell_schema", |b| {
        b.iter(|| {
            let cfg = TransEConfig { dim: 32, epochs: 5, seed: 1, ..Default::default() };
            TransEModel::train(&schema, cfg).dim()
        })
    });
}

criterion_group!(benches, bench_transe);
criterion_main!(benches);
