//! Criterion bench: the efficiency claim of Algorithm 1 — message passing
//! with target-guided pruning versus updating every relation node at every
//! layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rmpi_autograd::{init, ParamStore, Tape, Var};
use rmpi_core::layers::{relational_message_passing, AttentionConfig, MessagePassingWeights};
use rmpi_datasets::registry::Family;
use rmpi_datasets::world::GraphGenConfig;
use rmpi_kg::KnowledgeGraph;
use rmpi_subgraph::{enclosing_subgraph, PruningSchedule, RelViewGraph};
use std::time::Duration;

const DIM: usize = 32;
const LAYERS: usize = 3;

/// An unpruned schedule: every node is "at distance zero", so every layer
/// updates every node — the cost profile of naive whole-graph passing.
fn full_schedule(rv: &RelViewGraph, k: usize) -> PruningSchedule {
    PruningSchedule { dist: vec![0; rv.num_nodes()], k }
}

fn run_pass(
    store: &ParamStore,
    weights: &MessagePassingWeights,
    rv: &RelViewGraph,
    sched: &PruningSchedule,
    emb: rmpi_autograd::ParamId,
) -> f32 {
    let mut tape = Tape::new();
    let table = tape.param(store, emb);
    let h0: Vec<Option<Var>> =
        rv.nodes.iter().map(|n| Some(tape.row(table, n.relation.index()))).collect();
    let out = relational_message_passing(
        &mut tape,
        store,
        weights,
        AttentionConfig { enabled: false, leaky_slope: 0.2 },
        rv,
        sched,
        &h0,
        DIM,
    );
    tape.value(out).data()[0]
}

fn bench_pruning(c: &mut Criterion) {
    // medium-density graphs: line graphs of dense subgraphs explode
    // quadratically, which is precisely why pruning exists — but the
    // unpruned arm still has to terminate, so the bench uses mid-sized views
    let family = Family::Nell;
    let world = family.world();
    let groups: Vec<usize> = (0..world.groups().len()).collect();
    let triples = world.generate_triples(
        &groups,
        &GraphGenConfig { num_entities: 320, num_base_triples: 900, seed: 7, ..Default::default() },
    );
    let g = KnowledgeGraph::from_triples(triples);
    // a handful of mid-sized relation views: big enough that pruning matters,
    // small enough that the *unpruned* pass stays benchable
    let rvs: Vec<RelViewGraph> = g
        .triples()
        .iter()
        .map(|&t| RelViewGraph::from_subgraph(&enclosing_subgraph(&g, t, 2)))
        .filter(|rv| (30..=140).contains(&rv.num_nodes()))
        .take(4)
        .collect();
    assert!(!rvs.is_empty(), "no mid-sized relation views sampled");

    let mut rng = StdRng::seed_from_u64(0);
    let mut store = ParamStore::new();
    let weights = MessagePassingWeights::new(&mut store, "mp", LAYERS, DIM, &mut rng);
    let emb = store.create("emb", init::xavier_uniform(&[world.num_relations(), DIM], &mut rng));

    let mut group = c.benchmark_group("pruning");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    group.bench_with_input(BenchmarkId::new("message_passing", "pruned"), &rvs, |b, rvs| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for rv in rvs {
                let sched = PruningSchedule::new(rv, LAYERS);
                acc += run_pass(&store, &weights, rv, &sched, emb);
            }
            acc
        })
    });
    group.bench_with_input(BenchmarkId::new("message_passing", "full"), &rvs, |b, rvs| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for rv in rvs {
                let sched = full_schedule(rv, LAYERS);
                acc += run_pass(&store, &weights, rv, &sched, emb);
            }
            acc
        })
    });
    group.finish();

    // also report the static update-count reduction once
    let (pruned, full): (usize, usize) = rvs
        .iter()
        .map(|rv| PruningSchedule::new(rv, LAYERS).update_counts())
        .fold((0, 0), |(a, b), (p, f)| (a + p, b + f));
    eprintln!(
        "[pruning] node updates: pruned {pruned} vs full {full} ({:.1}x reduction)",
        full as f64 / pruned.max(1) as f64
    );
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
