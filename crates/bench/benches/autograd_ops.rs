//! Criterion bench: core autograd op throughput (forward + backward).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rmpi_autograd::{init, ParamStore, Tape};

fn bench_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut store = ParamStore::new();
    let a = store.create("a", init::xavier_uniform(&[64, 64], &mut rng));
    let b = store.create("b", init::xavier_uniform(&[64, 64], &mut rng));
    let x = store.create("x", init::xavier_uniform(&[64], &mut rng));

    c.bench_function("matmul_64x64_fwd", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            let av = tape.param(&store, a);
            let bv = tape.param(&store, b);
            let c = tape.matmul(av, bv);
            tape.value(c).data()[0]
        })
    });

    c.bench_function("mlp_chain_fwd_bwd", |bench| {
        bench.iter(|| {
            store.zero_grad();
            let mut tape = Tape::new();
            let av = tape.param(&store, a);
            let bv = tape.param(&store, b);
            let xv = tape.param(&store, x);
            let h1 = tape.matvec(av, xv);
            let r1 = tape.relu(h1);
            let h2 = tape.matvec(bv, r1);
            let s = tape.sigmoid(h2);
            let loss = tape.sum(s);
            tape.backward(loss, &mut store);
            store.grad_norm()
        })
    });

    c.bench_function("softmax_attention_block", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            let k = tape.param(&store, a);
            let q = tape.param(&store, x);
            let scores = tape.matvec(k, q);
            let att = tape.softmax(scores);
            let pooled = tape.vecmat(att, k);
            tape.value(pooled).data()[0]
        })
    });
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
