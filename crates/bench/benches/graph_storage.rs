//! Criterion bench: Vec-of-Vecs adjacency vs CSR arenas for the
//! adjacency-scan workload subgraph extraction is bound by.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmpi_datasets::registry::Family;
use rmpi_datasets::world::GraphGenConfig;
use rmpi_kg::{CsrGraph, EntityId, KnowledgeGraph};

fn bench_storage(c: &mut Criterion) {
    let world = Family::Fb.world();
    let groups: Vec<usize> = (0..world.groups().len()).collect();
    let triples = world.generate_triples(
        &groups,
        &GraphGenConfig {
            num_entities: 2000,
            num_base_triples: 14_000,
            seed: 13,
            ..Default::default()
        },
    );
    let vecg = KnowledgeGraph::from_triples(triples.clone());
    let csrg = CsrGraph::from_triples(triples);
    let n = vecg.num_entities() as u32;

    let mut group = c.benchmark_group("graph_storage");
    group.bench_with_input(BenchmarkId::new("full_scan", "vec"), &vecg, |b, g| {
        b.iter(|| {
            let mut acc = 0usize;
            for e in 0..n {
                for edge in g.out_edges(EntityId(e)) {
                    acc = acc.wrapping_add(edge.neighbor.index() + edge.relation.index());
                }
                for edge in g.in_edges(EntityId(e)) {
                    acc = acc.wrapping_add(edge.neighbor.index());
                }
            }
            acc
        })
    });
    group.bench_with_input(BenchmarkId::new("full_scan", "csr"), &csrg, |b, g| {
        b.iter(|| {
            let mut acc = 0usize;
            for e in 0..n {
                for edge in g.out_edges(EntityId(e)) {
                    acc = acc.wrapping_add(edge.neighbor.index() + edge.relation.index());
                }
                for edge in g.in_edges(EntityId(e)) {
                    acc = acc.wrapping_add(edge.neighbor.index());
                }
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
