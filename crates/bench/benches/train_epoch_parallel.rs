//! Criterion bench: data-parallel training throughput.
//!
//! Trains one epoch of the base RMPI model with the worker-pool thread count
//! swept over 1/2/4/8. Per-sample gradients are reduced in index order, so
//! every thread count produces bit-identical parameters — the sweep measures
//! pure wall-clock scaling of the sharded minibatch pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmpi_core::{train_model, RmpiConfig, RmpiModel, TrainConfig};
use rmpi_datasets::{build_benchmark, Scale};

fn bench_train_epoch(c: &mut Criterion) {
    let b = build_benchmark("nell.v1", Scale::Quick);
    let num_rel = b.num_relations();

    let mut group = c.benchmark_group("train_epoch_parallel");
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |bench, &threads| {
                bench.iter(|| {
                    let cfg = TrainConfig {
                        epochs: 1,
                        batch_size: 16,
                        max_samples_per_epoch: 96,
                        max_valid_samples: 8,
                        patience: 0,
                        seed: 1,
                        threads,
                        ..Default::default()
                    };
                    let mut model =
                        RmpiModel::new(RmpiConfig { dim: 12, ..RmpiConfig::base() }, num_rel, 1);
                    train_model(&mut model, &b.train.graph, &b.train.targets, &b.train.valid, &cfg)
                        .epoch_losses
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_train_epoch);
criterion_main!(benches);
