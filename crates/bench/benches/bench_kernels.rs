//! Criterion bench: raw dense-kernel throughput with FLOP and bandwidth
//! reporting.
//!
//! Covers the three matmul variants at the shapes the RMPI forward/backward
//! passes actually hit (relation-view node batches × hidden dim), the
//! matvec/vecmat/dot building blocks, and the scratch-backed backward pass.
//! After each timed case the kernel-counter delta is converted to achieved
//! GFLOP/s and GB/s — `time got smaller` is only meaningful next to `work
//! stayed the same`.
//!
//! Window: `RMPI_BENCH_MS` (default 300 ms per case; `verify.sh` smokes the
//! suite at 10 ms).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rmpi_autograd::counters;
use rmpi_autograd::kernels::{matmul_nn, matmul_nt, matmul_tn};
use rmpi_autograd::{init, BackwardScratch, GradBuffer, ParamStore, Tape, Tensor};
use std::time::Instant;

/// Time `f` once outside criterion to derive achieved FLOP/s and bytes/s
/// from the counter delta, then print them alongside criterion's ns/iter.
fn report_traffic(label: &str, mut f: impl FnMut()) {
    let before = counters::snapshot();
    let start = Instant::now();
    let reps = 10;
    for _ in 0..reps {
        f();
    }
    let dt = start.elapsed().as_secs_f64();
    let after = counters::snapshot();
    let flops = (after.flops - before.flops) as f64;
    let bytes = (after.bytes - before.bytes) as f64;
    println!(
        "{label:<48} work: {:>8.3} GFLOP/s  {:>8.3} GB/s  ({:.0} flop, {:.0} B per iter)",
        flops / dt / 1e9,
        bytes / dt / 1e9,
        flops / reps as f64,
        bytes / reps as f64,
    );
}

fn fill(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

fn bench_matmuls(c: &mut Criterion) {
    // (m, k, n): relation-view batch sizes × hidden dims seen in training
    for &(m, k, n) in &[(64usize, 32usize, 32usize), (256, 64, 64), (512, 32, 32)] {
        let a = fill(m * k, 1);
        let b_nn = fill(k * n, 2);
        let b_nt = fill(n * k, 3);
        let a_tn = fill(k * m, 4);
        let mut out = vec![0.0f32; m * n];

        c.bench_function(&format!("matmul_nn_{m}x{k}x{n}"), |bench| {
            bench.iter(|| {
                out.iter_mut().for_each(|o| *o = 0.0);
                matmul_nn(m, k, n, black_box(&a), black_box(&b_nn), &mut out);
                out[0]
            })
        });
        report_traffic(&format!("matmul_nn_{m}x{k}x{n}"), || {
            out.iter_mut().for_each(|o| *o = 0.0);
            matmul_nn(m, k, n, black_box(&a), black_box(&b_nn), &mut out);
        });

        c.bench_function(&format!("matmul_nt_{m}x{k}x{n}"), |bench| {
            bench.iter(|| {
                out.iter_mut().for_each(|o| *o = 0.0);
                matmul_nt(m, k, n, black_box(&a), black_box(&b_nt), &mut out);
                out[0]
            })
        });
        report_traffic(&format!("matmul_nt_{m}x{k}x{n}"), || {
            out.iter_mut().for_each(|o| *o = 0.0);
            matmul_nt(m, k, n, black_box(&a), black_box(&b_nt), &mut out);
        });

        c.bench_function(&format!("matmul_tn_{m}x{k}x{n}"), |bench| {
            bench.iter(|| {
                out.iter_mut().for_each(|o| *o = 0.0);
                matmul_tn(m, k, n, black_box(&a_tn), black_box(&b_nn), &mut out);
                out[0]
            })
        });
        report_traffic(&format!("matmul_tn_{m}x{k}x{n}"), || {
            out.iter_mut().for_each(|o| *o = 0.0);
            matmul_tn(m, k, n, black_box(&a_tn), black_box(&b_nn), &mut out);
        });
    }
}

fn bench_vector_ops(c: &mut Criterion) {
    let m = Tensor::matrix(256, 64, fill(256 * 64, 5));
    let x = Tensor::vector(fill(64, 6));
    let y = Tensor::vector(fill(256, 7));
    let u = Tensor::vector(fill(4096, 8));
    let v = Tensor::vector(fill(4096, 9));

    c.bench_function("matvec_256x64", |bench| bench.iter(|| black_box(&m).matvec(&x).data()[0]));
    report_traffic("matvec_256x64", || {
        black_box(m.matvec(&x));
    });

    c.bench_function("vecmat_256x64", |bench| bench.iter(|| black_box(&y).vecmat(&m).data()[0]));
    report_traffic("vecmat_256x64", || {
        black_box(y.vecmat(&m));
    });

    c.bench_function("dot_4096", |bench| bench.iter(|| black_box(&u).dot(&v)));
    report_traffic("dot_4096", || {
        black_box(u.dot(&v));
    });

    c.bench_function("sum_4096", |bench| bench.iter(|| black_box(&u).sum()));
    c.bench_function("axpy_4096", |bench| {
        let mut acc = u.clone();
        bench.iter(|| {
            acc.axpy(0.5, black_box(&v));
            acc.data()[0]
        })
    });
}

fn bench_backward_scratch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut store = ParamStore::new();
    let a = store.create("a", init::xavier_uniform(&[64, 64], &mut rng));
    let x = store.create("x", init::xavier_uniform(&[64], &mut rng));

    let run_forward = |tape: &mut Tape| {
        let av = tape.param(&store, a);
        let xv = tape.param(&store, x);
        let h = tape.matvec(av, xv);
        let r = tape.relu(h);
        let s = tape.sum(r);
        tape.mul(s, s)
    };

    c.bench_function("backward_fresh_table", |bench| {
        let mut tape = Tape::new();
        bench.iter(|| {
            tape.reset();
            let loss = run_forward(&mut tape);
            let mut buf = GradBuffer::new();
            tape.backward_into(loss, &mut buf);
            buf.is_empty()
        })
    });

    c.bench_function("backward_scratch_table", |bench| {
        let mut tape = Tape::new();
        let mut scratch = BackwardScratch::new();
        bench.iter(|| {
            tape.reset();
            let loss = run_forward(&mut tape);
            let mut buf = GradBuffer::new();
            tape.backward_into_with(loss, &mut scratch, &mut buf);
            buf.is_empty()
        })
    });
}

criterion_group!(benches, bench_matmuls, bench_vector_ops, bench_backward_scratch);
criterion_main!(benches);
