//! Shared harness for the experiment binaries (one binary per paper table /
//! figure) and the criterion micro-benchmarks.
//!
//! Every binary accepts:
//!
//! * `--quick` (default) — scaled-down graphs, 1 seed, reduced epochs:
//!   finishes in minutes and reproduces the tables' *shape*;
//! * `--full` — paper-scale graphs, 5 seeds, full training budget;
//! * `--seeds N`, `--epochs N`, `--dim N`, `--max-targets N` — overrides;
//! * `--methods a,b,c` / `--datasets x,y` — row/column filters;
//! * `--threads N` / env `RMPI_THREADS` — worker threads for training and
//!   candidate scoring (`0` = all cores; results are bit-identical for every
//!   value). The flag wins over the environment variable.
//!
//! The [`MethodSpec`] enum names every method that appears in the paper's
//! tables, and [`method_factory`] builds the per-seed model factory
//! (precomputing schema TransE vectors or seen-relation sets where needed).

pub mod drivers;

use rmpi_core::config::{Fusion, RelationInit, RmpiConfig};
use rmpi_core::{RmpiModel, TrainConfig};
use rmpi_datasets::{Benchmark, Scale};
use rmpi_eval::onto::schema_vectors;
use rmpi_eval::runner::ModelFactory;
use rmpi_eval::EvalConfig;

/// All methods appearing in the paper's tables.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MethodSpec {
    /// GraIL (entity-view baseline).
    Grail,
    /// Full TACT.
    Tact,
    /// TACT-base; `schema` selects ontology-enhanced initialisation.
    TactBase {
        /// Use schema TransE vectors for initial relation features.
        schema: bool,
    },
    /// CoMPILE.
    Compile,
    /// MaKEr-lite.
    Maker,
    /// An RMPI variant (NE/TA/fusion/init chosen by the config flags).
    Rmpi {
        /// NE module on.
        ne: bool,
        /// TA attention on.
        ta: bool,
        /// Concat fusion (SUM otherwise).
        concat: bool,
        /// Schema-enhanced initialisation.
        schema: bool,
    },
}

impl MethodSpec {
    /// RMPI-base, random init.
    pub const RMPI_BASE: MethodSpec =
        MethodSpec::Rmpi { ne: false, ta: false, concat: false, schema: false };
    /// RMPI-NE (SUM), random init.
    pub const RMPI_NE: MethodSpec =
        MethodSpec::Rmpi { ne: true, ta: false, concat: false, schema: false };
    /// RMPI-TA, random init.
    pub const RMPI_TA: MethodSpec =
        MethodSpec::Rmpi { ne: false, ta: true, concat: false, schema: false };
    /// RMPI-NE-TA (SUM), random init.
    pub const RMPI_NE_TA: MethodSpec =
        MethodSpec::Rmpi { ne: true, ta: true, concat: false, schema: false };

    /// Display name, matching the paper's rows.
    pub fn name(&self) -> String {
        match *self {
            MethodSpec::Grail => "GraIL".into(),
            MethodSpec::Tact => "TACT".into(),
            MethodSpec::TactBase { schema } => {
                if schema {
                    "TACT-base+schema".into()
                } else {
                    "TACT-base".into()
                }
            }
            MethodSpec::Compile => "CoMPILE".into(),
            MethodSpec::Maker => "MaKEr".into(),
            MethodSpec::Rmpi { ne, ta, concat, schema } => {
                let mut s = String::from("RMPI");
                match (ne, ta) {
                    (false, false) => s.push_str("-base"),
                    (true, false) => s.push_str("-NE"),
                    (false, true) => s.push_str("-TA"),
                    (true, true) => s.push_str("-NE-TA"),
                }
                if ne && concat {
                    s.push_str("(C)");
                }
                if schema {
                    s.push_str("+schema");
                }
                s
            }
        }
    }
}

/// Harness-wide configuration derived from CLI flags.
#[derive(Clone, Debug)]
pub struct Harness {
    /// Graph generation scale.
    pub scale: Scale,
    /// Seeds to average over.
    pub seeds: Vec<u64>,
    /// Training hyper-parameters.
    pub train: TrainConfig,
    /// Evaluation protocol parameters.
    pub eval: EvalConfig,
    /// Model dimension.
    pub dim: usize,
    /// Schema TransE vector dimension.
    pub schema_dim: usize,
    /// Schema TransE epochs.
    pub schema_epochs: usize,
    /// Dataset filter (empty = all the binary's defaults).
    pub datasets: Vec<String>,
    /// Method filter (empty = all the binary's defaults).
    pub methods: Vec<String>,
}

impl Harness {
    /// Parse flags from `std::env::args`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_arg_list(&args)
    }

    /// Parse flags from an explicit list (tests).
    pub fn from_arg_list(args: &[String]) -> Self {
        let full = args.iter().any(|a| a == "--full");
        let get = |flag: &str| -> Option<String> {
            args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
        };
        let mut h = if full { Self::full() } else { Self::quick() };
        let threads = match get("--threads") {
            Some(v) => v.parse().expect("--threads N"),
            None => rmpi_runtime::threads_from_env(),
        };
        h.train.threads = threads;
        h.eval.threads = threads;
        if let Some(v) = get("--seeds") {
            let n: u64 = v.parse().expect("--seeds N");
            h.seeds = (0..n).collect();
        }
        if let Some(v) = get("--epochs") {
            h.train.epochs = v.parse().expect("--epochs N");
        }
        if let Some(v) = get("--dim") {
            h.dim = v.parse().expect("--dim N");
        }
        if let Some(v) = get("--max-targets") {
            h.eval.max_targets = v.parse().expect("--max-targets N");
        }
        if let Some(v) = get("--max-samples") {
            h.train.max_samples_per_epoch = v.parse().expect("--max-samples N");
        }
        if let Some(v) = get("--datasets") {
            h.datasets = v.split(',').map(str::to_owned).collect();
        }
        if let Some(v) = get("--methods") {
            h.methods = v.split(',').map(str::to_owned).collect();
        }
        h
    }

    /// The fast profile (default).
    pub fn quick() -> Self {
        Harness {
            scale: Scale::Quick,
            seeds: vec![0],
            train: TrainConfig {
                epochs: 8,
                max_samples_per_epoch: 800,
                max_valid_samples: 60,
                patience: 3,
                ..Default::default()
            },
            eval: EvalConfig {
                num_candidates: 24,
                max_targets: 80,
                seed: 11,
                ..Default::default()
            },
            dim: 16,
            schema_dim: 32,
            schema_epochs: 60,
            datasets: Vec::new(),
            methods: Vec::new(),
        }
    }

    /// The paper-scale profile (`--full`).
    pub fn full() -> Self {
        Harness {
            scale: Scale::Full,
            seeds: vec![0, 1, 2, 3, 4],
            train: TrainConfig {
                epochs: 10,
                max_samples_per_epoch: 3000,
                max_valid_samples: 300,
                patience: 3,
                ..Default::default()
            },
            eval: EvalConfig {
                num_candidates: 49,
                max_targets: 600,
                seed: 11,
                ..Default::default()
            },
            dim: 32,
            schema_dim: 300,
            schema_epochs: 200,
            datasets: Vec::new(),
            methods: Vec::new(),
        }
    }

    /// Apply the dataset filter to a default list.
    pub fn filter_datasets<'a>(&self, defaults: &[&'a str]) -> Vec<&'a str> {
        if self.datasets.is_empty() {
            defaults.to_vec()
        } else {
            defaults.iter().copied().filter(|d| self.datasets.iter().any(|f| f == d)).collect()
        }
    }

    /// Apply the method filter to a default list.
    pub fn filter_methods(&self, defaults: &[MethodSpec]) -> Vec<MethodSpec> {
        if self.methods.is_empty() {
            defaults.to_vec()
        } else {
            defaults
                .iter()
                .copied()
                .filter(|m| self.methods.iter().any(|f| m.name().eq_ignore_ascii_case(f)))
                .collect()
        }
    }
}

/// Build the per-seed model factory for `method` on `benchmark`,
/// precomputing schema vectors / seen-relation sets as needed.
pub fn method_factory(method: MethodSpec, benchmark: &Benchmark, h: &Harness) -> ModelFactory {
    use rmpi_baselines::common::BaselineConfig;
    use rmpi_baselines::{CompileModel, GrailModel, MakerLiteModel, TactBaseModel, TactModel};

    let num_rel = benchmark.num_relations();
    let dim = h.dim;
    let bcfg = BaselineConfig { dim, ..Default::default() };
    match method {
        MethodSpec::Grail => {
            Box::new(move |seed, _b| Box::new(GrailModel::new(bcfg, num_rel, seed)))
        }
        MethodSpec::Tact => Box::new(move |seed, _b| Box::new(TactModel::new(bcfg, num_rel, seed))),
        MethodSpec::Compile => {
            Box::new(move |seed, _b| Box::new(CompileModel::new(bcfg, num_rel, seed)))
        }
        MethodSpec::Maker => {
            let seen = benchmark.seen_relations.clone();
            Box::new(move |seed, _b| {
                Box::new(MakerLiteModel::new(bcfg, num_rel, seen.clone(), seed))
            })
        }
        MethodSpec::TactBase { schema: false } => {
            Box::new(move |seed, _b| Box::new(TactBaseModel::new(dim, 2, num_rel, seed)))
        }
        MethodSpec::TactBase { schema: true } => {
            let onto = schema_vectors(benchmark, h.schema_dim, h.schema_epochs, 17);
            Box::new(move |seed, _b| {
                Box::new(TactBaseModel::with_schema_vectors(dim, 2, onto.clone(), seed))
            })
        }
        MethodSpec::Rmpi { ne, ta, concat, schema } => {
            let fusion = if concat { Fusion::Concat } else { Fusion::Sum };
            if schema {
                let cfg = RmpiConfig {
                    dim,
                    ne,
                    ta,
                    fusion,
                    init: RelationInit::Schema,
                    ..Default::default()
                };
                let onto = schema_vectors(benchmark, h.schema_dim, h.schema_epochs, 17);
                Box::new(move |seed, _b| {
                    Box::new(RmpiModel::with_schema_vectors(cfg, onto.clone(), seed))
                })
            } else {
                let cfg = RmpiConfig { dim, ne, ta, fusion, ..Default::default() };
                Box::new(move |seed, _b| Box::new(RmpiModel::new(cfg, num_rel, seed)))
            }
        }
    }
}

/// Train + evaluate one `(method, benchmark)` cell over the harness seeds.
pub fn run_cell(
    method: MethodSpec,
    benchmark: &Benchmark,
    test_names: &[&str],
    h: &Harness,
) -> std::collections::HashMap<String, rmpi_eval::RunSummary> {
    let factory = method_factory(method, benchmark, h);
    rmpi_eval::run_experiment(&factory, benchmark, test_names, &h.train, &h.eval, &h.seeds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing_defaults_to_quick() {
        let h = Harness::from_arg_list(&[]);
        assert_eq!(h.scale, Scale::Quick);
        assert_eq!(h.seeds.len(), 1);
    }

    #[test]
    fn full_flag_switches_profile() {
        let h = Harness::from_arg_list(&["--full".into()]);
        assert_eq!(h.scale, Scale::Full);
        assert_eq!(h.seeds.len(), 5);
        assert_eq!(h.dim, 32);
        assert_eq!(h.eval.num_candidates, 49);
    }

    #[test]
    fn overrides_apply() {
        let h =
            Harness::from_arg_list(&["--seeds".into(), "3".into(), "--dim".into(), "24".into()]);
        assert_eq!(h.seeds, vec![0, 1, 2]);
        assert_eq!(h.dim, 24);
    }

    #[test]
    fn filters_apply() {
        let h = Harness::from_arg_list(&[
            "--datasets".into(),
            "nell.v1".into(),
            "--methods".into(),
            "rmpi-base,GraIL".into(),
        ]);
        assert_eq!(h.filter_datasets(&["nell.v1", "nell.v2"]), vec!["nell.v1"]);
        let ms = h.filter_methods(&[MethodSpec::Grail, MethodSpec::Tact, MethodSpec::RMPI_BASE]);
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn method_names_match_paper_rows() {
        assert_eq!(MethodSpec::RMPI_BASE.name(), "RMPI-base");
        assert_eq!(MethodSpec::RMPI_NE.name(), "RMPI-NE");
        assert_eq!(MethodSpec::RMPI_NE_TA.name(), "RMPI-NE-TA");
        assert_eq!(
            MethodSpec::Rmpi { ne: true, ta: false, concat: true, schema: true }.name(),
            "RMPI-NE(C)+schema"
        );
        assert_eq!(MethodSpec::TactBase { schema: true }.name(), "TACT-base+schema");
    }

    #[test]
    fn factories_construct_models() {
        use rmpi_datasets::build_benchmark;
        let b = build_benchmark("nell.v1", Scale::Quick);
        let h = Harness::quick();
        for m in [
            MethodSpec::Grail,
            MethodSpec::Tact,
            MethodSpec::TactBase { schema: false },
            MethodSpec::Compile,
            MethodSpec::Maker,
            MethodSpec::RMPI_NE_TA,
        ] {
            let f = method_factory(m, &b, &h);
            let model = f(0, &b);
            assert!(!model.name().is_empty());
        }
    }
}
