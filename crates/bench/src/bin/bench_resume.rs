//! Crash-recovery benchmark and smoke test: train → SIGKILL mid-epoch →
//! resume from the last checkpoint → verify the finished run is
//! **bit-identical** to an uninterrupted one, and report what periodic
//! checkpointing costs. Writes `BENCH_resume.json` in the working directory.
//!
//! ```text
//! cargo run --release -p rmpi-bench --bin bench_resume            # orchestrate everything
//! cargo run ... --bin bench_resume -- --mode crash  --dir D      # child: die mid-epoch
//! cargo run ... --bin bench_resume -- --mode resume --dir D      # child: resume + report
//! ```
//!
//! The `crash` child checkpoints every epoch and `kill -9`s itself from the
//! `BatchEnd` callback in the middle of epoch 1 — a real SIGKILL, so no
//! destructors, flushes or atexit handlers soften the crash. The `resume`
//! child starts from a fresh process (exactly what recovery looks like in
//! production), continues from the newest checkpoint, and writes its final
//! metrics with float *bit patterns* so the parent can compare exactly.

use rmpi_core::trainer::{CheckpointConfig, Trainer};
use rmpi_core::{RmpiConfig, RmpiModel, ScoringModel, TrainConfig, TrainEvent, TrainReport};
use rmpi_datasets::{build_benchmark, Benchmark, Scale};
use std::path::{Path, PathBuf};
use std::time::Instant;

const DATASET: &str = "nell.v1";
const THREADS: usize = 2;

fn train_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 3,
        batch_size: 32,
        max_samples_per_epoch: 96, // 3 batches per epoch
        max_valid_samples: 16,
        patience: 0,
        seed: 7,
        threads: THREADS,
        ..Default::default()
    }
}

fn fresh_model(b: &Benchmark) -> RmpiModel {
    RmpiModel::new(RmpiConfig { dim: 16, ..RmpiConfig::base() }, b.num_relations(), 1)
}

/// FNV-1a over every parameter's name and value bits, in store order: one
/// u64 that only matches when the weights are bit-identical.
fn param_hash(model: &RmpiModel) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100000001b3);
    };
    let store = model.param_store();
    for id in store.ids() {
        for b in store.name(id).as_bytes() {
            eat(*b);
        }
        for v in store.value(id).data() {
            for b in v.to_bits().to_le_bytes() {
                eat(b);
            }
        }
    }
    h
}

/// The run fingerprint the parent compares: every float as its bit pattern.
fn metrics_text(report: &TrainReport, model: &RmpiModel) -> String {
    let losses: Vec<String> = report.epoch_losses.iter().map(|l| l.to_bits().to_string()).collect();
    let accs: Vec<String> = report.valid_accuracy.iter().map(|a| a.to_bits().to_string()).collect();
    format!(
        "losses_bits {}\naccuracy_bits {}\nbest_epoch {}\nparam_hash {}\n",
        losses.join(","),
        accs.join(","),
        report.best_epoch,
        param_hash(model)
    )
}

fn run_crash_child(dir: &Path) -> ! {
    let b = build_benchmark(DATASET, Scale::Quick);
    let mut model = fresh_model(&b);
    Trainer::new(train_cfg())
        .with_checkpointing(CheckpointConfig::new(dir))
        .on_event(|ev| {
            if let TrainEvent::BatchEnd { epoch: 1, batch: 1 } = ev {
                // a genuine SIGKILL: no unwinding, no Drop, no flushes
                let pid = std::process::id().to_string();
                let _ = std::process::Command::new("kill").args(["-9", &pid]).status();
                std::process::abort(); // unreachable unless `kill` is missing
            }
        })
        .train(&mut model, &b.train.graph, &b.train.targets, &b.train.valid);
    eprintln!("bench_resume: crash child survived its own SIGKILL");
    std::process::exit(3);
}

fn run_resume_child(dir: &Path) -> ! {
    let b = build_benchmark(DATASET, Scale::Quick);
    let mut model = fresh_model(&b);
    let t0 = Instant::now();
    let report = Trainer::new(train_cfg()).resume_latest(dir).expect("resume_latest").train(
        &mut model,
        &b.train.graph,
        &b.train.targets,
        &b.train.valid,
    );
    let secs = t0.elapsed().as_secs_f64();
    if report.resumed_from.is_none() {
        eprintln!("bench_resume: resume child found no checkpoint in {}", dir.display());
        std::process::exit(4);
    }
    let text = format!("{}resume_seconds {secs:.4}\n", metrics_text(&report, &model));
    std::fs::write(dir.join("resume_metrics.txt"), text).expect("write resume metrics");
    std::process::exit(0);
}

fn spawn_child(mode: &str, dir: &Path) -> std::process::ExitStatus {
    let exe = std::env::current_exe().expect("current_exe");
    std::process::Command::new(exe)
        .args(["--mode", mode, "--dir"])
        .arg(dir)
        .status()
        .expect("spawn bench_resume child")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().position(|a| a == name).map(|i| args[i + 1].clone());
    let mode = flag("--mode").unwrap_or_else(|| "all".into());
    let dir = flag("--dir").map(PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("rmpi-bench-resume-{}", std::process::id()))
    });

    match mode.as_str() {
        "crash" => run_crash_child(&dir),
        "resume" => run_resume_child(&dir),
        "all" => {}
        other => {
            eprintln!("bench_resume: unknown --mode {other:?} (use all | crash | resume)");
            std::process::exit(2);
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    let b = build_benchmark(DATASET, Scale::Quick);
    let cfg = train_cfg();

    // Reference: uninterrupted, no checkpointing.
    let mut reference = fresh_model(&b);
    let t0 = Instant::now();
    let full =
        Trainer::new(cfg).train(&mut reference, &b.train.graph, &b.train.targets, &b.train.valid);
    let full_secs = t0.elapsed().as_secs_f64();
    let reference_metrics = metrics_text(&full, &reference);

    // Same run with per-epoch checkpointing: the durability overhead.
    let ckpt_probe = dir.join("overhead");
    let mut checkpointed = fresh_model(&b);
    let t0 = Instant::now();
    Trainer::new(cfg).with_checkpointing(CheckpointConfig::new(&ckpt_probe)).train(
        &mut checkpointed,
        &b.train.graph,
        &b.train.targets,
        &b.train.valid,
    );
    let ckpt_secs = t0.elapsed().as_secs_f64();
    let overhead_pct = (ckpt_secs / full_secs - 1.0) * 100.0;

    // Crash/recover cycle in real child processes.
    let crash_dir = dir.join("crash");
    let status = spawn_child("crash", &crash_dir);
    assert!(!status.success(), "the crash child must die, got {status}");
    println!("crash child terminated: {status} (expected: killed by SIGKILL)");
    let t0 = Instant::now();
    let status = spawn_child("resume", &crash_dir);
    let recover_secs = t0.elapsed().as_secs_f64();
    assert!(status.success(), "the resume child must succeed, got {status}");

    let resumed = std::fs::read_to_string(crash_dir.join("resume_metrics.txt"))
        .expect("resume child metrics");
    let bit_identical = resumed.starts_with(&reference_metrics);
    println!("reference run : {full_secs:.3}s");
    println!("checkpointed  : {ckpt_secs:.3}s ({overhead_pct:+.1}% checkpoint overhead)");
    println!("crash+resume  : {recover_secs:.3}s wall for the recovery leg");
    println!("bit-identical : {bit_identical}");
    if !bit_identical {
        eprintln!("--- reference ---\n{reference_metrics}\n--- resumed ---\n{resumed}");
        std::process::exit(1);
    }

    let mut out = rmpi_obs::json::JsonObject::new();
    out.field_str("bench", "crash_resume");
    out.field_str("dataset", DATASET);
    out.field_u64("threads", THREADS as u64);
    out.field_f64("full_seconds", full_secs, 4);
    out.field_f64("checkpointed_seconds", ckpt_secs, 4);
    out.field_f64("checkpoint_overhead_pct", overhead_pct, 2);
    out.field_f64("recovery_seconds", recover_secs, 4);
    out.field_bool("bit_identical", bit_identical);
    // the durability cost, straight from the trainer's own instrumentation
    out.field_raw(
        "checkpoint_write_us",
        &rmpi_obs::global().histogram("trainer.checkpoint_write.us").summary_json(),
    );
    let json = format!("{}\n", out.finish());
    std::fs::write("BENCH_resume.json", &json).expect("write BENCH_resume.json");
    println!("wrote BENCH_resume.json");
    let _ = std::fs::remove_dir_all(&dir);
}
