//! Table II — fully inductive KGC, *testing with semi unseen relations*.
//!
//! Part (a): randomly initialised unseen relations; part (b): schema-enhanced
//! initialisation (NELL-family datasets, which carry the ontology).
//!
//! ```text
//! cargo run --release -p rmpi-bench --bin table2_semi_unseen [--full]
//! ```

use rmpi_bench::drivers::run_fully_inductive_table;
use rmpi_bench::Harness;

fn main() {
    let h = Harness::from_args();
    run_fully_inductive_table(&h, "TE(semi)", "Table II");
}
