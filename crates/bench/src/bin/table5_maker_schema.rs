//! Table V — comparison with MaKEr on NELL-Ext, schema-enhanced RMPI.
//!
//! ```text
//! cargo run --release -p rmpi-bench --bin table5_maker_schema [--full]
//! ```

use rmpi_bench::drivers::run_maker_table;
use rmpi_bench::Harness;

fn main() {
    let h = Harness::from_args();
    run_maker_table(
        &h,
        &["nell-ext"],
        true,
        "Table V: MaKEr comparison on NELL-Ext (Schema Enhanced)",
    );
}
