//! Fig. 4 — case studies: two positive target triples, the relations in
//! their neighbourhoods, and the scores predicted by different models.
//!
//! ```text
//! cargo run --release -p rmpi-bench --bin fig4_case_study [--full]
//! ```

use rmpi_bench::{method_factory, Harness, MethodSpec};
use rmpi_core::{train_model, ScoringModel};
use rmpi_datasets::build_benchmark;
use rmpi_eval::cases::{build_case, find_case};
use rmpi_kg::RelationId;

fn main() {
    let h = Harness::from_args();

    // Case 1 (paper: NELL-995.v4.v3, unseen relation `coach won trophy`):
    // an unseen-relation target from our nell.v4.v3 stand-in.
    run_case(&h, "nell.v4.v3", "TE(semi)", true, "Case 1: target with UNSEEN relation");

    // Case 2 (paper: FB15k-237.v1.v4, seen relation `/music/genre/artists`):
    // a seen-relation target where one-hop context suffices.
    run_case(&h, "fb.v1.v4", "TE(semi)", false, "Case 2: target with SEEN relation");
}

fn run_case(h: &Harness, dataset: &str, test_set: &str, want_unseen: bool, title: &str) {
    let b = build_benchmark(dataset, h.scale);
    let test = b.test(test_set).expect("test set");
    let Some(target) = find_case(&b, test, want_unseen, 2) else {
        println!("{title}: no suitable target found in {dataset}/{test_set}");
        return;
    };

    // train the compared models: TACT-base, RMPI-base, RMPI-TA, and the
    // schema-enhanced variants of the first two
    let methods = [
        MethodSpec::TactBase { schema: false },
        MethodSpec::TactBase { schema: true },
        MethodSpec::RMPI_BASE,
        MethodSpec::Rmpi { ne: false, ta: false, concat: false, schema: true },
        MethodSpec::RMPI_TA,
    ];
    let mut models: Vec<Box<dyn ScoringModel + Send>> = Vec::new();
    for m in methods {
        eprintln!("[fig4] training {} on {dataset}", m.name());
        let factory = method_factory(m, &b, h);
        let mut model = factory(0, &b);
        train_model(&mut model, &b.train.graph, &b.train.targets, &b.train.valid, &h.train);
        models.push(model);
    }
    let refs: Vec<&dyn ScoringModel> = models.iter().map(|m| m as &dyn ScoringModel).collect();
    let case = build_case(&b, test, target, &refs, 2);

    // export the subgraph and its relation view as DOT (render with graphviz)
    let sg = rmpi_subgraph::enclosing_subgraph(&test.graph, target, 2);
    let rv = rmpi_subgraph::RelViewGraph::from_subgraph(&sg);
    let tag = dataset.replace('.', "_");
    let _ = std::fs::write(format!("fig4_{tag}_subgraph.dot"), rmpi_subgraph::subgraph_to_dot(&sg));
    let _ = std::fs::write(format!("fig4_{tag}_relview.dot"), rmpi_subgraph::relview_to_dot(&rv));

    println!("== {title} ==");
    println!("dataset: {dataset}  test set: {test_set}");
    println!(
        "target triple: {}  (relation {} is {})",
        case.target,
        case.target.relation,
        if case.relation_unseen { "UNSEEN" } else { "seen" }
    );
    let fmt_rels = |rels: &[RelationId]| {
        rels.iter()
            .map(|r| format!("{r}{}", if b.is_unseen(*r) { "*" } else { "" }))
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!("one-hop neighbour relations: {}", fmt_rels(&case.one_hop));
    println!("relations newly added at hop 2: {}", fmt_rels(&case.two_hop_new));
    println!("(* = unseen relation)");
    println!("predicted scores:");
    for (name, score) in &case.scores {
        println!("  {name:<22} {score:>9.4}");
    }
    println!("DOT exports: fig4_{tag}_subgraph.dot, fig4_{tag}_relview.dot");
    println!();
}
