//! Availability and rank coverage of the scatter-gather router as a shard
//! degrades.
//!
//! Spins up a three-shard fleet over one engine, puts a seeded
//! [`ChaosProxy`] in front of shard 0, and drives `RANK` requests through
//! the router's wire front end under the `partial` degradation policy.
//! The proxy draws faults per *connection*, so the replicas run with a
//! short idle timeout and requests are paced just past it: every `RANK`
//! re-dials the shards and gets a fresh fault draw, modelling a fleet that
//! establishes per-request connections.
//! Reports, per fault rate: availability (fraction of requests answered
//! `OK`, full or partial), mean rank coverage (candidates actually ranked /
//! candidates requested), partial responses, shard errors and p50/p99
//! latency. A final section adds a standby replica at the worst fault rate
//! to show what hedging + rescue buy back in coverage. Writes
//! `BENCH_router.json`.
//!
//! ```text
//! cargo run --release -p rmpi-bench --bin bench_router [--requests 80] [--rates 0.0,0.1,0.25,0.5] [--smoke]
//! ```

use rmpi_core::{RmpiConfig, RmpiModel};
use rmpi_datasets::{build_benchmark, Scale};
use rmpi_kg::Triple;
use rmpi_obs::json::{array, JsonObject};
use rmpi_obs::MetricsRegistry;
use rmpi_router::{serve_router, PartialPolicy, Router, RouterConfig};
use rmpi_serve::{serve, Engine, EngineConfig, ServerConfig, ServerHandle};
use rmpi_testutil::chaos::{ChaosConfig, ChaosProxy};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 29;
const K: usize = 10;
const SHARDS: usize = 3;

fn replica(engine: &Arc<Engine>) -> ServerHandle {
    serve(
        Arc::clone(engine),
        ServerConfig {
            workers: 4,
            // short enough that paced requests always re-dial (fresh fault
            // draw per request), long enough to never cut a rank in flight
            idle_timeout: Duration::from_millis(50),
            ..ServerConfig::default()
        },
    )
    .expect("server")
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

struct RunStats {
    ok: u64,
    failed: u64,
    partials: u64,
    coverage_sum: f64,
    p50_us: u64,
    p99_us: u64,
}

impl RunStats {
    fn availability(&self) -> f64 {
        self.ok as f64 / (self.ok + self.failed).max(1) as f64
    }

    /// Mean covered/total over the requests that were answered at all.
    fn coverage(&self) -> f64 {
        if self.ok == 0 {
            0.0
        } else {
            self.coverage_sum / self.ok as f64
        }
    }
}

/// Parse `OK [partial c/t] ...` into a coverage fraction; `None` on `ERR`.
fn coverage_of(resp: &str) -> Option<f64> {
    let rest = resp.strip_prefix("OK")?;
    let mut parts = rest.split_whitespace();
    if parts.next() == Some("partial") {
        let (c, t) = parts.next()?.split_once('/')?;
        let (c, t): (f64, f64) = (c.parse().ok()?, t.parse().ok()?);
        Some(c / t.max(1.0))
    } else {
        Some(1.0)
    }
}

/// Drive `queries` as `RANK` requests over one v1 connection to the front
/// end, reconnecting if the connection drops.
fn drive(front: SocketAddr, queries: &[(u32, u32)]) -> RunStats {
    let connect = || -> (TcpStream, BufReader<TcpStream>) {
        let s = TcpStream::connect(front).expect("connect front end");
        let r = BufReader::new(s.try_clone().expect("clone"));
        (s, r)
    };
    let (mut stream, mut reader) = connect();
    let mut stats =
        RunStats { ok: 0, failed: 0, partials: 0, coverage_sum: 0.0, p50_us: 0, p99_us: 0 };
    let mut lat_us: Vec<u64> = Vec::with_capacity(queries.len());
    for &(head, relation) in queries {
        // outlive the replicas' idle timeout so the next rank re-dials
        std::thread::sleep(Duration::from_millis(75));
        let t0 = Instant::now();
        let mut line = String::new();
        let sent = writeln!(stream, "RANK {head} {relation} {K}").is_ok()
            && matches!(reader.read_line(&mut line), Ok(n) if n > 0);
        if !sent {
            stats.failed += 1;
            (stream, reader) = connect();
            continue;
        }
        match coverage_of(line.trim_end()) {
            Some(c) => {
                stats.ok += 1;
                stats.coverage_sum += c;
                if c < 1.0 {
                    stats.partials += 1;
                }
                lat_us.push(t0.elapsed().as_micros() as u64);
            }
            None => stats.failed += 1,
        }
    }
    lat_us.sort_unstable();
    stats.p50_us = percentile(&lat_us, 0.50);
    stats.p99_us = percentile(&lat_us, 0.99);
    stats
}

struct Fleet {
    // RAII guards: the replicas and proxy must outlive the driving loop
    _shards: Vec<ServerHandle>,
    _standby: Option<ServerHandle>,
    proxy: ChaosProxy,
    registry: Arc<MetricsRegistry>,
    front: rmpi_router::RouterHandle,
}

/// A three-shard fleet with shard 0 behind a chaos proxy at `rate`, plus an
/// optional standby, fronted by the router's wire server.
fn fleet(
    engine: &Arc<Engine>,
    candidates: &[u32],
    rate: f64,
    seed: u64,
    with_standby: bool,
) -> Fleet {
    let shards: Vec<ServerHandle> = (0..SHARDS).map(|_| replica(engine)).collect();
    let proxy = ChaosProxy::spawn(
        shards[0].addr(),
        ChaosConfig { seed, fault_rate: rate, ..Default::default() },
    )
    .expect("proxy");
    let mut addrs: Vec<SocketAddr> = shards.iter().map(|s| s.addr()).collect();
    addrs[0] = proxy.addr();
    let standby = with_standby.then(|| replica(engine));
    let mut cfg = RouterConfig::new(addrs, candidates.to_vec())
        .with_policy(PartialPolicy::Partial)
        .with_deadline(Duration::from_secs(2))
        .with_hedge_after(Duration::from_millis(100));
    if let Some(sb) = &standby {
        cfg = cfg.with_standby(sb.addr());
    }
    let registry = Arc::new(MetricsRegistry::new());
    let router = Arc::new(Router::with_registry(cfg, Arc::clone(&registry)));
    let front = serve_router(router).expect("front end");
    Fleet { _shards: shards, _standby: standby, proxy, registry, front }
}

fn row_json(rate: f64, run: &RunStats, fleet: &Fleet) -> String {
    let mut row = JsonObject::new();
    row.field_f64("fault_rate", rate, 3);
    row.field_f64("availability", run.availability(), 5);
    row.field_f64("coverage", run.coverage(), 5);
    row.field_u64("ok", run.ok);
    row.field_u64("failed", run.failed);
    row.field_u64("partial_responses", run.partials);
    row.field_u64("shard_errors", fleet.registry.counter("router.shard_errors.count").get());
    row.field_u64("hedges", fleet.registry.counter("router.hedges.count").get());
    row.field_u64("p50_us", run.p50_us);
    row.field_u64("p99_us", run.p99_us);
    row.field_u64("proxy_faults", fleet.proxy.stats().faults_injected());
    row.finish()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let requests: usize = match args.iter().position(|a| a == "--requests") {
        Some(i) => args[i + 1].parse().expect("--requests takes a count"),
        None if smoke => 12,
        None => 80,
    };
    let rates: Vec<f64> = match args.iter().position(|a| a == "--rates") {
        Some(i) => args[i + 1]
            .split(',')
            .map(|s| s.trim().parse().expect("--rates takes a comma-separated list"))
            .collect(),
        None if smoke => vec![0.0, 0.25],
        None => vec![0.0, 0.1, 0.25, 0.5],
    };

    let b = build_benchmark("nell.v1", Scale::Quick);
    let test = b.test("TE").expect("TE split");
    let model = RmpiModel::new(
        RmpiConfig { dim: 16, ne: true, ..RmpiConfig::base() },
        b.num_relations(),
        1,
    );
    let queries: Vec<(u32, u32)> =
        test.targets.iter().map(|t| (t.head.0, t.relation.0)).cycle().take(requests).collect();
    // candidate set: distinct tails seen in the test split, capped so one
    // routed rank stays a few dozen scores per shard
    let mut candidates: Vec<u32> = test.targets.iter().map(|t| t.tail.0).collect();
    candidates.sort_unstable();
    candidates.dedup();
    candidates.truncate(48);
    let engine = Arc::new(Engine::new(
        model,
        test.graph.clone(),
        EngineConfig { seed: SEED, cache_capacity: 8192, threads: 2 },
    ));
    let warm: Vec<Triple> =
        candidates.iter().map(|&t| Triple::new(queries[0].0, queries[0].1, t)).collect();
    engine.score_batch(&warm).expect("warmup");

    println!(
        "router bench: {requests} RANK requests per fault rate, {SHARDS} shards, \
         {} candidates, k={K}, policy=partial",
        candidates.len()
    );
    let mut rows = Vec::new();
    for (i, &rate) in rates.iter().enumerate() {
        let fleet = fleet(&engine, &candidates, rate, SEED + i as u64, false);
        let run = drive(fleet.front.addr(), &queries);
        println!(
            "  rate={rate:<5} availability={:6.2}%  coverage={:6.2}%  partial={:3}  p99={:7}us",
            run.availability() * 100.0,
            run.coverage() * 100.0,
            run.partials,
            run.p99_us,
        );
        rows.push(row_json(rate, &run, &fleet));
    }

    // the same fleet at the worst fault rate, now with a standby replica:
    // hedges and rescues should buy the lost coverage back
    let worst = rates.iter().copied().fold(0.0f64, f64::max);
    let fleet = fleet(&engine, &candidates, worst, SEED + 100, true);
    let run = drive(fleet.front.addr(), &queries);
    println!(
        "  standby (shard 0 rate={worst}) availability={:6.2}%  coverage={:6.2}%  hedges={}",
        run.availability() * 100.0,
        run.coverage() * 100.0,
        fleet.registry.counter("router.hedges.count").get(),
    );
    let standby_row = row_json(worst, &run, &fleet);

    let mut out = JsonObject::new();
    out.field_str("bench", "router");
    out.field_u64("requests", requests as u64);
    out.field_u64("shards", SHARDS as u64);
    out.field_u64("candidates", candidates.len() as u64);
    out.field_u64("k", K as u64);
    out.field_raw("by_fault_rate", &array(&rows));
    out.field_raw("with_standby", &standby_row);
    let json = format!("{}\n", out.finish());
    std::fs::write("BENCH_router.json", &json).expect("write BENCH_router.json");
    println!("wrote BENCH_router.json");
}
