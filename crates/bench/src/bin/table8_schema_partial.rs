//! Table VIII — partially inductive KGC with and without ontological
//! schemas (NELL-995.v2 / v4).
//!
//! ```text
//! cargo run --release -p rmpi-bench --bin table8_schema_partial [--full]
//! ```

use rmpi_bench::{run_cell, Harness, MethodSpec};
use rmpi_datasets::build_benchmark;
use rmpi_eval::report::{fmt_metric, Table};

fn main() {
    let h = Harness::from_args();
    let datasets = h.filter_datasets(&["nell.v2", "nell.v4"]);

    let mut table = Table::new(
        "Table VIII: partially inductive with (w) / without (w/o) schemas",
        &["schema", "dataset", "method", "AUC-PR", "MRR", "Hits@10"],
    );
    for (label, schema) in [("w/o", false), ("w", true)] {
        let methods = [
            MethodSpec::TactBase { schema },
            MethodSpec::Rmpi { ne: false, ta: false, concat: false, schema },
            MethodSpec::Rmpi { ne: true, ta: false, concat: false, schema },
            MethodSpec::Rmpi { ne: true, ta: false, concat: true, schema },
        ];
        let methods = h.filter_methods(&methods);
        for name in &datasets {
            let b = build_benchmark(name, h.scale);
            for &m in &methods {
                let out = run_cell(m, &b, &["TE"], &h);
                let s = &out["TE"].mean;
                table.add_row(vec![
                    label.to_owned(),
                    name.to_string(),
                    m.name(),
                    fmt_metric(s.auc_pr),
                    fmt_metric(s.mrr),
                    fmt_metric(s.hits10),
                ]);
            }
        }
    }
    println!("{}", table.render());
}
