//! Table I — benchmark statistics, generated vs. paper-reported.
//!
//! ```text
//! cargo run --release -p rmpi-bench --bin table1_stats [--full]
//! ```

use rmpi_bench::Harness;
use rmpi_datasets::{build_benchmark, registry::paper_table1_stats, registry_names};
use rmpi_eval::report::Table;
use rmpi_kg::GraphStats;

fn main() {
    let h = Harness::from_args();
    let names: Vec<&str> = registry_names().into_iter().filter(|n| !n.contains("ext")).collect();
    let names = h.filter_datasets(&names);

    let mut part_a = Table::new(
        "Table Ia/Ib: benchmark statistics (generated | paper)",
        &["dataset", "graph", "#R gen", "#R paper", "#E gen", "#E paper", "#T gen", "#T paper"],
    );
    for name in names {
        let b = build_benchmark(name, h.scale);
        let paper = paper_table1_stats(name);
        let tr = GraphStats::of(&b.train.graph);
        let row = |graph: &str, s: GraphStats, p: Option<(usize, usize, usize)>| {
            vec![
                name.to_owned(),
                graph.to_owned(),
                s.num_relations.to_string(),
                p.map(|p| p.0.to_string()).unwrap_or_else(|| "-".into()),
                s.num_entities.to_string(),
                p.map(|p| p.1.to_string()).unwrap_or_else(|| "-".into()),
                s.num_triples.to_string(),
                p.map(|p| p.2.to_string()).unwrap_or_else(|| "-".into()),
            ]
        };
        part_a.add_row(row("TR", tr, paper.map(|p| (p.0, p.1, p.2))));
        for test in &b.tests {
            let te = GraphStats::of(&test.graph);
            let paper_te = if test.name == "TE" || test.name == "TE(semi)" {
                paper.map(|p| (p.3, p.4, p.5))
            } else {
                None
            };
            part_a.add_row(row(&test.name, te, paper_te));
        }
    }
    println!("{}", part_a.render());
    println!(
        "note: generated sizes are the synthetic stand-ins at {:?} scale; the paper columns\n\
         are the original GraIL/RMPI benchmark sizes for trend comparison (see DESIGN.md).",
        h.scale
    );
}
