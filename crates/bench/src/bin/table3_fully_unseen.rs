//! Table III — fully inductive KGC, *testing with fully unseen relations*.
//!
//! ```text
//! cargo run --release -p rmpi-bench --bin table3_fully_unseen [--full]
//! ```

use rmpi_bench::drivers::run_fully_inductive_table;
use rmpi_bench::Harness;

fn main() {
    let h = Harness::from_args();
    run_fully_inductive_table(&h, "TE(fully)", "Table III");
}
