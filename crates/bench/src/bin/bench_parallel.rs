//! Throughput report for the data-parallel training engine.
//!
//! Trains one epoch of the base RMPI model at each thread count and reports
//! training throughput (samples/sec), the speedup over the single-thread run
//! and the **per-core efficiency** (speedup divided by the parallelism the
//! host can actually grant — `min(threads, cores)`), plus the per-phase
//! timing breakdown (subgraph extraction, forward, backward, optimiser step)
//! read back from the `rmpi-obs` metrics registry and the kernel FLOP/byte
//! traffic from `rmpi_autograd::counters`. Thread counts above the core
//! count are flagged as oversubscribed rather than reported as a scaling
//! regression: on a 1-core host, 8 threads at 0.9x is the scheduler tax of
//! oversubscription, not a parallel slowdown. Writes `BENCH_parallel.json`
//! in the working directory.
//!
//! ```text
//! cargo run --release -p rmpi-bench --bin bench_parallel [--threads 1,2,4,8]
//! ```

use rmpi_core::{train_model, RmpiConfig, RmpiModel, TrainConfig};
use rmpi_datasets::{build_benchmark, Benchmark, Scale};
use rmpi_obs::json::{array, JsonObject};
use std::time::Instant;

const SAMPLES_PER_EPOCH: usize = 192;
const REPS: usize = 3;

/// Best-of-`REPS` wall-clock seconds for one training epoch at `threads`.
fn time_epoch(b: &Benchmark, threads: usize) -> f64 {
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 32,
        max_samples_per_epoch: SAMPLES_PER_EPOCH,
        max_valid_samples: 8,
        patience: 0,
        seed: 1,
        threads,
        ..Default::default()
    };
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let mut model =
            RmpiModel::new(RmpiConfig { dim: 16, ..RmpiConfig::base() }, b.num_relations(), 1);
        let t0 = Instant::now();
        train_model(&mut model, &b.train.graph, &b.train.targets, &b.train.valid, &cfg);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let thread_counts: Vec<usize> = match args.iter().position(|a| a == "--threads") {
        Some(i) => args[i + 1]
            .split(',')
            .map(|s| s.trim().parse().expect("--threads takes a comma-separated list"))
            .collect(),
        None => vec![1, 2, 4, 8],
    };

    let b = build_benchmark("nell.v1", Scale::Quick);
    // Warm the dataset/page caches so the first measured config isn't penalised.
    time_epoch(&b, 1);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("train_epoch throughput, {SAMPLES_PER_EPOCH} samples/epoch, best of {REPS}, {cores} core(s)");
    if cores == 1 {
        println!("  note: single-core host — thread counts > 1 cannot speed up; expect ~1.0x");
    }
    let registry = rmpi_obs::global();
    let mut rows = Vec::new();
    let mut base_rate = None;
    for &threads in &thread_counts {
        // phase metrics come from the registry; zero it so each config's
        // breakdown covers exactly its own reps
        registry.reset();
        rmpi_autograd::counters::reset();
        let secs = time_epoch(&b, threads);
        let kc = rmpi_autograd::counters::snapshot();
        let rate = SAMPLES_PER_EPOCH as f64 / secs;
        let base = *base_rate.get_or_insert(rate);
        let speedup = rate / base;
        // speedup is measured against what the host can grant, not against
        // the requested thread count: 8 threads on 1 core is 1 effective lane
        let effective = threads.min(cores).max(1);
        let efficiency = speedup / effective as f64;
        let oversubscribed = threads > cores;
        let note = if oversubscribed {
            format!("  [oversubscribed: {threads} threads on {cores} core(s)]")
        } else {
            String::new()
        };
        println!(
            "  threads={threads:<2} {rate:8.1} samples/sec  {speedup:.2}x vs 1 thread,              {:.0}% per-core efficiency{note}",
            efficiency * 100.0
        );

        let mut phases = JsonObject::new();
        for (label, metric) in [
            ("extract", "core.extract.us"),
            ("forward", "trainer.forward.us"),
            ("backward", "trainer.backward.us"),
            ("optim_step", "trainer.optim_step.us"),
            ("epoch", "trainer.epoch.us"),
        ] {
            phases.field_raw(label, &registry.histogram(metric).summary_json());
        }
        let mut row = JsonObject::new();
        row.field_u64("threads", threads as u64);
        row.field_f64("seconds", secs, 4);
        row.field_f64("samples_per_sec", rate, 1);
        row.field_f64("speedup", speedup, 3);
        row.field_u64("effective_parallelism", effective as u64);
        row.field_f64("per_core_efficiency", efficiency, 3);
        row.field_bool("oversubscribed", oversubscribed);
        row.field_u64("samples_counted", registry.counter("trainer.samples.count").get());
        // work accounting: constant across thread counts (same samples, same
        // kernels) — a drift here means the configs did different work
        let mut ops = JsonObject::new();
        ops.field_u64("extract_edges", registry.counter("core.extract.edges").get());
        ops.field_u64("extract_entities", registry.counter("core.extract.entities").get());
        ops.field_u64("kernel_flops", kc.flops);
        ops.field_u64("kernel_bytes", kc.bytes);
        row.field_raw("work", &ops.finish());
        row.field_raw("phases_us", &phases.finish());
        rows.push(row.finish());
    }

    let mut out = JsonObject::new();
    out.field_str("bench", "train_epoch_parallel");
    out.field_u64("cores", cores as u64);
    out.field_u64("samples_per_epoch", SAMPLES_PER_EPOCH as u64);
    out.field_u64("reps", REPS as u64);
    out.field_raw("results", &array(&rows));
    let json = format!("{}\n", out.finish());
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");
}
