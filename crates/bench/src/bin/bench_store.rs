//! Out-of-core store benchmark.
//!
//! Measures, on a synthetic streamed world written straight to disk:
//! build throughput (stream-generate → sorted segments, triples/sec and
//! bytes), point-seek latency (`triple_at` on random indices, p50/p99),
//! sequential scan bandwidth, per-query subgraph-extraction latency
//! store-vs-RAM (the same `prepare_eval_sample`, against a pinned
//! [`rmpi_store::NeighborhoodView`] and against an in-memory
//! [`rmpi_kg::CsrGraph`]), and peak RSS — with the `store.*` registry
//! counters (segment reads, bytes scanned, index hits, pins) as the work
//! ledger. Writes `BENCH_store.json` in the working directory.
//!
//! ```text
//! cargo run --release -p rmpi-bench --bin bench_store \
//!     [--entities 20000] [--chunk 4096] [--seeks 20000] [--extracts 64] \
//!     [--dir PATH] [--smoke]
//! ```
//!
//! `--smoke` shrinks every knob to a ~10 ms CI sanity pass. `--dir` builds
//! the store at PATH and keeps it on exit (instead of a throwaway temp
//! directory) so a follow-up step — e.g. an `rmpi_scrub` integrity pass —
//! can inspect the exact artifact this run measured.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmpi_core::{RmpiConfig, RmpiModel};
use rmpi_datasets::world::GraphGenConfig;
use rmpi_datasets::{StreamingWorld, World, WorldConfig};
use rmpi_kg::CsrGraph;
use rmpi_obs::json::JsonObject;
use rmpi_store::{build_from_sorted, NeighborhoodView, ReadMode, StoreConfig, StoreReader};
use std::time::Instant;

const SEED: u64 = 17;

fn flag(args: &[String], name: &str, default: usize) -> usize {
    match args.iter().position(|a| a == name) {
        Some(i) => args[i + 1].parse().unwrap_or_else(|_| panic!("{name} takes a number")),
        None => default,
    }
}

fn path_flag(args: &[String], name: &str) -> Option<std::path::PathBuf> {
    args.iter().position(|a| a == name).map(|i| std::path::PathBuf::from(&args[i + 1]))
}

/// Peak resident set size in MiB, from `/proc/self/status` (0 where absent).
fn peak_rss_mib() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0.0 };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse::<f64>().ok())
        .map_or(0.0, |kb| kb / 1024.0)
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let entities = flag(&args, "--entities", if smoke { 300 } else { 20_000 });
    let chunk = flag(&args, "--chunk", (entities / 8).max(64));
    let seeks = flag(&args, "--seeks", if smoke { 200 } else { 20_000 });
    let extracts = flag(&args, "--extracts", if smoke { 8 } else { 64 });

    let keep = path_flag(&args, "--dir");
    let dir = keep.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("rmpi-bench-store-{}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&dir);

    let world = World::new(WorldConfig::default());
    let active: Vec<usize> = (0..world.groups().len()).collect();
    let gen = GraphGenConfig {
        num_entities: entities,
        num_base_triples: entities * 3,
        max_triples: entities * 12,
        seed: SEED,
        ..Default::default()
    };
    let sw = StreamingWorld::new(&world, &active, gen, chunk);

    // Build: stream-generate the world and write sorted segments, one chunk
    // resident at a time. The time covers generation + encode + fsync — the
    // realistic "synthesize a world to disk" number.
    let t0 = Instant::now();
    let summary = build_from_sorted(&dir, StoreConfig::default(), sw.iter()).expect("build store");
    let build_secs = t0.elapsed().as_secs_f64();
    let rss_after_build = peak_rss_mib();
    println!(
        "build: {} entities, {} triples, {} segment file(s), {:.1} MiB in {build_secs:.2}s \
         ({:.0} triples/sec), peak RSS {rss_after_build:.1} MiB",
        summary.num_entities,
        summary.num_triples,
        summary.segments,
        summary.bytes as f64 / (1 << 20) as f64,
        summary.num_triples as f64 / build_secs,
    );

    let reader =
        StoreReader::open(&dir, ReadMode::Stream { cache_blocks: 64 }).expect("open store");
    let n = reader.num_triples() as u64;

    // Point seeks: random triple_at through the block cache.
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut seek_ns: Vec<u64> = Vec::with_capacity(seeks);
    for _ in 0..seeks {
        let idx = rng.gen_range(0..n);
        let t = Instant::now();
        std::hint::black_box(reader.triple_at(idx).expect("seek"));
        seek_ns.push(t.elapsed().as_nanos() as u64);
    }
    seek_ns.sort_unstable();
    let seek_p50 = percentile_us(&seek_ns, 0.50);
    let seek_p99 = percentile_us(&seek_ns, 0.99);
    println!("seek:  {seeks} random triple_at, p50 {seek_p50:.2} us, p99 {seek_p99:.2} us");

    // Sequential scan: the whole-graph sweep path (negative-pool builds,
    // verification, emitters all look like this).
    let t0 = Instant::now();
    let mut scanned = 0u64;
    reader.for_each_triple(|_| scanned += 1).expect("scan");
    let scan_secs = t0.elapsed().as_secs_f64();
    assert_eq!(scanned, n, "scan must visit every triple");
    let fwd_bytes: u64 = reader.manifest().fwd.iter().map(|s| s.bytes).sum();
    let scan_mib_s = fwd_bytes as f64 / (1 << 20) as f64 / scan_secs;
    println!("scan:  {scanned} triples in {:.1} ms ({scan_mib_s:.0} MiB/s)", scan_secs * 1e3);

    // Extraction store-vs-RAM: identical prepare_eval_sample, once against a
    // freshly pinned neighbourhood view, once against the in-memory CSR.
    let model =
        RmpiModel::new(RmpiConfig { dim: 16, ..RmpiConfig::base() }, reader.num_relations(), 1);
    let radius = rmpi_core::ScoringModel::context_radius(&model);
    let mut targets = Vec::with_capacity(extracts);
    for _ in 0..extracts {
        targets.push(reader.triple_at(rng.gen_range(0..n)).expect("target"));
    }
    let mut triples = Vec::with_capacity(reader.num_triples());
    reader.for_each_triple(|t| triples.push(t)).expect("materialise for RAM baseline");
    let csr = CsrGraph::from_triples(triples);

    let t0 = Instant::now();
    let mut store_samples = Vec::with_capacity(extracts);
    for &t in &targets {
        let mut view = NeighborhoodView::new(&reader);
        view.pin(t.head, t.tail, radius).expect("pin");
        store_samples.push(model.prepare_eval_sample(&view, t, SEED));
    }
    let store_us = t0.elapsed().as_secs_f64() * 1e6 / extracts as f64;

    let t0 = Instant::now();
    let mut ram_samples = Vec::with_capacity(extracts);
    for &t in &targets {
        ram_samples.push(model.prepare_eval_sample(&csr, t, SEED));
    }
    let ram_us = t0.elapsed().as_secs_f64() * 1e6 / extracts as f64;
    for (s, r) in store_samples.iter().zip(&ram_samples) {
        assert_eq!(s.relview.nodes.len(), r.relview.nodes.len(), "store/RAM extraction diverged");
    }
    println!(
        "extract: store {store_us:.0} us/query vs RAM {ram_us:.0} us/query ({:.1}x)",
        store_us / ram_us.max(1e-9)
    );

    // Work ledger: everything the run charged to the store.
    let reg = rmpi_obs::global();
    let segment_reads = reg.counter("store.segment_reads.count").get();
    let bytes_scanned = reg.counter("store.bytes_scanned.count").get();
    let index_hits = reg.counter("store.index_hits.count").get();
    let pins = reg.counter("store.pins.count").get();
    let rss_peak = peak_rss_mib();
    println!(
        "work: {segment_reads} segment reads, {bytes_scanned} bytes scanned, \
         {index_hits} index hits, {pins} pins; peak RSS {rss_peak:.1} MiB"
    );

    let mut out = JsonObject::new();
    out.field_str("bench", "store");
    out.field_u64("entities", summary.num_entities as u64);
    out.field_u64("triples", summary.num_triples as u64);
    out.field_u64("segments", summary.segments as u64);
    out.field_u64("bytes", summary.bytes);
    let mut build = JsonObject::new();
    build.field_f64("seconds", build_secs, 4);
    build.field_f64("triples_per_sec", summary.num_triples as f64 / build_secs, 1);
    build.field_f64("peak_rss_mib", rss_after_build, 1);
    out.field_raw("build", &build.finish());
    let mut seek = JsonObject::new();
    seek.field_u64("ops", seeks as u64);
    seek.field_f64("p50_us", seek_p50, 3);
    seek.field_f64("p99_us", seek_p99, 3);
    out.field_raw("seek", &seek.finish());
    let mut scan = JsonObject::new();
    scan.field_f64("seconds", scan_secs, 4);
    scan.field_u64("bytes", fwd_bytes);
    scan.field_f64("mib_per_sec", scan_mib_s, 1);
    out.field_raw("scan", &scan.finish());
    let mut extract = JsonObject::new();
    extract.field_u64("queries", extracts as u64);
    extract.field_f64("store_us_per_query", store_us, 1);
    extract.field_f64("ram_us_per_query", ram_us, 1);
    extract.field_f64("store_over_ram", store_us / ram_us.max(1e-9), 3);
    out.field_raw("extract", &extract.finish());
    let mut work = JsonObject::new();
    work.field_u64("segment_reads", segment_reads);
    work.field_u64("bytes_scanned", bytes_scanned);
    work.field_u64("index_hits", index_hits);
    work.field_u64("pins", pins);
    out.field_raw("work", &work.finish());
    out.field_f64("peak_rss_mib", rss_peak, 1);
    let json = format!("{}\n", out.finish());
    std::fs::write("BENCH_store.json", &json).expect("write BENCH_store.json");
    println!("wrote BENCH_store.json");

    drop(reader);
    if keep.is_some() {
        println!("kept store at {}", dir.display());
    } else {
        let _ = std::fs::remove_dir_all(&dir);
    }
}
