//! Disk-fault availability benchmark: how much serving survives a bad disk.
//!
//! Builds a small on-disk store, opens one clean engine as the bit-exact
//! reference, then replays the same scoring workload through engines whose
//! store reads pass through a seeded [`rmpi_testutil::chaosfile::ChaosFile`]:
//!
//! * **transient** sweep — reads fail with `EIO` at increasing rates; the
//!   reader's bounded retry must hold availability at >= 99% for the 10%
//!   rate, and every request that succeeds must score bit-identical to the
//!   fault-free reference.
//! * **corrupt** sweep — read buffers come back with flipped bits; the
//!   per-block checksums must turn every hit into a retry or an error,
//!   never a silently different score, at any rate.
//! * **persistent** scenario — the store is damaged *on disk* under a warm
//!   engine; cached subgraphs keep serving bit-identical scores while
//!   uncached keys are refused with the degraded-mode error.
//!
//! The acceptance floors (availability >= 99% at the 10% transient rate,
//! zero silently-wrong scores anywhere) are asserted in-process, so a
//! passing run *is* the proof. Writes `BENCH_diskfault.json`.
//!
//! ```text
//! cargo run --release -p rmpi-bench --bin bench_diskfault \
//!     [--entities 4000] [--requests 300] [--smoke]
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmpi_core::{RmpiConfig, RmpiModel};
use rmpi_kg::Triple;
use rmpi_obs::json::JsonObject;
use rmpi_serve::{Engine, EngineConfig, GraphBackend, ServeError};
use rmpi_store::{build_from_sorted, ReadMode, StoreConfig, StoreOptions, StoreReader};
use rmpi_testutil::chaosfile::ChaosFileConfig;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 17;
const RELATIONS: usize = 6;

fn flag(args: &[String], name: &str, default: usize) -> usize {
    match args.iter().position(|a| a == name) {
        Some(i) => args[i + 1].parse().unwrap_or_else(|_| panic!("{name} takes a number")),
        None => default,
    }
}

/// Peak resident set size in MiB, from `/proc/self/status` (0 where absent).
fn peak_rss_mib() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0.0 };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse::<f64>().ok())
        .map_or(0.0, |kb| kb / 1024.0)
}

/// Deterministic sparse world: two out-edges per entity keeps radius-2
/// neighbourhoods (and therefore disk reads per request) small, so the
/// per-request availability floor follows from the per-read retry budget.
fn world(entities: usize) -> Vec<Triple> {
    let n = entities as u32;
    let mut v = Vec::with_capacity(entities * 2);
    for i in 0..n {
        v.push(Triple::new(i, i % RELATIONS as u32, (i * 7 + 1) % n));
        v.push(Triple::new(i, (i + 2) % RELATIONS as u32, (i + n / 3 + 1) % n));
    }
    v.sort_unstable();
    v
}

fn model() -> RmpiModel {
    RmpiModel::new(RmpiConfig { dim: 8, ne: true, ..RmpiConfig::base() }, RELATIONS, 1)
}

/// A store-backed engine over `reader`, charging `store.*` to `registry`.
fn engine_over(
    reader: StoreReader,
    cache: usize,
    registry: Arc<rmpi_obs::MetricsRegistry>,
) -> Engine {
    let cfg = EngineConfig { seed: SEED, cache_capacity: cache, threads: 1 };
    Engine::with_backend(model(), GraphBackend::Store(Arc::new(reader)), cfg, registry)
}

fn chaos_reader(
    dir: &Path,
    chaos: ChaosFileConfig,
    registry: &rmpi_obs::MetricsRegistry,
) -> StoreReader {
    let opts = StoreOptions {
        mode: ReadMode::Stream { cache_blocks: 1 },
        chaos: Some(chaos),
        ..StoreOptions::default()
    };
    StoreReader::open_opts(dir, opts, registry).expect("open chaos store")
}

/// One workload replay: score every target, split outcomes into
/// `(ok, wrong, errors, degraded_rejects)` against the reference scores.
fn replay(engine: &Engine, targets: &[Triple], reference: &[f32]) -> (u64, u64, u64, u64) {
    let (mut ok, mut wrong, mut errors, mut degraded) = (0u64, 0u64, 0u64, 0u64);
    for (&t, &want) in targets.iter().zip(reference) {
        match engine.score(t) {
            Ok(s) if s.to_bits() == want.to_bits() => ok += 1,
            Ok(_) => wrong += 1,
            Err(ServeError::Degraded(_)) => {
                degraded += 1;
                errors += 1;
            }
            Err(_) => errors += 1,
        }
    }
    (ok, wrong, errors, degraded)
}

/// Corrupt every checksum block of every segment file in `dir` in place —
/// one flipped byte per 4 KiB guarantees any future disk read of any block
/// sees damage, while already-verified cached bytes stay good.
fn damage_every_block(dir: &Path) {
    for entry in std::fs::read_dir(dir).expect("read store dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if !name.ends_with(".seg") {
            continue;
        }
        let mut bytes = std::fs::read(&path).expect("read segment");
        for at in (0..bytes.len()).step_by(4096) {
            bytes[at] ^= 0x40;
        }
        std::fs::write(&path, bytes).expect("rewrite segment");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let entities = flag(&args, "--entities", if smoke { 600 } else { 4000 });
    let requests = flag(&args, "--requests", if smoke { 60 } else { 300 });

    let dir = std::env::temp_dir().join(format!("rmpi-bench-diskfault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let summary =
        build_from_sorted(&dir, StoreConfig::default(), world(entities)).expect("build store");
    println!(
        "world: {} entities, {} triples, {} segment file(s)",
        summary.num_entities, summary.num_triples, summary.segments
    );

    // Reference: a clean streaming engine with the same geometry the chaos
    // engines use. Its scores define "correct" for every replay below.
    let clean_registry = Arc::new(rmpi_obs::MetricsRegistry::new());
    let clean_reader = StoreReader::open_with_registry(
        &dir,
        ReadMode::Stream { cache_blocks: 1 },
        &clean_registry,
    )
    .expect("open store");
    let mut rng = StdRng::seed_from_u64(SEED);
    let n = clean_reader.num_triples() as u64;
    // Distinct targets: the persistent scenario splits the workload into a
    // cached and an uncached half, so no triple may appear in both.
    let mut seen = std::collections::BTreeSet::new();
    let mut targets: Vec<Triple> = Vec::with_capacity(requests);
    while targets.len() < requests {
        let t = clean_reader.triple_at(rng.gen_range(0..n)).expect("target");
        if seen.insert(t) {
            targets.push(t);
        }
    }
    let clean = engine_over(clean_reader, 0, Arc::clone(&clean_registry));
    let reference: Vec<f32> =
        targets.iter().map(|&t| clean.score(t).expect("reference score")).collect();

    // Transient sweep: EIO at increasing rates, availability must hold.
    let transient_rates: &[f64] = if smoke { &[0.10] } else { &[0.02, 0.05, 0.10, 0.20] };
    let mut transient_rows = Vec::new();
    for (i, &rate) in transient_rates.iter().enumerate() {
        let registry = Arc::new(rmpi_obs::MetricsRegistry::new());
        let chaos = ChaosFileConfig {
            seed: SEED + i as u64,
            transient_rate: rate,
            delay: Duration::ZERO,
            ..ChaosFileConfig::default()
        };
        let engine = engine_over(chaos_reader(&dir, chaos, &registry), 0, Arc::clone(&registry));
        let (ok, wrong, errors, _) = replay(&engine, &targets, &reference);
        let availability = ok as f64 / requests as f64;
        let retries = registry.counter("store.read_retries.count").get();
        println!(
            "transient {rate:.2}: {ok}/{requests} ok ({:.2}% available), \
             {wrong} wrong, {errors} failed, {retries} retries",
            availability * 1e2
        );
        assert_eq!(wrong, 0, "transient faults at rate {rate} produced a silently wrong score");
        assert!(!engine.is_degraded(), "transient faults at rate {rate} degraded the engine");
        if (rate - 0.10).abs() < 1e-9 {
            assert!(
                availability >= 0.99,
                "availability {availability:.4} at the 10% fault rate breaches the 99% floor"
            );
        }
        let mut row = JsonObject::new();
        row.field_f64("rate", rate, 2);
        row.field_u64("requests", requests as u64);
        row.field_u64("ok", ok);
        row.field_u64("wrong", wrong);
        row.field_u64("failed", errors);
        row.field_f64("availability", availability, 4);
        row.field_u64("read_retries", retries);
        transient_rows.push(row.finish());
    }

    // Corruption sweep: bit flips in flight. The block checksums must turn
    // every flip into a retry or a refusal — zero silently-wrong scores.
    let corrupt_rates: &[f64] = if smoke { &[0.05] } else { &[0.02, 0.05, 0.10] };
    let mut corrupt_rows = Vec::new();
    for (i, &rate) in corrupt_rates.iter().enumerate() {
        let registry = Arc::new(rmpi_obs::MetricsRegistry::new());
        let chaos = ChaosFileConfig {
            seed: SEED * 31 + i as u64,
            corrupt_rate: rate,
            delay: Duration::ZERO,
            ..ChaosFileConfig::default()
        };
        let engine = engine_over(chaos_reader(&dir, chaos, &registry), 0, Arc::clone(&registry));
        let (ok, wrong, errors, degraded) = replay(&engine, &targets, &reference);
        let availability = ok as f64 / requests as f64;
        let checksum_retries = registry.counter("store.checksum_retries.count").get();
        println!(
            "corrupt   {rate:.2}: {ok}/{requests} ok ({:.2}% available), {wrong} wrong, \
             {errors} failed ({degraded} degraded), {checksum_retries} checksum retries",
            availability * 1e2
        );
        assert_eq!(wrong, 0, "bit flips at rate {rate} got past the block checksums");
        let mut row = JsonObject::new();
        row.field_f64("rate", rate, 2);
        row.field_u64("requests", requests as u64);
        row.field_u64("ok", ok);
        row.field_u64("wrong", wrong);
        row.field_u64("failed", errors);
        row.field_f64("availability", availability, 4);
        row.field_u64("checksum_retries", checksum_retries);
        row.field_bool("degraded", engine.is_degraded());
        corrupt_rows.push(row.finish());
    }

    // Persistent damage under a warm engine: the first half of the workload
    // is cached, then the store is corrupted on disk. Cached keys must keep
    // serving bit-identical scores; uncached keys must be refused, not
    // silently mis-scored.
    let registry = Arc::new(rmpi_obs::MetricsRegistry::new());
    let reader =
        StoreReader::open_with_registry(&dir, ReadMode::Stream { cache_blocks: 1 }, &registry)
            .expect("reopen store");
    let engine = engine_over(reader, requests.max(16), Arc::clone(&registry));
    let half = requests / 2;
    let (warm_ok, warm_wrong, warm_err, _) = replay(&engine, &targets[..half], &reference[..half]);
    assert_eq!((warm_wrong, warm_err), (0, 0), "warming must be fault-free");

    damage_every_block(&dir);

    let (cached_ok, cached_wrong, cached_err, _) =
        replay(&engine, &targets[..half], &reference[..half]);
    let (fresh_ok, fresh_wrong, _fresh_err, fresh_degraded) =
        replay(&engine, &targets[half..], &reference[half..]);
    println!(
        "persistent: {cached_ok}/{half} cached ok after on-disk damage, \
         {}/{} uncached refused degraded, {} wrong",
        fresh_degraded,
        requests - half,
        cached_wrong + fresh_wrong
    );
    assert_eq!(cached_wrong + fresh_wrong, 0, "on-disk damage produced a silently wrong score");
    assert_eq!((cached_ok, cached_err), (half as u64, 0), "cached keys must keep serving");
    assert_eq!(fresh_ok, 0, "no uncached key may score against a damaged store");
    assert!(engine.is_degraded(), "persistent damage must latch degraded mode");
    assert!(
        engine.metrics_json().contains("\"store.degraded\": 1"),
        "degraded gauge must surface in metrics"
    );

    let mut out = JsonObject::new();
    out.field_str("bench", "diskfault");
    out.field_u64("entities", summary.num_entities as u64);
    out.field_u64("triples", summary.num_triples as u64);
    out.field_u64("requests", requests as u64);
    out.field_raw("transient", &format!("[{}]", transient_rows.join(", ")));
    out.field_raw("corrupt", &format!("[{}]", corrupt_rows.join(", ")));
    let mut persistent = JsonObject::new();
    persistent.field_u64("warm_requests", half as u64);
    persistent.field_u64("warm_ok", warm_ok);
    persistent.field_u64("cached_ok_after_damage", cached_ok);
    persistent.field_u64("uncached_requests", (requests - half) as u64);
    persistent.field_u64("uncached_degraded_rejects", fresh_degraded);
    persistent.field_u64("wrong", cached_wrong + fresh_wrong);
    persistent.field_bool("degraded", engine.is_degraded());
    out.field_raw("persistent", &persistent.finish());
    out.field_f64("peak_rss_mib", peak_rss_mib(), 1);
    let json = format!("{}\n", out.finish());
    std::fs::write("BENCH_diskfault.json", &json).expect("write BENCH_diskfault.json");
    println!("wrote BENCH_diskfault.json");

    drop(engine);
    drop(clean);
    let _ = std::fs::remove_dir_all(&dir);
}
