//! Ablation of this repo's extensions beyond the paper (§VI future work):
//! gated fusion and entity-clue features, against the published variants.
//!
//! ```text
//! cargo run --release -p rmpi-bench --bin ablation_extensions [--full]
//! ```

use rmpi_bench::{method_factory, Harness, MethodSpec};
use rmpi_core::config::{Fusion, RelationInit, RmpiConfig};
use rmpi_core::RmpiModel;
use rmpi_datasets::build_benchmark;
use rmpi_eval::report::{fmt_metric, Table};
use rmpi_eval::runner::ModelFactory;
use rmpi_eval::{run_experiment, RunSummary};

fn main() {
    let h = Harness::from_args();
    let datasets = h.filter_datasets(&["nell.v2", "wn.v1"]);

    let mut table = Table::new(
        "Extension ablation: fusion function and entity clues (RMPI-NE)",
        &["dataset", "variant", "AUC-PR", "MRR", "Hits@10"],
    );
    for name in &datasets {
        let b = build_benchmark(name, h.scale);
        let num_rel = b.num_relations();
        let variants: Vec<(String, ModelFactory)> = vec![
            ("RMPI-NE(S)".into(), method_factory(MethodSpec::RMPI_NE, &b, &h)),
            (
                "RMPI-NE(G)".into(),
                rmpi_variant(
                    num_rel,
                    RmpiConfig {
                        dim: h.dim,
                        ne: true,
                        fusion: Fusion::Gated,
                        ..Default::default()
                    },
                ),
            ),
            (
                "RMPI-NE(S)+EC".into(),
                rmpi_variant(
                    num_rel,
                    RmpiConfig { dim: h.dim, ne: true, entity_clues: true, ..Default::default() },
                ),
            ),
            (
                "RMPI-NE(G)+EC".into(),
                rmpi_variant(
                    num_rel,
                    RmpiConfig {
                        dim: h.dim,
                        ne: true,
                        fusion: Fusion::Gated,
                        entity_clues: true,
                        ..Default::default()
                    },
                ),
            ),
        ];
        for (label, factory) in variants {
            eprintln!("[ablation] {label} on {name}");
            let out = run_experiment(&factory, &b, &["TE"], &h.train, &h.eval, &h.seeds);
            let s: &RunSummary = &out["TE"];
            table.add_row(vec![
                name.to_string(),
                label,
                fmt_metric(s.mean.auc_pr),
                fmt_metric(s.mean.mrr),
                fmt_metric(s.mean.hits10),
            ]);
        }
    }
    println!("{}", table.render());
}

fn rmpi_variant(num_rel: usize, cfg: RmpiConfig) -> ModelFactory {
    assert_eq!(cfg.init, RelationInit::Random);
    Box::new(move |seed, _b| Box::new(RmpiModel::new(cfg, num_rel, seed)))
}
