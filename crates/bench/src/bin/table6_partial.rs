//! Table VI — partially inductive KGC with only unseen entities:
//! (a) entity prediction Hits@10, (b) triple classification AUC-PR,
//! 8 methods × 12 benchmarks.
//!
//! ```text
//! cargo run --release -p rmpi-bench --bin table6_partial [--full]
//! cargo run --release -p rmpi-bench --bin table6_partial -- --datasets nell.v1,wn.v1
//! ```

use rmpi_bench::{run_cell, Harness, MethodSpec};
use rmpi_datasets::build_benchmark;
use rmpi_eval::report::{fmt_metric, Table};
use rmpi_eval::RunSummary;
use std::collections::HashMap;

fn main() {
    let h = Harness::from_args();
    let all = [
        "wn.v1", "wn.v2", "wn.v3", "wn.v4", "fb.v1", "fb.v2", "fb.v3", "fb.v4", "nell.v1",
        "nell.v2", "nell.v3", "nell.v4",
    ];
    let datasets = h.filter_datasets(&all);
    let methods = h.filter_methods(&[
        MethodSpec::Grail,
        MethodSpec::TactBase { schema: false },
        MethodSpec::Tact,
        MethodSpec::Compile,
        MethodSpec::RMPI_BASE,
        MethodSpec::RMPI_NE,
        MethodSpec::RMPI_TA,
        MethodSpec::RMPI_NE_TA,
    ]);

    // results[method][dataset]
    let mut results: HashMap<String, HashMap<String, RunSummary>> = HashMap::new();
    for name in &datasets {
        let b = build_benchmark(name, h.scale);
        for &m in &methods {
            eprintln!("[table6] {} on {name}", m.name());
            let out = run_cell(m, &b, &["TE"], &h);
            results.entry(m.name()).or_default().insert(name.to_string(), out["TE"].clone());
        }
    }

    let mut headers: Vec<&str> = vec!["method"];
    headers.extend(datasets.iter().copied());
    let mut part_a = Table::new("Table VIa: entity prediction (Hits@10)", &headers);
    let mut part_b = Table::new("Table VIb: triple classification (AUC-PR)", &headers);
    for &m in &methods {
        let row = |metric: &dyn Fn(&RunSummary) -> f64| -> Vec<String> {
            let mut r = vec![m.name()];
            for d in &datasets {
                r.push(fmt_metric(metric(&results[&m.name()][*d])));
            }
            r
        };
        part_a.add_row(row(&|s: &RunSummary| s.mean.hits10));
        part_b.add_row(row(&|s: &RunSummary| s.mean.auc_pr));
    }
    println!("{}", part_a.render());
    println!("{}", part_b.render());
}
