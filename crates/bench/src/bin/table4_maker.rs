//! Table IV — comparison with MaKEr on the Ext benchmarks, random init.
//!
//! ```text
//! cargo run --release -p rmpi-bench --bin table4_maker [--full]
//! ```

use rmpi_bench::drivers::run_maker_table;
use rmpi_bench::Harness;

fn main() {
    let h = Harness::from_args();
    run_maker_table(
        &h,
        &["fb-ext", "nell-ext"],
        false,
        "Table IV: MaKEr comparison (Random Initialized)",
    );
}
