//! Table VII — SUM vs CONC fusion ablation for RMPI-NE:
//! (a) partially inductive, (b) fully inductive semi-unseen random init,
//! (c) fully inductive semi-unseen schema-enhanced.
//!
//! ```text
//! cargo run --release -p rmpi-bench --bin table7_fusion [--full]
//! ```

use rmpi_bench::{run_cell, Harness, MethodSpec};
use rmpi_datasets::build_benchmark;
use rmpi_eval::report::{fmt_metric, Table};

fn fusion_rows(h: &Harness, datasets: &[&str], test_set: &str, schema: bool, title: &str) {
    let datasets = h.filter_datasets(datasets);
    let mut table = Table::new(title, &["dataset", "function", "AUC-PR", "Hits@10"]);
    for name in &datasets {
        let b = build_benchmark(name, h.scale);
        for (label, concat) in [("SUM", false), ("CONC", true)] {
            let m = MethodSpec::Rmpi { ne: true, ta: false, concat, schema };
            let out = run_cell(m, &b, &[test_set], h);
            let s = &out[test_set].mean;
            table.add_row(vec![
                name.to_string(),
                label.to_owned(),
                fmt_metric(s.auc_pr),
                fmt_metric(s.hits10),
            ]);
        }
    }
    println!("{}", table.render());
}

fn main() {
    let h = Harness::from_args();
    fusion_rows(
        &h,
        &["nell.v2", "nell.v4", "fb.v1"],
        "TE",
        false,
        "Table VIIa: partially inductive",
    );
    fusion_rows(
        &h,
        &["nell.v2.v3", "nell.v4.v3", "fb.v1.v4"],
        "TE(semi)",
        false,
        "Table VIIb: fully inductive (Random Initialized)",
    );
    fusion_rows(
        &h,
        &["nell.v2.v3", "nell.v4.v3"],
        "TE(semi)",
        true,
        "Table VIIc: fully inductive (Schema Enhanced)",
    );
}
