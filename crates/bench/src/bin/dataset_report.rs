//! Structural report over the benchmark catalogue: the statistics that
//! justify the family profiles (sparsity → empty enclosing subgraphs → NE
//! relevance; density → attention relevance).
//!
//! ```text
//! cargo run --release -p rmpi-bench --bin dataset_report [--full]
//! ```

use rmpi_bench::Harness;
use rmpi_datasets::build_benchmark;
use rmpi_eval::report::Table;
use rmpi_kg::analysis::{degree_histogram, empty_neighborhood_rate, num_components};

fn main() {
    let h = Harness::from_args();
    let names =
        h.filter_datasets(&["wn.v1", "wn.v2", "fb.v1", "fb.v2", "nell.v1", "nell.v2", "nell.v4"]);
    let mut table = Table::new(
        "Benchmark structure report (training graphs)",
        &["dataset", "#T", "avg deg", "components", "empty-sg rate", "deg>=8"],
    );
    for name in names {
        let b = build_benchmark(name, h.scale);
        let g = &b.train.graph;
        let stats = rmpi_kg::GraphStats::of(g);
        let hist = degree_histogram(g, 8);
        let empty = empty_neighborhood_rate(g, 2, 7);
        table.add_row(vec![
            name.to_string(),
            stats.num_triples.to_string(),
            format!("{:.2}", stats.avg_degree),
            num_components(g).to_string(),
            format!("{:.1}%", empty * 100.0),
            hist[8].to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "empty-sg rate = fraction of sampled triples whose 2-hop enclosing subgraph is empty;"
    );
    println!("the wn family should score highest (NE module territory), fb lowest.");
}
