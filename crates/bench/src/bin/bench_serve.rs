//! Latency/throughput report for the inference service.
//!
//! Measures, on a fixed batch of test-split queries against one engine:
//! cold-cache batch latency (every subgraph freshly extracted), warm-cache
//! batch latency (every subgraph served from the LRU), uncached batch
//! latency (cache disabled — the steady-state cost without the cache), and
//! warm-cache throughput at each thread count, plus the work a cold batch
//! actually does (extraction edges/entities from the `rmpi-obs` counters,
//! kernel FLOPs/bytes from `rmpi_autograd::counters`) so latency deltas can
//! be checked against constant work. Writes `BENCH_serve.json` in the
//! working directory.
//!
//! ```text
//! cargo run --release -p rmpi-bench --bin bench_serve [--threads 1,2,4,8]
//! ```

use rmpi_core::{RmpiConfig, RmpiModel};
use rmpi_datasets::{build_benchmark, Scale};
use rmpi_kg::Triple;
use rmpi_obs::json::{array, JsonObject};
use rmpi_serve::{Engine, EngineConfig};
use std::time::Instant;

const BATCH: usize = 96;
const REPS: usize = 3;
/// Warm-throughput batch calls per thread count: one `serve.score.us`
/// sample each, so the reported percentiles rest on ≥100 samples.
const WARM_SAMPLES: usize = 120;
const SEED: u64 = 17;

/// Best-of-`REPS` seconds to score `targets` once. `prepare` runs before
/// every rep (e.g. clearing the cache for cold runs).
fn time_batch(engine: &Engine, targets: &[Triple], prepare: impl Fn(&Engine)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        prepare(engine);
        let t0 = Instant::now();
        engine.score_batch(targets).expect("score batch");
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let thread_counts: Vec<usize> = match args.iter().position(|a| a == "--threads") {
        Some(i) => args[i + 1]
            .split(',')
            .map(|s| s.trim().parse().expect("--threads takes a comma-separated list"))
            .collect(),
        None => vec![1, 2, 4, 8],
    };

    let b = build_benchmark("nell.v1", Scale::Quick);
    let test = b.test("TE").expect("TE split");
    let model = RmpiModel::new(
        RmpiConfig { dim: 16, ne: true, ..RmpiConfig::base() },
        b.num_relations(),
        1,
    );
    let targets: Vec<Triple> = test.targets.iter().copied().cycle().take(BATCH).collect();

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("serve latency/throughput, batch of {BATCH}, best of {REPS}, {cores} core(s)");

    // cold vs warm vs uncached, single-threaded so the cache effect is not
    // confounded with parallel speedup
    let make = |cache: usize, threads: usize| {
        Engine::new(
            model.clone(),
            test.graph.clone(),
            EngineConfig { seed: SEED, cache_capacity: cache, threads },
        )
    };
    let engine = make(8192, 1);
    let cold = time_batch(&engine, &targets, |e| e.clear_cache());
    engine.clear_cache();
    engine.score_batch(&targets).expect("cache warmup");
    let warm = time_batch(&engine, &targets, |_| {});
    let uncached = time_batch(&make(0, 1), &targets, |_| {});

    // work accounting for exactly one cold batch: extraction size from the
    // global obs counters, kernel traffic from the autograd counters
    engine.clear_cache();
    rmpi_obs::global().reset();
    rmpi_autograd::counters::reset();
    engine.score_batch(&targets).expect("instrumented cold batch");
    let kc = rmpi_autograd::counters::snapshot();
    let extract_edges = rmpi_obs::global().counter("core.extract.edges").get();
    let extract_entities = rmpi_obs::global().counter("core.extract.entities").get();

    let cold_ms = cold * 1e3;
    let warm_ms = warm * 1e3;
    let uncached_ms = uncached * 1e3;
    println!("  cold-cache  {cold_ms:8.1} ms/batch");
    println!("  warm-cache  {warm_ms:8.1} ms/batch  ({:.2}x vs cold)", cold / warm);
    println!("  uncached    {uncached_ms:8.1} ms/batch");
    println!(
        "  cold batch work: {extract_edges} edges, {extract_entities} entities, \
         {:.1} MFLOP, {:.1} MB",
        kc.flops as f64 / 1e6,
        kc.bytes as f64 / 1e6
    );

    // warm-cache throughput vs thread count; per-call latency percentiles
    // come from each engine's own metrics registry
    let mut rows = Vec::new();
    let mut base_rate = None;
    for &threads in &thread_counts {
        // fresh engine (fresh registry) per thread count, reset after the
        // warmup call, then WARM_SAMPLES timed calls — the percentiles in
        // score_call_us describe exactly this run, nothing before it
        let engine = make(8192, threads);
        engine.score_batch(&targets).expect("warmup");
        engine.stats().registry().reset();
        let t0 = Instant::now();
        for _ in 0..WARM_SAMPLES {
            engine.score_batch(&targets).expect("warm batch");
        }
        let secs = t0.elapsed().as_secs_f64() / WARM_SAMPLES as f64;
        let rate = BATCH as f64 / secs;
        let base = *base_rate.get_or_insert(rate);
        println!("  threads={threads:<2} {rate:8.1} scores/sec  ({:.2}x)", rate / base);
        let mut row = JsonObject::new();
        row.field_u64("threads", threads as u64);
        row.field_u64("samples", WARM_SAMPLES as u64);
        row.field_f64("seconds", secs, 4);
        row.field_f64("scores_per_sec", rate, 1);
        row.field_f64("speedup", rate / base, 3);
        row.field_raw("score_call_us", &engine.stats().score_latency.summary_json());
        rows.push(row.finish());
    }

    let mut out = JsonObject::new();
    out.field_str("bench", "serve");
    out.field_u64("cores", cores as u64);
    out.field_u64("batch", BATCH as u64);
    out.field_f64("cold_ms", cold_ms, 3);
    out.field_f64("warm_ms", warm_ms, 3);
    out.field_f64("uncached_ms", uncached_ms, 3);
    out.field_f64("warm_speedup_vs_cold", cold / warm, 3);
    let mut work = JsonObject::new();
    work.field_u64("extract_edges", extract_edges);
    work.field_u64("extract_entities", extract_entities);
    work.field_u64("kernel_flops", kc.flops);
    work.field_u64("kernel_bytes", kc.bytes);
    out.field_raw("cold_batch_work", &work.finish());
    out.field_raw("warm_throughput", &array(&rows));
    let json = format!("{}\n", out.finish());
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
