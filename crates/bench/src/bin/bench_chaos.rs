//! Availability and tail latency of the resilient client under injected
//! network faults.
//!
//! Spins up one inference server per fault rate, puts a seeded
//! [`ChaosProxy`] in front of it, and drives `SCORE` requests through an
//! `rmpi-client` with retries enabled. Reports, per fault rate: availability
//! (fraction of logical requests that succeeded), p50/p99 request latency
//! (retries and backoff included), and the retry count. A final section puts
//! a two-replica `FailoverClient` in front of one replica degraded at the
//! worst fault rate and one healthy replica, to show what failover buys when
//! a replica goes bad. Writes `BENCH_chaos.json`.
//!
//! ```text
//! cargo run --release -p rmpi-bench --bin bench_chaos [--requests 120] [--rates 0.0,0.1,0.25,0.5]
//! ```

use rmpi_client::{
    BackoffConfig, BudgetConfig, Client, ClientConfig, FailoverClient, FailoverConfig,
    ProtocolClient,
};
use rmpi_core::{RmpiConfig, RmpiModel};
use rmpi_datasets::{build_benchmark, Scale};
use rmpi_kg::Triple;
use rmpi_obs::json::{array, JsonObject};
use rmpi_obs::MetricsRegistry;
use rmpi_serve::{serve, Engine, EngineConfig, ServerConfig, ServerHandle};
use rmpi_testutil::chaos::{ChaosConfig, ChaosProxy};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 17;

fn client_config(seed: u64) -> ClientConfig {
    ClientConfig {
        max_retries: 4,
        backoff: BackoffConfig {
            base: Duration::from_millis(2),
            max: Duration::from_millis(50),
            seed,
            ..BackoffConfig::default()
        },
        // the bench measures transport resilience, not budget policy
        budget: BudgetConfig { min_reserve: 1e6, deposit_per_success: 1.0, max_balance: 1e6 },
        ..ClientConfig::default()
    }
}

fn replica(engine: &Arc<Engine>) -> ServerHandle {
    serve(
        Arc::clone(engine),
        ServerConfig {
            workers: 4,
            idle_timeout: Duration::from_millis(200),
            ..ServerConfig::default()
        },
    )
    .expect("server")
}

struct RunStats {
    ok: u64,
    failed: u64,
    p50_us: u64,
    p99_us: u64,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

/// Drive `targets` through `client`, one `SCORE` per request.
fn drive(client: &mut impl ProtocolClient, targets: &[Triple]) -> RunStats {
    let (mut ok, mut failed) = (0u64, 0u64);
    let mut lat_us: Vec<u64> = Vec::with_capacity(targets.len());
    for t in targets {
        let t0 = Instant::now();
        match client.score(t.head.0, t.relation.0, t.tail.0) {
            Ok(_) => {
                ok += 1;
                lat_us.push(t0.elapsed().as_micros() as u64);
            }
            Err(_) => failed += 1,
        }
    }
    lat_us.sort_unstable();
    RunStats { ok, failed, p50_us: percentile(&lat_us, 0.50), p99_us: percentile(&lat_us, 0.99) }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let requests: usize = match args.iter().position(|a| a == "--requests") {
        Some(i) => args[i + 1].parse().expect("--requests takes a count"),
        None => 120,
    };
    let rates: Vec<f64> = match args.iter().position(|a| a == "--rates") {
        Some(i) => args[i + 1]
            .split(',')
            .map(|s| s.trim().parse().expect("--rates takes a comma-separated list"))
            .collect(),
        None => vec![0.0, 0.1, 0.25, 0.5],
    };

    let b = build_benchmark("nell.v1", Scale::Quick);
    let test = b.test("TE").expect("TE split");
    let model = RmpiModel::new(
        RmpiConfig { dim: 16, ne: true, ..RmpiConfig::base() },
        b.num_relations(),
        1,
    );
    let targets: Vec<Triple> = test.targets.iter().copied().cycle().take(requests).collect();
    let engine = Arc::new(Engine::new(
        model,
        test.graph.clone(),
        EngineConfig { seed: SEED, cache_capacity: 8192, threads: 2 },
    ));
    engine.score_batch(&targets).expect("warmup");

    println!("chaos bench: {requests} SCORE requests per fault rate, retries ≤ 4");
    let mut rows = Vec::new();
    for (i, &rate) in rates.iter().enumerate() {
        let server = replica(&engine);
        let proxy = ChaosProxy::spawn(
            server.addr(),
            ChaosConfig { seed: SEED + i as u64, fault_rate: rate, ..Default::default() },
        )
        .expect("proxy");
        let registry = Arc::new(MetricsRegistry::new());
        let mut client = Client::with_registry(proxy.addr(), client_config(SEED), registry);
        let run = drive(&mut client, &targets);
        let retries = client.stats().retries.get();
        let availability = run.ok as f64 / (run.ok + run.failed) as f64;
        println!(
            "  rate={rate:<5} availability={:6.2}%  p50={:6}us  p99={:7}us  retries={retries}",
            availability * 100.0,
            run.p50_us,
            run.p99_us,
        );
        let mut row = JsonObject::new();
        row.field_f64("fault_rate", rate, 3);
        row.field_f64("availability", availability, 5);
        row.field_u64("ok", run.ok);
        row.field_u64("failed", run.failed);
        row.field_u64("p50_us", run.p50_us);
        row.field_u64("p99_us", run.p99_us);
        row.field_u64("retries", retries);
        row.field_u64("proxy_connections", proxy.stats().connections());
        row.field_u64("proxy_faults", proxy.stats().faults_injected());
        rows.push(row.finish());
    }

    // one replica degraded at the worst fault rate, one healthy replica to
    // fail over to: availability should recover toward 100% as the breaker
    // steers traffic off the bad replica
    let worst = rates.iter().copied().fold(0.0f64, f64::max);
    let (server_a, server_b) = (replica(&engine), replica(&engine));
    let proxy_a = ChaosProxy::spawn(
        server_a.addr(),
        ChaosConfig { seed: SEED + 100, fault_rate: worst, ..Default::default() },
    )
    .expect("proxy a");
    let proxy_b = ChaosProxy::spawn(
        server_b.addr(),
        ChaosConfig { seed: SEED + 101, fault_rate: 0.0, ..Default::default() },
    )
    .expect("proxy b");
    let registry = Arc::new(MetricsRegistry::new());
    // breaker cooldown must be coverable by the retry policy's waits
    // (max_retries × backoff.max), or a double-trip turns into fail-fast
    // errors instead of a short latency bump
    let mut failover = FailoverClient::with_registry(
        vec![proxy_a.addr(), proxy_b.addr()],
        FailoverConfig {
            client: client_config(SEED),
            breaker: rmpi_client::BreakerConfig {
                trip_after: 3,
                cooldown: Duration::from_millis(100),
            },
        },
        registry,
    );
    let run = drive(&mut failover, &targets);
    let availability = run.ok as f64 / (run.ok + run.failed) as f64;
    println!(
        "  failover (bad replica rate={worst}, healthy standby) availability={:6.2}%  p50={:6}us  p99={:7}us  failovers={}",
        availability * 100.0,
        run.p50_us,
        run.p99_us,
        failover.stats().failovers.get(),
    );
    let mut fo = JsonObject::new();
    fo.field_f64("fault_rate", worst, 3);
    fo.field_f64("availability", availability, 5);
    fo.field_u64("p50_us", run.p50_us);
    fo.field_u64("p99_us", run.p99_us);
    fo.field_u64("failovers", failover.stats().failovers.get());
    fo.field_u64("breaker_trips", failover.stats().breaker_open.get());

    let mut out = JsonObject::new();
    out.field_str("bench", "chaos");
    out.field_u64("requests", requests as u64);
    out.field_raw("by_fault_rate", &array(&rows));
    out.field_raw("failover_two_replicas", &fo.finish());
    let json = format!("{}\n", out.finish());
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("wrote BENCH_chaos.json");
}
