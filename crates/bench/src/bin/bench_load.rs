//! Edge-under-concurrency load report: the serving benchmark that measures
//! the wire front end instead of the engine.
//!
//! Three phases against one warm engine on this box:
//!
//! 1. **Closed-loop curves** — throughput and p50/p99 latency vs
//!    concurrency for three client modes over a non-batching server: the v1
//!    one-connection-per-request path (`oneshot_request`), one pipelined
//!    [`Session`] per thread issuing serial requests, and one session per
//!    thread issuing pipelined 16-deep bursts (`score_many`). The headline
//!    numbers are `session_speedup_at_8` and `pipelined_speedup_at_8`:
//!    warm scores/sec at concurrency 8 relative to oneshot — the pipelined
//!    figure is what the multiplexed edge buys.
//! 2. **Open-loop bursts** — concurrent pipelined bursts from 8 sessions
//!    into a *batching* server, then the micro-batcher's own histograms
//!    (`serve.batch_size.count`, `serve.batch_wait.us`) read back as
//!    evidence that cross-connection coalescing actually happens
//!    (`batch_size_mean` > 1).
//! 3. **Fault-rate dimension** — the session-backed retrying [`Client`]
//!    driven through a [`ChaosProxy`] at increasing fault rates, reporting
//!    throughput and success rate as the wire degrades.
//!
//! Writes `BENCH_load.json` in the working directory.
//!
//! ```text
//! cargo run --release -p rmpi-bench --bin bench_load [--smoke]
//! ```
//!
//! `--smoke` shrinks every request count so the whole report runs in a few
//! seconds (used by `scripts/verify.sh` as a wiring check, not a benchmark).

use rmpi_client::{oneshot_request, Client, ClientConfig, ProtocolClient, Session};
use rmpi_core::{RmpiConfig, RmpiModel};
use rmpi_datasets::{build_benchmark, Scale};
use rmpi_kg::Triple;
use rmpi_obs::json::{array, JsonObject};
use rmpi_obs::{Histogram, MetricsRegistry};
use rmpi_serve::{serve, Engine, EngineConfig, ServerConfig, ServerHandle};
use rmpi_testutil::chaos::{ChaosConfig, ChaosProxy};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 17;
const CONCURRENCIES: [usize; 4] = [1, 2, 4, 8];
const BURST: usize = 16;
const FAULT_RATES: [f64; 3] = [0.0, 0.15, 0.3];

/// Per-phase request counts, shrunk by `--smoke`.
struct LoadShape {
    /// Closed-loop requests per thread per (mode, concurrency) cell.
    reqs_per_thread: usize,
    /// Pipelined `BURST`-deep bursts per thread in the open-loop phase.
    burst_rounds: usize,
    /// Requests per thread per fault rate in the chaos phase.
    chaos_reqs: usize,
}

fn client_cfg() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Duration::from_secs(5),
        ..ClientConfig::default()
    }
}

fn start_server(engine: Arc<Engine>, batching: bool) -> ServerHandle {
    serve(
        engine,
        ServerConfig {
            workers: 12,
            queue_capacity: 64,
            max_connections: 64,
            batching,
            batch_window: Duration::from_millis(1),
            batch_max: 64,
            ..ServerConfig::default()
        },
    )
    .expect("bind load server")
}

/// Run `threads` copies of `body` (each told its thread index) and return
/// the wall-clock seconds for all of them to finish. `body` returns how
/// many scores it produced; the total is accumulated into `done`.
fn run_closed_loop(threads: usize, done: &AtomicU64, body: impl Fn(usize) -> u64 + Sync) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let body = &body;
            let done = &done;
            s.spawn(move || {
                done.fetch_add(body(t), Ordering::Relaxed);
            });
        }
    });
    t0.elapsed().as_secs_f64()
}

/// One closed-loop cell: `reqs` warm scores per thread in `mode` at the
/// given concurrency. Returns a JSON row and the scores/sec rate.
fn closed_loop_cell(
    addr: SocketAddr,
    mode: &str,
    threads: usize,
    reqs: usize,
    triples: &[Triple],
) -> (String, f64) {
    let cfg = client_cfg();
    let latency = Histogram::detached();
    let done = AtomicU64::new(0);
    let secs = run_closed_loop(threads, &done, |t| {
        let mut produced = 0u64;
        match mode {
            "oneshot" => {
                for i in 0..reqs {
                    let q = triples[(t + i) % triples.len()];
                    let line = format!("SCORE {} {} {}", q.head.0, q.relation.0, q.tail.0);
                    let r0 = Instant::now();
                    oneshot_request(addr, &cfg, &line).expect("oneshot score");
                    latency.record_duration(r0.elapsed());
                    produced += 1;
                }
            }
            "session" => {
                let session = Session::connect(addr, &cfg).expect("connect session");
                for i in 0..reqs {
                    let q = triples[(t + i) % triples.len()];
                    let r0 = Instant::now();
                    session.score(q.head.0, q.relation.0, q.tail.0).expect("session score");
                    latency.record_duration(r0.elapsed());
                    produced += 1;
                }
            }
            "pipelined" => {
                let session = Session::connect(addr, &cfg).expect("connect session");
                for round in 0..reqs.div_ceil(BURST) {
                    let burst: Vec<(u32, u32, u32)> = (0..BURST)
                        .map(|j| {
                            let q = triples[(t + round * BURST + j) % triples.len()];
                            (q.head.0, q.relation.0, q.tail.0)
                        })
                        .collect();
                    let r0 = Instant::now();
                    let scores = session.score_many(&burst).expect("pipelined scores");
                    // burst latency amortised over its scores, so the
                    // percentiles stay comparable across modes
                    let each = r0.elapsed() / BURST as u32;
                    for _ in &scores {
                        latency.record_duration(each);
                    }
                    produced += scores.len() as u64;
                }
            }
            other => panic!("unknown mode {other}"),
        }
        produced
    });
    let rate = done.load(Ordering::Relaxed) as f64 / secs;
    println!(
        "  {mode:<9} c={threads:<2} {rate:9.1} scores/sec  p50 {:>6} us  p99 {:>6} us",
        latency.percentile(0.50),
        latency.percentile(0.99)
    );
    let mut row = JsonObject::new();
    row.field_str("mode", mode);
    row.field_u64("concurrency", threads as u64);
    row.field_u64("requests", done.load(Ordering::Relaxed));
    row.field_f64("scores_per_sec", rate, 1);
    row.field_u64("p50_us", latency.percentile(0.50));
    row.field_u64("p99_us", latency.percentile(0.99));
    (row.finish(), rate)
}

/// Open-loop-style burst storm into the batching server: 8 sessions all
/// keep `BURST` requests in flight, so arrivals overlap across connections
/// and the micro-batcher has company to coalesce.
fn open_loop_phase(
    addr: SocketAddr,
    registry: &Arc<MetricsRegistry>,
    rounds: usize,
    triples: &[Triple],
) -> String {
    registry.reset();
    let done = AtomicU64::new(0);
    let secs = run_closed_loop(8, &done, |t| {
        let session = Session::connect(addr, &client_cfg()).expect("connect session");
        let mut produced = 0u64;
        for round in 0..rounds {
            let burst: Vec<(u32, u32, u32)> = (0..BURST)
                .map(|j| {
                    let q = triples[(t + round * BURST + j) % triples.len()];
                    (q.head.0, q.relation.0, q.tail.0)
                })
                .collect();
            produced += session.score_many(&burst).expect("burst scores").len() as u64;
        }
        produced
    });
    let size = registry.histogram("serve.batch_size.count");
    let wait = registry.histogram("serve.batch_wait.us");
    let mean = if size.count() == 0 { 0.0 } else { size.sum() as f64 / size.count() as f64 };
    let rate = done.load(Ordering::Relaxed) as f64 / secs;
    println!(
        "  open-loop  {rate:9.1} scores/sec  batch mean {mean:.2} (max {}), wait p99 {} us",
        size.max(),
        wait.percentile(0.99)
    );
    assert!(
        mean > 1.0,
        "micro-batcher never coalesced: batch_size mean {mean:.2} over {} flushes",
        size.count()
    );
    let mut row = JsonObject::new();
    row.field_u64("sessions", 8);
    row.field_u64("requests", done.load(Ordering::Relaxed));
    row.field_f64("scores_per_sec", rate, 1);
    row.field_f64("batch_size_mean", mean, 3);
    row.field_u64("batch_size_max", size.max());
    row.field_u64("batches", size.count());
    row.field_raw("batch_wait_us", &wait.summary_json());
    row.finish()
}

/// One fault-rate cell: the retrying session-backed `Client` through a
/// chaos proxy; errors are tolerated and counted, wrong answers are not.
fn chaos_cell(upstream: SocketAddr, fault_rate: f64, reqs: usize, triples: &[Triple]) -> String {
    let mut proxy =
        ChaosProxy::spawn(upstream, ChaosConfig { seed: 99, fault_rate, ..ChaosConfig::default() })
            .expect("spawn chaos proxy");
    let registry = Arc::new(MetricsRegistry::new());
    let ok = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let done = AtomicU64::new(0);
    let secs = run_closed_loop(4, &done, |t| {
        let mut client = Client::with_registry(proxy.addr(), client_cfg(), Arc::clone(&registry));
        for i in 0..reqs {
            let q = triples[(t + i) % triples.len()];
            match client.score(q.head.0, q.relation.0, q.tail.0) {
                Ok(_) => ok.fetch_add(1, Ordering::Relaxed),
                Err(_) => failed.fetch_add(1, Ordering::Relaxed),
            };
        }
        reqs as u64
    });
    let (ok, failed) = (ok.load(Ordering::Relaxed), failed.load(Ordering::Relaxed));
    let success = ok as f64 / (ok + failed) as f64;
    let rate = ok as f64 / secs;
    println!(
        "  fault={fault_rate:<5} {rate:9.1} ok scores/sec  success {:.1}%  retries {}",
        success * 100.0,
        registry.counter("client.retries.count").get()
    );
    let mut row = JsonObject::new();
    row.field_f64("fault_rate", fault_rate, 2);
    row.field_u64("concurrency", 4);
    row.field_u64("ok", ok);
    row.field_u64("failed", failed);
    row.field_f64("success_rate", success, 4);
    row.field_f64("ok_scores_per_sec", rate, 1);
    row.field_u64("retries", registry.counter("client.retries.count").get());
    row.field_u64("sessions_opened", registry.counter("client.sessions.count").get());
    row.field_u64("faults_injected", proxy.stats().faults_injected());
    let out = row.finish();
    proxy.shutdown();
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shape = if smoke {
        LoadShape { reqs_per_thread: 16, burst_rounds: 6, chaos_reqs: 12 }
    } else {
        LoadShape { reqs_per_thread: 150, burst_rounds: 60, chaos_reqs: 100 }
    };

    let b = build_benchmark("nell.v1", Scale::Quick);
    let test = b.test("TE").expect("TE split");
    // a deliberately small model: the edge benchmark wants the wire and
    // dispatch cost visible, not buried under per-score kernel work
    let model = RmpiModel::new(
        RmpiConfig { dim: 4, num_layers: 1, hop: 1, max_subgraph_edges: 64, ..RmpiConfig::base() },
        b.num_relations(),
        1,
    );
    // a small pool of distinct queries: enough variety to exercise demuxing,
    // few enough that the subgraph cache stays warm after one pass
    let triples: Vec<Triple> = test.targets.iter().copied().take(24).collect();

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "edge load report, {} triples, {cores} core(s){}",
        triples.len(),
        if smoke { ", smoke shape" } else { "" }
    );

    let make_engine = || {
        let engine = Arc::new(Engine::new(
            model.clone(),
            test.graph.clone(),
            EngineConfig { seed: SEED, cache_capacity: 8192, threads: 1 },
        ));
        engine.score_batch(&triples).expect("cache warmup");
        engine
    };

    // phase 1: closed-loop curves over a NON-batching server, so the
    // oneshot/session comparison isolates the connection path (batching
    // would add its coalescing window to both modes equally)
    println!("closed-loop, batching off:");
    let edge_engine = make_engine();
    let mut edge = start_server(Arc::clone(&edge_engine), false);
    let mut curves = Vec::new();
    let mut rate_at = |mode: &str, threads: usize| {
        let (row, rate) =
            closed_loop_cell(edge.addr(), mode, threads, shape.reqs_per_thread, &triples);
        curves.push(row);
        rate
    };
    let mut oneshot_at_8 = 0.0;
    let mut session_at_8 = 0.0;
    let mut pipelined_at_8 = 0.0;
    for mode in ["oneshot", "session", "pipelined"] {
        for threads in CONCURRENCIES {
            let rate = rate_at(mode, threads);
            if threads == 8 {
                match mode {
                    "oneshot" => oneshot_at_8 = rate,
                    "session" => session_at_8 = rate,
                    _ => pipelined_at_8 = rate,
                }
            }
        }
    }
    let session_speedup = session_at_8 / oneshot_at_8;
    let pipelined_speedup = pipelined_at_8 / oneshot_at_8;
    println!(
        "  speedup at c=8 vs oneshot: session {session_speedup:.2}x, \
         pipelined {pipelined_speedup:.2}x"
    );

    // phase 2: open-loop bursts against a BATCHING server; read the
    // batcher's histograms back out of the engine's registry
    println!("open-loop bursts, batching on (window 1ms, budget 64):");
    let batch_engine = make_engine();
    let mut batching = start_server(Arc::clone(&batch_engine), true);
    let open_loop = open_loop_phase(
        batching.addr(),
        &Arc::clone(batch_engine.stats().registry()),
        shape.burst_rounds,
        &triples,
    );
    batching.shutdown();

    // phase 3: the retry stack over sessions as the wire degrades
    println!("fault-rate dimension, retrying client at c=4:");
    let chaos_rows: Vec<String> = FAULT_RATES
        .iter()
        .map(|&rate| chaos_cell(edge.addr(), rate, shape.chaos_reqs, &triples))
        .collect();
    edge.shutdown();

    let mut out = JsonObject::new();
    out.field_str("bench", "load");
    out.field_u64("cores", cores as u64);
    out.field_bool("smoke", smoke);
    out.field_u64("reqs_per_thread", shape.reqs_per_thread as u64);
    out.field_f64("session_speedup_at_8", session_speedup, 3);
    out.field_f64("pipelined_speedup_at_8", pipelined_speedup, 3);
    out.field_raw("closed_loop", &array(&curves));
    out.field_raw("open_loop", &open_loop);
    out.field_raw("fault_dimension", &array(&chaos_rows));
    let json = format!("{}\n", out.finish());
    std::fs::write("BENCH_load.json", &json).expect("write BENCH_load.json");
    println!("wrote BENCH_load.json");
}
