//! Offline integrity scrub for on-disk artifacts.
//!
//! Points at either a graph store directory (`MANIFEST` + `index.bin` +
//! segments) or a bundle directory (`BUNDLE` + `params.bundle` + `graph/`)
//! and re-verifies every section against its manifest: sizes, whole-file
//! checksums, and — for v2 store manifests — every per-block checksum,
//! reporting block-precise byte ranges for damage. Unlike the serving
//! reader, the scrub keeps going after the first problem so one pass lists
//! *all* bad sections.
//!
//! ```text
//! cargo run --release -p rmpi-bench --bin rmpi_scrub -- <store-or-bundle-dir>
//! ```
//!
//! Exit status: 0 every section clean, 1 damage found, 2 usage error or
//! the path is not a recognisable artifact.

use rmpi_store::ScrubReport;
use std::path::Path;
use std::process::ExitCode;

fn print_report(report: &ScrubReport) {
    for s in &report.sections {
        match &s.error {
            None if s.blocks_checked > 0 => {
                println!(
                    "ok       {:<28} {:>10} bytes, {} block sums",
                    s.file, s.bytes, s.blocks_checked
                )
            }
            None => println!("ok       {:<28} {:>10} bytes", s.file, s.bytes),
            Some(e) => println!("CORRUPT  {:<28} {e}", s.file),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let Some(path) = args.get(1).filter(|a| !a.starts_with('-')) else {
        eprintln!("usage: rmpi_scrub <store-or-bundle-dir>");
        return ExitCode::from(2);
    };
    let dir = Path::new(path);

    let (kind, outcome) = if dir.join(rmpi_serve::DIR_MANIFEST_NAME).is_file() {
        ("bundle", rmpi_serve::scrub_bundle_dir(dir).map_err(|e| e.to_string()))
    } else {
        ("store", rmpi_store::scrub_store(dir).map_err(|e| e.to_string()))
    };
    let report = match outcome {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rmpi_scrub: {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    };

    println!("scrubbing {kind} {}", dir.display());
    print_report(&report);
    let bad = report.corrupt_sections().len();
    if bad == 0 {
        println!("clean: {} section(s) verified", report.sections.len());
        ExitCode::SUCCESS
    } else {
        println!("CORRUPT: {bad}/{} section(s) damaged", report.sections.len());
        ExitCode::from(1)
    }
}
