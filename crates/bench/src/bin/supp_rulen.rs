//! Supplementary experiment: the rule-mining baseline the paper *omits*
//! ("comparisons with traditional rule learning based methods are omitted as
//! the poorer results than GraIL as reported in GraIL's paper") — verify that claim
//! holds on our benchmarks by pitting RuleN-lite against GraIL and RMPI-base.
//!
//! ```text
//! cargo run --release -p rmpi-bench --bin supp_rulen [--full]
//! ```

use rmpi_baselines::rulen::{MiningConfig, RuleNModel};
use rmpi_bench::{run_cell, Harness, MethodSpec};
use rmpi_datasets::build_benchmark;
use rmpi_eval::protocol::{evaluate, EvalConfig};
use rmpi_eval::report::{fmt_metric, Table};

fn main() {
    let h = Harness::from_args();
    let datasets = h.filter_datasets(&["nell.v1", "wn.v1", "fb.v1"]);

    let mut table = Table::new(
        "Supplementary: rule mining vs subgraph GNNs (partially inductive)",
        &["dataset", "method", "AUC-PR", "MRR", "Hits@10"],
    );
    for name in &datasets {
        let b = build_benchmark(name, h.scale);

        // RuleN: mine on the training graph, apply rules in the test graph
        let rulen = RuleNModel::mine(&b.train.graph, &MiningConfig::default());
        eprintln!("[supp_rulen] mined {} rules on {name}", rulen.num_rules());
        let test = b.test("TE").expect("TE");
        let ec = EvalConfig { seed: h.eval.seed, ..h.eval };
        let m = evaluate(&rulen, test, &ec);
        table.add_row(vec![
            name.to_string(),
            "RuleN".into(),
            fmt_metric(m.auc_pr),
            fmt_metric(m.mrr),
            fmt_metric(m.hits10),
        ]);

        for method in h.filter_methods(&[MethodSpec::Grail, MethodSpec::RMPI_BASE]) {
            eprintln!("[supp_rulen] {} on {name}", method.name());
            let out = run_cell(method, &b, &["TE"], &h);
            let s = &out["TE"].mean;
            table.add_row(vec![
                name.to_string(),
                method.name(),
                fmt_metric(s.auc_pr),
                fmt_metric(s.mrr),
                fmt_metric(s.hits10),
            ]);
        }
    }
    println!("{}", table.render());
    println!("expected shape (paper §IV-C): mined rules capture the planted regularities but");
    println!("lose to subgraph GNNs once noise, partial closure and empty subgraphs matter.");
}
