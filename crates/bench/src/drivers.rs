//! Shared drivers for experiment binaries that differ only in parameters
//! (Tables II and III share one driver; the MaKEr comparisons share another).

use crate::{run_cell, Harness, MethodSpec};
use rmpi_datasets::build_benchmark;
use rmpi_eval::report::{fmt_metric, Table};

/// Driver for Tables II/III: fully inductive evaluation on `test_set`
/// (`"TE(semi)"` or `"TE(fully)"`), part (a) random init on all four
/// datasets, part (b) schema-enhanced on the NELL family.
pub fn run_fully_inductive_table(h: &Harness, test_set: &str, title: &str) {
    let all = ["nell.v1.v3", "nell.v2.v3", "nell.v4.v3", "fb.v1.v4"];
    let datasets = h.filter_datasets(&all);
    let methods = h.filter_methods(&[
        MethodSpec::TactBase { schema: false },
        MethodSpec::RMPI_BASE,
        MethodSpec::RMPI_NE,
    ]);

    let mut part_a = Table::new(
        &format!("{title}a: {test_set}, Random Initialized"),
        &["dataset", "method", "AUC-PR", "MRR", "Hits@10"],
    );
    for name in &datasets {
        let b = build_benchmark(name, h.scale);
        for &m in &methods {
            let out = run_cell(m, &b, &[test_set], h);
            let s = &out[test_set].mean;
            part_a.add_row(vec![
                name.to_string(),
                m.name(),
                fmt_metric(s.auc_pr),
                fmt_metric(s.mrr),
                fmt_metric(s.hits10),
            ]);
        }
    }
    println!("{}", part_a.render());

    let schema_methods: Vec<MethodSpec> = methods
        .iter()
        .map(|m| match m {
            MethodSpec::TactBase { .. } => MethodSpec::TactBase { schema: true },
            MethodSpec::Rmpi { ne, ta, concat, .. } => {
                MethodSpec::Rmpi { ne: *ne, ta: *ta, concat: *concat, schema: true }
            }
            other => *other,
        })
        .collect();
    let mut part_b = Table::new(
        &format!("{title}b: {test_set}, Schema Enhanced (NELL family)"),
        &["dataset", "method", "AUC-PR", "MRR", "Hits@10"],
    );
    for name in datasets.iter().filter(|d| d.starts_with("nell")) {
        let b = build_benchmark(name, h.scale);
        for &m in &schema_methods {
            let out = run_cell(m, &b, &[test_set], h);
            let s = &out[test_set].mean;
            part_b.add_row(vec![
                name.to_string(),
                m.name(),
                fmt_metric(s.auc_pr),
                fmt_metric(s.mrr),
                fmt_metric(s.hits10),
            ]);
        }
    }
    println!("{}", part_b.render());
}

/// Driver for Tables IV/V: MaKEr-style Ext benchmarks with the `u_ent` /
/// `u_rel` / `u_both` buckets. `schema` selects the Table V variant.
pub fn run_maker_table(h: &Harness, datasets: &[&str], schema: bool, title: &str) {
    let datasets = h.filter_datasets(datasets);
    let methods = h.filter_methods(&[
        MethodSpec::Maker,
        MethodSpec::Rmpi { ne: false, ta: false, concat: false, schema },
        MethodSpec::Rmpi { ne: true, ta: false, concat: false, schema },
    ]);
    let buckets = ["u_ent", "u_rel", "u_both"];

    let mut table = Table::new(
        title,
        &[
            "dataset",
            "method",
            "u_ent MRR",
            "u_ent H@10",
            "u_rel MRR",
            "u_rel H@10",
            "u_both MRR",
            "u_both H@10",
        ],
    );
    for name in &datasets {
        let b = build_benchmark(name, h.scale);
        for &m in &methods {
            let out = run_cell(m, &b, &buckets, h);
            let mut row = vec![name.to_string(), m.name()];
            for bucket in &buckets {
                let s = &out[*bucket].mean;
                row.push(fmt_metric(s.mrr));
                row.push(fmt_metric(s.hits10));
            }
            table.add_row(row);
        }
    }
    println!("{}", table.render());
}
