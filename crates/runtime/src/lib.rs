//! Dependency-free data-parallel execution layer.
//!
//! RMPI's subgraph-per-triple design makes every hot loop — gradient
//! accumulation over a minibatch, candidate scoring during ranking, subgraph
//! extraction fan-out — embarrassingly parallel across samples. This crate
//! supplies the one substrate they all share:
//!
//! * [`ThreadPool`] — a scoped worker pool (`std::thread::scope`, no
//!   dependencies) with *static contiguous sharding*: item `i` of `n` always
//!   lands on the same shard for a given worker count, and results come back
//!   in index order;
//! * [`mix_seed`] — splitmix64-style seed derivation, so each sample owns an
//!   RNG keyed by `(seed, stream, index)` rather than by arrival order. Any
//!   work schedule — one thread or sixteen — draws identical random streams
//!   per sample, which is what makes parallel training *bit-identical* to
//!   sequential training (see `DESIGN.md`, "Threading model");
//! * [`threads_from_env`] — the `RMPI_THREADS` knob used by the experiment
//!   binaries.

pub mod pool;
pub mod scratch;

pub use pool::{panic_message, PoolError, ThreadPool};
pub use scratch::with_scratch;

/// Resolve a thread-count knob: `0` means one worker per available core.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// Read the `RMPI_THREADS` environment knob (unset or unparsable = 1 thread,
/// `0` = all cores).
pub fn threads_from_env() -> usize {
    std::env::var("RMPI_THREADS").ok().and_then(|v| v.trim().parse().ok()).unwrap_or(1)
}

/// Derive an independent 64-bit seed from `(seed, stream, index)`.
///
/// `stream` separates uses (negative sampling vs. validation vs. epoch
/// shuffling); `index` is the per-sample position. The splitmix64 finaliser
/// decorrelates consecutive indices, so neighbouring samples do not share
/// low-bit structure.
pub fn mix_seed(seed: u64, stream: u64, index: u64) -> u64 {
    let mut z = seed
        ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_zero_uses_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn mixed_seeds_differ_across_all_axes() {
        let base = mix_seed(7, 1, 0);
        assert_ne!(base, mix_seed(8, 1, 0), "seed axis");
        assert_ne!(base, mix_seed(7, 2, 0), "stream axis");
        assert_ne!(base, mix_seed(7, 1, 1), "index axis");
        assert_eq!(base, mix_seed(7, 1, 0), "deterministic");
    }

    #[test]
    fn mixed_seeds_have_no_obvious_collisions() {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..4u64 {
            for i in 0..1000u64 {
                assert!(seen.insert(mix_seed(42, stream, i)), "collision at ({stream}, {i})");
            }
        }
    }
}
