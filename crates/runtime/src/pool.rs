//! Scoped worker pool with static sharding.
//!
//! Built on `std::thread::scope` only: workers borrow the caller's data
//! (models, graphs, parameter stores) immutably, run a contiguous shard of
//! the index space, and write results into disjoint slices of one output
//! vector — no channels, no locks, no work stealing. Static sharding keeps
//! the assignment deterministic, and because all randomness is derived per
//! *index* (see [`crate::mix_seed`]) rather than per worker, results do not
//! depend on the thread count at all.

use crate::resolve_threads;

/// A lightweight handle describing how many workers parallel maps may use.
///
/// The pool is cheap to construct and copy; threads are spawned per call via
/// `std::thread::scope` (scoped threads borrow non-`'static` data, which is
/// what lets workers share `&ParamStore` / `&KnowledgeGraph` directly).
#[derive(Clone, Copy, Debug)]
pub struct ThreadPool {
    workers: usize,
}

impl ThreadPool {
    /// A pool with `threads` workers (`0` = one per available core).
    pub fn new(threads: usize) -> Self {
        ThreadPool { workers: resolve_threads(threads).max(1) }
    }

    /// A single-worker pool (runs everything inline).
    pub fn sequential() -> Self {
        ThreadPool { workers: 1 }
    }

    /// Number of workers parallel maps will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Map `f` over `0..n`, returning results in index order.
    ///
    /// Work is split into at most `workers` contiguous shards. `f` must be
    /// deterministic in its index argument for thread-count invariance.
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_init(n, || (), |(), i| f(i))
    }

    /// Map with per-worker scratch state: `init` runs once per worker and the
    /// resulting state is reused across that worker's whole shard.
    ///
    /// This is what lets each worker reuse one [`Tape`]-like arena for a
    /// whole batch instead of reallocating per sample. Results still come
    /// back in index order and must not depend on how indices were sharded.
    pub fn map_init<T, S, I, F>(&self, n: usize, init: I, f: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n);
        if workers <= 1 {
            let mut state = init();
            return (0..n).map(|i| f(&mut state, i)).collect();
        }

        let chunk = n.div_ceil(workers);
        let mut out: Vec<Option<T>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        std::thread::scope(|scope| {
            for (shard, slots) in out.chunks_mut(chunk).enumerate() {
                let (init, f) = (&init, &f);
                scope.spawn(move || {
                    let mut state = init();
                    let base = shard * chunk;
                    for (offset, slot) in slots.iter_mut().enumerate() {
                        *slot = Some(f(&mut state, base + offset));
                    }
                });
            }
        });
        out.into_iter().map(|slot| slot.expect("pool worker filled every slot")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 3, 4, 7] {
            let pool = ThreadPool::new(threads);
            let out = pool.map_indexed(23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = ThreadPool::new(4);
        assert!(pool.map_indexed(0, |i| i).is_empty());
        assert_eq!(pool.map_indexed(1, |i| i + 10), vec![10]);
        assert_eq!(pool.map_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn init_state_is_per_worker_and_reused() {
        let pool = ThreadPool::new(2);
        // each worker counts how many items it processed via its own state
        let out = pool.map_init(
            10,
            || 0usize,
            |count, i| {
                *count += 1;
                (i, *count)
            },
        );
        // indices are intact and each worker's counter increments within its shard
        for (idx, (i, c)) in out.iter().enumerate() {
            assert_eq!(*i, idx);
            assert!(*c >= 1 && *c <= 10);
        }
        let total: usize = out.iter().filter(|(_, c)| *c == 1).count();
        assert_eq!(total, 2, "exactly one state reset per worker");
    }

    #[test]
    fn workers_capped_by_items() {
        let pool = ThreadPool::new(16);
        assert_eq!(pool.workers(), 16);
        let out = pool.map_indexed(2, |i| i);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn zero_resolves_to_available_cores() {
        assert!(ThreadPool::new(0).workers() >= 1);
        assert_eq!(ThreadPool::sequential().workers(), 1);
    }
}
