//! Scoped worker pool with static sharding and panic isolation.
//!
//! Built on `std::thread::scope` only: workers borrow the caller's data
//! (models, graphs, parameter stores) immutably, run a contiguous shard of
//! the index space, and write results into disjoint slices of one output
//! vector — no channels, no locks, no work stealing. Static sharding keeps
//! the assignment deterministic, and because all randomness is derived per
//! *index* (see [`crate::mix_seed`]) rather than per worker, results do not
//! depend on the thread count at all.
//!
//! # Panic isolation
//!
//! Every worker closure runs under `catch_unwind`: a panicking task can
//! never detach a thread, abort the process through a poisoned scope, or
//! wedge the caller. The fallible entry points ([`ThreadPool::try_map_init`]
//! / [`ThreadPool::try_map_indexed`]) surface the first panic as a typed
//! [`PoolError`] — every worker still runs its shard to completion or its
//! own panic, and all threads are joined before the error returns. The
//! infallible `map_*` wrappers re-raise the panic on the calling thread,
//! preserving the pre-isolation contract for callers that treat a panic as
//! a bug. The pool itself carries no state that a panic could poison, so it
//! remains fully usable after any failure.

use crate::resolve_threads;
use rmpi_obs::{Counter, Gauge, Histogram};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Handles into the global metrics registry, resolved once per process so
/// the per-map cost is a few relaxed atomic ops, not a name lookup.
struct PoolMetrics {
    /// `pool.maps.count` — parallel map invocations.
    maps: Counter,
    /// `pool.items.count` — total items fanned out across all maps.
    items: Counter,
    /// `pool.panics.count` — worker shard panics caught and surfaced.
    panics: Counter,
    /// `pool.shard_busy.us` — wall-clock busy time of each worker shard.
    shard_busy: Histogram,
    /// `pool.workers.count` — workers used by the most recent map.
    workers: Gauge,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = rmpi_obs::global();
        PoolMetrics {
            maps: reg.counter("pool.maps.count"),
            items: reg.counter("pool.items.count"),
            panics: reg.counter("pool.panics.count"),
            shard_busy: reg.histogram("pool.shard_busy.us"),
            workers: reg.gauge("pool.workers.count"),
        }
    })
}

/// Typed failure from a parallel map: a worker closure panicked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PoolError {
    /// A worker panicked while processing `index`; `message` is the panic
    /// payload (when it was a string).
    WorkerPanicked {
        /// The item index whose closure panicked.
        index: usize,
        /// The panic payload, stringified.
        message: String,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerPanicked { index, message } => {
                write!(f, "worker panicked at item {index}: {message}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Render a `catch_unwind` payload as text (panics carry `&str` or `String`
/// almost always; anything else gets a placeholder).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Failpoint consulted once per worker shard (arm with `panic(..)` or
/// `delay(..)` via `rmpi-testutil` to fault-inject workers).
pub const SHARD_FAILPOINT: &str = "pool::shard";

/// A lightweight handle describing how many workers parallel maps may use.
///
/// The pool is cheap to construct and copy; threads are spawned per call via
/// `std::thread::scope` (scoped threads borrow non-`'static` data, which is
/// what lets workers share `&ParamStore` / `&KnowledgeGraph` directly).
#[derive(Clone, Copy, Debug)]
pub struct ThreadPool {
    workers: usize,
}

impl ThreadPool {
    /// A pool with `threads` workers (`0` = one per available core).
    pub fn new(threads: usize) -> Self {
        ThreadPool { workers: resolve_threads(threads).max(1) }
    }

    /// A single-worker pool (runs everything inline).
    pub fn sequential() -> Self {
        ThreadPool { workers: 1 }
    }

    /// Number of workers parallel maps will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Map `f` over `0..n`, returning results in index order.
    ///
    /// Work is split into at most `workers` contiguous shards. `f` must be
    /// deterministic in its index argument for thread-count invariance.
    /// Panics in `f` are re-raised on the calling thread after every worker
    /// has been joined; use [`ThreadPool::try_map_indexed`] for a typed
    /// error instead.
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_init(n, || (), |(), i| f(i))
    }

    /// Panic-isolating variant of [`ThreadPool::map_indexed`].
    pub fn try_map_indexed<T, F>(&self, n: usize, f: F) -> Result<Vec<T>, PoolError>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.try_map_init(n, || (), |(), i| f(i))
    }

    /// Map with per-worker scratch state: `init` runs once per worker and the
    /// resulting state is reused across that worker's whole shard.
    ///
    /// This is what lets each worker reuse one [`Tape`]-like arena for a
    /// whole batch instead of reallocating per sample. Results still come
    /// back in index order and must not depend on how indices were sharded.
    /// Panics in `init`/`f` are re-raised on the calling thread after every
    /// worker has been joined.
    pub fn map_init<T, S, I, F>(&self, n: usize, init: I, f: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        match self.try_map_init(n, init, f) {
            Ok(out) => out,
            Err(PoolError::WorkerPanicked { index, message }) => {
                panic!("pool worker panicked at item {index}: {message}")
            }
        }
    }

    /// Panic-isolating variant of [`ThreadPool::map_init`]: a panic in any
    /// worker closure is caught, all threads are joined, and the first panic
    /// (by item index) is reported as a [`PoolError`]. Other workers'
    /// results are discarded, so a retry starts from a clean slate.
    pub fn try_map_init<T, S, I, F>(&self, n: usize, init: I, f: F) -> Result<Vec<T>, PoolError>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        if n == 0 {
            return Ok(Vec::new());
        }
        let workers = self.workers.min(n);
        let metrics = pool_metrics();
        metrics.maps.inc();
        metrics.items.add(n as u64);
        metrics.workers.set(workers as i64);
        // collects (item index, panic message) per panicking worker
        let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());

        let run_shard = |slots: &mut [Option<T>], base: usize| {
            let shard_start = Instant::now();
            let caught = catch_unwind(AssertUnwindSafe(|| {
                rmpi_testutil::failpoint::point(SHARD_FAILPOINT);
                let mut state = init();
                for (offset, slot) in slots.iter_mut().enumerate() {
                    // record progress before calling f so a panic is
                    // attributed to the exact item
                    *slot = Some(f(&mut state, base + offset));
                }
            }));
            metrics.shard_busy.record_duration(shard_start.elapsed());
            if let Err(payload) = caught {
                metrics.panics.inc();
                // the first None slot is the item that panicked
                let at = slots.iter().position(Option::is_none).unwrap_or(0);
                panics
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push((base + at, panic_message(payload.as_ref())));
            }
        };

        let mut out: Vec<Option<T>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        if workers <= 1 {
            run_shard(&mut out, 0);
        } else {
            let chunk = n.div_ceil(workers);
            std::thread::scope(|scope| {
                for (shard, slots) in out.chunks_mut(chunk).enumerate() {
                    let run_shard = &run_shard;
                    scope.spawn(move || run_shard(slots, shard * chunk));
                }
            });
        }

        let mut panics = panics.into_inner().unwrap_or_else(|p| p.into_inner());
        if let Some((index, message)) = panics.drain(..).min_by_key(|(i, _)| *i) {
            return Err(PoolError::WorkerPanicked { index, message });
        }
        Ok(out.into_iter().map(|slot| slot.expect("pool worker filled every slot")).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 3, 4, 7] {
            let pool = ThreadPool::new(threads);
            let out = pool.map_indexed(23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = ThreadPool::new(4);
        assert!(pool.map_indexed(0, |i| i).is_empty());
        assert_eq!(pool.map_indexed(1, |i| i + 10), vec![10]);
        assert_eq!(pool.map_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn init_state_is_per_worker_and_reused() {
        let pool = ThreadPool::new(2);
        // each worker counts how many items it processed via its own state
        let out = pool.map_init(
            10,
            || 0usize,
            |count, i| {
                *count += 1;
                (i, *count)
            },
        );
        // indices are intact and each worker's counter increments within its shard
        for (idx, (i, c)) in out.iter().enumerate() {
            assert_eq!(*i, idx);
            assert!(*c >= 1 && *c <= 10);
        }
        let total: usize = out.iter().filter(|(_, c)| *c == 1).count();
        assert_eq!(total, 2, "exactly one state reset per worker");
    }

    #[test]
    fn workers_capped_by_items() {
        let pool = ThreadPool::new(16);
        assert_eq!(pool.workers(), 16);
        let out = pool.map_indexed(2, |i| i);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn zero_resolves_to_available_cores() {
        assert!(ThreadPool::new(0).workers() >= 1);
        assert_eq!(ThreadPool::sequential().workers(), 1);
    }

    #[test]
    fn panicking_item_becomes_typed_error_and_pool_stays_usable() {
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            let err = pool
                .try_map_indexed(17, |i| {
                    if i == 11 {
                        panic!("shard bomb");
                    }
                    i
                })
                .unwrap_err();
            match &err {
                PoolError::WorkerPanicked { index, message } => {
                    assert_eq!(*index, 11, "threads={threads}");
                    assert!(message.contains("shard bomb"), "{message}");
                }
            }
            assert!(err.to_string().contains("item 11"), "{err}");
            // the pool is stateless w.r.t. failures: the very next map works
            let out = pool.try_map_indexed(5, |i| i * 2).unwrap();
            assert_eq!(out, vec![0, 2, 4, 6, 8], "pool must stay usable after a panic");
        }
    }

    #[test]
    fn earliest_panicking_index_wins_across_shards() {
        let pool = ThreadPool::new(4);
        let err = pool
            .try_map_indexed(16, |i| {
                if i % 5 == 4 {
                    panic!("boom {i}");
                }
                i
            })
            .unwrap_err();
        let PoolError::WorkerPanicked { index, .. } = err;
        assert_eq!(index, 4, "the lowest panicking item index must be reported");
    }

    #[test]
    fn map_init_panic_propagates_on_infallible_path() {
        let pool = ThreadPool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_indexed(6, |i| if i == 3 { panic!("legacy contract") } else { i })
        }));
        let msg = panic_message(caught.unwrap_err().as_ref());
        assert!(msg.contains("legacy contract"), "{msg}");
        // ...and the pool is still fine afterwards
        assert_eq!(pool.map_indexed(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn delayed_worker_failpoint_only_slows_not_breaks() {
        use rmpi_testutil::failpoint::{self, Action};
        let _lock = failpoint::exclusive();
        failpoint::arm(SHARD_FAILPOINT, Action::Delay(std::time::Duration::from_millis(5)));
        let out = ThreadPool::new(2).try_map_indexed(4, |i| i).unwrap();
        failpoint::disarm_all();
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pool_records_map_metrics_into_global_registry() {
        // deltas, not absolutes: other tests in this process also drive pools
        let maps_before = pool_metrics().maps.get();
        let items_before = pool_metrics().items.get();
        let busy_before = pool_metrics().shard_busy.count();
        let pool = ThreadPool::new(3);
        pool.map_indexed(12, |i| i);
        assert_eq!(pool_metrics().maps.get() - maps_before, 1);
        assert_eq!(pool_metrics().items.get() - items_before, 12);
        assert!(pool_metrics().shard_busy.count() > busy_before, "shards were timed");
        assert!(rmpi_obs::global().contains("pool.workers.count"));
    }

    #[test]
    fn pool_counts_caught_panics() {
        let before = pool_metrics().panics.get();
        let pool = ThreadPool::new(2);
        let _ = pool.try_map_indexed(8, |i| if i == 5 { panic!("bomb") } else { i });
        assert!(pool_metrics().panics.get() > before);
    }

    #[test]
    fn registry_survives_hammering_from_pool_workers() {
        // concurrency smoke test: every worker creates and records metrics
        // through the registry at once; nothing is lost or deadlocked
        let reg = std::sync::Arc::new(rmpi_obs::MetricsRegistry::new());
        let pool = ThreadPool::new(4);
        let n = 400;
        pool.map_indexed(n, |i| {
            let c = reg.counter("smoke.events.count");
            let h = reg.histogram("smoke.lat.us");
            let g = reg.gauge("smoke.depth.count");
            c.inc();
            h.record(i as u64);
            g.set(i as i64);
        });
        assert_eq!(reg.counter("smoke.events.count").get(), n as u64);
        let s = reg.histogram("smoke.lat.us").summary();
        assert_eq!(s.count, n as u64);
        assert_eq!(s.max, (n - 1) as u64);
        assert_eq!(s.sum, (0..n as u64).sum::<u64>());
        let json = reg.to_json();
        assert!(json.contains("\"smoke.events.count\": 400"), "{json}");
    }

    #[test]
    fn panicking_worker_failpoint_is_isolated() {
        use rmpi_testutil::failpoint::{self, Action};
        let _lock = failpoint::exclusive();
        // second shard hit panics: with 2 workers that is one whole shard
        failpoint::arm_after(SHARD_FAILPOINT, Action::Panic("injected shard panic".into()), 1);
        let err = ThreadPool::new(2).try_map_indexed(8, |i| i).unwrap_err();
        failpoint::disarm_all();
        let PoolError::WorkerPanicked { message, .. } = &err;
        assert!(message.contains("injected shard panic"), "{err}");
    }
}
