//! Per-thread reusable scratch buffers, keyed by type.
//!
//! Hot loops (training workers, serving scorers) need working buffers —
//! gradient tables, BFS state, staging vectors — that are expensive to
//! allocate per call but awkward to thread through every signature. This
//! module gives each thread a lazily-created instance of any `Default +
//! 'static` scratch type, looked up by `TypeId`:
//!
//! ```
//! #[derive(Default)]
//! struct MyScratch { buf: Vec<u64> }
//!
//! let n = rmpi_runtime::scratch::with_scratch(|s: &mut MyScratch| {
//!     s.buf.clear();
//!     s.buf.extend(0..4u64);
//!     s.buf.len()
//! });
//! assert_eq!(n, 4);
//! ```
//!
//! Buffers persist for the thread's lifetime, so a pool worker that scores
//! thousands of samples pays each scratch type's allocation once. Because the
//! storage is thread-local there is no synchronisation on the hot path; the
//! only cost per access is one `HashMap<TypeId, _>` probe.
//!
//! Reentrancy: `with_scratch::<T>` panics if called recursively for the same
//! `T` on the same thread (the inner call would alias the outer's `&mut`).
//! Nested calls for *different* types are fine.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;

thread_local! {
    static SCRATCH: RefCell<HashMap<TypeId, Box<dyn Any>>> = RefCell::new(HashMap::new());
}

/// Run `f` with this thread's instance of scratch type `T`, creating it via
/// `Default` on first use. The instance (and whatever capacity it has grown)
/// is retained for subsequent calls on the same thread.
pub fn with_scratch<T: Default + 'static, R>(f: impl FnOnce(&mut T) -> R) -> R {
    SCRATCH.with(|cell| {
        // Take the box out of the map so `f` can itself call `with_scratch`
        // for a different type without hitting the RefCell twice.
        let mut boxed: Box<dyn Any> = {
            let mut map = cell.borrow_mut();
            map.remove(&TypeId::of::<T>()).unwrap_or_else(|| Box::new(T::default()))
        };
        let r = f(boxed.downcast_mut::<T>().expect("scratch type keyed by TypeId"));
        cell.borrow_mut().insert(TypeId::of::<T>(), boxed);
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct A(Vec<u8>);
    #[derive(Default)]
    struct B(String);

    #[test]
    fn scratch_persists_capacity_across_calls() {
        with_scratch(|a: &mut A| {
            a.0.clear();
            a.0.reserve(1024);
        });
        let cap = with_scratch(|a: &mut A| a.0.capacity());
        assert!(cap >= 1024, "capacity {cap} should persist");
    }

    #[test]
    fn different_types_get_different_instances() {
        with_scratch(|a: &mut A| a.0.push(7));
        with_scratch(|b: &mut B| b.0.push('x'));
        let (la, lb) = (with_scratch(|a: &mut A| a.0.len()), with_scratch(|b: &mut B| b.0.len()));
        assert!(la >= 1);
        assert!(lb >= 1);
    }

    #[test]
    fn nested_calls_for_different_types_work() {
        let out = with_scratch(|a: &mut A| {
            a.0.push(1);
            with_scratch(|b: &mut B| {
                b.0.push('y');
                b.0.len()
            }) + a.0.len()
        });
        assert!(out >= 2);
    }

    #[test]
    fn threads_do_not_share_scratch() {
        with_scratch(|a: &mut A| a.0.push(1));
        let other = std::thread::spawn(|| with_scratch(|a: &mut A| a.0.len())).join().unwrap();
        assert_eq!(other, 0, "fresh thread starts with a fresh scratch");
    }
}
