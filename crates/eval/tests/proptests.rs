//! Property-based tests for the evaluation metrics.

use proptest::prelude::*;
use rmpi_eval::metrics::rank_of;
use rmpi_eval::{average_precision, hits_at, mean_reciprocal_rank};

proptest! {
    #[test]
    fn ap_is_bounded(scored in prop::collection::vec((-10.0f32..10.0, any::<bool>()), 0..200)) {
        let ap = average_precision(&scored);
        prop_assert!((0.0..=1.0).contains(&ap), "ap {ap}");
    }

    #[test]
    fn ap_is_one_iff_positives_dominate(
        pos in prop::collection::vec(5.0f32..10.0, 1..20),
        neg in prop::collection::vec(-10.0f32..4.9, 1..20),
    ) {
        let scored: Vec<(f32, bool)> = pos
            .iter()
            .map(|&s| (s, true))
            .chain(neg.iter().map(|&s| (s, false)))
            .collect();
        prop_assert!((average_precision(&scored) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mrr_bounded_and_monotone(ranks in prop::collection::vec(1usize..1000, 1..100)) {
        let mrr = mean_reciprocal_rank(&ranks);
        prop_assert!((0.0..=1.0).contains(&mrr));
        // improving any rank improves MRR
        let mut better = ranks.clone();
        better[0] = 1;
        prop_assert!(mean_reciprocal_rank(&better) >= mrr);
    }

    #[test]
    fn hits_monotone_in_n(ranks in prop::collection::vec(1usize..100, 1..100), n in 1usize..50) {
        let h_n = hits_at(&ranks, n);
        let h_n10 = hits_at(&ranks, n + 10);
        prop_assert!(h_n10 >= h_n);
        prop_assert!((0.0..=1.0).contains(&h_n));
        // MRR-vs-Hits consistency: hits@1 <= mrr <= 1
        let mrr = mean_reciprocal_rank(&ranks);
        prop_assert!(hits_at(&ranks, 1) <= mrr + 1e-12);
    }

    #[test]
    fn rank_of_within_bounds(gt in -5.0f32..5.0, cands in prop::collection::vec(-5.0f32..5.0, 0..60)) {
        let r = rank_of(gt, &cands);
        prop_assert!(r >= 1);
        prop_assert!(r <= cands.len() + 1);
    }

    #[test]
    fn rank_of_monotone_in_gt_score(cands in prop::collection::vec(-5.0f32..5.0, 1..60)) {
        // a strictly higher ground-truth score can never rank worse
        prop_assert!(rank_of(100.0, &cands) <= rank_of(-100.0, &cands));
        prop_assert_eq!(rank_of(100.0, &cands), 1);
        prop_assert_eq!(rank_of(-100.0, &cands), cands.len() + 1);
    }
}
