//! Statistical comparison utilities: paired bootstrap significance tests
//! for "method A beats method B" claims (the honest companion of a
//! mean-of-5-runs table).

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Result of a paired bootstrap test on per-item metric differences.
#[derive(Clone, Copy, Debug)]
pub struct BootstrapResult {
    /// Mean of `a - b` over the paired items.
    pub mean_diff: f64,
    /// Fraction of bootstrap resamples where the mean difference was `<= 0`
    /// — a one-sided p-value for "A > B".
    pub p_value: f64,
    /// Bootstrap resamples drawn.
    pub resamples: usize,
}

impl BootstrapResult {
    /// `true` when A beats B at the given significance level.
    pub fn significant(&self, alpha: f64) -> bool {
        self.mean_diff > 0.0 && self.p_value < alpha
    }
}

/// Paired bootstrap over per-item scores of two systems (`a[i]` and `b[i]`
/// must measure the same item, e.g. the reciprocal rank of the same test
/// triple under two models).
pub fn paired_bootstrap(a: &[f64], b: &[f64], resamples: usize, seed: u64) -> BootstrapResult {
    assert_eq!(a.len(), b.len(), "paired test requires matched items");
    assert!(!a.is_empty(), "no items to compare");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let mean_diff = diffs.iter().sum::<f64>() / diffs.len() as f64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut worse = 0usize;
    for _ in 0..resamples {
        let mut s = 0.0;
        for _ in 0..diffs.len() {
            s += diffs[rng.gen_range(0..diffs.len())];
        }
        if s / diffs.len() as f64 <= 0.0 {
            worse += 1;
        }
    }
    BootstrapResult { mean_diff, p_value: worse as f64 / resamples as f64, resamples }
}

/// A permutation test on the same pairing (sign-flip test): the p-value is
/// the fraction of random sign assignments with a mean at least as large as
/// the observed one.
pub fn sign_flip_test(a: &[f64], b: &[f64], resamples: usize, seed: u64) -> f64 {
    assert_eq!(a.len(), b.len());
    assert!(!a.is_empty());
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let observed = diffs.iter().sum::<f64>() / diffs.len() as f64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut at_least = 0usize;
    let mut signs: Vec<f64> = vec![1.0; diffs.len()];
    for _ in 0..resamples {
        for s in &mut signs {
            *s = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        }
        let m = diffs.iter().zip(&signs).map(|(d, s)| d * s).sum::<f64>() / diffs.len() as f64;
        if m >= observed {
            at_least += 1;
        }
    }
    at_least as f64 / resamples as f64
}

/// Convenience: shuffle-split a score list into `k` folds and return the
/// per-fold means (for error bars without rerunning training).
pub fn fold_means(scores: &[f64], k: usize, seed: u64) -> Vec<f64> {
    assert!(k > 0 && k <= scores.len(), "need 1..=len folds");
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
    (0..k)
        .map(|f| {
            let fold: Vec<f64> = idx.iter().skip(f).step_by(k).map(|&i| scores[i]).collect();
            fold.iter().sum::<f64>() / fold.len().max(1) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_difference_is_significant() {
        let a: Vec<f64> = (0..100).map(|i| 1.0 + (i % 7) as f64 * 0.01).collect();
        let b: Vec<f64> = (0..100).map(|i| 0.2 + (i % 5) as f64 * 0.01).collect();
        let r = paired_bootstrap(&a, &b, 500, 1);
        assert!(r.mean_diff > 0.7);
        assert!(r.significant(0.05), "p = {}", r.p_value);
        assert!(sign_flip_test(&a, &b, 500, 1) < 0.05);
    }

    #[test]
    fn identical_systems_are_not_significant() {
        let a: Vec<f64> = (0..60).map(|i| (i % 10) as f64).collect();
        let r = paired_bootstrap(&a, &a, 300, 2);
        assert_eq!(r.mean_diff, 0.0);
        assert!(!r.significant(0.05));
    }

    #[test]
    fn noisy_tie_is_not_significant() {
        // alternating winner: mean difference ~0
        let a: Vec<f64> = (0..80).map(|i| if i % 2 == 0 { 1.0 } else { 0.0 }).collect();
        let b: Vec<f64> = (0..80).map(|i| if i % 2 == 1 { 1.0 } else { 0.0 }).collect();
        let r = paired_bootstrap(&a, &b, 500, 3);
        assert!(!r.significant(0.05), "p = {} diff = {}", r.p_value, r.mean_diff);
    }

    #[test]
    fn fold_means_cover_all_items() {
        let scores: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let folds = fold_means(&scores, 5, 0);
        assert_eq!(folds.len(), 5);
        let overall: f64 = folds.iter().sum::<f64>() / 5.0;
        assert!((overall - 4.5).abs() < 1e-9, "fold means must average to the global mean");
    }

    #[test]
    #[should_panic(expected = "matched items")]
    fn mismatched_lengths_rejected() {
        paired_bootstrap(&[1.0], &[1.0, 2.0], 10, 0);
    }
}
