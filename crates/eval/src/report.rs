//! Plain-text table rendering for the experiment binaries.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (cell count must match the headers).
    pub fn add_row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Format a metric as the paper prints them (two decimals).
pub fn fmt_metric(v: f64) -> String {
    format!("{v:.2}")
}

/// Format `mean ± std`.
pub fn fmt_mean_std(mean: f64, std: f64) -> String {
    format!("{mean:.2}±{std:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["method", "AUC-PR", "Hits@10"]);
        t.add_row(vec!["RMPI-base".into(), "88.20".into(), "81.20".into()]);
        t.add_row(vec!["TACT".into(), "72.40".into(), "67.95".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("RMPI-base"));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.add_row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_metric(88.2), "88.20");
        assert_eq!(fmt_mean_std(50.0, 1.25), "50.00±1.25");
    }
}
