//! Evaluation metrics, protocols and the multi-seed experiment runner
//! (paper §IV-B).
//!
//! * [`metrics`] — AUC-PR (average precision), MRR and Hits@n;
//! * [`protocol`] — triple classification (one sampled negative per
//!   positive) and entity prediction (rank the ground truth against 49
//!   sampled candidates, head and tail sides);
//! * [`runner`] — train-and-evaluate over multiple seeds, with threads, and
//!   mean/std aggregation;
//! * [`onto`] — schema TransE vectors packaged for model construction;
//! * [`stats`] — paired bootstrap / sign-flip significance tests over
//!   per-item scores from [`protocol::entity_prediction_paired`];
//! * [`report`] — plain-text table rendering for the experiment binaries;
//! * [`cases`] — the Fig. 4-style case-study extraction.

pub mod cases;
pub mod metrics;
pub mod onto;
pub mod protocol;
pub mod report;
pub mod runner;
pub mod stats;

pub use metrics::{average_precision, hits_at, mean_reciprocal_rank};
pub use protocol::{entity_prediction, triple_classification, EvalConfig, EvalMetrics};
pub use runner::{run_experiment, ModelFactory, RunSummary};
