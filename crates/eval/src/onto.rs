//! Schema TransE vectors packaged for model construction (paper §III-D.2).

use rmpi_autograd::Tensor;
use rmpi_datasets::Benchmark;
use rmpi_kg::RelationId;
use rmpi_schema::{TransEConfig, TransEModel};

/// Train TransE on the benchmark world's schema graph and return one
/// semantic vector per *concrete* relation, as the `(num_relations, dim)`
/// matrix the schema-enhanced models consume.
///
/// The schema graph covers seen and unseen relations alike (it also contains
/// the abstract role parents, which get vectors but no matrix rows).
pub fn schema_vectors(benchmark: &Benchmark, dim: usize, epochs: usize, seed: u64) -> Tensor {
    let schema = benchmark.world.schema_graph();
    let cfg = TransEConfig { dim, epochs, seed, ..Default::default() };
    let model = TransEModel::train(&schema, cfg);
    let num_rel = benchmark.num_relations();
    let mut data = Vec::with_capacity(num_rel * dim);
    for r in 0..num_rel as u32 {
        data.extend_from_slice(model.kg_relation_vector(&schema, RelationId(r)));
    }
    Tensor::matrix(num_rel, dim, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmpi_datasets::{build_benchmark, Scale};

    #[test]
    fn vectors_cover_all_relations_including_unseen() {
        let b = build_benchmark("nell.v1.v3", Scale::Quick);
        let onto = schema_vectors(&b, 16, 10, 0);
        assert_eq!(onto.rows(), b.num_relations());
        assert_eq!(onto.cols(), 16);
        // unseen relations exist and have non-degenerate vectors
        let unseen: Vec<u32> =
            (0..b.num_relations() as u32).filter(|&r| b.is_unseen(RelationId(r))).collect();
        assert!(!unseen.is_empty());
        for &r in unseen.iter().take(5) {
            let norm: f32 = onto.row(r as usize).iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!(norm > 0.5, "unseen relation {r} vector norm {norm}");
        }
    }

    #[test]
    fn sibling_role_relations_have_similar_vectors() {
        // relations sharing an (archetype, role) schema parent should embed
        // closer together than arbitrary pairs on average
        let b = build_benchmark("nell.v2.v3", Scale::Quick);
        let onto = schema_vectors(&b, 24, 60, 1);
        let world = &b.world;
        let cos = |a: usize, c: usize| {
            let (ra, rc) = (onto.row(a), onto.row(c));
            let dot: f32 = ra.iter().zip(rc).map(|(x, y)| x * y).sum();
            let na: f32 = ra.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nc: f32 = rc.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nc).max(1e-9)
        };
        // collect same-(archetype, role) pairs from the first few groups
        let mut same = Vec::new();
        let groups = world.groups();
        for i in 0..groups.len() {
            for j in (i + 1)..groups.len() {
                if groups[i].archetype != groups[j].archetype || groups[i].kind != groups[j].kind {
                    continue;
                }
                for (ra, role_a) in &groups[i].relations {
                    for (rb, role_b) in &groups[j].relations {
                        if role_a == role_b {
                            same.push(cos(ra.index(), rb.index()));
                        }
                    }
                }
            }
        }
        assert!(!same.is_empty(), "need same-role pairs to compare");
        let mean_same: f32 = same.iter().sum::<f32>() / same.len() as f32;
        // baseline: consecutive relations within a group (different roles)
        let mut diff = Vec::new();
        for g in groups.iter().take(10) {
            let rels = g.relation_ids();
            for w in rels.windows(2) {
                diff.push(cos(w[0].index(), w[1].index()));
            }
        }
        let mean_diff: f32 = diff.iter().sum::<f32>() / diff.len() as f32;
        assert!(
            mean_same > mean_diff,
            "same-role similarity {mean_same} should exceed different-role {mean_diff}"
        );
    }
}
