//! Multi-seed experiment runner: train a model per seed, evaluate on the
//! requested test sets, aggregate mean and standard deviation (the paper
//! reports the mean of 5 runs).

use crate::protocol::{evaluate, EvalConfig, EvalMetrics};
use rmpi_core::{train_model, ScoringModel, TrainConfig};
use rmpi_datasets::Benchmark;
use rmpi_runtime::{resolve_threads, ThreadPool};
use std::collections::HashMap;

/// Builds a fresh model for one seed. The factory owns everything the model
/// needs (schema vectors, seen-relation sets, hyper-parameters). Models must
/// be `Sync` so training batches and candidate scoring can fan out across
/// worker threads.
pub type ModelFactory =
    Box<dyn Fn(u64, &Benchmark) -> Box<dyn ScoringModel + Send + Sync> + Send + Sync>;

/// Per-test-set aggregation over seeds.
#[derive(Clone, Debug, Default)]
pub struct RunSummary {
    /// Metrics of each seed's run.
    pub per_seed: Vec<EvalMetrics>,
    /// Mean over seeds.
    pub mean: EvalMetrics,
    /// Standard deviation over seeds.
    pub std: EvalMetrics,
}

impl RunSummary {
    fn from_runs(per_seed: Vec<EvalMetrics>) -> Self {
        let n = per_seed.len().max(1) as f64;
        let mut mean = EvalMetrics::default();
        for m in &per_seed {
            mean.auc_pr += m.auc_pr / n;
            mean.mrr += m.mrr / n;
            mean.hits1 += m.hits1 / n;
            mean.hits10 += m.hits10 / n;
            mean.num_targets += m.num_targets / per_seed.len().max(1);
        }
        let mut std = EvalMetrics::default();
        if per_seed.len() > 1 {
            for m in &per_seed {
                std.auc_pr += (m.auc_pr - mean.auc_pr).powi(2) / (n - 1.0);
                std.mrr += (m.mrr - mean.mrr).powi(2) / (n - 1.0);
                std.hits1 += (m.hits1 - mean.hits1).powi(2) / (n - 1.0);
                std.hits10 += (m.hits10 - mean.hits10).powi(2) / (n - 1.0);
            }
            std.auc_pr = std.auc_pr.sqrt();
            std.mrr = std.mrr.sqrt();
            std.hits1 = std.hits1.sqrt();
            std.hits10 = std.hits10.sqrt();
        }
        RunSummary { per_seed, mean, std }
    }
}

/// Train and evaluate `factory`'s model on `benchmark` for each seed, on
/// every test set named in `test_names`. Seeds run on parallel threads.
pub fn run_experiment(
    factory: &ModelFactory,
    benchmark: &Benchmark,
    test_names: &[&str],
    train_cfg: &TrainConfig,
    eval_cfg: &EvalConfig,
    seeds: &[u64],
) -> HashMap<String, RunSummary> {
    for &name in test_names {
        assert!(
            benchmark.test(name).is_some(),
            "benchmark {} has no test set {name:?}",
            benchmark.name
        );
    }
    // One worker per seed (seed counts are small). All seeds run
    // concurrently, so split each seed's inner training/eval thread budget
    // across them — otherwise `threads = 0` would spawn seeds × cores
    // workers and oversubscribe the CPU (results are thread-count-invariant,
    // so this only affects throughput, never numbers).
    let concurrent = seeds.len().max(1);
    let train_threads = (resolve_threads(train_cfg.threads) / concurrent).max(1);
    let eval_threads = (resolve_threads(eval_cfg.threads) / concurrent).max(1);
    let pool = ThreadPool::new(seeds.len());
    let runs: Vec<HashMap<String, EvalMetrics>> = pool.map_indexed(seeds.len(), |si| {
        let seed = seeds[si];
        let mut model = factory(seed, benchmark);
        let tc = TrainConfig {
            seed: train_cfg.seed.wrapping_add(seed),
            threads: train_threads,
            ..*train_cfg
        };
        train_model(
            &mut model,
            &benchmark.train.graph,
            &benchmark.train.targets,
            &benchmark.train.valid,
            &tc,
        );
        let mut out = HashMap::new();
        for &name in test_names {
            let test = benchmark
                .test(name)
                .unwrap_or_else(|| panic!("benchmark {} has no test set {name:?}", benchmark.name));
            let ec = EvalConfig {
                seed: eval_cfg.seed.wrapping_add(seed),
                threads: eval_threads,
                ..*eval_cfg
            };
            out.insert(name.to_owned(), evaluate(&model, test, &ec));
        }
        out
    });

    let mut summaries = HashMap::new();
    for &name in test_names {
        let per_seed: Vec<EvalMetrics> = runs.iter().map(|r| r[name]).collect();
        summaries.insert(name.to_owned(), RunSummary::from_runs(per_seed));
    }
    summaries
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmpi_core::{RmpiConfig, RmpiModel};
    use rmpi_datasets::{build_benchmark, Scale};

    #[test]
    fn runner_trains_and_aggregates_two_seeds() {
        let b = build_benchmark("nell.v1", Scale::Quick);
        let num_rel = b.num_relations();
        let factory: ModelFactory = Box::new(move |seed, _b| {
            Box::new(RmpiModel::new(RmpiConfig { dim: 8, ..Default::default() }, num_rel, seed))
        });
        let train_cfg = TrainConfig {
            epochs: 1,
            max_samples_per_epoch: 60,
            max_valid_samples: 20,
            patience: 0,
            ..Default::default()
        };
        let eval_cfg =
            EvalConfig { num_candidates: 9, max_targets: 25, seed: 5, ..Default::default() };
        let out = run_experiment(&factory, &b, &["TE"], &train_cfg, &eval_cfg, &[0, 1]);
        let s = &out["TE"];
        assert_eq!(s.per_seed.len(), 2);
        assert!(s.mean.auc_pr > 0.0 && s.mean.auc_pr <= 100.0);
        assert!(s.mean.hits10 >= s.mean.hits1);
        assert!(s.std.auc_pr >= 0.0);
    }

    #[test]
    #[should_panic(expected = "no test set")]
    fn unknown_test_set_panics() {
        let b = build_benchmark("nell.v1", Scale::Quick);
        let num_rel = b.num_relations();
        let factory: ModelFactory = Box::new(move |seed, _b| {
            Box::new(RmpiModel::new(RmpiConfig { dim: 8, ..Default::default() }, num_rel, seed))
        });
        run_experiment(
            &factory,
            &b,
            &["nope"],
            &TrainConfig { epochs: 1, max_samples_per_epoch: 5, ..Default::default() },
            &EvalConfig::default(),
            &[0],
        );
    }
}
