//! Evaluation protocols (paper §IV-B).
//!
//! Every ranking loop here is embarrassingly parallel across targets: each
//! target owns an RNG derived from `(seed, stream, target index)` via
//! [`mix_seed`], candidate generation and scoring run inside the worker, and
//! only per-target results (scores, ranks) come back — in index order. The
//! metrics computed from them are therefore bit-identical for every
//! [`EvalConfig::threads`] setting.

use crate::metrics::{average_precision, hits_at, mean_reciprocal_rank, rank_of};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rmpi_core::ScoringModel;
use rmpi_datasets::TestSet;
use rmpi_runtime::{mix_seed, ThreadPool};
use rmpi_subgraph::NegativeSampler;

/// RNG stream ids for [`mix_seed`], one per protocol (disjoint from the
/// trainer's streams by convention — trainer uses 1..=4).
mod stream {
    /// Triple classification negatives + scoring draws.
    pub const CLASSIFY: u64 = 11;
    /// Entity-prediction candidates + scoring draws.
    pub const ENTITY: u64 = 12;
    /// Paired entity prediction per-item scoring draws.
    pub const PAIRED: u64 = 13;
    /// Relation-prediction scoring draws.
    pub const RELATION: u64 = 14;
}

/// Protocol parameters.
#[derive(Clone, Copy, Debug)]
pub struct EvalConfig {
    /// Ranking candidates per side (paper: 49).
    pub num_candidates: usize,
    /// Cap on evaluated targets (0 = all).
    pub max_targets: usize,
    /// RNG seed for negatives/candidates.
    pub seed: u64,
    /// Worker threads for candidate scoring (`0` = one per available core).
    /// Metrics are bit-identical for every value.
    pub threads: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig { num_candidates: 49, max_targets: 200, seed: 0, threads: 1 }
    }
}

/// Aggregated metrics of one evaluation run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EvalMetrics {
    /// Triple-classification AUC-PR (×100).
    pub auc_pr: f64,
    /// Entity-prediction mean reciprocal rank (×100).
    pub mrr: f64,
    /// Entity-prediction Hits@1 (×100).
    pub hits1: f64,
    /// Entity-prediction Hits@10 (×100).
    pub hits10: f64,
    /// Number of target triples evaluated.
    pub num_targets: usize,
}

fn select_targets(test: &TestSet, cfg: &EvalConfig, rng: &mut StdRng) -> Vec<rmpi_kg::Triple> {
    let mut targets = test.targets.clone();
    targets.shuffle(rng);
    if cfg.max_targets > 0 {
        targets.truncate(cfg.max_targets);
    }
    targets
}

/// Triple classification: one corrupted negative per positive, AUC-PR over
/// the pooled scores (×100).
pub fn triple_classification<M: ScoringModel + Sync + ?Sized>(
    model: &M,
    test: &TestSet,
    cfg: &EvalConfig,
) -> (f64, usize) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sampler = NegativeSampler::from_graph(&test.graph);
    let targets = select_targets(test, cfg, &mut rng);
    let pool = ThreadPool::new(cfg.threads);
    let pairs: Vec<(f32, f32)> = pool.map_indexed(targets.len(), |i| {
        let pos = targets[i];
        let mut rng = StdRng::seed_from_u64(mix_seed(cfg.seed, stream::CLASSIFY, i as u64));
        let neg = sampler.corrupt(pos, &test.graph, &mut rng);
        (model.score(&test.graph, pos, &mut rng), model.score(&test.graph, neg, &mut rng))
    });
    let mut scored: Vec<(f32, bool)> = Vec::with_capacity(2 * targets.len());
    for (p, n) in pairs {
        scored.push((p, true));
        scored.push((n, false));
    }
    (average_precision(&scored) * 100.0, targets.len())
}

/// Entity prediction: rank the ground truth against `num_candidates`
/// corrupted entities, on both the head and the tail side. Returns
/// `(mrr, hits1, hits10, num_targets)`, all ×100.
pub fn entity_prediction<M: ScoringModel + Sync + ?Sized>(
    model: &M,
    test: &TestSet,
    cfg: &EvalConfig,
) -> (f64, f64, f64, usize) {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1));
    let sampler = NegativeSampler::from_graph(&test.graph);
    let targets = select_targets(test, cfg, &mut rng);
    let pool = ThreadPool::new(cfg.threads);
    // Each target is self-contained: its RNG drives candidate generation and
    // any scoring draws, so per-target rank lists are schedule-independent.
    let per_target: Vec<Vec<usize>> = pool.map_indexed(targets.len(), |i| {
        let pos = targets[i];
        let mut rng = StdRng::seed_from_u64(mix_seed(cfg.seed, stream::ENTITY, i as u64));
        let gt = model.score(&test.graph, pos, &mut rng);
        let mut ranks = Vec::with_capacity(2);
        for corrupt_head in [false, true] {
            let cands = sampler.ranking_candidates(
                pos,
                cfg.num_candidates,
                corrupt_head,
                &test.graph,
                &mut rng,
            );
            if cands.is_empty() {
                continue;
            }
            let scores: Vec<f32> =
                cands.iter().map(|&c| model.score(&test.graph, c, &mut rng)).collect();
            ranks.push(rank_of(gt, &scores));
        }
        ranks
    });
    let ranks: Vec<usize> = per_target.into_iter().flatten().collect();
    (
        mean_reciprocal_rank(&ranks) * 100.0,
        hits_at(&ranks, 1) * 100.0,
        hits_at(&ranks, 10) * 100.0,
        targets.len(),
    )
}

/// Paired entity prediction: evaluate several models on *identical* targets
/// and candidate sets, returning one mean-reciprocal-rank per target per
/// model — the paired per-item scores that
/// [`crate::stats::paired_bootstrap`] consumes.
///
/// Targets and candidates are sampled once up front, so model-side rng
/// consumption cannot desynchronise the pairing.
pub fn entity_prediction_paired(
    models: &[&(dyn ScoringModel + Sync)],
    test: &TestSet,
    cfg: &EvalConfig,
) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(3));
    let sampler = NegativeSampler::from_graph(&test.graph);
    let targets = select_targets(test, cfg, &mut rng);
    // pre-generate every candidate list (sequentially, from one rng — the
    // whole point of the paired protocol is one shared candidate universe)
    let prepared: Vec<(rmpi_kg::Triple, Vec<Vec<rmpi_kg::Triple>>)> = targets
        .iter()
        .map(|&pos| {
            let sides = [false, true]
                .into_iter()
                .map(|ch| {
                    sampler.ranking_candidates(pos, cfg.num_candidates, ch, &test.graph, &mut rng)
                })
                .filter(|c| !c.is_empty())
                .collect();
            (pos, sides)
        })
        .collect();

    let pool = ThreadPool::new(cfg.threads);
    models
        .iter()
        .map(|model| {
            pool.map_indexed(prepared.len(), |i| {
                let (pos, sides) = &prepared[i];
                // the per-item scoring rng is keyed by item only (not model),
                // so stochastic models draw *identical* streams on every side
                // of the pairing
                let mut mrng = StdRng::seed_from_u64(mix_seed(cfg.seed, stream::PAIRED, i as u64));
                let gt = model.score(&test.graph, *pos, &mut mrng);
                if sides.is_empty() {
                    return 1.0;
                }
                sides
                    .iter()
                    .map(|cands| {
                        let scores: Vec<f32> =
                            cands.iter().map(|&c| model.score(&test.graph, c, &mut mrng)).collect();
                        1.0 / rank_of(gt, &scores) as f64
                    })
                    .sum::<f64>()
                    / sides.len() as f64
            })
        })
        .collect()
}

/// Relation prediction (TACT's original protocol): rank the ground-truth
/// relation of each target against every other relation in `0..num_relations`.
/// Returns `(mrr, hits1, hits10, num_targets)`, all ×100.
pub fn relation_prediction<M: ScoringModel + Sync + ?Sized>(
    model: &M,
    test: &TestSet,
    num_relations: usize,
    cfg: &EvalConfig,
) -> (f64, f64, f64, usize) {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(2));
    let targets = select_targets(test, cfg, &mut rng);
    let pool = ThreadPool::new(cfg.threads);
    let ranks: Vec<usize> = pool.map_indexed(targets.len(), |i| {
        let pos = targets[i];
        let mut rng = StdRng::seed_from_u64(mix_seed(cfg.seed, stream::RELATION, i as u64));
        let gt = model.score(&test.graph, pos, &mut rng);
        let scores: Vec<f32> = (0..num_relations as u32)
            .filter(|&r| r != pos.relation.0)
            .map(|r| {
                let cand = pos.with_relation(rmpi_kg::RelationId(r));
                if test.graph.contains(&cand) {
                    f32::NEG_INFINITY // filtered setting
                } else {
                    model.score(&test.graph, cand, &mut rng)
                }
            })
            .collect();
        rank_of(gt, &scores)
    });
    (
        mean_reciprocal_rank(&ranks) * 100.0,
        hits_at(&ranks, 1) * 100.0,
        hits_at(&ranks, 10) * 100.0,
        targets.len(),
    )
}

/// Run both protocols and collect an [`EvalMetrics`].
pub fn evaluate<M: ScoringModel + Sync + ?Sized>(
    model: &M,
    test: &TestSet,
    cfg: &EvalConfig,
) -> EvalMetrics {
    let (auc_pr, n1) = triple_classification(model, test, cfg);
    let (mrr, hits1, hits10, n2) = entity_prediction(model, test, cfg);
    EvalMetrics { auc_pr, mrr, hits1, hits10, num_targets: n1.max(n2) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmpi_autograd::{ParamStore, Tape, Var};
    use rmpi_core::Mode;
    use rmpi_kg::{GraphAccess, KnowledgeGraph, Triple};

    /// An oracle that scores known facts high and everything else low.
    struct Oracle {
        store: ParamStore,
        facts: KnowledgeGraph,
    }

    impl ScoringModel for Oracle {
        fn param_store(&self) -> &ParamStore {
            &self.store
        }
        fn param_store_mut(&mut self) -> &mut ParamStore {
            &mut self.store
        }
        fn score_on_tape(
            &self,
            tape: &mut Tape,
            _graph: &dyn GraphAccess,
            target: Triple,
            _mode: Mode,
            _rng: &mut StdRng,
        ) -> Var {
            let s = if self.facts.contains(&target) { 10.0 } else { -10.0 };
            tape.constant(rmpi_autograd::Tensor::scalar(s))
        }
        fn context_radius(&self) -> usize {
            0
        }
        fn name(&self) -> String {
            "Oracle".to_owned()
        }
    }

    fn test_set() -> (TestSet, KnowledgeGraph) {
        let context: Vec<Triple> = (0..30u32).map(|i| Triple::new(i, 0u32, (i + 1) % 30)).collect();
        let targets: Vec<Triple> = (0..30u32).map(|i| Triple::new(i, 1u32, (i + 2) % 30)).collect();
        let graph = KnowledgeGraph::from_triples(context);
        let all = graph.with_extra_triples(&targets);
        (TestSet { name: "TE".into(), graph, targets }, all)
    }

    #[test]
    fn oracle_gets_perfect_scores() {
        let (test, all_facts) = test_set();
        let model = Oracle { store: ParamStore::new(), facts: all_facts };
        let cfg = EvalConfig { num_candidates: 10, max_targets: 20, seed: 1, ..Default::default() };
        let m = evaluate(&model, &test, &cfg);
        assert!(m.auc_pr > 99.0, "auc {}", m.auc_pr);
        assert!(m.mrr > 99.0, "mrr {}", m.mrr);
        assert_eq!(m.hits10, 100.0);
        assert_eq!(m.num_targets, 20);
    }

    #[test]
    fn anti_oracle_gets_poor_ranking() {
        let (test, all_facts) = test_set();
        // invert the oracle: known facts scored low
        struct Anti(Oracle);
        impl ScoringModel for Anti {
            fn param_store(&self) -> &ParamStore {
                self.0.param_store()
            }
            fn param_store_mut(&mut self) -> &mut ParamStore {
                self.0.param_store_mut()
            }
            fn score_on_tape(
                &self,
                tape: &mut Tape,
                g: &dyn GraphAccess,
                t: Triple,
                m: Mode,
                r: &mut StdRng,
            ) -> Var {
                let v = self.0.score_on_tape(tape, g, t, m, r);
                tape.scale(v, -1.0)
            }
            fn context_radius(&self) -> usize {
                self.0.context_radius()
            }
            fn name(&self) -> String {
                "Anti".into()
            }
        }
        let model = Anti(Oracle { store: ParamStore::new(), facts: all_facts });
        let cfg = EvalConfig { num_candidates: 10, max_targets: 20, seed: 1, ..Default::default() };
        let m = evaluate(&model, &test, &cfg);
        assert!(m.mrr < 20.0, "anti-oracle mrr {}", m.mrr);
        assert!(m.auc_pr < 60.0, "anti-oracle auc {}", m.auc_pr);
    }

    #[test]
    fn paired_prediction_pairs_items_across_models() {
        let (test, all_facts) = test_set();
        let oracle = Oracle { store: ParamStore::new(), facts: all_facts.clone() };
        let oracle2 = Oracle { store: ParamStore::new(), facts: all_facts };
        let cfg = EvalConfig { num_candidates: 8, max_targets: 12, seed: 9, ..Default::default() };
        let rrs = entity_prediction_paired(&[&oracle, &oracle2], &test, &cfg);
        assert_eq!(rrs.len(), 2);
        assert_eq!(rrs[0].len(), 12);
        // identical models on identical items -> identical per-item scores
        assert_eq!(rrs[0], rrs[1]);
        // oracle ranks everything first
        assert!(rrs[0].iter().all(|&r| r > 0.99));
    }

    #[test]
    fn relation_prediction_favors_oracle() {
        let (test, all_facts) = test_set();
        let model = Oracle { store: ParamStore::new(), facts: all_facts };
        let cfg = EvalConfig { num_candidates: 10, max_targets: 15, seed: 3, ..Default::default() };
        let (mrr, h1, h10, n) = relation_prediction(&model, &test, 5, &cfg);
        assert!(mrr > 99.0, "relation MRR {mrr}");
        assert_eq!(h1, 100.0);
        assert_eq!(h10, 100.0);
        assert_eq!(n, 15);
    }

    #[test]
    fn constant_scorer_sits_near_chance() {
        let (test, _) = test_set();
        struct Flat(ParamStore);
        impl ScoringModel for Flat {
            fn param_store(&self) -> &ParamStore {
                &self.0
            }
            fn param_store_mut(&mut self) -> &mut ParamStore {
                &mut self.0
            }
            fn score_on_tape(
                &self,
                tape: &mut Tape,
                _g: &dyn GraphAccess,
                _t: Triple,
                _m: Mode,
                _r: &mut StdRng,
            ) -> Var {
                tape.constant(rmpi_autograd::Tensor::scalar(0.0))
            }
            fn context_radius(&self) -> usize {
                0
            }
            fn name(&self) -> String {
                "Flat".into()
            }
        }
        let model = Flat(ParamStore::new());
        let cfg = EvalConfig { num_candidates: 9, max_targets: 30, seed: 2, ..Default::default() };
        let (mrr, _h1, h10, _) = entity_prediction(&model, &test, &cfg);
        // all ties -> rank ~ (1 + 10)/2 -> mrr ~ 1/6..1/5, hits@10 = 100
        assert!(mrr < 30.0);
        assert_eq!(h10, 100.0);
    }
}
