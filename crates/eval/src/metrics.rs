//! Ranking and classification metrics.

/// Area under the precision-recall curve, computed as average precision:
/// `AP = Σ_k P(k) · rel(k) / |positives|` over the score-descending ordering.
/// Ties are broken pessimistically (negatives first) so the metric never
/// benefits from degenerate constant scores.
pub fn average_precision(scored: &[(f32, bool)]) -> f64 {
    let num_pos = scored.iter().filter(|(_, l)| *l).count();
    if num_pos == 0 {
        return 0.0;
    }
    let mut sorted: Vec<(f32, bool)> = scored.to_vec();
    // descending by score; among ties, negatives first (pessimistic)
    sorted.sort_by(|a, b| {
        b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1))
    });
    let mut hits = 0usize;
    let mut ap = 0.0f64;
    for (k, (_, label)) in sorted.iter().enumerate() {
        if *label {
            hits += 1;
            ap += hits as f64 / (k + 1) as f64;
        }
    }
    ap / num_pos as f64
}

/// Mean reciprocal rank of 1-based ranks.
pub fn mean_reciprocal_rank(ranks: &[usize]) -> f64 {
    if ranks.is_empty() {
        return 0.0;
    }
    ranks.iter().map(|&r| 1.0 / r as f64).sum::<f64>() / ranks.len() as f64
}

/// Fraction of 1-based ranks within the top `n`.
pub fn hits_at(ranks: &[usize], n: usize) -> f64 {
    if ranks.is_empty() {
        return 0.0;
    }
    ranks.iter().filter(|&&r| r <= n).count() as f64 / ranks.len() as f64
}

/// The 1-based rank of the ground truth among candidates: one plus the
/// number of strictly better candidates, plus half the ties (rounded up) —
/// the standard "random" tie-breaking estimate.
pub fn rank_of(gt_score: f32, candidate_scores: &[f32]) -> usize {
    let better = candidate_scores.iter().filter(|&&s| s > gt_score).count();
    let ties = candidate_scores.iter().filter(|&&s| s == gt_score).count();
    1 + better + ties.div_ceil(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ap_perfect_ranking_is_one() {
        let scored = vec![(0.9, true), (0.8, true), (0.3, false), (0.1, false)];
        assert!((average_precision(&scored) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ap_worst_ranking() {
        // positives at ranks 3 and 4: AP = (1/3 + 2/4)/2 = 5/12
        let scored = vec![(0.9, false), (0.8, false), (0.3, true), (0.1, true)];
        assert!((average_precision(&scored) - 5.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn ap_interleaved_hand_computed() {
        // order: + - + - : AP = (1/1 + 2/3)/2 = 5/6
        let scored = vec![(0.9, true), (0.8, false), (0.7, true), (0.6, false)];
        assert!((average_precision(&scored) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ap_ties_are_pessimistic() {
        // all same score: negatives ordered first
        let scored = vec![(0.5, true), (0.5, false), (0.5, false)];
        // ordering: -, -, + -> AP = 1/3
        assert!((average_precision(&scored) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ap_empty_and_no_positives() {
        assert_eq!(average_precision(&[]), 0.0);
        assert_eq!(average_precision(&[(0.3, false)]), 0.0);
    }

    #[test]
    fn mrr_values() {
        assert!((mean_reciprocal_rank(&[1, 2, 4]) - (1.0 + 0.5 + 0.25) / 3.0).abs() < 1e-12);
        assert_eq!(mean_reciprocal_rank(&[]), 0.0);
        assert_eq!(mean_reciprocal_rank(&[1, 1]), 1.0);
    }

    #[test]
    fn hits_values() {
        let ranks = [1, 5, 11, 50];
        assert_eq!(hits_at(&ranks, 10), 0.5);
        assert_eq!(hits_at(&ranks, 1), 0.25);
        assert_eq!(hits_at(&ranks, 100), 1.0);
        assert_eq!(hits_at(&[], 10), 0.0);
    }

    #[test]
    fn rank_of_counts_better_and_ties() {
        assert_eq!(rank_of(0.9, &[0.1, 0.2, 0.3]), 1);
        assert_eq!(rank_of(0.2, &[0.1, 0.5, 0.9]), 3);
        assert_eq!(rank_of(0.5, &[0.5, 0.5, 0.1]), 2); // 0 better + ceil(2/2)=1
        assert_eq!(rank_of(0.0, &[]), 1);
    }
}
