//! Case-study extraction (the paper's Fig. 4): for one target triple, the
//! relations in its neighbourhood by hop, and every model's score.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rmpi_core::ScoringModel;
use rmpi_datasets::{Benchmark, TestSet};
use rmpi_kg::{RelationId, Triple};
use rmpi_subgraph::{enclosing_subgraph, RelViewGraph};
use std::collections::BTreeSet;

/// One Fig. 4-style case study.
#[derive(Clone, Debug)]
pub struct CaseStudy {
    /// The positive target triple.
    pub target: Triple,
    /// Whether its relation is unseen w.r.t. the training graph.
    pub relation_unseen: bool,
    /// Distinct relations one hop from the target in the relation view.
    pub one_hop: Vec<RelationId>,
    /// Relations first appearing at hop two.
    pub two_hop_new: Vec<RelationId>,
    /// `(model name, score)` for each model.
    pub scores: Vec<(String, f32)>,
}

/// Pick a target whose enclosing subgraph is informative (non-empty, with
/// 2-hop structure) and whose relation seen/unseen status matches
/// `want_unseen`.
pub fn find_case(
    benchmark: &Benchmark,
    test: &TestSet,
    want_unseen: bool,
    hop: usize,
) -> Option<Triple> {
    for &t in &test.targets {
        if benchmark.is_unseen(t.relation) != want_unseen {
            continue;
        }
        let sg = enclosing_subgraph(&test.graph, t, hop);
        if sg.num_edges() < 2 {
            continue;
        }
        let (one, two) = hop_relations(&test.graph, t, hop);
        if !one.is_empty() && !two.is_empty() {
            return Some(t);
        }
    }
    None
}

/// The distinct one-hop relations and the relations newly appearing at hop
/// two, in the relation view of the enclosing subgraph.
pub fn hop_relations(
    graph: &rmpi_kg::KnowledgeGraph,
    target: Triple,
    hop: usize,
) -> (Vec<RelationId>, Vec<RelationId>) {
    let sg = enclosing_subgraph(graph, target, hop);
    let rv = RelViewGraph::from_subgraph(&sg);
    let one: BTreeSet<RelationId> = rv.target_neighbor_relations().into_iter().collect();
    // hop-2: incoming neighbours of the one-hop nodes
    let mut two = BTreeSet::new();
    for e in rv.incoming(rmpi_subgraph::relview::TARGET_NODE) {
        for e2 in rv.incoming(e.src) {
            let r = rv.nodes[e2.src].relation;
            if !one.contains(&r) && r != target.relation {
                two.insert(r);
            }
        }
    }
    (one.into_iter().collect(), two.into_iter().collect())
}

/// Assemble the case study: neighbourhood relations plus per-model scores.
pub fn build_case(
    benchmark: &Benchmark,
    test: &TestSet,
    target: Triple,
    models: &[&dyn ScoringModel],
    hop: usize,
) -> CaseStudy {
    let (one_hop, two_hop_new) = hop_relations(&test.graph, target, hop);
    let mut rng = StdRng::seed_from_u64(0);
    let scores =
        models.iter().map(|m| (m.name(), m.score(&test.graph, target, &mut rng))).collect();
    CaseStudy {
        target,
        relation_unseen: benchmark.is_unseen(target.relation),
        one_hop,
        two_hop_new,
        scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmpi_core::{RmpiConfig, RmpiModel};
    use rmpi_datasets::{build_benchmark, Scale};

    #[test]
    fn finds_unseen_case_on_fully_inductive_benchmark() {
        let b = build_benchmark("nell.v1.v3", Scale::Quick);
        let test = b.test("TE(semi)").unwrap();
        let case = find_case(&b, test, true, 2);
        assert!(
            case.is_some(),
            "a fully-inductive benchmark should contain an unseen-relation case"
        );
        let t = case.unwrap();
        assert!(b.is_unseen(t.relation));
    }

    #[test]
    fn case_study_collects_scores_from_models() {
        let b = build_benchmark("nell.v1", Scale::Quick);
        let test = b.test("TE").unwrap();
        let target = find_case(&b, test, false, 2).expect("case");
        let m1 = RmpiModel::new(RmpiConfig { dim: 8, ..Default::default() }, b.num_relations(), 0);
        let m2 = RmpiModel::new(
            RmpiConfig { dim: 8, ne: true, ..Default::default() },
            b.num_relations(),
            0,
        );
        let case = build_case(&b, test, target, &[&m1, &m2], 2);
        assert_eq!(case.scores.len(), 2);
        assert!(!case.one_hop.is_empty());
        assert!(case.scores.iter().all(|(_, s)| s.is_finite()));
        assert_ne!(case.scores[0].0, case.scores[1].0);
    }
}
