//! The wire layer and the single-endpoint [`Client`].
//!
//! A [`Client`] keeps one cached [`Session`] — a persistent, pipelined
//! protocol-v2 connection (see [`crate::session`]) — and sends every
//! request over it. When the session dies (peer close, transport damage,
//! server restart), the failure surfaces as a retryable error, the cached
//! session is discarded, and the next attempt connects fresh — so the retry
//! loop doubles as the reconnect loop.
//!
//! The original one-request-per-connection exchange survives as
//! [`oneshot_request`]: connect (with timeout), send one line, read one
//! line, close. It costs a TCP handshake per request but never has a
//! half-consumed stream to resynchronise — it remains the right tool for
//! one-off probes (the failover layer's half-open `HEALTH` check uses it)
//! and is the baseline the `bench_load` harness compares sessions against.
//!
//! Either way, a response is accepted only if it ends in `\n`: the line
//! protocol makes every chaos fault (truncation, mid-response disconnect,
//! stalled partial write) detectable as a missing newline, which is what
//! lets the retry layer promise *zero wrong scores* — damaged replies are
//! retried, never parsed.

use crate::backoff::{Backoff, BackoffConfig};
use crate::budget::{BudgetConfig, RetryBudget};
use crate::error::ClientError;
use crate::session::Session;
use crate::stats::ClientStats;
use rmpi_obs::MetricsRegistry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client knobs: per-socket timeouts plus the retry policy.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout (covers the whole response wait).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Retries after the initial attempt (per logical request).
    pub max_retries: u32,
    /// Backoff shape between attempts.
    pub backoff: BackoffConfig,
    /// Retry budget shape (caps retries fleet-wide, see [`crate::budget`]).
    pub budget: BudgetConfig,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(1),
            max_retries: 3,
            backoff: BackoffConfig::default(),
            budget: BudgetConfig::default(),
        }
    }
}

impl ClientConfig {
    /// Set the backoff jitter seed (the only randomness in the client).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.backoff.seed = seed;
        self
    }
}

/// One attempt on the wire, connection-per-request style: connect, send
/// `line`, read one `\n`-terminated response line, classify it, close.
///
/// This is the legacy (pre-session) exchange, kept public for one-off
/// probes and as the baseline for benchmarking pipelined sessions against.
pub fn oneshot_request(
    addr: SocketAddr,
    cfg: &ClientConfig,
    line: &str,
) -> Result<String, ClientError> {
    let mut stream =
        TcpStream::connect_timeout(&addr, cfg.connect_timeout).map_err(ClientError::Connect)?;
    stream
        .set_read_timeout(Some(cfg.read_timeout))
        .and_then(|()| stream.set_write_timeout(Some(cfg.write_timeout)))
        .map_err(ClientError::Io)?;
    let _ = stream.set_nodelay(true);
    stream.write_all(line.as_bytes()).map_err(ClientError::Io)?;
    stream.write_all(b"\n").map_err(ClientError::Io)?;

    // read until newline or EOF; a reply without its newline is damage
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 4096];
    let complete = loop {
        match stream.read(&mut chunk) {
            Ok(0) => break false,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if chunk[..n].contains(&b'\n') {
                    break true;
                }
            }
            Err(e) => return Err(ClientError::Io(e)),
        }
    };
    if !complete {
        return Err(ClientError::TruncatedResponse);
    }
    let newline = buf.iter().position(|&b| b == b'\n').expect("checked above");
    let text = String::from_utf8_lossy(&buf[..newline]);
    let text = text.trim_end_matches('\r');
    classify_response(text)
}

/// Split a response line into the `OK` payload or a classified error.
pub(crate) fn classify_response(line: &str) -> Result<String, ClientError> {
    if line == "OK" {
        return Ok(String::new());
    }
    if let Some(payload) = line.strip_prefix("OK ") {
        return Ok(payload.to_owned());
    }
    if let Some(message) = line.strip_prefix("ERR ") {
        return Err(ClientError::from_server_err(message));
    }
    Err(ClientError::Protocol(line.to_owned()))
}

/// Parse an `OK s1 s2 ...` score payload, checking the count.
pub(crate) fn parse_scores(payload: &str, expected: usize) -> Result<Vec<f32>, ClientError> {
    let scores: Vec<f32> = payload
        .split_whitespace()
        .map(|s| s.parse().map_err(|e| ClientError::BadPayload(format!("score {s:?}: {e}"))))
        .collect::<Result<_, _>>()?;
    if scores.len() != expected {
        return Err(ClientError::BadPayload(format!(
            "expected {expected} scores, got {}",
            scores.len()
        )));
    }
    Ok(scores)
}

/// Parse an `OK tail:score ...` ranking payload.
pub(crate) fn parse_ranked(payload: &str) -> Result<Vec<(u32, f32)>, ClientError> {
    payload
        .split_whitespace()
        .map(|pair| {
            let (tail, score) = pair
                .split_once(':')
                .ok_or_else(|| ClientError::BadPayload(format!("ranked entry {pair:?}")))?;
            let tail =
                tail.parse().map_err(|e| ClientError::BadPayload(format!("tail {tail:?}: {e}")))?;
            let score = score
                .parse()
                .map_err(|e| ClientError::BadPayload(format!("score {score:?}: {e}")))?;
            Ok((tail, score))
        })
        .collect()
}

/// Format a `SCORE` line for a batch of `(head, relation, tail)` triples.
pub(crate) fn score_line(triples: &[(u32, u32, u32)]) -> String {
    let mut line = String::from("SCORE");
    for (h, r, t) in triples {
        line.push_str(&format!(" {h} {r} {t}"));
    }
    line
}

/// Typed wrappers over the line protocol, shared by [`Client`] and
/// [`crate::FailoverClient`]. Pure verbs (`SCORE`, `RANK`, probes and stats
/// reads) are declared idempotent and retried; `RELOAD` is sent exactly
/// once.
pub trait ProtocolClient {
    /// Send one request line; retry per the implementation's policy when
    /// `idempotent` and the failure is retryable. Returns the `OK` payload.
    fn request_line(&mut self, line: &str, idempotent: bool) -> Result<String, ClientError>;

    /// `PING` → liveness.
    fn ping(&mut self) -> Result<(), ClientError> {
        self.request_line("PING", true).map(|_| ())
    }

    /// `HEALTH` → readiness text (e.g. `healthy relations=4 entities=12`).
    fn health(&mut self) -> Result<String, ClientError> {
        self.request_line("HEALTH", true)
    }

    /// `SCORE h r t` → the served (bit-exact) score of one triple.
    fn score(&mut self, head: u32, relation: u32, tail: u32) -> Result<f32, ClientError> {
        Ok(self.score_batch(&[(head, relation, tail)])?[0])
    }

    /// `SCORE h r t [h r t ...]` → one score per triple, server-batched.
    fn score_batch(&mut self, triples: &[(u32, u32, u32)]) -> Result<Vec<f32>, ClientError> {
        let payload = self.request_line(&score_line(triples), true)?;
        parse_scores(&payload, triples.len())
    }

    /// `RANK h r k` → up to `k` `(tail, score)` pairs, best first.
    fn rank_tails(
        &mut self,
        head: u32,
        relation: u32,
        k: usize,
    ) -> Result<Vec<(u32, f32)>, ClientError> {
        let payload = self.request_line(&format!("RANK {head} {relation} {k}"), true)?;
        parse_ranked(&payload)
    }

    /// `STATS` → the server's legacy single-line JSON counters.
    fn stats_json(&mut self) -> Result<String, ClientError> {
        self.request_line("STATS", true)
    }

    /// `METRICS` → the server's full metrics-registry JSON.
    fn metrics_json(&mut self) -> Result<String, ClientError> {
        self.request_line("METRICS", true)
    }

    /// `RELOAD <path>` → hot-swap the served bundle. **Not retried**: the
    /// serving layer treats reload as an operator action, and a retry after
    /// an ambiguous failure could re-order with a newer reload.
    fn reload(&mut self, bundle_path: &str) -> Result<(), ClientError> {
        self.request_line(&format!("RELOAD {bundle_path}"), false).map(|_| ())
    }
}

/// A single-endpoint client with timeouts, seeded backoff and a retry
/// budget, multiplexing requests over one cached pipelined [`Session`].
/// For replica sets, use [`crate::FailoverClient`].
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    cfg: ClientConfig,
    backoff: Backoff,
    budget: RetryBudget,
    stats: ClientStats,
    session: Option<Session>,
}

impl Client {
    /// A client for `addr`, recording metrics into the process-global
    /// registry.
    pub fn new(addr: SocketAddr, cfg: ClientConfig) -> Self {
        Self::with_registry(addr, cfg, Arc::clone(rmpi_obs::global()))
    }

    /// A client recording into an explicit registry (tests).
    pub fn with_registry(
        addr: SocketAddr,
        cfg: ClientConfig,
        registry: Arc<MetricsRegistry>,
    ) -> Self {
        Client {
            addr,
            backoff: Backoff::new(cfg.backoff.clone()),
            budget: RetryBudget::new(cfg.budget.clone()),
            stats: ClientStats::with_registry(registry),
            cfg,
            session: None,
        }
    }

    /// The endpoint this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This client's metric handles.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// Open a **new** pipelined session to this client's endpoint, for
    /// callers that want to drive the session API directly (sharing it
    /// across threads, `score_many`, ...). Independent of the client's own
    /// cached session; no retry policy applies to it.
    pub fn session(&self) -> Result<Session, ClientError> {
        let session = Session::connect(self.addr, &self.cfg)?;
        self.stats.sessions_opened.inc();
        Ok(session)
    }

    /// The client's cached session, (re)connecting if absent or dead.
    fn live_session(&mut self) -> Result<&Session, ClientError> {
        if !self.session.as_ref().is_some_and(|s| s.is_alive()) {
            self.session = Some(Session::connect(self.addr, &self.cfg)?);
            self.stats.sessions_opened.inc();
        }
        Ok(self.session.as_ref().expect("just ensured"))
    }

    /// One attempt over the cached session. On a transport-level failure
    /// the session is discarded so the next attempt reconnects.
    fn attempt(&mut self, line: &str) -> Result<String, ClientError> {
        let result = self.live_session()?.request(line);
        if let Err(e) = &result {
            if is_transport_error(e) {
                self.session = None;
            }
        }
        result
    }
}

/// Whether an error means the *connection* is suspect (as opposed to a
/// server answer that happened to be an error) — these invalidate a cached
/// session.
pub(crate) fn is_transport_error(e: &ClientError) -> bool {
    matches!(
        e,
        ClientError::Connect(_)
            | ClientError::Io(_)
            | ClientError::TruncatedResponse
            | ClientError::Protocol(_)
            | ClientError::SessionClosed(_)
    )
}

impl ProtocolClient for Client {
    fn request_line(&mut self, line: &str, idempotent: bool) -> Result<String, ClientError> {
        self.stats.requests.inc();
        let t0 = Instant::now();
        let mut attempts: u32 = 1;
        loop {
            match self.attempt(line) {
                Ok(payload) => {
                    self.budget.record_success();
                    self.backoff.reset();
                    self.stats.request_latency.record_duration(t0.elapsed());
                    return Ok(payload);
                }
                Err(e) => {
                    let may_retry = idempotent
                        && e.is_retryable()
                        && attempts <= self.cfg.max_retries
                        && self.budget.try_withdraw();
                    if !may_retry {
                        self.stats.errors.inc();
                        return Err(if attempts > 1 {
                            ClientError::RetriesExhausted { attempts, last: Box::new(e) }
                        } else {
                            e
                        });
                    }
                    self.stats.retries.inc();
                    attempts += 1;
                    std::thread::sleep(self.backoff.next_delay());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_classify_into_payload_server_error_or_protocol_error() {
        assert_eq!(classify_response("OK pong").unwrap(), "pong");
        assert_eq!(classify_response("OK").unwrap(), "");
        let err = classify_response("ERR server overloaded").unwrap_err();
        assert!(matches!(err, ClientError::Server { transient: true, .. }), "{err}");
        let err = classify_response("ERR bad request: nope").unwrap_err();
        assert!(matches!(err, ClientError::Server { transient: false, .. }), "{err}");
        let err = classify_response("banana").unwrap_err();
        assert!(matches!(err, ClientError::Protocol(_)), "{err}");
    }

    #[test]
    fn payload_parsers_round_trip_and_reject_damage() {
        assert_eq!(parse_scores("1.5 -0.25", 2).unwrap(), vec![1.5, -0.25]);
        assert!(parse_scores("1.5", 2).is_err(), "count mismatch is damage");
        assert!(parse_scores("1.5 x", 2).is_err());
        assert_eq!(parse_ranked("3:1.5 9:-0.25").unwrap(), vec![(3, 1.5), (9, -0.25)]);
        assert_eq!(parse_ranked("").unwrap(), vec![]);
        assert!(parse_ranked("3").is_err());
        assert_eq!(score_line(&[(0, 1, 2), (3, 4, 5)]), "SCORE 0 1 2 3 4 5");
    }

    #[test]
    fn connect_refused_is_a_retryable_connect_error() {
        // bind then drop: the port is (momentarily) nobody's → refused
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let err = oneshot_request(addr, &ClientConfig::default(), "PING").unwrap_err();
        assert!(matches!(err, ClientError::Connect(_)), "{err}");
        assert!(err.is_retryable());
    }

    #[test]
    fn dead_endpoint_exhausts_retries_with_budgeted_attempts() {
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let cfg = ClientConfig {
            max_retries: 2,
            backoff: BackoffConfig { base: Duration::from_millis(1), ..BackoffConfig::default() },
            ..ClientConfig::default()
        };
        let registry = Arc::new(MetricsRegistry::new());
        let mut client = Client::with_registry(addr, cfg, registry);
        let err = client.ping().unwrap_err();
        assert!(
            matches!(err, ClientError::RetriesExhausted { attempts: 3, .. }),
            "initial + 2 retries: {err}"
        );
        assert_eq!(client.stats().retries.get(), 2);
        assert_eq!(client.stats().errors.get(), 1);
        assert_eq!(client.stats().requests.get(), 1, "retries are not new logical requests");
    }

    #[test]
    fn non_idempotent_requests_are_never_retried() {
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let registry = Arc::new(MetricsRegistry::new());
        let mut client = Client::with_registry(addr, ClientConfig::default(), registry);
        let err = client.reload("/tmp/whatever.bundle").unwrap_err();
        assert!(matches!(err, ClientError::Connect(_)), "no RetriesExhausted wrapper: {err}");
        assert_eq!(client.stats().retries.get(), 0);
    }
}
