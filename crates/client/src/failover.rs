//! Replica failover: a multi-endpoint client with per-endpoint circuit
//! breakers and `HEALTH`-probed recovery.
//!
//! The client is *sticky*: it keeps sending to the endpoint that last
//! worked, over a cached pipelined [`Session`] per endpoint (reopened
//! transparently when a transport failure invalidates it). On a retryable
//! failure it records the failure against that endpoint's breaker, advances
//! its preference to the next replica, and retries there (counted in
//! `client.failovers`). An endpoint whose breaker
//! has tripped is skipped without touching the network until its cooldown
//! elapses; the first request after cooldown triggers a half-open `HEALTH`
//! probe — only a served `HEALTH` (the readiness verb, which exercises the
//! full engine path) closes the breaker and readmits the replica.
//!
//! Fatal server answers (`ERR bad request`, unknown relation, ...) are
//! returned immediately and do **not** count against the endpoint: a replica
//! that correctly rejects a malformed request is healthy.

use crate::backoff::Backoff;
use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::budget::RetryBudget;
use crate::client::{is_transport_error, oneshot_request, ClientConfig, ProtocolClient};
use crate::error::ClientError;
use crate::session::Session;
use crate::stats::ClientStats;
use rmpi_obs::MetricsRegistry;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Failover knobs: the per-attempt client config plus the breaker shape
/// applied to every endpoint.
#[derive(Clone, Debug, Default)]
pub struct FailoverConfig {
    /// Timeouts, retry policy, backoff and budget (shared across endpoints).
    pub client: ClientConfig,
    /// Circuit-breaker tuning (one breaker per endpoint).
    pub breaker: BreakerConfig,
}

struct Endpoint {
    addr: SocketAddr,
    breaker: CircuitBreaker,
    /// Cached pipelined session; dropped on transport failures so the next
    /// attempt reconnects fresh.
    session: Option<Session>,
}

/// A client over a replica set. Same typed verbs as [`crate::Client`] via
/// [`ProtocolClient`]; requests transparently fail over between replicas.
pub struct FailoverClient {
    endpoints: Vec<Endpoint>,
    cfg: ClientConfig,
    /// Preferred endpoint index (last known good).
    current: usize,
    /// Endpoint used by the previous wire attempt, for failover counting.
    last_used: Option<usize>,
    backoff: Backoff,
    budget: RetryBudget,
    stats: ClientStats,
}

impl FailoverClient {
    /// A failover client over `addrs` (tried in order from the preferred
    /// endpoint), recording metrics into the process-global registry.
    pub fn new(addrs: Vec<SocketAddr>, cfg: FailoverConfig) -> Self {
        Self::with_registry(addrs, cfg, Arc::clone(rmpi_obs::global()))
    }

    /// Same, recording into an explicit registry (tests).
    pub fn with_registry(
        addrs: Vec<SocketAddr>,
        cfg: FailoverConfig,
        registry: Arc<MetricsRegistry>,
    ) -> Self {
        assert!(!addrs.is_empty(), "FailoverClient needs at least one endpoint");
        let endpoints = addrs
            .into_iter()
            .map(|addr| Endpoint {
                addr,
                breaker: CircuitBreaker::new(cfg.breaker.clone()),
                session: None,
            })
            .collect();
        FailoverClient {
            endpoints,
            backoff: Backoff::new(cfg.client.backoff.clone()),
            budget: RetryBudget::new(cfg.client.budget.clone()),
            stats: ClientStats::with_registry(registry),
            cfg: cfg.client,
            current: 0,
            last_used: None,
        }
    }

    /// This client's metric handles.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// Breaker state per endpoint, in construction order (observability).
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        let now = Instant::now();
        self.endpoints.iter().map(|e| e.breaker.state(now)).collect()
    }

    /// Choose the next usable endpoint, starting from the preferred one. An
    /// endpoint coming out of cooldown is admitted only after a successful
    /// half-open `HEALTH` probe; a failed probe re-opens its breaker and the
    /// scan continues.
    fn pick(&mut self) -> Option<usize> {
        let n = self.endpoints.len();
        for offset in 0..n {
            let idx = (self.current + offset) % n;
            let now = Instant::now();
            let was_open = self.endpoints[idx].breaker.state(now) != BreakerState::Closed;
            if !self.endpoints[idx].breaker.allows(now) {
                continue;
            }
            if was_open {
                // half-open: one probe decides. The probe is a one-shot
                // exchange on purpose: it must judge the *endpoint*, not
                // whatever state a cached session is in.
                match oneshot_request(self.endpoints[idx].addr, &self.cfg, "HEALTH") {
                    Ok(_) => self.endpoints[idx].breaker.record_success(),
                    Err(_) => {
                        if self.endpoints[idx].breaker.record_failure(Instant::now()) {
                            self.stats.breaker_open.inc();
                        }
                        continue;
                    }
                }
            }
            return Some(idx);
        }
        None
    }

    /// One attempt against endpoint `idx` over its cached session,
    /// (re)connecting first if the cache is empty or dead. Transport-level
    /// failures invalidate the cache. With a `wait`, the caller stops
    /// waiting for this attempt's response after that long (v2 sessions;
    /// the v1 fallback keeps the socket clock).
    fn attempt_on(
        &mut self,
        idx: usize,
        line: &str,
        wait: Option<Duration>,
    ) -> Result<String, ClientError> {
        if !self.endpoints[idx].session.as_ref().is_some_and(|s| s.is_alive()) {
            let session = Session::connect(self.endpoints[idx].addr, &self.cfg)?;
            self.stats.sessions_opened.inc();
            self.endpoints[idx].session = Some(session);
        }
        let session = self.endpoints[idx].session.as_ref().expect("just ensured");
        let result = match wait {
            Some(wait) => session.request_timeout(line, wait),
            None => session.request(line),
        };
        if let Err(e) = &result {
            if is_transport_error(e) {
                self.endpoints[idx].session = None;
            }
        }
        result
    }

    /// Like [`ProtocolClient::request_line`], but under an absolute
    /// end-to-end deadline. Every attempt — the first and each failover
    /// retry — is sent with a fresh `DEADLINE <remaining-ms>` hint computed
    /// at that forward, so a backend serving a retry is granted only what
    /// remains of the caller's wait, never the original budget; retry
    /// sleeps are clamped to the deadline, and a request whose budget is
    /// spent answers `deadline expired` (transient) exactly like a backend
    /// shed. `line` must not already carry a `DEADLINE` hint.
    pub fn request_line_deadline(
        &mut self,
        line: &str,
        idempotent: bool,
        deadline: Instant,
    ) -> Result<String, ClientError> {
        self.run(line, idempotent, Some(deadline))
    }

    fn run(
        &mut self,
        line: &str,
        idempotent: bool,
        deadline: Option<Instant>,
    ) -> Result<String, ClientError> {
        self.stats.requests.inc();
        let t0 = Instant::now();
        let mut attempts: u32 = 0;
        loop {
            // the remaining budget is re-derived per attempt: this is what a
            // forwarded DEADLINE hint decays by on each retry
            let remaining = deadline.map(|d| d.saturating_duration_since(Instant::now()));
            if remaining.is_some_and(|r| r.is_zero()) {
                self.stats.errors.inc();
                return Err(ClientError::from_server_err("deadline expired"));
            }
            let Some(idx) = self.pick() else {
                // every breaker is open: rather than fail fast, a retryable
                // request waits out the *shortest* cooldown (it counts as a
                // retry against budget and attempt caps) and probes then —
                // this turns a brief full-outage blip into latency instead
                // of an error burst
                let wait_until = self.endpoints.iter().filter_map(|e| e.breaker.retry_at()).min();
                let may_retry = idempotent
                    && wait_until.is_some()
                    && attempts <= self.cfg.max_retries
                    && self.budget.try_withdraw();
                if !may_retry {
                    self.stats.errors.inc();
                    return Err(ClientError::NoHealthyEndpoint { last: None });
                }
                self.stats.retries.inc();
                attempts += 1;
                if let Some(until) = wait_until {
                    // each wait is capped at the backoff ceiling so a long
                    // cooldown costs bounded latency per retry and the
                    // attempt cap stays the real limit; a deadline caps it
                    // further (waking at the deadline turns the retry into
                    // `deadline expired` at the top of the loop)
                    let mut target = until.min(Instant::now() + self.cfg.backoff.max);
                    if let Some(d) = deadline {
                        target = target.min(d);
                    }
                    // sleep can wake a hair early when the OS clock rounds
                    // down; re-check and sleep the remainder so the retried
                    // pick() meets a genuinely half-open breaker instead of
                    // burning a retry on one that is still open
                    let mut now = Instant::now();
                    while now < target {
                        std::thread::sleep(target - now);
                        now = Instant::now();
                    }
                }
                continue;
            };
            if self.last_used.is_some_and(|prev| prev != idx) {
                self.stats.failovers.inc();
            }
            self.last_used = Some(idx);
            self.current = idx;
            attempts += 1;
            let hinted;
            let attempt_line = match remaining {
                Some(rem) => {
                    hinted = format!("DEADLINE {} {line}", rem.as_millis().max(1));
                    hinted.as_str()
                }
                None => line,
            };
            match self.attempt_on(idx, attempt_line, remaining) {
                Ok(payload) => {
                    self.endpoints[idx].breaker.record_success();
                    self.budget.record_success();
                    self.backoff.reset();
                    self.stats.request_latency.record_duration(t0.elapsed());
                    return Ok(payload);
                }
                Err(e) => {
                    if e.is_retryable() {
                        // transport damage or load shedding: the endpoint is
                        // suspect
                        if self.endpoints[idx].breaker.record_failure(Instant::now()) {
                            self.stats.breaker_open.inc();
                        }
                        // prefer the next replica for the retry (and for
                        // future requests, until it fails in turn)
                        self.current = (idx + 1) % self.endpoints.len();
                    }
                    let may_retry = idempotent
                        && e.is_retryable()
                        && attempts <= self.cfg.max_retries
                        && self.budget.try_withdraw();
                    if !may_retry {
                        self.stats.errors.inc();
                        return Err(if attempts > 1 {
                            ClientError::RetriesExhausted { attempts, last: Box::new(e) }
                        } else {
                            e
                        });
                    }
                    self.stats.retries.inc();
                    let mut delay = self.backoff.next_delay();
                    if let Some(d) = deadline {
                        // never sleep past the deadline: the next iteration
                        // converts an exhausted budget into the typed error
                        delay = delay.min(d.saturating_duration_since(Instant::now()));
                    }
                    std::thread::sleep(delay);
                }
            }
        }
    }
}

impl ProtocolClient for FailoverClient {
    fn request_line(&mut self, line: &str, idempotent: bool) -> Result<String, ClientError> {
        self.run(line, idempotent, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backoff::BackoffConfig;
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    /// A controllable fake replica: answers `OK pong` to every line while
    /// `healthy`; when unhealthy it drops new connections without answering
    /// **and** cuts established ones at their next request, so cached
    /// sessions die too (as a real crashed replica's would).
    struct FakeReplica {
        addr: SocketAddr,
        healthy: Arc<AtomicBool>,
        stop: Arc<AtomicBool>,
        thread: Option<std::thread::JoinHandle<()>>,
    }

    impl FakeReplica {
        fn spawn() -> FakeReplica {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let healthy = Arc::new(AtomicBool::new(true));
            let stop = Arc::new(AtomicBool::new(false));
            let (h, s) = (Arc::clone(&healthy), Arc::clone(&stop));
            let thread = std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if s.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(conn) = conn else { continue };
                    if !h.load(Ordering::SeqCst) {
                        continue; // drop: client sees a cut connection
                    }
                    let mut reader = BufReader::new(conn.try_clone().unwrap());
                    let mut line = String::new();
                    let mut conn = conn;
                    while reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                        if !h.load(Ordering::SeqCst) {
                            break; // cut mid-session: the client sees truncation
                        }
                        if writeln!(conn, "OK pong").is_err() {
                            break;
                        }
                        line.clear();
                    }
                }
            });
            FakeReplica { addr, healthy, stop, thread: Some(thread) }
        }

        fn set_healthy(&self, healthy: bool) {
            self.healthy.store(healthy, Ordering::SeqCst);
        }
    }

    impl Drop for FakeReplica {
        fn drop(&mut self) {
            self.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.addr);
            if let Some(t) = self.thread.take() {
                let _ = t.join();
            }
        }
    }

    fn fast_cfg() -> FailoverConfig {
        FailoverConfig {
            client: ClientConfig {
                max_retries: 3,
                backoff: BackoffConfig {
                    base: Duration::from_millis(1),
                    max: Duration::from_millis(5),
                    ..BackoffConfig::default()
                },
                ..ClientConfig::default()
            },
            breaker: BreakerConfig { trip_after: 2, cooldown: Duration::from_millis(60) },
        }
    }

    fn client(addrs: Vec<SocketAddr>, cfg: FailoverConfig) -> FailoverClient {
        FailoverClient::with_registry(addrs, cfg, Arc::new(MetricsRegistry::new()))
    }

    fn dead_addr() -> SocketAddr {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    }

    #[test]
    fn fails_over_from_a_dead_preferred_endpoint() {
        let live = FakeReplica::spawn();
        let mut c = client(vec![dead_addr(), live.addr], fast_cfg());
        c.ping().expect("second replica should answer");
        assert_eq!(c.stats().retries.get(), 1);
        assert_eq!(c.stats().failovers.get(), 1);
        // stickiness: the next request goes straight to the live replica
        c.ping().expect("sticky");
        assert_eq!(c.stats().retries.get(), 1, "no new retries once failed over");
    }

    #[test]
    fn breaker_trips_and_dead_endpoint_is_skipped_without_network_attempts() {
        let live = FakeReplica::spawn();
        let mut c = client(vec![dead_addr(), live.addr], fast_cfg());
        // two requests' worth of failures against endpoint 0 trip it
        c.ping().unwrap();
        let states = c.breaker_states();
        assert_eq!(states[1], BreakerState::Closed);
        // drive endpoint 0 to trip_after failures: force preference back
        c.current = 0;
        c.ping().unwrap();
        assert_eq!(c.breaker_states()[0], BreakerState::Open, "two consecutive failures trip");
        assert_eq!(c.stats().breaker_open.get(), 1);
        let retries_after_trip = c.stats().retries.get();
        c.current = 0; // even when preferred, an open breaker is skipped
        c.ping().unwrap();
        assert_eq!(c.stats().retries.get(), retries_after_trip, "open breaker: no wire attempt");
    }

    #[test]
    fn half_open_health_probe_readmits_a_recovered_replica() {
        let flaky = FakeReplica::spawn();
        let cfg = fast_cfg();
        let cooldown = cfg.breaker.cooldown;
        let mut c = client(vec![flaky.addr], cfg);
        c.ping().unwrap();
        flaky.set_healthy(false);
        let err = c.ping().unwrap_err();
        assert!(matches!(err, ClientError::NoHealthyEndpoint { .. }), "{err}");
        assert_eq!(c.breaker_states()[0], BreakerState::Open);
        // still down at cooldown: the HEALTH probe fails, breaker re-opens
        std::thread::sleep(cooldown + Duration::from_millis(10));
        let err = c.ping().unwrap_err();
        assert!(matches!(err, ClientError::NoHealthyEndpoint { .. }), "{err}");
        assert!(c.stats().breaker_open.get() >= 2, "failed probe re-trips");
        // recovered: the probe readmits and the request is served
        flaky.set_healthy(true);
        std::thread::sleep(cooldown + Duration::from_millis(10));
        c.ping().expect("probe should readmit the recovered replica");
        assert_eq!(c.breaker_states()[0], BreakerState::Closed);
    }

    /// Regression: a forwarded `DEADLINE` hint must decay across failover
    /// retries. Re-sending the original budget would let a backend score a
    /// retry with the caller's *full* wait re-granted, long after the
    /// caller has given up.
    #[test]
    fn deadline_hints_decay_across_failover_retries() {
        let lines = Arc::new(std::sync::Mutex::new(Vec::<String>::new()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server_lines = Arc::clone(&lines);
        let server = std::thread::spawn(move || {
            let mut served = 0usize;
            for conn in listener.incoming() {
                let Ok(conn) = conn else { continue };
                let mut reader = BufReader::new(conn.try_clone().unwrap());
                let mut conn = conn;
                let mut line = String::new();
                // answer the PROTO probe with a non-v2 frame: v1 fallback
                if reader.read_line(&mut line).map(|n| n == 0).unwrap_or(true) {
                    continue;
                }
                if writeln!(conn, "OK v1").is_err() {
                    continue;
                }
                line.clear();
                if reader.read_line(&mut line).map(|n| n == 0).unwrap_or(true) {
                    continue;
                }
                server_lines.lock().unwrap().push(line.trim_end().to_owned());
                served += 1;
                if served <= 2 {
                    // burn some budget, then cut the connection so the
                    // client retries the (idempotent) request
                    std::thread::sleep(Duration::from_millis(20));
                    continue; // conn drops here
                }
                writeln!(conn, "OK pong").unwrap();
                return;
            }
        });
        // trip_after above the cut count: every retry reaches the wire
        let cfg = FailoverConfig {
            breaker: BreakerConfig { trip_after: 10, cooldown: Duration::from_millis(60) },
            ..fast_cfg()
        };
        let mut c = client(vec![addr], cfg);
        let budget = Duration::from_millis(500);
        let payload = c
            .request_line_deadline("PING", true, Instant::now() + budget)
            .expect("third attempt is served");
        assert_eq!(payload, "pong");
        server.join().unwrap();
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 3, "two cuts then a success: {lines:?}");
        let hints: Vec<u64> = lines
            .iter()
            .map(|l| {
                let mut parts = l.split_whitespace();
                assert_eq!(parts.next(), Some("DEADLINE"), "hint on every attempt: {l}");
                let ms = parts.next().unwrap().parse().unwrap();
                assert_eq!(parts.next(), Some("PING"));
                ms
            })
            .collect();
        assert!(hints[0] <= budget.as_millis() as u64, "first hint within budget: {hints:?}");
        assert!(hints[1] < hints[0] && hints[2] < hints[1], "hints must shrink: {hints:?}");
    }

    #[test]
    fn an_exhausted_deadline_answers_a_transient_deadline_expired() {
        let live = FakeReplica::spawn();
        let mut c = client(vec![live.addr], fast_cfg());
        let err = c.request_line_deadline("PING", true, Instant::now()).unwrap_err();
        assert!(
            matches!(&err, ClientError::Server { message, transient: true }
                if message == "deadline expired"),
            "{err}"
        );
        assert_eq!(c.stats().errors.get(), 1);
    }

    #[test]
    fn all_endpoints_down_is_no_healthy_endpoint() {
        let cfg = FailoverConfig {
            breaker: BreakerConfig { trip_after: 1, cooldown: Duration::from_secs(60) },
            ..fast_cfg()
        };
        let mut c = client(vec![dead_addr(), dead_addr()], cfg);
        let err = c.ping().unwrap_err();
        // both breakers trip during the attempt sequence; whichever shape the
        // final error takes, it must be terminal and the breakers open
        assert!(!err.is_retryable(), "{err}");
        assert_eq!(c.breaker_states(), vec![BreakerState::Open, BreakerState::Open]);
        let err = c.ping().unwrap_err();
        assert!(matches!(err, ClientError::NoHealthyEndpoint { last: None }), "{err}");
        assert_eq!(c.stats().errors.get(), 2);
    }
}
