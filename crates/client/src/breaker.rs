//! Per-endpoint circuit breaker: consecutive-failure trip, timed cooldown,
//! half-open probe.
//!
//! State machine:
//!
//! ```text
//!            trip_after consecutive failures
//!   Closed ────────────────────────────────────▶ Open { until }
//!     ▲                                            │ cooldown elapses
//!     │ probe succeeds                             ▼
//!     └──────────────────────────────────────── HalfOpen
//!                        probe fails: back to Open (fresh cooldown)
//! ```
//!
//! `Closed` admits traffic and counts consecutive failures (any success
//! resets the count). `Open` rejects without touching the network until its
//! deadline. `HalfOpen` admits exactly one probe — the [`FailoverClient`]
//! sends `HEALTH` — and the probe's outcome decides between `Closed` and a
//! fresh `Open`. Time is passed in by the caller (`Instant::now()` in
//! production), which keeps transitions unit-testable without sleeping.
//!
//! [`FailoverClient`]: crate::FailoverClient

use std::time::{Duration, Instant};

/// Breaker tuning.
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures (no intervening success) that trip the breaker.
    pub trip_after: u32,
    /// How long an open breaker rejects before allowing a half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { trip_after: 3, cooldown: Duration::from_millis(250) }
    }
}

/// Observable breaker state (for metrics, logs and tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Admitting traffic.
    Closed,
    /// Rejecting until the cooldown deadline.
    Open,
    /// Admitting one probe.
    HalfOpen,
}

#[derive(Clone, Debug)]
enum Inner {
    Closed { consecutive_failures: u32 },
    Open { until: Instant },
    HalfOpen,
}

/// One endpoint's breaker. Not thread-safe (owned by a `&mut self` client).
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Inner,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker { cfg, inner: Inner::Closed { consecutive_failures: 0 } }
    }

    /// Whether a request may be sent now. An `Open` breaker whose cooldown
    /// has elapsed transitions to `HalfOpen` and admits (the admitted
    /// request is the probe).
    pub fn allows(&mut self, now: Instant) -> bool {
        match self.inner {
            Inner::Closed { .. } | Inner::HalfOpen => true,
            Inner::Open { until } => {
                if now >= until {
                    self.inner = Inner::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful request (or probe): the breaker closes and the
    /// failure streak resets.
    pub fn record_success(&mut self) {
        self.inner = Inner::Closed { consecutive_failures: 0 };
    }

    /// Record a failed request. Returns `true` when this failure *trips* the
    /// breaker (a Closed→Open or HalfOpen→Open edge) so the caller can count
    /// trip events rather than rejected requests.
    pub fn record_failure(&mut self, now: Instant) -> bool {
        match &mut self.inner {
            Inner::Closed { consecutive_failures } => {
                *consecutive_failures += 1;
                if *consecutive_failures >= self.cfg.trip_after {
                    self.inner = Inner::Open { until: now + self.cfg.cooldown };
                    true
                } else {
                    false
                }
            }
            Inner::HalfOpen => {
                self.inner = Inner::Open { until: now + self.cfg.cooldown };
                true
            }
            // failures reported while already open (e.g. from a request that
            // was in flight when the breaker tripped) extend nothing
            Inner::Open { .. } => false,
        }
    }

    /// When an `Open` breaker will next admit a probe (`None` unless open).
    /// Lets a caller with every endpoint open *wait out* the shortest
    /// cooldown instead of failing fast.
    pub fn retry_at(&self) -> Option<Instant> {
        match self.inner {
            Inner::Open { until } => Some(until),
            _ => None,
        }
    }

    /// Current state, `Open`'s cooldown evaluated against `now`.
    pub fn state(&self, now: Instant) -> BreakerState {
        match self.inner {
            Inner::Closed { .. } => BreakerState::Closed,
            Inner::HalfOpen => BreakerState::HalfOpen,
            Inner::Open { until } => {
                if now >= until {
                    BreakerState::HalfOpen
                } else {
                    BreakerState::Open
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(trip_after: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            trip_after,
            cooldown: Duration::from_millis(cooldown_ms),
        })
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let now = Instant::now();
        let mut b = breaker(3, 100);
        assert!(!b.record_failure(now));
        assert!(!b.record_failure(now));
        b.record_success(); // streak broken
        assert!(!b.record_failure(now));
        assert!(!b.record_failure(now));
        assert!(b.record_failure(now), "third consecutive failure trips");
        assert_eq!(b.state(now), BreakerState::Open);
        assert!(!b.allows(now));
    }

    #[test]
    fn cooldown_leads_to_half_open_probe_then_close_or_reopen() {
        let now = Instant::now();
        let mut b = breaker(1, 100);
        assert!(b.record_failure(now));
        assert!(!b.allows(now + Duration::from_millis(50)), "still cooling down");
        let later = now + Duration::from_millis(100);
        assert!(b.allows(later), "cooldown elapsed: one probe admitted");
        assert_eq!(b.state(later), BreakerState::HalfOpen);

        // failed probe: straight back to open with a fresh cooldown
        assert!(b.record_failure(later));
        assert!(!b.allows(later + Duration::from_millis(99)));
        let probe2 = later + Duration::from_millis(100);
        assert!(b.allows(probe2));
        b.record_success();
        assert_eq!(b.state(probe2), BreakerState::Closed);
        assert!(b.allows(probe2));
    }

    #[test]
    fn failures_while_open_do_not_extend_the_cooldown() {
        let now = Instant::now();
        let mut b = breaker(1, 100);
        assert!(b.record_failure(now));
        assert!(!b.record_failure(now + Duration::from_millis(90)), "no re-trip while open");
        assert!(b.allows(now + Duration::from_millis(100)), "original deadline stands");
    }
}
