//! Per-endpoint circuit breaker: consecutive-failure trip, timed cooldown,
//! half-open probe.
//!
//! State machine:
//!
//! ```text
//!            trip_after consecutive failures
//!   Closed ────────────────────────────────────▶ Open { until }
//!     ▲                                            │ cooldown elapses
//!     │ probe succeeds                             ▼
//!     └──────────────────────────────────────── HalfOpen
//!                        probe fails: back to Open (fresh cooldown)
//! ```
//!
//! `Closed` admits traffic and counts consecutive failures (any success
//! resets the count). `Open` rejects without touching the network until its
//! deadline. `HalfOpen` admits exactly one probe — the [`FailoverClient`]
//! sends `HEALTH` — and the probe's outcome decides between `Closed` and a
//! fresh `Open`. Time is passed in by the caller (`Instant::now()` in
//! production), which keeps transitions unit-testable without sleeping.
//!
//! [`FailoverClient`]: crate::FailoverClient

use std::time::{Duration, Instant};

/// Breaker tuning.
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures (no intervening success) that trip the breaker.
    pub trip_after: u32,
    /// How long an open breaker rejects before allowing a half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { trip_after: 3, cooldown: Duration::from_millis(250) }
    }
}

/// Observable breaker state (for metrics, logs and tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Admitting traffic.
    Closed,
    /// Rejecting until the cooldown deadline.
    Open,
    /// Admitting one probe.
    HalfOpen,
}

#[derive(Clone, Debug)]
enum Inner {
    Closed { consecutive_failures: u32 },
    Open { until: Instant },
    HalfOpen,
}

/// One endpoint's breaker. Not thread-safe (owned by a `&mut self` client).
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Inner,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker { cfg, inner: Inner::Closed { consecutive_failures: 0 } }
    }

    /// Whether a request may be sent now. An `Open` breaker whose cooldown
    /// has elapsed transitions to `HalfOpen` and admits (the admitted
    /// request is the probe). While a probe is outstanding — the breaker is
    /// already `HalfOpen` — further requests are rejected, so under
    /// concurrent callers exactly one wins the probe slot and the losers
    /// neither trip nor close the breaker.
    pub fn allows(&mut self, now: Instant) -> bool {
        match self.inner {
            Inner::Closed { .. } => true,
            Inner::HalfOpen => false,
            Inner::Open { until } => {
                if now >= until {
                    self.inner = Inner::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful request (or probe): the breaker closes and the
    /// failure streak resets.
    pub fn record_success(&mut self) {
        self.inner = Inner::Closed { consecutive_failures: 0 };
    }

    /// Record a failed request. Returns `true` when this failure *trips* the
    /// breaker (a Closed→Open or HalfOpen→Open edge) so the caller can count
    /// trip events rather than rejected requests.
    pub fn record_failure(&mut self, now: Instant) -> bool {
        match &mut self.inner {
            Inner::Closed { consecutive_failures } => {
                *consecutive_failures += 1;
                if *consecutive_failures >= self.cfg.trip_after {
                    self.inner = Inner::Open { until: now + self.cfg.cooldown };
                    true
                } else {
                    false
                }
            }
            Inner::HalfOpen => {
                self.inner = Inner::Open { until: now + self.cfg.cooldown };
                true
            }
            // failures reported while already open (e.g. from a request that
            // was in flight when the breaker tripped) extend nothing
            Inner::Open { .. } => false,
        }
    }

    /// When an `Open` breaker will next admit a probe (`None` unless open).
    /// Lets a caller with every endpoint open *wait out* the shortest
    /// cooldown instead of failing fast.
    pub fn retry_at(&self) -> Option<Instant> {
        match self.inner {
            Inner::Open { until } => Some(until),
            _ => None,
        }
    }

    /// Current state, `Open`'s cooldown evaluated against `now`.
    pub fn state(&self, now: Instant) -> BreakerState {
        match self.inner {
            Inner::Closed { .. } => BreakerState::Closed,
            Inner::HalfOpen => BreakerState::HalfOpen,
            Inner::Open { until } => {
                if now >= until {
                    BreakerState::HalfOpen
                } else {
                    BreakerState::Open
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(trip_after: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            trip_after,
            cooldown: Duration::from_millis(cooldown_ms),
        })
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let now = Instant::now();
        let mut b = breaker(3, 100);
        assert!(!b.record_failure(now));
        assert!(!b.record_failure(now));
        b.record_success(); // streak broken
        assert!(!b.record_failure(now));
        assert!(!b.record_failure(now));
        assert!(b.record_failure(now), "third consecutive failure trips");
        assert_eq!(b.state(now), BreakerState::Open);
        assert!(!b.allows(now));
    }

    #[test]
    fn cooldown_leads_to_half_open_probe_then_close_or_reopen() {
        let now = Instant::now();
        let mut b = breaker(1, 100);
        assert!(b.record_failure(now));
        assert!(!b.allows(now + Duration::from_millis(50)), "still cooling down");
        let later = now + Duration::from_millis(100);
        assert!(b.allows(later), "cooldown elapsed: one probe admitted");
        assert_eq!(b.state(later), BreakerState::HalfOpen);

        // failed probe: straight back to open with a fresh cooldown
        assert!(b.record_failure(later));
        assert!(!b.allows(later + Duration::from_millis(99)));
        let probe2 = later + Duration::from_millis(100);
        assert!(b.allows(probe2));
        b.record_success();
        assert_eq!(b.state(probe2), BreakerState::Closed);
        assert!(b.allows(probe2));
    }

    /// Satellite of the fleet-router work: under concurrent callers racing
    /// through an elapsed cooldown, exactly one observes the Open→HalfOpen
    /// admission edge; the losers are rejected and — crucially — recording
    /// nothing, they neither trip the breaker back open nor close it. The
    /// thread start order is jittered by a seeded generator so reruns
    /// explore different interleavings deterministically per seed.
    #[test]
    fn half_open_admits_exactly_one_concurrent_probe() {
        use std::sync::{Arc, Barrier, Mutex};

        // SplitMix64 step — enough randomness for per-thread start jitter
        fn mix(seed: u64) -> u64 {
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        for seed in [7u64, 11, 13] {
            let cooldown = Duration::from_millis(10);
            let b = Arc::new(Mutex::new(breaker(1, 10)));
            assert!(b.lock().unwrap().record_failure(Instant::now()), "trip");
            std::thread::sleep(cooldown + Duration::from_millis(5));

            let threads = 8;
            let barrier = Arc::new(Barrier::new(threads));
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let b = Arc::clone(&b);
                    let barrier = Arc::clone(&barrier);
                    let jitter = mix(seed.wrapping_add(t as u64)) % 3;
                    std::thread::spawn(move || {
                        barrier.wait();
                        std::thread::sleep(Duration::from_micros(jitter * 50));
                        b.lock().unwrap().allows(Instant::now())
                    })
                })
                .collect();
            let admitted = handles
                .into_iter()
                .map(|h| h.join().expect("probe thread"))
                .filter(|&won| won)
                .count();

            assert_eq!(admitted, 1, "exactly one probe wins (seed {seed})");
            // the losers changed nothing: the breaker still awaits the
            // winner's verdict
            assert_eq!(b.lock().unwrap().state(Instant::now()), BreakerState::HalfOpen);
            assert!(!b.lock().unwrap().allows(Instant::now()), "probe slot stays taken");
            // only the winner's recorded outcome resolves the state
            b.lock().unwrap().record_success();
            assert_eq!(b.lock().unwrap().state(Instant::now()), BreakerState::Closed);
        }
    }

    #[test]
    fn failures_while_open_do_not_extend_the_cooldown() {
        let now = Instant::now();
        let mut b = breaker(1, 100);
        assert!(b.record_failure(now));
        assert!(!b.record_failure(now + Duration::from_millis(90)), "no re-trip while open");
        assert!(b.allows(now + Duration::from_millis(100)), "original deadline stands");
    }
}
