//! `rmpi-client` — a resilient, dependency-light blocking client for the
//! `rmpi-serve` line protocol.
//!
//! The serving layer's determinism contract (served scores are bit-identical
//! to offline `RmpiModel::score`) makes `SCORE` and `RANK` pure: any attempt
//! whose response was lost can be retried without changing the answer. This
//! crate builds the retry stack on that fact, in layers that are each
//! independently testable:
//!
//! - [`error`]: failures classified **retryable vs fatal** — transport
//!   damage and server load shedding retry; definitive server rejections do
//!   not. A response missing its trailing newline is always treated as
//!   damage ([`ClientError::TruncatedResponse`]), which is what guarantees a
//!   chaos-disturbed reply is *retried*, never misparsed.
//! - [`backoff`]: deterministic seeded exponential backoff with downward
//!   jitter — a fixed seed reproduces the exact delay sequence.
//! - [`budget`]: a Finagle-style retry budget (token bucket) so retries are
//!   capped as a fraction of successful traffic, not just per request.
//! - [`breaker`]: a per-endpoint circuit breaker — consecutive-failure trip,
//!   timed cooldown, half-open probe.
//! - [`session`]: a persistent, pipelined protocol-v2 connection
//!   ([`Session`]) — many requests in flight at once, demultiplexed by tag,
//!   with a one-typed-error-per-in-flight-request death contract — plus a
//!   small [`ClientPool`] of reusable sessions.
//! - [`Client`]: one endpoint, timeouts on connect/read/write, retry loop.
//!   Requests ride a cached [`Session`] (reopened transparently after
//!   transport failures); the legacy connection-per-request path survives
//!   as [`client::oneshot_request`].
//! - [`FailoverClient`]: a replica set with sticky endpoint preference,
//!   breaker-gated failover and `HEALTH`-probed readmission, with one
//!   cached session per endpoint.
//!
//! Both clients expose the protocol verbs through [`ProtocolClient`]
//! (`ping` / `health` / `score` / `score_batch` / `rank_tails` /
//! `stats_json` / `metrics_json` / `reload`), and record `client.*` counters
//! ([`ClientStats`]) into an `rmpi-obs` registry: `client.retries.count`,
//! `client.failovers.count`, `client.breaker_open.count`, and friends.

pub mod backoff;
pub mod breaker;
pub mod budget;
pub mod client;
pub mod error;
pub mod failover;
pub mod session;
pub mod stats;

pub use backoff::{Backoff, BackoffConfig};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use budget::{BudgetConfig, RetryBudget};
pub use client::{oneshot_request, Client, ClientConfig, ProtocolClient};
pub use error::ClientError;
pub use failover::{FailoverClient, FailoverConfig};
pub use session::{ClientPool, PooledSession, Session};
pub use stats::ClientStats;
