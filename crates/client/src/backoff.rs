//! Deterministic seeded exponential backoff with downward jitter.
//!
//! Delay for attempt *n* (0-based) is
//! `min(max, base · multiplier^n) · (1 − jitter · u)` with `u ∈ [0, 1)`
//! drawn from a seeded SplitMix64 stream. Jitter is *downward only*: the
//! configured ceiling is a hard bound (useful for test determinism and for
//! reasoning about worst-case latency), while the randomness still
//! de-synchronises clients that failed in the same instant. A fixed seed
//! reproduces the exact delay sequence, which the chaos soak test relies on.

use std::time::Duration;

/// Tiny deterministic generator (SplitMix64): one u64 of state, passes
/// statistical muster for jitter purposes, no dependencies.
#[derive(Clone, Debug)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Backoff shape. The defaults suit an in-process or same-host replica set:
/// first retry after ≤10 ms, doubling to a 500 ms ceiling.
#[derive(Clone, Debug)]
pub struct BackoffConfig {
    /// Delay before the first retry (pre-jitter).
    pub base: Duration,
    /// Growth factor per attempt.
    pub multiplier: f64,
    /// Hard ceiling on any single delay.
    pub max: Duration,
    /// Fraction of the delay that jitter may remove, in `[0, 1]`.
    pub jitter: f64,
    /// Seed for the jitter stream; a fixed seed fixes every delay.
    pub seed: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base: Duration::from_millis(10),
            multiplier: 2.0,
            max: Duration::from_millis(500),
            jitter: 0.5,
            seed: 0,
        }
    }
}

/// Stateful delay sequence: one [`next_delay`](Backoff::next_delay) per
/// retry, [`reset`](Backoff::reset) after a success.
#[derive(Clone, Debug)]
pub struct Backoff {
    cfg: BackoffConfig,
    rng: SplitMix64,
    attempt: u32,
}

impl Backoff {
    /// A fresh sequence at attempt 0.
    pub fn new(cfg: BackoffConfig) -> Self {
        let rng = SplitMix64::new(cfg.seed);
        Backoff { cfg, rng, attempt: 0 }
    }

    /// The delay to sleep before the next retry; advances the attempt
    /// counter and the jitter stream.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.cfg.multiplier.powi(self.attempt.min(30) as i32);
        let raw = self.cfg.base.as_secs_f64() * exp;
        let capped = raw.min(self.cfg.max.as_secs_f64());
        let u = self.rng.next_f64();
        let jittered = capped * (1.0 - self.cfg.jitter.clamp(0.0, 1.0) * u);
        self.attempt = self.attempt.saturating_add(1);
        Duration::from_secs_f64(jittered.max(0.0))
    }

    /// Back to attempt 0 (the jitter stream keeps advancing, by design —
    /// resetting it would re-correlate clients after every success).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_delays() {
        let cfg = BackoffConfig::default();
        let mut a = Backoff::new(cfg.clone());
        let mut b = Backoff::new(cfg);
        for _ in 0..16 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn delays_grow_to_the_cap_and_respect_jitter_bounds() {
        let cfg = BackoffConfig {
            base: Duration::from_millis(10),
            multiplier: 2.0,
            max: Duration::from_millis(100),
            jitter: 0.5,
            seed: 7,
        };
        let mut backoff = Backoff::new(cfg);
        let mut prev_ceiling = 0.0f64;
        for attempt in 0..10 {
            let d = backoff.next_delay().as_secs_f64();
            let ceiling = (0.010 * 2.0f64.powi(attempt)).min(0.100);
            assert!(d <= ceiling + 1e-9, "attempt {attempt}: {d} > {ceiling}");
            assert!(d >= ceiling * 0.5 - 1e-9, "attempt {attempt}: {d} < half of {ceiling}");
            assert!(ceiling >= prev_ceiling);
            prev_ceiling = ceiling;
        }
    }

    #[test]
    fn reset_restarts_the_exponent_but_not_the_stream() {
        let mut backoff = Backoff::new(BackoffConfig { jitter: 0.0, ..BackoffConfig::default() });
        let first = backoff.next_delay();
        let _ = backoff.next_delay();
        backoff.reset();
        assert_eq!(backoff.next_delay(), first, "zero jitter: attempt-0 delay is deterministic");
    }

    #[test]
    fn splitmix_is_uniformish() {
        let mut rng = SplitMix64::new(42);
        let mean: f64 = (0..4096).map(|_| rng.next_f64()).sum::<f64>() / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}
