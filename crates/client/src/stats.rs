//! Client-side metrics: registry-backed counters mirroring the server's
//! `serve.*` family with a `client.*` family, so one `METRICS`-style dump of
//! the client process shows what the retry layer is doing.

use rmpi_obs::{Counter, Histogram, MetricsRegistry};
use std::sync::Arc;

/// Counter handles shared by [`Client`](crate::Client) and
/// [`FailoverClient`](crate::FailoverClient). Clones share storage.
#[derive(Clone, Debug)]
pub struct ClientStats {
    registry: Arc<MetricsRegistry>,
    /// `client.requests.count` — logical requests issued (retries excluded).
    pub requests: Counter,
    /// `client.retries.count` — retry attempts after a retryable failure.
    pub retries: Counter,
    /// `client.failovers.count` — requests redirected to a different
    /// endpoint than the previous one.
    pub failovers: Counter,
    /// `client.breaker_open.count` — circuit-breaker trip events
    /// (Closed→Open or a failed half-open probe).
    pub breaker_open: Counter,
    /// `client.errors.count` — logical requests that ultimately failed.
    pub errors: Counter,
    /// `client.request.us` — end-to-end latency of successful logical
    /// requests, retries and backoff included.
    pub request_latency: Histogram,
    /// `client.sessions.count` — pipelined sessions opened (a low number
    /// relative to requests means connection reuse is working).
    pub sessions_opened: Counter,
}

impl ClientStats {
    /// Handles into the process-global registry.
    pub fn new() -> Self {
        Self::with_registry(Arc::clone(rmpi_obs::global()))
    }

    /// Handles into an explicit registry (tests pass a fresh one).
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> Self {
        ClientStats {
            requests: registry.counter("client.requests.count"),
            retries: registry.counter("client.retries.count"),
            failovers: registry.counter("client.failovers.count"),
            breaker_open: registry.counter("client.breaker_open.count"),
            errors: registry.counter("client.errors.count"),
            request_latency: registry.histogram("client.request.us"),
            sessions_opened: registry.counter("client.sessions.count"),
            registry,
        }
    }

    /// The registry these handles record into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }
}

impl Default for ClientStats {
    fn default() -> Self {
        ClientStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_under_client_names() {
        let stats = ClientStats::with_registry(Arc::new(MetricsRegistry::new()));
        stats.retries.inc();
        stats.failovers.add(2);
        let dump = stats.registry().to_json();
        for name in [
            "\"client.requests.count\": 0",
            "\"client.retries.count\": 1",
            "\"client.failovers.count\": 2",
            "\"client.breaker_open.count\": 0",
            "\"client.errors.count\": 0",
            "\"client.sessions.count\": 0",
            "\"client.request.us\"",
        ] {
            assert!(dump.contains(name), "missing {name} in {dump}");
        }
    }
}
