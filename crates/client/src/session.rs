//! Pipelined sessions over protocol v2, and a small connection pool.
//!
//! A [`Session`] is one persistent TCP connection that keeps **many requests
//! in flight at once**: each request is framed `ID <tag> <verb...>` and the
//! server echoes the tag on the (possibly out-of-order) response line. A
//! background reader thread demultiplexes response lines into per-request
//! channels keyed by tag, so any number of threads can share one `&Session`
//! — the write side is serialized by a mutex, the read side by the reader
//! thread, and nothing else blocks anyone.
//!
//! # Failure semantics (the whole point)
//!
//! The tag framing is what makes pipelining safe under chaos:
//!
//! - A response is only ever delivered to the waiter registered under its
//!   tag. A reply whose waiter already timed out finds no registration and
//!   is **dropped** — late data is never mis-attributed to a newer request.
//! - When the transport dies mid-pipeline (peer close, truncated line,
//!   read/write error, or an untagged frame on a v2 stream), the session is
//!   marked dead and every in-flight request receives **exactly one** typed
//!   [`ClientError::SessionClosed`]. No waiter is left hanging, and no
//!   waiter receives another request's bytes.
//! - A dead session stays dead; callers open a fresh one. The retry layers
//!   ([`crate::Client`], [`crate::FailoverClient`]) do this automatically
//!   because `SessionClosed` is retryable.
//!
//! # v1 fallback
//!
//! [`Session::connect`] probes with `PROTO 2`. A server that answers
//! anything other than `OK proto=2` (but answers with a *complete* frame)
//! is assumed to speak plain v1; the session keeps the persistent
//! connection but serializes requests on it (one in flight at a time).
//! Connection reuse still saves the per-request TCP handshake; only the
//! pipelining is lost.

use crate::client::{classify_response, parse_ranked, parse_scores, score_line, ClientConfig};
use crate::error::ClientError;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// State shared between a session's callers and its reader thread.
#[derive(Debug)]
struct Core {
    /// Waiters for in-flight requests, keyed by tag. A waiter is removed by
    /// whichever side resolves it first: the reader (response or death) or
    /// the caller (timeout deregistration).
    inflight: Mutex<HashMap<u64, mpsc::SyncSender<Result<String, ClientError>>>>,
    /// Once true the session never serves again.
    dead: AtomicBool,
    /// Why it died (read after `dead` is observed true).
    reason: Mutex<String>,
}

impl Core {
    fn new() -> Core {
        Core {
            inflight: Mutex::new(HashMap::new()),
            dead: AtomicBool::new(false),
            reason: Mutex::new(String::new()),
        }
    }

    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Kill the session: first death wins, and every in-flight waiter gets
    /// exactly one fresh `SessionClosed` carrying the reason.
    fn die(&self, reason: &str) {
        {
            let mut r = self.reason.lock().expect("session reason lock");
            if self.dead.swap(true, Ordering::SeqCst) {
                return;
            }
            *r = reason.to_owned();
        }
        let drained: Vec<_> = {
            let mut inflight = self.inflight.lock().expect("session inflight lock");
            inflight.drain().collect()
        };
        for (_tag, tx) in drained {
            let _ = tx.send(Err(ClientError::SessionClosed(reason.to_owned())));
        }
    }

    fn closed_error(&self) -> ClientError {
        ClientError::SessionClosed(self.reason.lock().expect("session reason lock").clone())
    }
}

/// v1-fallback I/O: the persistent connection without tags, so requests are
/// serialized end-to-end under one lock.
#[derive(Debug)]
struct V1Io {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

#[derive(Debug)]
enum Mode {
    V2 {
        writer: Mutex<TcpStream>,
        next_tag: AtomicU64,
        reader: Option<std::thread::JoinHandle<()>>,
    },
    V1 {
        io: Mutex<V1Io>,
    },
}

/// One persistent, pipelining connection to a server (see module docs).
/// All request methods take `&self`: a `Session` is safe to share across
/// threads, and sharing is how concurrent requests coalesce into the
/// server's micro-batches.
#[derive(Debug)]
pub struct Session {
    addr: SocketAddr,
    read_timeout: Duration,
    core: Arc<Core>,
    mode: Mode,
}

impl Session {
    /// Connect and negotiate. Sends `PROTO 2`; `OK proto=2` starts a
    /// pipelined v2 session, any other complete frame falls back to a
    /// serialized v1 session on the same connection. An incomplete or
    /// missing handshake frame fails (retryable).
    pub fn connect(addr: SocketAddr, cfg: &ClientConfig) -> Result<Session, ClientError> {
        let stream =
            TcpStream::connect_timeout(&addr, cfg.connect_timeout).map_err(ClientError::Connect)?;
        stream
            .set_read_timeout(Some(cfg.read_timeout))
            .and_then(|()| stream.set_write_timeout(Some(cfg.write_timeout)))
            .map_err(ClientError::Io)?;
        let _ = stream.set_nodelay(true);
        let mut writer = stream.try_clone().map_err(ClientError::Io)?;
        writer.write_all(b"PROTO 2\n").map_err(ClientError::Io)?;
        let mut reader = BufReader::new(stream);
        let hello = read_frame(&mut reader)?;
        let core = Arc::new(Core::new());
        let mode = if hello == "OK proto=2" {
            let reader_core = Arc::clone(&core);
            let handle = std::thread::Builder::new()
                .name("rmpi-session-reader".into())
                .spawn(move || reader_loop(reader, reader_core))
                .map_err(ClientError::Io)?;
            Mode::V2 {
                writer: Mutex::new(writer),
                next_tag: AtomicU64::new(1),
                reader: Some(handle),
            }
        } else {
            Mode::V1 { io: Mutex::new(V1Io { reader, writer }) }
        };
        Ok(Session { addr, read_timeout: cfg.read_timeout, core, mode })
    }

    /// The endpoint this session is connected to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Negotiated protocol version: 2 (pipelined) or 1 (fallback).
    pub fn proto_version(&self) -> u32 {
        match self.mode {
            Mode::V2 { .. } => 2,
            Mode::V1 { .. } => 1,
        }
    }

    /// Whether the session can still serve requests. A dead session never
    /// recovers — open a new one.
    pub fn is_alive(&self) -> bool {
        !self.core.is_dead()
    }

    /// Send one request line and wait for its response payload. Safe to
    /// call from many threads at once; on a v2 session the requests share
    /// the wire concurrently.
    pub fn request(&self, line: &str) -> Result<String, ClientError> {
        match &self.mode {
            Mode::V2 { writer, next_tag, .. } => {
                let (tag, rx) = self.submit_v2(writer, next_tag, line)?;
                self.wait_v2(tag, rx)
            }
            Mode::V1 { io } => self.request_v1(io, line),
        }
    }

    /// Like [`Session::request`], but waits at most `timeout` for **this**
    /// request's response instead of the session-wide read timeout. A
    /// timeout deregisters the waiter (a late reply is dropped) and does
    /// not kill the session — exactly as with the session-wide clock. On a
    /// v1-fallback session the socket's read timeout is fixed at connect,
    /// so the serialized path keeps the session-wide clock.
    pub fn request_timeout(&self, line: &str, timeout: Duration) -> Result<String, ClientError> {
        match &self.mode {
            Mode::V2 { writer, next_tag, .. } => {
                let (tag, rx) = self.submit_v2(writer, next_tag, line)?;
                self.wait_v2_for(tag, rx, timeout)
            }
            Mode::V1 { io } => self.request_v1(io, line),
        }
    }

    /// `DEADLINE <ms> SCORE h r t [...]` under a per-request wait of
    /// `budget`: the server is told how much of the caller's end-to-end
    /// budget remains — its micro-batcher flushes early rather than hold
    /// the request past the deadline, and an expired item is answered
    /// `ERR deadline expired` (transient, retryable) instead of a stale
    /// score. The caller stops waiting after the same budget.
    pub fn score_batch_deadline(
        &self,
        triples: &[(u32, u32, u32)],
        budget: Duration,
    ) -> Result<Vec<f32>, ClientError> {
        let ms = budget.as_millis().max(1);
        let line = format!("DEADLINE {ms} {}", score_line(triples));
        let payload = self.request_timeout(&line, budget)?;
        parse_scores(&payload, triples.len())
    }

    /// Send many request lines and collect per-line results in submission
    /// order. On a v2 session all lines are written back-to-back (one
    /// buffered write) and sit in flight together — this is the client edge
    /// of the server's cross-connection micro-batcher.
    pub fn request_many(&self, lines: &[&str]) -> Vec<Result<String, ClientError>> {
        match &self.mode {
            Mode::V2 { writer, next_tag, .. } => {
                let submitted: Vec<_> = {
                    // register every waiter, then push all frames in one
                    // write: the server can start answering out of order
                    // while later frames are still in the kernel buffer
                    let mut buffer = String::new();
                    let mut waiters = Vec::with_capacity(lines.len());
                    for line in lines {
                        if self.core.is_dead() {
                            waiters.push(Err(self.core.closed_error()));
                            continue;
                        }
                        let tag = next_tag.fetch_add(1, Ordering::Relaxed);
                        let (tx, rx) = mpsc::sync_channel(1);
                        self.core.inflight.lock().expect("session inflight lock").insert(tag, tx);
                        buffer.push_str(&format!("ID {tag} {line}\n"));
                        waiters.push(Ok((tag, rx)));
                    }
                    if !buffer.is_empty() {
                        let mut w = writer.lock().expect("session writer lock");
                        if let Err(e) = w.write_all(buffer.as_bytes()) {
                            // die() hands every registered waiter its error
                            self.core.die(&format!("write failed: {e}"));
                        }
                    }
                    waiters
                };
                submitted
                    .into_iter()
                    .map(|w| match w {
                        Ok((tag, rx)) => self.wait_v2(tag, rx),
                        Err(e) => Err(e),
                    })
                    .collect()
            }
            Mode::V1 { io } => lines.iter().map(|line| self.request_v1(io, line)).collect(),
        }
    }

    /// `SCORE h r t` → the served (bit-exact) score of one triple.
    pub fn score(&self, head: u32, relation: u32, tail: u32) -> Result<f32, ClientError> {
        let payload = self.request(&score_line(&[(head, relation, tail)]))?;
        Ok(parse_scores(&payload, 1)?[0])
    }

    /// `SCORE h r t [h r t ...]` → one score per triple, as a single wire
    /// request (server-side batch).
    pub fn score_batch(&self, triples: &[(u32, u32, u32)]) -> Result<Vec<f32>, ClientError> {
        let payload = self.request(&score_line(triples))?;
        parse_scores(&payload, triples.len())
    }

    /// One pipelined `SCORE` request **per triple**, all in flight at once;
    /// scores return in `triples` order. Unlike [`Session::score_batch`]
    /// the server is free to coalesce these with other connections'
    /// requests into its micro-batches. Fails on the first per-request
    /// error (the triple-level results are homogeneous in practice: either
    /// the session is healthy or it died for all of them).
    pub fn score_many(&self, triples: &[(u32, u32, u32)]) -> Result<Vec<f32>, ClientError> {
        let lines: Vec<String> =
            triples.iter().map(|&(h, r, t)| score_line(&[(h, r, t)])).collect();
        let line_refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        self.request_many(&line_refs)
            .into_iter()
            .map(|r| r.and_then(|payload| Ok(parse_scores(&payload, 1)?[0])))
            .collect()
    }

    /// `RANK h r k` → up to `k` `(tail, score)` pairs, best first.
    pub fn rank_tails(
        &self,
        head: u32,
        relation: u32,
        k: usize,
    ) -> Result<Vec<(u32, f32)>, ClientError> {
        let payload = self.request(&format!("RANK {head} {relation} {k}"))?;
        parse_ranked(&payload)
    }

    /// `PING` → liveness.
    pub fn ping(&self) -> Result<(), ClientError> {
        self.request("PING").map(|_| ())
    }

    /// `HEALTH` → readiness text.
    pub fn health(&self) -> Result<String, ClientError> {
        self.request("HEALTH")
    }

    fn submit_v2(
        &self,
        writer: &Mutex<TcpStream>,
        next_tag: &AtomicU64,
        line: &str,
    ) -> Result<(u64, mpsc::Receiver<Result<String, ClientError>>), ClientError> {
        if self.core.is_dead() {
            return Err(self.core.closed_error());
        }
        let tag = next_tag.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::sync_channel(1);
        self.core.inflight.lock().expect("session inflight lock").insert(tag, tx);
        // the reader may have died between the liveness check and the
        // insert; its drain has already run, so clean up our own slot
        if self.core.is_dead() {
            if self.core.inflight.lock().expect("session inflight lock").remove(&tag).is_some() {
                return Err(self.core.closed_error());
            }
            // removed by the drain: the error is already in the channel
            return Ok((tag, rx));
        }
        {
            let mut w = writer.lock().expect("session writer lock");
            if let Err(e) = w.write_all(format!("ID {tag} {line}\n").as_bytes()) {
                self.core.inflight.lock().expect("session inflight lock").remove(&tag);
                self.core.die(&format!("write failed: {e}"));
                return Err(ClientError::Io(e));
            }
        }
        Ok((tag, rx))
    }

    fn wait_v2(
        &self,
        tag: u64,
        rx: mpsc::Receiver<Result<String, ClientError>>,
    ) -> Result<String, ClientError> {
        self.wait_v2_for(tag, rx, self.read_timeout)
    }

    fn wait_v2_for(
        &self,
        tag: u64,
        rx: mpsc::Receiver<Result<String, ClientError>>,
        timeout: Duration,
    ) -> Result<String, ClientError> {
        match rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // deregister so a late reply to this tag is dropped by the
                // reader instead of lingering (and so the channel cannot be
                // written after we return)
                self.core.inflight.lock().expect("session inflight lock").remove(&tag);
                // the reader may have resolved the tag between the timeout
                // and the removal — prefer that definitive answer
                if let Ok(result) = rx.try_recv() {
                    return result;
                }
                Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("no response to tag {tag} within {timeout:?}"),
                )))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(self.core.closed_error()),
        }
    }

    fn request_v1(&self, io: &Mutex<V1Io>, line: &str) -> Result<String, ClientError> {
        if self.core.is_dead() {
            return Err(self.core.closed_error());
        }
        let mut io = io.lock().expect("session v1 io lock");
        if self.core.is_dead() {
            return Err(self.core.closed_error());
        }
        if let Err(e) = io.writer.write_all(format!("{line}\n").as_bytes()) {
            self.core.die(&format!("write failed: {e}"));
            return Err(ClientError::Io(e));
        }
        match read_frame(&mut io.reader) {
            Ok(frame) => classify_response(&frame),
            Err(e) => {
                // the response was lost (or is late): without tags the
                // stream cannot be resynchronised, so the session is done
                self.core.die(&format!("v1 response lost: {e}"));
                Err(e)
            }
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.core.die("session dropped");
        match &mut self.mode {
            Mode::V2 { writer, reader, .. } => {
                // unblock the reader's read_line immediately, then join it
                if let Ok(w) = writer.get_mut() {
                    let _ = w.shutdown(Shutdown::Both);
                }
                if let Some(handle) = reader.take() {
                    let _ = handle.join();
                }
            }
            Mode::V1 { io } => {
                if let Ok(io) = io.get_mut() {
                    let _ = io.writer.shutdown(Shutdown::Both);
                }
            }
        }
    }
}

/// Read one complete `\n`-terminated frame. A line without its newline is
/// damage ([`ClientError::TruncatedResponse`]), exactly as in the one-shot
/// path.
fn read_frame(reader: &mut BufReader<TcpStream>) -> Result<String, ClientError> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => Err(ClientError::TruncatedResponse),
        Ok(_) => {
            if line.ends_with('\n') {
                Ok(line.trim_end().to_owned())
            } else {
                Err(ClientError::TruncatedResponse)
            }
        }
        Err(e) => Err(ClientError::Io(e)),
    }
}

/// Split a v2 response line `ID <tag> <frame...>` into tag and frame.
/// Returns `None` for untagged lines (which are session-fatal on a v2
/// stream — the server only answers untagged when it cannot attribute).
fn parse_tagged_response(line: &str) -> Option<(u64, &str)> {
    let rest = line.strip_prefix("ID")?;
    if !rest.starts_with(|c: char| c.is_ascii_whitespace()) {
        return None;
    }
    let rest = rest.trim_start();
    let (tag_str, frame) = rest.split_once(|c: char| c.is_ascii_whitespace())?;
    let tag: u64 = tag_str.parse().ok()?;
    Some((tag, frame.trim_start()))
}

/// The v2 demultiplexer: one thread per session, routing tagged response
/// lines into their waiters' channels, and converting every transport
/// failure into one `die()` that resolves all in-flight requests.
fn reader_loop(mut reader: BufReader<TcpStream>, core: Arc<Core>) {
    let mut buf = String::new();
    loop {
        match reader.read_line(&mut buf) {
            Ok(0) => {
                core.die(if buf.is_empty() {
                    "connection closed by server"
                } else {
                    // a partial line before EOF: a response was cut
                    "response truncated before its newline"
                });
                return;
            }
            Ok(_) => {
                if !buf.ends_with('\n') {
                    core.die("response truncated before its newline");
                    return;
                }
                let line = buf.trim_end();
                match parse_tagged_response(line) {
                    Some((tag, frame)) => {
                        let waiter =
                            core.inflight.lock().expect("session inflight lock").remove(&tag);
                        if let Some(tx) = waiter {
                            let _ = tx.send(classify_response(frame));
                        }
                        // no waiter: the reply outlived its request's
                        // timeout — dropped, never delivered elsewhere
                    }
                    None => {
                        // untagged frame on a v2 stream: nothing in flight
                        // can claim it, and the stream may be desynchronised
                        core.die(&format!("untagged server frame: {line:?}"));
                        return;
                    }
                }
                buf.clear();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // idle socket (or a stalled partial line): any bytes read so
                // far are still in `buf`, so just keep reading — waiters
                // time out on their own clocks
                if core.is_dead() {
                    return;
                }
            }
            Err(e) => {
                core.die(&format!("read failed: {e}"));
                return;
            }
        }
    }
}

/// A small pool of [`Session`]s to one endpoint: checkout returns an idle
/// live session or opens a fresh one; check-in (on drop) returns live
/// sessions and discards dead ones.
///
/// For most callers one shared `Session` is enough (it pipelines); the pool
/// is for callers that want bounded head-of-line sharing or v1-fallback
/// endpoints (where a session serializes requests).
#[derive(Debug)]
pub struct ClientPool {
    addr: SocketAddr,
    cfg: ClientConfig,
    max_idle: usize,
    idle: Mutex<Vec<Session>>,
}

impl ClientPool {
    /// A pool for `addr` keeping at most 8 idle sessions.
    pub fn new(addr: SocketAddr, cfg: ClientConfig) -> ClientPool {
        ClientPool { addr, cfg, max_idle: 8, idle: Mutex::new(Vec::new()) }
    }

    /// Cap the number of idle sessions kept for reuse.
    pub fn with_max_idle(mut self, max_idle: usize) -> ClientPool {
        self.max_idle = max_idle;
        self
    }

    /// The endpoint this pool connects to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of idle sessions currently pooled.
    pub fn idle_count(&self) -> usize {
        self.idle.lock().expect("pool lock").len()
    }

    /// Check out a session: reuse an idle live one, or connect. Dead idle
    /// sessions found on the way are discarded.
    pub fn get(&self) -> Result<PooledSession<'_>, ClientError> {
        loop {
            let candidate = self.idle.lock().expect("pool lock").pop();
            match candidate {
                Some(session) if session.is_alive() => {
                    return Ok(PooledSession { pool: self, session: Some(session) });
                }
                Some(_dead) => continue,
                None => break,
            }
        }
        let session = Session::connect(self.addr, &self.cfg)?;
        Ok(PooledSession { pool: self, session: Some(session) })
    }

    fn check_in(&self, session: Session) {
        if !session.is_alive() {
            return;
        }
        let mut idle = self.idle.lock().expect("pool lock");
        if idle.len() < self.max_idle {
            idle.push(session);
        }
    }
}

/// A checked-out session; returns to its pool on drop (if still alive).
#[derive(Debug)]
pub struct PooledSession<'a> {
    pool: &'a ClientPool,
    session: Option<Session>,
}

impl PooledSession<'_> {
    /// Take the session out of the pool's management for good.
    pub fn detach(mut self) -> Session {
        self.session.take().expect("session present until drop")
    }
}

impl std::ops::Deref for PooledSession<'_> {
    type Target = Session;

    fn deref(&self) -> &Session {
        self.session.as_ref().expect("session present until drop")
    }
}

impl Drop for PooledSession<'_> {
    fn drop(&mut self) {
        if let Some(session) = self.session.take() {
            self.pool.check_in(session);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;
    use std::net::TcpListener;
    use std::sync::atomic::AtomicUsize;

    fn cfg() -> ClientConfig {
        ClientConfig { read_timeout: Duration::from_millis(500), ..ClientConfig::default() }
    }

    /// A scripted v2 server for fault tests: negotiates v2, then follows
    /// `script(line_index, tag, inner) -> Action` per tagged request.
    enum Action {
        /// Answer `ID <tag> OK <payload>`.
        Answer(String),
        /// Write these lines verbatim (for out-of-order / stale replies).
        Raw(String),
        /// Answer nothing and keep reading.
        Swallow,
        /// Close the connection immediately.
        Hangup,
    }

    fn scripted_v2_server(
        script: impl Fn(usize, u64, &str) -> Action + Send + 'static,
    ) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (conn, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            let mut conn = conn;
            let mut line = String::new();
            // handshake
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), "PROTO 2");
            writeln!(conn, "OK proto=2").unwrap();
            let mut index = 0usize;
            loop {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => return,
                    Ok(_) => {}
                }
                let trimmed = line.trim_end();
                let (tag, inner) = parse_tagged_response(trimmed)
                    .expect("test client always sends tagged requests");
                match script(index, tag, inner) {
                    Action::Answer(payload) => {
                        writeln!(conn, "ID {tag} OK {payload}").unwrap();
                    }
                    Action::Raw(lines) => {
                        writeln!(conn, "{lines}").unwrap();
                    }
                    Action::Swallow => {}
                    Action::Hangup => {
                        let _ = conn.shutdown(Shutdown::Both);
                        return;
                    }
                }
                index += 1;
            }
        });
        (addr, handle)
    }

    /// A plain v1 server that answers `OK echo:<line>` to everything —
    /// including the `PROTO 2` probe, which forces the fallback path.
    fn v1_echo_server() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (conn, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            let mut conn = conn;
            let mut line = String::new();
            while reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                if writeln!(conn, "OK echo:{}", line.trim_end()).is_err() {
                    return;
                }
                line.clear();
            }
        });
        (addr, handle)
    }

    #[test]
    fn tagged_response_parsing() {
        assert_eq!(parse_tagged_response("ID 7 OK pong"), Some((7, "OK pong")));
        assert_eq!(parse_tagged_response("ID 7 ERR nope"), Some((7, "ERR nope")));
        assert_eq!(parse_tagged_response("OK pong"), None);
        assert_eq!(parse_tagged_response("ID x OK"), None);
        assert_eq!(parse_tagged_response("ID7 OK pong"), None);
    }

    #[test]
    fn v2_session_demuxes_out_of_order_replies_to_the_right_waiters() {
        // hand-driven server: read two tagged requests, answer them in
        // reverse order — guaranteed out-of-order delivery
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (conn, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            let mut conn = conn;
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), "PROTO 2");
            writeln!(conn, "OK proto=2").unwrap();
            let mut tags = Vec::new();
            for _ in 0..2 {
                line.clear();
                reader.read_line(&mut line).unwrap();
                let (tag, inner) = parse_tagged_response(line.trim_end()).unwrap();
                tags.push((tag, inner.to_owned()));
            }
            // reverse order: the second request answers first
            for (tag, inner) in tags.into_iter().rev() {
                writeln!(conn, "ID {tag} OK reply-to:{inner}").unwrap();
            }
            // keep the connection open until the client is done
            line.clear();
            let _ = reader.read_line(&mut line);
        });

        let session = Arc::new(Session::connect(addr, &cfg()).unwrap());
        assert_eq!(session.proto_version(), 2);
        let results = session.request_many(&["PING", "HEALTH"]);
        assert_eq!(results[0].as_deref().unwrap(), "reply-to:PING");
        assert_eq!(results[1].as_deref().unwrap(), "reply-to:HEALTH");
        drop(session);
        server.join().unwrap();
    }

    #[test]
    fn v1_fallback_keeps_the_connection_and_serializes() {
        let (addr, server) = v1_echo_server();
        let session = Session::connect(addr, &cfg()).unwrap();
        assert_eq!(session.proto_version(), 1, "echo server does not negotiate v2");
        assert!(session.is_alive());
        assert_eq!(session.request("PING").unwrap(), "echo:PING");
        assert_eq!(session.request("HEALTH").unwrap(), "echo:HEALTH");
        drop(session);
        server.join().unwrap();
    }

    #[test]
    fn mid_pipeline_hangup_yields_exactly_one_typed_error_per_inflight_request() {
        // answer the first request, swallow the second, hang up on the third:
        // request 1 succeeds, requests 2 and 3 each get exactly one
        // SessionClosed — nothing hangs and nothing is mis-attributed
        let (addr, server) = scripted_v2_server(|i, _tag, _inner| match i {
            0 => Action::Answer("first".into()),
            1 => Action::Swallow,
            _ => Action::Hangup,
        });
        let session = Session::connect(addr, &cfg()).unwrap();
        let results = session.request_many(&["PING", "PING", "PING"]);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_deref().unwrap(), "first");
        for r in &results[1..] {
            let err = r.as_ref().unwrap_err();
            assert!(matches!(err, ClientError::SessionClosed(_)), "{err}");
            assert!(err.is_retryable());
        }
        assert!(!session.is_alive());
        // a dead session fails fast with the same typed error
        let err = session.request("PING").unwrap_err();
        assert!(matches!(err, ClientError::SessionClosed(_)), "{err}");
        drop(session);
        server.join().unwrap();
    }

    #[test]
    fn late_replies_after_a_timeout_are_dropped_not_misattributed() {
        // swallow the first request; when the second arrives, answer the
        // *first* tag (now expired) and then the second — the stale reply
        // must be dropped, and the second request must get its own answer
        let first_tag = Arc::new(Mutex::new(None::<u64>));
        let server_first = Arc::clone(&first_tag);
        let (addr, server) = scripted_v2_server(move |i, tag, _inner| {
            if i == 0 {
                *server_first.lock().unwrap() = Some(tag);
                Action::Swallow
            } else {
                let stale = server_first.lock().unwrap().take().unwrap();
                Action::Raw(format!("ID {stale} OK stale\nID {tag} OK fresh"))
            }
        });
        let fast = ClientConfig { read_timeout: Duration::from_millis(150), ..cfg() };
        let session = Session::connect(addr, &fast).unwrap();
        let err = session.request("PING").unwrap_err();
        assert!(matches!(&err, ClientError::Io(e) if e.kind() == io::ErrorKind::TimedOut), "{err}");
        assert!(session.is_alive(), "a timeout does not kill the session");
        let payload = session.request("HEALTH").unwrap();
        assert_eq!(payload, "fresh", "second request got its own answer, not the stale reply");
        drop(session);
        server.join().unwrap();
    }

    #[test]
    fn per_request_timeout_overrides_the_session_clock_without_killing_it() {
        // swallow the first request: with a 50 ms per-request timeout the
        // caller must give up long before the 500 ms session clock — and
        // the session must stay alive for the next request
        let (addr, server) = scripted_v2_server(|i, _tag, _inner| match i {
            0 => Action::Swallow,
            _ => Action::Answer("served".into()),
        });
        let session = Session::connect(addr, &cfg()).unwrap();
        let t0 = std::time::Instant::now();
        let err = session.request_timeout("PING", Duration::from_millis(50)).unwrap_err();
        assert!(
            t0.elapsed() < Duration::from_millis(400),
            "per-request timeout, not the session-wide clock"
        );
        assert!(matches!(&err, ClientError::Io(e) if e.kind() == io::ErrorKind::TimedOut), "{err}");
        assert!(session.is_alive(), "a per-request timeout does not kill the session");
        assert_eq!(session.request("HEALTH").unwrap(), "served");
        drop(session);
        server.join().unwrap();
    }

    #[test]
    fn untagged_frame_on_a_v2_stream_kills_the_session() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (conn, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            let mut conn = conn;
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            writeln!(conn, "OK proto=2").unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            writeln!(conn, "ERR bad request: untagged").unwrap();
            line.clear();
            let _ = reader.read_line(&mut line);
        });
        let session = Session::connect(addr, &cfg()).unwrap();
        let err = session.request("PING").unwrap_err();
        assert!(
            matches!(&err, ClientError::SessionClosed(reason) if reason.contains("untagged")),
            "{err}"
        );
        assert!(!session.is_alive());
        drop(session);
        server.join().unwrap();
    }

    #[test]
    fn pool_reuses_live_sessions_and_discards_dead_ones() {
        let opened = Arc::new(AtomicUsize::new(0));
        let server_opened = Arc::clone(&opened);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for conn in listener.incoming().take(2) {
                server_opened.fetch_add(1, Ordering::SeqCst);
                let conn = conn.unwrap();
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(conn.try_clone().unwrap());
                    let mut conn = conn;
                    let mut line = String::new();
                    while reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                        let trimmed = line.trim_end();
                        let reply = match parse_tagged_response(trimmed) {
                            Some((tag, _)) => format!("ID {tag} OK pong"),
                            None => "OK proto=2".to_owned(),
                        };
                        if writeln!(conn, "{reply}").is_err() {
                            return;
                        }
                        line.clear();
                    }
                });
            }
        });

        let pool = ClientPool::new(addr, cfg()).with_max_idle(2);
        {
            let s = pool.get().unwrap();
            s.ping().unwrap();
        } // checked back in
        assert_eq!(pool.idle_count(), 1);
        {
            let s = pool.get().unwrap();
            s.ping().unwrap();
        }
        assert_eq!(opened.load(Ordering::SeqCst), 1, "second checkout reused the session");

        // kill the pooled session behind the pool's back, then check out:
        // the dead one is discarded and a fresh one is opened
        {
            let s = pool.get().unwrap();
            s.core.die("test kill");
        }
        assert_eq!(pool.idle_count(), 0, "dead session not checked back in");
        let s = pool.get().unwrap();
        s.ping().unwrap();
        assert_eq!(opened.load(Ordering::SeqCst), 2);
        drop(s);
        drop(pool);
        server.join().unwrap();
    }
}
