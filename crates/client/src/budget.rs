//! Retry budget: a token bucket that caps retries as a *fraction of
//! successful traffic* instead of a fixed per-request count.
//!
//! Per-request retry caps multiply under fleet-wide outages: every client
//! retrying 3× turns a brownout into 4× load. A budget instead deposits a
//! small amount per success and withdraws one token per retry, so sustained
//! failure exhausts the budget and callers fail fast, while a small reserve
//! keeps low-traffic clients able to retry at all. (The design follows the
//! widely-copied Finagle `RetryBudget`.)

/// Budget shape. Defaults allow bursts of ~10 retries from the reserve and
/// a steady-state retry rate of ~10% of successes.
#[derive(Clone, Debug)]
pub struct BudgetConfig {
    /// Tokens available before any traffic has succeeded (burst allowance).
    pub min_reserve: f64,
    /// Tokens deposited per successful request.
    pub deposit_per_success: f64,
    /// Balance cap, so long quiet periods cannot bank unbounded retries.
    pub max_balance: f64,
}

impl Default for BudgetConfig {
    fn default() -> Self {
        BudgetConfig { min_reserve: 10.0, deposit_per_success: 0.1, max_balance: 100.0 }
    }
}

/// The bucket. One per client; not thread-safe (clients are `&mut self`).
#[derive(Clone, Debug)]
pub struct RetryBudget {
    cfg: BudgetConfig,
    balance: f64,
}

impl RetryBudget {
    /// A bucket holding its full reserve.
    pub fn new(cfg: BudgetConfig) -> Self {
        let balance = cfg.min_reserve;
        RetryBudget { cfg, balance }
    }

    /// Deposit for one successful request.
    pub fn record_success(&mut self) {
        self.balance = (self.balance + self.cfg.deposit_per_success).min(self.cfg.max_balance);
    }

    /// Withdraw one token for a retry; `false` means the budget is dry and
    /// the caller must surface the failure instead of retrying.
    pub fn try_withdraw(&mut self) -> bool {
        if self.balance >= 1.0 {
            self.balance -= 1.0;
            true
        } else {
            false
        }
    }

    /// Current balance (for metrics and tests).
    pub fn balance(&self) -> f64 {
        self.balance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_allows_a_burst_then_runs_dry() {
        let mut b = RetryBudget::new(BudgetConfig::default());
        for i in 0..10 {
            assert!(b.try_withdraw(), "withdrawal {i} should succeed from the reserve");
        }
        assert!(!b.try_withdraw(), "reserve exhausted");
    }

    #[test]
    fn successes_refill_at_the_deposit_rate() {
        let mut b = RetryBudget::new(BudgetConfig { min_reserve: 0.0, ..BudgetConfig::default() });
        assert!(!b.try_withdraw());
        // 11 not 10: ten 0.1 float deposits sum to just under 1.0
        for _ in 0..11 {
            b.record_success();
        }
        assert!(b.try_withdraw(), "successes at 0.1/success fund a retry");
        assert!(!b.try_withdraw());
    }

    #[test]
    fn balance_is_capped() {
        let cfg = BudgetConfig { max_balance: 5.0, deposit_per_success: 1.0, min_reserve: 0.0 };
        let mut b = RetryBudget::new(cfg);
        for _ in 0..100 {
            b.record_success();
        }
        assert_eq!(b.balance(), 5.0);
    }
}
