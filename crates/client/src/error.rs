//! Client-side errors, classified **retryable vs fatal**.
//!
//! The classification is the heart of the retry layer: `SCORE`/`RANK` are
//! pure functions of the served model, so any failure where the server's
//! answer was *lost* — connect failures, timeouts, a response cut before its
//! newline — is safe to retry. A definitive server answer (`ERR bad
//! request`, `ERR unknown relation id ...`) is fatal: retrying would repeat
//! the same rejection. Three server answers are explicitly *transient* —
//! overload shedding, the connection cap, and expired queue deadlines — and
//! retry after backoff, ideally against another replica.

use std::fmt;
use std::io;

/// Errors from one logical client request (which may span several attempts
/// and several endpoints).
#[derive(Debug)]
pub enum ClientError {
    /// TCP connect failed or timed out. Retryable: no request was sent.
    Connect(io::Error),
    /// I/O after connecting — write failure, read failure or timeout.
    /// Retryable for pure verbs: the response never arrived intact.
    Io(io::Error),
    /// The connection closed before a newline-terminated response line
    /// arrived. The line protocol makes every cut response detectable: a
    /// reply without its trailing newline is damage, never data. Retryable.
    TruncatedResponse,
    /// A complete line arrived but was not `OK ...` / `ERR ...`. Retryable
    /// for pure verbs (transport damage), but counts against the budget.
    Protocol(String),
    /// The server answered `ERR <message>`. `transient` is true for
    /// overload/conn-limit/deadline shedding (retry elsewhere), false for
    /// definitive rejections (bad request, unknown relation, reload
    /// rejected).
    Server {
        /// The text after `ERR `.
        message: String,
        /// Whether the condition is load-dependent and worth retrying.
        transient: bool,
    },
    /// The retry policy gave up: attempts or budget exhausted. Carries the
    /// last underlying failure.
    RetriesExhausted {
        /// Total attempts made (initial try included).
        attempts: u32,
        /// The failure that ended the last attempt.
        last: Box<ClientError>,
    },
    /// Every endpoint's circuit breaker is open (or every endpoint failed
    /// its half-open health probe) — nothing to send to.
    NoHealthyEndpoint {
        /// The most recent endpoint failure, if any attempt was made.
        last: Option<Box<ClientError>>,
    },
    /// The pipelined session this request was submitted on died (peer
    /// closed, transport damage, or an untagged server frame) before the
    /// response arrived. Retryable: the request outcome is unknown and the
    /// verb-level retry loop will open a fresh session.
    SessionClosed(String),
    /// The server's `OK` payload did not parse as the expected shape
    /// (e.g. a non-numeric score). Fatal: the bytes arrived intact.
    BadPayload(String),
}

impl ClientError {
    /// Whether retrying the same request could succeed. Only meaningful for
    /// pure (idempotent) verbs — the retry loop additionally requires the
    /// caller to declare idempotence.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Connect(_)
            | ClientError::Io(_)
            | ClientError::TruncatedResponse
            | ClientError::Protocol(_)
            | ClientError::SessionClosed(_) => true,
            ClientError::Server { transient, .. } => *transient,
            ClientError::RetriesExhausted { .. }
            | ClientError::NoHealthyEndpoint { .. }
            | ClientError::BadPayload(_) => false,
        }
    }

    /// Classify an `ERR <message>` reply. The transient set mirrors the
    /// server's load-shedding answers in `rmpi-serve` (`ServeError`
    /// `Overloaded` / `ConnLimit` / `DeadlineExpired` display strings).
    pub fn from_server_err(message: &str) -> ClientError {
        let transient =
            matches!(message, "server overloaded" | "too many connections" | "deadline expired");
        ClientError::Server { message: message.to_owned(), transient }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::TruncatedResponse => {
                write!(f, "response truncated before its newline")
            }
            ClientError::Protocol(line) => write!(f, "malformed response line: {line:?}"),
            ClientError::Server { message, transient } => {
                let kind = if *transient { "transient" } else { "fatal" };
                write!(f, "server error ({kind}): {message}")
            }
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            ClientError::NoHealthyEndpoint { last: Some(last) } => {
                write!(f, "no healthy endpoint (last failure: {last})")
            }
            ClientError::NoHealthyEndpoint { last: None } => {
                write!(f, "no healthy endpoint (all circuit breakers open)")
            }
            ClientError::SessionClosed(reason) => write!(f, "session closed: {reason}"),
            ClientError::BadPayload(msg) => write!(f, "bad response payload: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Connect(e) | ClientError::Io(e) => Some(e),
            ClientError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            ClientError::NoHealthyEndpoint { last: Some(last) } => Some(last.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_failures_are_retryable_and_rejections_are_not() {
        assert!(ClientError::Connect(io::Error::new(io::ErrorKind::ConnectionRefused, "x"))
            .is_retryable());
        assert!(ClientError::Io(io::Error::new(io::ErrorKind::TimedOut, "x")).is_retryable());
        assert!(ClientError::TruncatedResponse.is_retryable());
        assert!(ClientError::Protocol("garbage".into()).is_retryable());
        assert!(ClientError::SessionClosed("connection closed by server".into()).is_retryable());
        assert!(!ClientError::BadPayload("NaN-ish".into()).is_retryable());
        assert!(!ClientError::RetriesExhausted {
            attempts: 4,
            last: Box::new(ClientError::TruncatedResponse)
        }
        .is_retryable());
    }

    #[test]
    fn server_errors_classify_by_message() {
        for transient in ["server overloaded", "too many connections", "deadline expired"] {
            assert!(ClientError::from_server_err(transient).is_retryable(), "{transient}");
        }
        for fatal in [
            "bad request: unknown command \"FROB\"",
            "unknown relation id 99",
            "reload rejected: bad probe",
            "request too long (over 65536 bytes)",
        ] {
            assert!(!ClientError::from_server_err(fatal).is_retryable(), "{fatal}");
        }
    }

    #[test]
    fn display_names_the_classification() {
        let e = ClientError::from_server_err("server overloaded");
        assert!(e.to_string().contains("transient"), "{e}");
        let e = ClientError::from_server_err("unknown relation id 3");
        assert!(e.to_string().contains("fatal"), "{e}");
        let e = ClientError::RetriesExhausted {
            attempts: 3,
            last: Box::new(ClientError::TruncatedResponse),
        };
        assert!(e.to_string().contains("after 3 attempts"), "{e}");
        assert!(std::error::Error::source(&e).is_some());
    }
}
