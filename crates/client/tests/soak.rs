//! The chaos soak: a [`FailoverClient`] driving two replica engines through
//! seeded chaos proxies under concurrent load, with one replica killed
//! mid-run.
//!
//! Invariants asserted (the acceptance criteria of the resilience layer):
//!
//! 1. **Zero wrong scores** — every successful `SCORE`/`RANK` reply is
//!    bit-identical to the offline engine's answer. Chaos faults only delay
//!    or cut responses, and the client rejects any reply without its
//!    trailing newline, so damage is always retried, never parsed.
//! 2. **Bounded error rate** — ≥ 99% of logical requests succeed despite
//!    ≥ 10% of connections being disturbed.
//! 3. **Failover works** — killing one replica mid-soak leaves the client
//!    serving from the survivor; retries, failovers and breaker trips all
//!    show up in the `client.*` counters.

use rmpi_client::{
    BackoffConfig, BreakerConfig, BudgetConfig, ClientConfig, ClientError, FailoverClient,
    FailoverConfig, ProtocolClient, Session,
};
use rmpi_core::{RmpiConfig, RmpiModel};
use rmpi_kg::{EntityId, KnowledgeGraph, RelationId, Triple};
use rmpi_serve::{serve, Engine, EngineConfig, ServerConfig};
use rmpi_testutil::chaos::{ChaosConfig, ChaosProxy, Fault};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const ENGINE_SEED: u64 = 9;
const FAULT_RATE: f64 = 0.25;
const THREADS: usize = 4;
const REQUESTS_PER_THREAD: usize = 60;

fn toy_graph() -> KnowledgeGraph {
    KnowledgeGraph::from_triples(vec![
        Triple::new(0u32, 0u32, 1u32),
        Triple::new(1u32, 1u32, 2u32),
        Triple::new(2u32, 2u32, 0u32),
        Triple::new(0u32, 3u32, 2u32),
    ])
}

fn replica_engine() -> Arc<Engine> {
    // constructed identically for every replica (and the offline reference):
    // same config, same init seed, same graph, same extraction seed — the
    // determinism contract makes all of them bit-identical scorers
    let model = RmpiModel::new(RmpiConfig { dim: 8, ..RmpiConfig::base() }, 4, 0);
    Arc::new(Engine::with_registry(
        model,
        toy_graph(),
        EngineConfig { seed: ENGINE_SEED, cache_capacity: 64, threads: 1 },
        Arc::new(rmpi_obs::MetricsRegistry::new()),
    ))
}

fn replica_server(engine: Arc<Engine>) -> rmpi_serve::ServerHandle {
    serve(
        engine,
        ServerConfig {
            // sessions are persistent and pin a worker each: headroom above
            // THREADS so probes and reconnects are not starved by the
            // long-lived connections
            workers: 8,
            // short idle timeout so killing a replica mid-soak does not
            // block shutdown on workers parked in long reads
            idle_timeout: Duration::from_millis(200),
            ..ServerConfig::default()
        },
    )
    .expect("replica server")
}

/// The deterministic query mix one worker thread sends, as (kind, args).
#[derive(Clone, Copy)]
enum Query {
    Score([(u32, u32, u32); 2]),
    Rank { head: u32, relation: u32, k: usize },
}

fn query_plan(thread: usize) -> Vec<Query> {
    (0..REQUESTS_PER_THREAD)
        .map(|i| {
            let (h, r, t) = (
                ((thread + i) % 3) as u32,
                ((thread * 7 + i) % 4) as u32,
                ((thread + 2 * i + 1) % 3) as u32,
            );
            if i % 3 == 2 {
                Query::Rank { head: h, relation: r, k: 2 }
            } else {
                let t2 = (t + 1) % 3;
                Query::Score([(h, r, t), (h, r, t2)])
            }
        })
        .collect()
}

#[test]
fn chaos_soak_zero_wrong_scores_bounded_errors_and_failover() {
    // two identical replicas, each behind its own seeded chaos proxy
    let reference = replica_engine();
    let mut server_a = replica_server(replica_engine());
    let server_b = replica_server(replica_engine());
    let mut proxy_a = ChaosProxy::spawn(
        server_a.addr(),
        ChaosConfig { seed: 11, fault_rate: FAULT_RATE, ..Default::default() },
    )
    .expect("proxy a");
    let mut proxy_b = ChaosProxy::spawn(
        server_b.addr(),
        ChaosConfig { seed: 12, fault_rate: FAULT_RATE, ..Default::default() },
    )
    .expect("proxy b");
    let endpoints = vec![proxy_a.addr(), proxy_b.addr()];

    // one shared registry: the four clients' counters accumulate together
    let registry = Arc::new(rmpi_obs::MetricsRegistry::new());
    let completed = Arc::new(AtomicU64::new(0));
    let total = (THREADS * REQUESTS_PER_THREAD) as u64;

    let workers: Vec<_> = (0..THREADS)
        .map(|thread| {
            let endpoints = endpoints.clone();
            let registry = Arc::clone(&registry);
            let reference = Arc::clone(&reference);
            let completed = Arc::clone(&completed);
            std::thread::spawn(move || {
                let cfg = FailoverConfig {
                    client: ClientConfig {
                        // generous retries + budget: the soak measures the
                        // transport, not budget exhaustion (tested elsewhere)
                        max_retries: 5,
                        backoff: BackoffConfig {
                            base: Duration::from_millis(2),
                            max: Duration::from_millis(50),
                            seed: 1000 + thread as u64,
                            ..BackoffConfig::default()
                        },
                        budget: BudgetConfig {
                            min_reserve: 500.0,
                            deposit_per_success: 1.0,
                            max_balance: 1000.0,
                        },
                        ..ClientConfig::default()
                    },
                    breaker: BreakerConfig {
                        trip_after: 3,
                        cooldown: Duration::from_millis(150),
                    },
                };
                let mut client = FailoverClient::with_registry(endpoints, cfg, registry);
                let mut transient_failures = 0u64;
                for query in query_plan(thread) {
                    match query {
                        Query::Score(triples) => match client.score_batch(&triples) {
                            Ok(scores) => {
                                for ((h, r, t), wire) in triples.iter().zip(&scores) {
                                    let offline = reference
                                        .score(Triple::new(*h, *r, *t))
                                        .expect("offline score");
                                    assert_eq!(
                                        wire.to_bits(),
                                        offline.to_bits(),
                                        "wrong score for ({h},{r},{t}): wire {wire} vs offline {offline}"
                                    );
                                }
                            }
                            Err(e) => {
                                assert!(
                                    transient(&e),
                                    "client surfaced a non-transient failure: {e}"
                                );
                                transient_failures += 1;
                            }
                        },
                        Query::Rank { head, relation, k } => match client.rank_tails(head, relation, k) {
                            Ok(ranked) => {
                                let offline = reference
                                    .rank_tails(EntityId(head), RelationId(relation), k)
                                    .expect("offline rank");
                                let offline: Vec<(u32, f32)> =
                                    offline.into_iter().map(|(e, s)| (e.0, s)).collect();
                                assert_eq!(
                                    ranked.len(),
                                    offline.len(),
                                    "rank({head},{relation},{k}) length mismatch"
                                );
                                for ((wt, ws), (ot, os)) in ranked.iter().zip(&offline) {
                                    assert_eq!((*wt, ws.to_bits()), (*ot, os.to_bits()));
                                }
                            }
                            Err(e) => {
                                assert!(
                                    transient(&e),
                                    "client surfaced a non-transient failure: {e}"
                                );
                                transient_failures += 1;
                            }
                        },
                    }
                    completed.fetch_add(1, Ordering::SeqCst);
                }
                transient_failures
            })
        })
        .collect();

    // kill replica A once the soak is halfway through: from here on the
    // survivor must carry the load
    while completed.load(Ordering::SeqCst) < total / 2 {
        std::thread::sleep(Duration::from_millis(10));
    }
    server_a.shutdown();

    let failures: u64 = workers.into_iter().map(|w| w.join().expect("worker")).sum();

    // bounded error rate: ≥99% success even with a replica killed mid-run
    let max_failures = total / 100;
    assert!(
        failures <= max_failures,
        "{failures} failed of {total} requests (allowed {max_failures})"
    );

    // the chaos actually happened: ≥10% of connections disturbed. With
    // pipelined sessions a connection now serves *many* requests, so the
    // floor is sessions-shaped (each worker needs at least one, and chaos
    // forces plenty of reconnects), not one-per-request.
    let connections = proxy_a.stats().connections() + proxy_b.stats().connections();
    let faults = proxy_a.stats().faults_injected() + proxy_b.stats().faults_injected();
    assert!(
        connections >= THREADS as u64,
        "each worker thread holds at least one session connection"
    );
    assert!(
        connections < total,
        "session reuse must need far fewer connections than one per request \
         ({connections} connections for {total} requests)"
    );
    assert!(
        faults * 10 >= connections,
        "only {faults} of {connections} connections disturbed — chaos too tame"
    );

    // and the resilience machinery visibly did the work
    let dump = registry.to_json();
    let counter = |name: &str| registry.counter(name).get();
    assert!(counter("client.retries.count") > 0, "no retries recorded: {dump}");
    assert!(counter("client.failovers.count") > 0, "no failovers recorded: {dump}");
    assert!(
        counter("client.sessions.count") >= THREADS as u64,
        "each worker thread opens at least one session: {dump}"
    );
    assert_eq!(counter("client.requests.count"), total);

    // breaker trips: with persistent sessions a killed replica costs each
    // client one failed attempt before it fails over and sticks to the
    // survivor, so trip_after consecutive failures rarely accumulate during
    // the soak itself. Exercise the trip path deterministically instead: a
    // fresh client pointed only at the dead replica must trip its breaker
    // within one logical request's retry loop.
    let trip_registry = Arc::new(rmpi_obs::MetricsRegistry::new());
    let mut dead_client = FailoverClient::with_registry(
        vec![proxy_a.addr()],
        FailoverConfig {
            client: ClientConfig {
                max_retries: 5,
                backoff: BackoffConfig {
                    base: Duration::from_millis(1),
                    max: Duration::from_millis(5),
                    ..BackoffConfig::default()
                },
                ..ClientConfig::default()
            },
            breaker: BreakerConfig { trip_after: 3, cooldown: Duration::from_millis(150) },
        },
        Arc::clone(&trip_registry),
    );
    let err = dead_client.ping().expect_err("the dead replica cannot serve");
    assert!(transient(&err), "failures against a dead replica stay transient: {err}");
    assert!(
        trip_registry.counter("client.breaker_open.count").get() > 0,
        "consecutive failures against the dead replica must trip its breaker"
    );

    proxy_a.shutdown();
    proxy_b.shutdown();
    drop(server_b);
}

/// A failure the soak tolerates (within the error budget): everything the
/// retry layer classifies as retryable-but-exhausted, plus breaker-open
/// rejection. Fatal server rejections or parse failures would mean the
/// resilience layer let damage through — those fail the test immediately.
fn transient(e: &ClientError) -> bool {
    match e {
        ClientError::RetriesExhausted { .. } | ClientError::NoHealthyEndpoint { .. } => true,
        other => other.is_retryable(),
    }
}

/// The pipelined-session chaos invariant: when a connection dies with a
/// burst of tagged requests in flight (including the `PipelineCut` fault,
/// which delivers several intact responses and then cuts at a line
/// boundary), every request gets **exactly one** outcome — either its own
/// bit-identical answer or a typed retryable error. A mis-attributed
/// response would surface as a wrong score and fail the bit-identity
/// assertion immediately.
#[test]
fn pipelined_sessions_under_chaos_one_outcome_per_request_never_misattributed() {
    const BURST: usize = 8;
    const ROUNDS: usize = 30;

    let reference = replica_engine();
    // an aggressive idle reaper so the session dies between rounds: every
    // round then opens a fresh connection and draws fresh chaos (a clean
    // long-lived session would otherwise dodge the fault stream entirely)
    let server = serve(
        replica_engine(),
        ServerConfig {
            workers: 4,
            idle_timeout: Duration::from_millis(50),
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let mut proxy = ChaosProxy::spawn(
        server.addr(),
        ChaosConfig {
            seed: 77,
            fault_rate: 0.5,
            // handshake + a few answers, then a mid-burst line-boundary cut
            cut_after_lines: 5,
            ..Default::default()
        },
    )
    .expect("proxy");

    let cfg = ClientConfig { read_timeout: Duration::from_millis(500), ..ClientConfig::default() };
    let triples: Vec<(u32, u32, u32)> =
        (0..BURST).map(|i| ((i % 3) as u32, (i % 4) as u32, ((i + 1) % 3) as u32)).collect();
    let expected: Vec<f32> = triples
        .iter()
        .map(|&(h, r, t)| reference.score(Triple::new(h, r, t)).expect("offline score"))
        .collect();
    let lines: Vec<String> =
        triples.iter().map(|&(h, r, t)| format!("SCORE {h} {r} {t}")).collect();
    let line_refs: Vec<&str> = lines.iter().map(String::as_str).collect();

    let mut ok = 0u64;
    let mut failed = 0u64;
    let mut session: Option<Session> = None;
    for round in 0..ROUNDS {
        if round > 0 {
            // outlive the server's idle timeout so the next round's session
            // is a fresh connection with a fresh fault draw
            std::thread::sleep(Duration::from_millis(120));
        }
        let s = match session.take() {
            Some(s) if s.is_alive() => s,
            _ => match Session::connect(proxy.addr(), &cfg) {
                Ok(s) => s,
                Err(e) => {
                    assert!(e.is_retryable(), "session connect failed fatally: {e}");
                    failed += BURST as u64;
                    continue;
                }
            },
        };
        let results = s.request_many(&line_refs);
        assert_eq!(results.len(), BURST, "exactly one outcome per in-flight request");
        for (i, result) in results.iter().enumerate() {
            match result {
                Ok(payload) => {
                    let score: f32 = payload.trim().parse().expect("score payload");
                    assert_eq!(
                        score.to_bits(),
                        expected[i].to_bits(),
                        "request {i} got someone else's (or a damaged) answer: \
                         {score} vs {}",
                        expected[i]
                    );
                    ok += 1;
                }
                Err(e) => {
                    assert!(e.is_retryable(), "chaos must surface as typed retryable errors: {e}");
                    failed += 1;
                }
            }
        }
        session = Some(s);
    }
    drop(session);

    let total = (ROUNDS * BURST) as u64;
    assert_eq!(ok + failed, total, "no request may vanish or be double-counted");
    // a raw session has no retry layer, so at a 50% connection fault rate
    // plenty of bursts fail — the invariant is the *typing* of those
    // failures, not throughput (the retry stack on top is soaked above)
    assert!(ok >= total / 4, "plenty of requests still succeed: {ok} of {total}");
    assert!(failed > 0, "at a 50% fault rate some bursts must be disturbed");
    assert!(
        proxy.stats().count(Fault::PipelineCut) > 0,
        "the mid-pipeline line-boundary cut must have fired"
    );

    proxy.shutdown();
    drop(server);
}
