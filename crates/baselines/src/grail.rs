//! GraIL (Teru et al., 2020) — entity-view subgraph GNN (paper Eq. 1–5).
//!
//! Entities are initialised with one-hot double-radius labels; K R-GCN
//! layers with per-relation transforms and a relation-aware attention gate
//! update them; the triple is scored from the mean-pooled subgraph
//! representation, the endpoint embeddings and the target relation's
//! embedding (Eq. 4). The encoder half is exposed so TACT can reuse it.

use crate::common::{prepare_entity_sample, BaselineConfig, EntitySample};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rmpi_autograd::{init, ParamId, ParamStore, Tape, Tensor, Var};
use rmpi_core::{Mode, ScoringModel};
use rmpi_kg::{GraphAccess, Triple};

/// The parameters of GraIL's entity encoder (Eq. 1–3), reusable by TACT.
#[derive(Clone, Debug)]
pub struct GrailEncoderWeights {
    /// `w_rel[k][r]`: per-layer, per-relation transform.
    pub w_rel: Vec<Vec<ParamId>>,
    /// `w_self[k]`: per-layer self transform.
    pub w_self: Vec<ParamId>,
    /// Attention MLP inner matrix per layer (`A_2^k`).
    pub att_a2: Vec<ParamId>,
    /// Attention MLP inner bias per layer (`b_2^k`).
    pub att_b2: Vec<ParamId>,
    /// Attention readout vector per layer (`A_1^k`).
    pub att_a1: Vec<ParamId>,
    /// Attention readout bias per layer (`b_1^k`).
    pub att_b1: Vec<ParamId>,
    /// Attention embeddings `r^a` for every relation.
    pub att_emb: ParamId,
}

impl GrailEncoderWeights {
    /// Register all encoder parameters under `prefix`.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        cfg: &BaselineConfig,
        num_relations: usize,
        rng: &mut StdRng,
    ) -> Self {
        let in_dim = |k: usize| if k == 0 { cfg.label_dim() } else { cfg.dim };
        let mut w_rel = Vec::new();
        let mut w_self = Vec::new();
        let mut att_a2 = Vec::new();
        let mut att_b2 = Vec::new();
        let mut att_a1 = Vec::new();
        let mut att_b1 = Vec::new();
        for k in 0..cfg.num_layers {
            let d_in = in_dim(k);
            w_rel.push(
                (0..num_relations.max(1))
                    .map(|r| {
                        store.create(
                            &format!("{prefix}_l{k}_r{r}"),
                            init::xavier_uniform(&[cfg.dim, d_in], rng),
                        )
                    })
                    .collect(),
            );
            w_self.push(store.create(
                &format!("{prefix}_l{k}_self"),
                init::xavier_uniform(&[cfg.dim, d_in], rng),
            ));
            // s = ReLU(A2 [h_i ⊕ h_j ⊕ r_t^a ⊕ r^a] + b2); α = σ(A1·s + b1)
            att_a2.push(store.create(
                &format!("{prefix}_l{k}_a2"),
                init::xavier_uniform(&[cfg.dim, 2 * d_in + 2 * cfg.dim], rng),
            ));
            att_b2.push(store.create(&format!("{prefix}_l{k}_b2"), Tensor::zeros(&[cfg.dim])));
            att_a1.push(
                store.create(&format!("{prefix}_l{k}_a1"), init::xavier_uniform(&[cfg.dim], rng)),
            );
            att_b1.push(store.create(&format!("{prefix}_l{k}_b1"), Tensor::zeros(&[1])));
        }
        let att_emb = store.create(
            &format!("{prefix}_att_emb"),
            init::xavier_uniform(&[num_relations.max(1), cfg.dim], rng),
        );
        GrailEncoderWeights { w_rel, w_self, att_a2, att_b2, att_a1, att_b1, att_emb }
    }
}

/// Output of the GraIL encoder: pooled subgraph and endpoint representations.
pub struct GrailEncoding {
    /// Mean-pooled subgraph representation (Eq. 5).
    pub h_graph: Var,
    /// Target head representation after K layers.
    pub h_u: Var,
    /// Target tail representation after K layers.
    pub h_v: Var,
}

/// Run the GraIL encoder (Eq. 1–3, 5) over a prepared entity sample.
pub fn grail_encode(
    tape: &mut Tape,
    store: &ParamStore,
    weights: &GrailEncoderWeights,
    cfg: &BaselineConfig,
    sample: &EntitySample,
) -> GrailEncoding {
    let att_table = tape.param(store, weights.att_emb);
    let rt = sample.sg.target.relation;
    let rt_att = tape.row(att_table, rt.index());

    // initial features: one-hot double-radius labels
    let mut h: Vec<Var> = sample
        .entities
        .iter()
        .map(|e| tape.constant(Tensor::vector(sample.labels[e].one_hot(cfg.max_label_dist))))
        .collect();

    for k in 0..cfg.num_layers {
        let w_self = tape.param(store, weights.w_self[k]);
        let a2 = tape.param(store, weights.att_a2[k]);
        let b2 = tape.param(store, weights.att_b2[k]);
        let a1 = tape.param(store, weights.att_a1[k]);
        let b1 = tape.param(store, weights.att_b1[k]);
        // per-relation transforms materialised lazily
        let mut w_rel_vars: Vec<Option<Var>> = vec![None; weights.w_rel[k].len()];
        let mut next: Vec<Var> = Vec::with_capacity(h.len());
        for (idx, &e) in sample.entities.iter().enumerate() {
            let mut acc = tape.matvec(w_self, h[idx]);
            for t in sample.sg.triples.iter().filter(|t| t.tail == e) {
                let j = sample.entity_index[&t.head];
                let r = t.relation;
                let w_r = *w_rel_vars[r.index()]
                    .get_or_insert_with(|| tape.param(store, weights.w_rel[k][r.index()]));
                let msg = tape.matvec(w_r, h[j]);
                // attention gate α_ij (Eq. 2–3)
                let r_att = tape.row(att_table, r.index());
                let cat = tape.concat(&[h[idx], h[j], rt_att, r_att]);
                let lin = tape.matvec(a2, cat);
                let biased = tape.add(lin, b2);
                let s = tape.relu(biased);
                let logit = tape.dot(a1, s);
                let logit_b = tape.add(logit, b1);
                let alpha = tape.sigmoid(logit_b);
                let gated = tape.mul(alpha, msg);
                acc = tape.add(acc, gated);
            }
            next.push(tape.relu(acc));
        }
        h = next;
    }

    let stacked = tape.stack(&h);
    let pool_w = tape.constant(Tensor::full(&[h.len()], 1.0 / h.len() as f32));
    let h_graph = tape.vecmat(pool_w, stacked);
    let h_u = h[sample.entity_index[&sample.sg.target.head]];
    let h_v = h[sample.entity_index[&sample.sg.target.tail]];
    GrailEncoding { h_graph, h_u, h_v }
}

/// The full GraIL model.
#[derive(Clone, Debug)]
pub struct GrailModel {
    cfg: BaselineConfig,
    store: ParamStore,
    encoder: GrailEncoderWeights,
    rel_emb: ParamId,
    score_w: ParamId,
    num_relations: usize,
}

impl GrailModel {
    /// Build GraIL over `num_relations` relation ids.
    pub fn new(cfg: BaselineConfig, num_relations: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let encoder = GrailEncoderWeights::new(&mut store, "grail", &cfg, num_relations, &mut rng);
        let rel_emb = store.create(
            "grail_rel_emb",
            init::xavier_uniform(&[num_relations.max(1), cfg.dim], &mut rng),
        );
        let score_w = store.create("grail_score_w", init::xavier_uniform(&[4 * cfg.dim], &mut rng));
        GrailModel { cfg, store, encoder, rel_emb, score_w, num_relations }
    }

    /// The configuration.
    pub fn config(&self) -> &BaselineConfig {
        &self.cfg
    }
}

impl ScoringModel for GrailModel {
    fn param_store(&self) -> &ParamStore {
        &self.store
    }

    fn param_store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn score_on_tape(
        &self,
        tape: &mut Tape,
        graph: &dyn GraphAccess,
        target: Triple,
        mode: Mode,
        rng: &mut StdRng,
    ) -> Var {
        assert!(target.relation.index() < self.num_relations, "relation outside id space");
        let sample = prepare_entity_sample(graph, target, &self.cfg, mode, rng);
        let enc = grail_encode(tape, &self.store, &self.encoder, &self.cfg, &sample);
        let rel_table = tape.param(&self.store, self.rel_emb);
        let rt = tape.row(rel_table, target.relation.index());
        let cat = tape.concat(&[enc.h_graph, enc.h_u, enc.h_v, rt]);
        let w = tape.param(&self.store, self.score_w);
        tape.dot(w, cat)
    }

    fn context_radius(&self) -> usize {
        self.cfg.hop
    }

    fn name(&self) -> String {
        "GraIL".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmpi_kg::KnowledgeGraph;

    fn graph() -> KnowledgeGraph {
        KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
        ])
    }

    fn cfg() -> BaselineConfig {
        BaselineConfig { dim: 8, edge_dropout: 0.0, ..Default::default() }
    }

    #[test]
    fn scores_are_finite_and_deterministic() {
        let g = graph();
        let model = GrailModel::new(cfg(), 6, 0);
        let t = Triple::new(0u32, 4u32, 3u32);
        let a = model.score(&g, t, &mut StdRng::seed_from_u64(0));
        let b = model.score(&g, t, &mut StdRng::seed_from_u64(9));
        assert!(a.is_finite());
        assert_eq!(a, b);
    }

    #[test]
    fn different_targets_score_differently() {
        let g = graph();
        let model = GrailModel::new(cfg(), 6, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let s1 = model.score(&g, Triple::new(0u32, 4u32, 3u32), &mut rng);
        let s2 = model.score(&g, Triple::new(1u32, 4u32, 2u32), &mut rng);
        assert_ne!(s1, s2);
    }

    #[test]
    fn gradients_flow_to_relation_transforms() {
        let g = graph();
        let mut model = GrailModel::new(cfg(), 6, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape = Tape::new();
        let s =
            model.score_on_tape(&mut tape, &g, Triple::new(0u32, 4u32, 3u32), Mode::Eval, &mut rng);
        tape.backward(s, model.param_store_mut());
        let store = model.param_store();
        // relation 0 labels an edge of the subgraph, so its first-layer W must
        // receive gradient
        assert!(store.grad(store.get("grail_l0_r0").unwrap()).norm() > 0.0);
        assert!(store.grad(store.get("grail_score_w").unwrap()).norm() > 0.0);
        assert!(store.grad(store.get("grail_att_emb").unwrap()).norm() > 0.0);
    }

    #[test]
    fn empty_subgraph_still_scores() {
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(5u32, 1u32, 6u32),
        ]);
        let model = GrailModel::new(cfg(), 4, 3);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(model.score(&g, Triple::new(0u32, 2u32, 5u32), &mut rng).is_finite());
    }
}
