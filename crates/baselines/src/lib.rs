//! Baseline inductive KGC models the paper compares against (§IV-C).
//!
//! All baselines implement [`rmpi_core::ScoringModel`], so the same trainer
//! and evaluation protocols serve them and RMPI:
//!
//! * [`GrailModel`] — GraIL (Teru et al., ICML 2020): entity-view R-GCN over
//!   the enclosing subgraph with double-radius labels and relation-aware
//!   attention (paper Eq. 1–5). Requires all test relations seen.
//! * [`TactBaseModel`] — TACT's relational-correlation module alone: one-hop
//!   aggregation of the target relation's neighbours grouped by the six
//!   topological patterns. Supports unseen relations (and schema init).
//! * [`TactModel`] — full TACT: GraIL's entity GNN with the target-relation
//!   embedding replaced by the correlation-enriched representation.
//! * [`CompileModel`] — CoMPILE-style communicative message passing with
//!   joint node–edge state updates.
//! * [`MakerLiteModel`] — a MaKEr-style model: relation features fall back
//!   to structural estimates for unseen relations, trained with episodic
//!   relation masking that mimics MaKEr's meta-learning episodes.
//! * [`RuleNModel`] — a statistical rule-mining baseline (the rule-learning
//!   line of §V that the paper reports GraIL dominating).

pub mod common;
pub mod compile;
pub mod grail;
pub mod maker;
pub mod rulen;
pub mod tact;

pub use compile::CompileModel;
pub use grail::GrailModel;
pub use maker::MakerLiteModel;
pub use rulen::{MinedRule, MiningConfig, RuleNModel};
pub use tact::{TactBaseModel, TactModel};
