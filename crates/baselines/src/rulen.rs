//! RuleN-lite — a statistical rule-mining baseline (paper §V cites the
//! rule-learning line of Meilicke et al.; the paper omits its numbers as
//! "poorer than GraIL", which is exactly the contrast worth reproducing).
//!
//! Mining enumerates three entity-independent rule shapes over the training
//! graph and keeps those whose confidence clears a threshold:
//!
//! * composition: `p1(x, y) ∧ p2(y, z) → r(x, z)`
//! * inversion:   `p(y, x) → r(x, y)`
//! * symmetry:    `r(y, x) → r(x, y)`
//!
//! Scoring a candidate triple checks each mined rule for `r` against the
//! *test* graph and returns the best (noisy-or combined) confidence. The
//! model is non-parametric — [`rmpi_core::train_model`] is a no-op for it —
//! which is itself a faithful property of this method family.

use rand::rngs::StdRng;
use rmpi_autograd::{ParamStore, Tape, Tensor, Var};
use rmpi_core::{Mode, ScoringModel};
use rmpi_kg::{GraphAccess, KnowledgeGraph, RelationId, Triple};
use std::collections::HashMap;

/// A mined rule with its empirical confidence.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum MinedRule {
    /// `p1(x,y) ∧ p2(y,z) → head(x,z)`.
    Composition {
        /// First body relation.
        p1: RelationId,
        /// Second body relation.
        p2: RelationId,
        /// Empirical confidence.
        confidence: f32,
    },
    /// `p(y,x) → head(x,y)`.
    Inversion {
        /// Body relation.
        p: RelationId,
        /// Empirical confidence.
        confidence: f32,
    },
    /// `head(y,x) → head(x,y)`.
    Symmetry {
        /// Empirical confidence.
        confidence: f32,
    },
}

impl MinedRule {
    /// The rule's confidence.
    pub fn confidence(&self) -> f32 {
        match *self {
            MinedRule::Composition { confidence, .. } => confidence,
            MinedRule::Inversion { confidence, .. } => confidence,
            MinedRule::Symmetry { confidence } => confidence,
        }
    }
}

/// Mining thresholds.
#[derive(Clone, Copy, Debug)]
pub struct MiningConfig {
    /// Minimum body matches for a rule to be considered.
    pub min_support: usize,
    /// Minimum confidence (head matches / body matches).
    pub min_confidence: f32,
    /// Keep at most this many rules per head relation (best first).
    pub max_rules_per_head: usize,
}

impl Default for MiningConfig {
    fn default() -> Self {
        MiningConfig { min_support: 3, min_confidence: 0.3, max_rules_per_head: 25 }
    }
}

/// The mined rule base, usable as a [`ScoringModel`].
#[derive(Clone, Debug)]
pub struct RuleNModel {
    rules: HashMap<RelationId, Vec<MinedRule>>,
    store: ParamStore,
}

impl RuleNModel {
    /// Mine rules from `graph`.
    pub fn mine(graph: &KnowledgeGraph, cfg: &MiningConfig) -> Self {
        let relations = graph.present_relations();
        let mut rules: HashMap<RelationId, Vec<MinedRule>> = HashMap::new();

        // index: relation -> (head -> tails)
        let mut pairs: HashMap<RelationId, Vec<(rmpi_kg::EntityId, rmpi_kg::EntityId)>> =
            HashMap::new();
        for t in graph.triples() {
            pairs.entry(t.relation).or_default().push((t.head, t.tail));
        }
        let by_head: HashMap<RelationId, HashMap<rmpi_kg::EntityId, Vec<rmpi_kg::EntityId>>> =
            pairs
                .iter()
                .map(|(r, ps)| {
                    let mut m: HashMap<rmpi_kg::EntityId, Vec<rmpi_kg::EntityId>> = HashMap::new();
                    for &(h, t) in ps {
                        m.entry(h).or_default().push(t);
                    }
                    (*r, m)
                })
                .collect();

        for &head in &relations {
            let mut mined: Vec<MinedRule> = Vec::new();
            // symmetry
            if let Some(ps) = pairs.get(&head) {
                let body = ps.len();
                if body >= cfg.min_support {
                    let matched = ps
                        .iter()
                        .filter(|&&(h, t)| {
                            graph.contains(&Triple { head: t, relation: head, tail: h })
                        })
                        .count();
                    let conf = matched as f32 / body as f32;
                    if conf >= cfg.min_confidence {
                        mined.push(MinedRule::Symmetry { confidence: conf });
                    }
                }
            }
            // inversion
            for &p in &relations {
                if p == head {
                    continue;
                }
                if let Some(ps) = pairs.get(&p) {
                    if ps.len() < cfg.min_support {
                        continue;
                    }
                    let matched = ps
                        .iter()
                        .filter(|&&(h, t)| {
                            graph.contains(&Triple { head: t, relation: head, tail: h })
                        })
                        .count();
                    let conf = matched as f32 / ps.len() as f32;
                    if conf >= cfg.min_confidence {
                        mined.push(MinedRule::Inversion { p, confidence: conf });
                    }
                }
            }
            // composition
            for &p1 in &relations {
                let Some(p1_pairs) = pairs.get(&p1) else { continue };
                for &p2 in &relations {
                    let Some(p2_index) = by_head.get(&p2) else { continue };
                    let mut body = 0usize;
                    let mut matched = 0usize;
                    for &(x, y) in p1_pairs {
                        if let Some(zs) = p2_index.get(&y) {
                            for &z in zs {
                                if x == z {
                                    continue;
                                }
                                body += 1;
                                if graph.contains(&Triple { head: x, relation: head, tail: z }) {
                                    matched += 1;
                                }
                            }
                        }
                    }
                    if body >= cfg.min_support {
                        let conf = matched as f32 / body as f32;
                        if conf >= cfg.min_confidence {
                            mined.push(MinedRule::Composition { p1, p2, confidence: conf });
                        }
                    }
                }
            }
            mined.sort_by(|a, b| b.confidence().partial_cmp(&a.confidence()).unwrap());
            mined.truncate(cfg.max_rules_per_head);
            if !mined.is_empty() {
                rules.insert(head, mined);
            }
        }
        RuleNModel { rules, store: ParamStore::new() }
    }

    /// Total number of mined rules.
    pub fn num_rules(&self) -> usize {
        self.rules.values().map(Vec::len).sum()
    }

    /// The mined rules for one head relation.
    pub fn rules_for(&self, head: RelationId) -> &[MinedRule] {
        self.rules.get(&head).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Noisy-or combined confidence of the rules firing for `target` in
    /// `graph`: `1 - Π (1 - conf_i)` over matching rules.
    pub fn rule_score<G: GraphAccess + ?Sized>(&self, graph: &G, target: Triple) -> f32 {
        let mut miss_prob = 1.0f32;
        let mut any = false;
        for rule in self.rules_for(target.relation) {
            let fired = match *rule {
                MinedRule::Symmetry { .. } => graph.contains(&target.reversed()),
                MinedRule::Inversion { p, .. } => {
                    graph.contains(&Triple { head: target.tail, relation: p, tail: target.head })
                }
                MinedRule::Composition { p1, p2, .. } => {
                    graph.out_edges(target.head).iter().filter(|e| e.relation == p1).any(|e| {
                        graph
                            .out_edges(e.neighbor)
                            .iter()
                            .any(|e2| e2.relation == p2 && e2.neighbor == target.tail)
                    })
                }
            };
            if fired {
                any = true;
                miss_prob *= 1.0 - rule.confidence();
            }
        }
        if any {
            1.0 - miss_prob
        } else {
            0.0
        }
    }
}

impl ScoringModel for RuleNModel {
    fn param_store(&self) -> &ParamStore {
        &self.store
    }

    fn param_store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn score_on_tape(
        &self,
        tape: &mut Tape,
        graph: &dyn GraphAccess,
        target: Triple,
        _mode: Mode,
        _rng: &mut StdRng,
    ) -> Var {
        tape.constant(Tensor::scalar(self.rule_score(graph, target)))
    }

    fn context_radius(&self) -> usize {
        // Composition probing walks out-edges of the head's neighbours:
        // two hops from an endpoint at most.
        2
    }

    fn name(&self) -> String {
        "RuleN".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// A graph where r2 = r0 ∘ r1 holds perfectly across 10 chains.
    fn comp_graph() -> KnowledgeGraph {
        let mut triples = Vec::new();
        for i in 0..10u32 {
            let (x, y, z) = (3 * i, 3 * i + 1, 3 * i + 2);
            triples.push(Triple::new(x, 0u32, y));
            triples.push(Triple::new(y, 1u32, z));
            triples.push(Triple::new(x, 2u32, z));
        }
        KnowledgeGraph::from_triples(triples)
    }

    #[test]
    fn mines_perfect_composition() {
        let g = comp_graph();
        let model = RuleNModel::mine(&g, &MiningConfig::default());
        let rules = model.rules_for(RelationId(2));
        assert!(
            rules.iter().any(|r| matches!(
                r,
                MinedRule::Composition { p1: RelationId(0), p2: RelationId(1), confidence } if *confidence > 0.99
            )),
            "expected r0∘r1→r2, got {rules:?}"
        );
    }

    #[test]
    fn mined_rules_generalize_to_new_entities() {
        let g = comp_graph();
        let model = RuleNModel::mine(&g, &MiningConfig::default());
        // a brand-new chain the miner never saw
        let test = KnowledgeGraph::from_triples(vec![
            Triple::new(100u32, 0u32, 101u32),
            Triple::new(101u32, 1u32, 102u32),
        ]);
        let pos = Triple::new(100u32, 2u32, 102u32);
        let neg = Triple::new(102u32, 2u32, 100u32);
        assert!(model.rule_score(&test, pos) > 0.9);
        assert_eq!(model.rule_score(&test, neg), 0.0);
    }

    #[test]
    fn mines_symmetry() {
        let mut triples = Vec::new();
        for i in 0..8u32 {
            triples.push(Triple::new(2 * i, 0u32, 2 * i + 1));
            triples.push(Triple::new(2 * i + 1, 0u32, 2 * i));
        }
        let g = KnowledgeGraph::from_triples(triples);
        let model = RuleNModel::mine(&g, &MiningConfig::default());
        assert!(model
            .rules_for(RelationId(0))
            .iter()
            .any(|r| matches!(r, MinedRule::Symmetry { confidence } if *confidence > 0.99)));
    }

    #[test]
    fn thresholds_filter_noise() {
        // one coincidental composition instance only: below min_support
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 2u32),
            Triple::new(0u32, 2u32, 2u32),
        ]);
        let model = RuleNModel::mine(&g, &MiningConfig { min_support: 3, ..Default::default() });
        assert!(model
            .rules_for(RelationId(2))
            .iter()
            .all(|r| !matches!(r, MinedRule::Composition { .. })));
    }

    #[test]
    fn scoring_model_interface_works() {
        let g = comp_graph();
        let model = RuleNModel::mine(&g, &MiningConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let s = model.score(&g, Triple::new(0u32, 2u32, 2u32), &mut rng);
        assert!(s > 0.5);
        assert_eq!(model.name(), "RuleN");
        assert!(model.num_rules() > 0);
    }

    #[test]
    fn noisy_or_combines_rules() {
        // symmetric AND inverse-of-itself fire together: combined score
        // exceeds each individual confidence
        let mut triples = Vec::new();
        for i in 0..6u32 {
            triples.push(Triple::new(2 * i, 0u32, 2 * i + 1));
            // mirror only 2/3 of them so confidence < 1
            if i % 3 != 0 {
                triples.push(Triple::new(2 * i + 1, 0u32, 2 * i));
            }
        }
        let g = KnowledgeGraph::from_triples(triples);
        let model =
            RuleNModel::mine(&g, &MiningConfig { min_confidence: 0.2, ..Default::default() });
        let s = model.rule_score(&g, Triple::new(2u32, 0u32, 3u32));
        assert!(s > 0.0);
    }
}
