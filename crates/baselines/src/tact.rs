//! TACT (Chen et al., AAAI 2021) — topology-aware relation correlations.
//!
//! [`TactBaseModel`] is the relational-correlation module alone: a *single*
//! aggregation of the target relation's one-hop neighbours in the relation
//! view, grouped by the six topological patterns. It supports unseen
//! relations (their representation is built from neighbours) and schema
//! initialisation, which is why the paper uses it as the fully-inductive
//! baseline. Crucially it cannot see past one hop — the contrast RMPI's
//! multi-layer passing exploits.
//!
//! [`TactModel`] is the full model: GraIL's entity-view encoder, with the
//! target relation's raw embedding in the scoring function replaced by the
//! correlation-enriched representation.

use crate::common::{prepare_entity_sample, BaselineConfig};
use crate::grail::{grail_encode, GrailEncoderWeights};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rmpi_autograd::{init, ParamId, ParamStore, Tape, Tensor, Var};
use rmpi_core::config::{RelationInit, RmpiConfig};
use rmpi_core::encode::RelationEncoder;
use rmpi_core::sample::prepare_sample;
use rmpi_core::{Mode, ScoringModel};
use rmpi_kg::{GraphAccess, RelationId, Triple};
use rmpi_subgraph::relview::{RelViewGraph, NUM_EDGE_TYPES, TARGET_NODE};

/// The shared correlation-module parameters: one transform per topological
/// pattern.
#[derive(Clone, Debug)]
pub struct CorrelationWeights {
    /// `w[e]`: `(dim, dim)` transform for pattern `e`.
    pub w: Vec<ParamId>,
}

impl CorrelationWeights {
    /// Register the six pattern transforms under `prefix`.
    pub fn new(store: &mut ParamStore, prefix: &str, dim: usize, rng: &mut StdRng) -> Self {
        let w = (0..NUM_EDGE_TYPES)
            .map(|e| {
                store.create(&format!("{prefix}_corr_e{e}"), init::xavier_uniform(&[dim, dim], rng))
            })
            .collect();
        CorrelationWeights { w }
    }
}

/// One-hop correlation aggregation: `h = ReLU(Σ_e Σ_j W_e h_j^0) + h_rt^0`.
pub fn correlate_target(
    tape: &mut Tape,
    store: &ParamStore,
    weights: &CorrelationWeights,
    rv: &RelViewGraph,
    h0: &std::collections::HashMap<RelationId, Var>,
    target_rel: RelationId,
    dim: usize,
) -> Var {
    let mut groups: [Vec<Var>; NUM_EDGE_TYPES] = Default::default();
    for e in rv.incoming(TARGET_NODE) {
        let rel = rv.nodes[e.src].relation;
        groups[e.etype.index()].push(h0[&rel]);
    }
    let mut acc: Option<Var> = None;
    for (etype, members) in groups.iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        let w = tape.param(store, weights.w[etype]);
        let msgs: Vec<Var> = members.iter().map(|&m| tape.matvec(w, m)).collect();
        let stacked = tape.stack(&msgs);
        let ones = tape.constant(Tensor::full(&[msgs.len()], 1.0));
        let summed = tape.vecmat(ones, stacked);
        acc = Some(match acc {
            Some(a) => tape.add(a, summed),
            None => summed,
        });
    }
    let h_t0 = h0[&target_rel];
    match acc {
        Some(a) => {
            let act = tape.relu(a);
            tape.add(act, h_t0)
        }
        None => {
            let zeros = tape.constant(Tensor::zeros(&[dim]));
            tape.add(zeros, h_t0)
        }
    }
}

/// TACT-base: the correlation module with a linear scoring head.
#[derive(Clone, Debug)]
pub struct TactBaseModel {
    cfg: RmpiConfig,
    store: ParamStore,
    encoder: RelationEncoder,
    corr: CorrelationWeights,
    score_w: ParamId,
    num_relations: usize,
}

impl TactBaseModel {
    /// Randomly initialised TACT-base.
    pub fn new(dim: usize, hop: usize, num_relations: usize, seed: u64) -> Self {
        let cfg = RmpiConfig { dim, hop, ne: false, ta: false, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let encoder = RelationEncoder::new_random(&mut store, num_relations, dim, &mut rng);
        let corr = CorrelationWeights::new(&mut store, "tactb", dim, &mut rng);
        let score_w = store.create("tactb_score_w", init::xavier_uniform(&[dim], &mut rng));
        TactBaseModel { cfg, store, encoder, corr, score_w, num_relations }
    }

    /// Schema-enhanced TACT-base: initial relation features projected from
    /// `onto` TransE vectors (same Eq. 10 pathway as RMPI).
    pub fn with_schema_vectors(dim: usize, hop: usize, onto: Tensor, seed: u64) -> Self {
        let cfg = RmpiConfig { dim, hop, init: RelationInit::Schema, ..Default::default() };
        let num_relations = onto.rows();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let encoder = RelationEncoder::new_schema(&mut store, onto, &cfg, &mut rng);
        let corr = CorrelationWeights::new(&mut store, "tactb", dim, &mut rng);
        let score_w = store.create("tactb_score_w", init::xavier_uniform(&[dim], &mut rng));
        TactBaseModel { cfg, store, encoder, corr, score_w, num_relations }
    }
}

impl ScoringModel for TactBaseModel {
    fn param_store(&self) -> &ParamStore {
        &self.store
    }

    fn param_store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn score_on_tape(
        &self,
        tape: &mut Tape,
        graph: &dyn GraphAccess,
        target: Triple,
        mode: Mode,
        rng: &mut StdRng,
    ) -> Var {
        assert!(target.relation.index() < self.num_relations, "relation outside id space");
        let sample = prepare_sample(graph, target, &self.cfg, mode, rng);
        let mut rels: Vec<RelationId> = sample.relview.nodes.iter().map(|n| n.relation).collect();
        rels.push(target.relation);
        let h0 = self.encoder.encode(tape, &self.store, &rels);
        let h = correlate_target(
            tape,
            &self.store,
            &self.corr,
            &sample.relview,
            &h0,
            target.relation,
            self.cfg.dim,
        );
        let w = tape.param(&self.store, self.score_w);
        tape.dot(w, h)
    }

    fn context_radius(&self) -> usize {
        self.cfg.hop
    }

    fn name(&self) -> String {
        match self.cfg.init {
            RelationInit::Random => "TACT-base".to_owned(),
            RelationInit::Schema => "TACT-base+schema".to_owned(),
        }
    }
}

/// Full TACT: GraIL encoder + correlation-enriched target relation.
#[derive(Clone, Debug)]
pub struct TactModel {
    cfg: BaselineConfig,
    store: ParamStore,
    grail: GrailEncoderWeights,
    corr: CorrelationWeights,
    rel_encoder: RelationEncoder,
    score_w: ParamId,
    num_relations: usize,
    rmpi_cfg: RmpiConfig,
}

impl TactModel {
    /// Build full TACT over `num_relations` relation ids.
    pub fn new(cfg: BaselineConfig, num_relations: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let grail = GrailEncoderWeights::new(&mut store, "tact", &cfg, num_relations, &mut rng);
        let corr = CorrelationWeights::new(&mut store, "tact", cfg.dim, &mut rng);
        let rel_encoder = RelationEncoder::new_random(&mut store, num_relations, cfg.dim, &mut rng);
        let score_w = store.create("tact_score_w", init::xavier_uniform(&[4 * cfg.dim], &mut rng));
        let rmpi_cfg = RmpiConfig {
            dim: cfg.dim,
            hop: cfg.hop,
            edge_dropout: cfg.edge_dropout,
            max_subgraph_edges: cfg.max_subgraph_edges,
            ..Default::default()
        };
        TactModel { cfg, store, grail, corr, rel_encoder, score_w, num_relations, rmpi_cfg }
    }
}

impl ScoringModel for TactModel {
    fn param_store(&self) -> &ParamStore {
        &self.store
    }

    fn param_store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn score_on_tape(
        &self,
        tape: &mut Tape,
        graph: &dyn GraphAccess,
        target: Triple,
        mode: Mode,
        rng: &mut StdRng,
    ) -> Var {
        assert!(target.relation.index() < self.num_relations, "relation outside id space");
        // entity-view half
        let esample = prepare_entity_sample(graph, target, &self.cfg, mode, rng);
        let enc = grail_encode(tape, &self.store, &self.grail, &self.cfg, &esample);
        // relation-view half: correlation-enriched target representation
        // (same mode as the entity half, so edge dropout regularises both)
        let rsample = prepare_sample(graph, target, &self.rmpi_cfg, mode, rng);
        let mut rels: Vec<RelationId> = rsample.relview.nodes.iter().map(|n| n.relation).collect();
        rels.push(target.relation);
        let h0 = self.rel_encoder.encode(tape, &self.store, &rels);
        let rt_corr = correlate_target(
            tape,
            &self.store,
            &self.corr,
            &rsample.relview,
            &h0,
            target.relation,
            self.cfg.dim,
        );
        let cat = tape.concat(&[enc.h_graph, enc.h_u, enc.h_v, rt_corr]);
        let w = tape.param(&self.store, self.score_w);
        tape.dot(w, cat)
    }

    fn context_radius(&self) -> usize {
        // Both the entity-view and relation-view halves extract at cfg.hop
        // (rmpi_cfg.hop mirrors it).
        self.cfg.hop
    }

    fn name(&self) -> String {
        "TACT".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmpi_kg::KnowledgeGraph;

    fn graph() -> KnowledgeGraph {
        KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
        ])
    }

    #[test]
    fn tact_base_scores_unseen_relations() {
        let g = graph();
        let model = TactBaseModel::new(8, 2, 8, 0);
        let mut rng = StdRng::seed_from_u64(0);
        // relation 7 never appears in the graph
        let s = model.score(&g, Triple::new(0u32, 7u32, 3u32), &mut rng);
        assert!(s.is_finite());
        assert_eq!(model.name(), "TACT-base");
    }

    #[test]
    fn tact_base_schema_variant_differs() {
        let g = graph();
        let onto = Tensor::matrix(8, 12, (0..96).map(|i| ((i * 31) % 17) as f32 * 0.05).collect());
        let model = TactBaseModel::with_schema_vectors(8, 2, onto, 0);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(model.score(&g, Triple::new(0u32, 7u32, 3u32), &mut rng).is_finite());
        assert_eq!(model.name(), "TACT-base+schema");
    }

    #[test]
    fn tact_base_uses_neighborhood() {
        // a target with neighbours must score differently from one without
        let g = graph();
        let model = TactBaseModel::new(8, 2, 8, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let with_ctx = model.score(&g, Triple::new(0u32, 7u32, 3u32), &mut rng);
        let lonely = KnowledgeGraph::from_triples(vec![Triple::new(5u32, 0u32, 6u32)]);
        let without_ctx = model.score(&lonely, Triple::new(0u32, 7u32, 3u32), &mut rng);
        assert_ne!(with_ctx, without_ctx);
    }

    #[test]
    fn full_tact_scores_and_backprops() {
        let g = graph();
        let mut model = TactModel::new(
            BaselineConfig { dim: 8, edge_dropout: 0.0, ..Default::default() },
            6,
            2,
        );
        let mut rng = StdRng::seed_from_u64(3);
        let mut tape = Tape::new();
        let s =
            model.score_on_tape(&mut tape, &g, Triple::new(0u32, 4u32, 3u32), Mode::Eval, &mut rng);
        assert!(tape.value(s).item().is_finite());
        tape.backward(s, model.param_store_mut());
        let store = model.param_store();
        assert!(store.grad(store.get("tact_score_w").unwrap()).norm() > 0.0);
        // correlation transforms receive gradient when the target has relview neighbours
        let corr_grad: f32 = (0..NUM_EDGE_TYPES)
            .map(|e| store.grad(store.get(&format!("tact_corr_e{e}")).unwrap()).norm())
            .sum();
        assert!(corr_grad > 0.0);
    }
}
