//! CoMPILE (Mai et al., AAAI 2021) — communicative message passing.
//!
//! CoMPILE's distinguishing idea is the joint update of node *and* edge
//! states: every edge keeps a representation computed from its endpoints and
//! its relation, and node updates consume edge states rather than raw
//! neighbour features. This implementation keeps that node–edge interaction
//! while simplifying CoMPILE's gating details to a ReLU MLP.

use crate::common::{prepare_entity_sample, BaselineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rmpi_autograd::{init, ParamId, ParamStore, Tape, Tensor, Var};
use rmpi_core::{Mode, ScoringModel};
use rmpi_kg::{GraphAccess, Triple};

/// The CoMPILE-style model.
#[derive(Clone, Debug)]
pub struct CompileModel {
    cfg: BaselineConfig,
    store: ParamStore,
    rel_emb: ParamId,
    w_edge: Vec<ParamId>,
    w_self: Vec<ParamId>,
    w_msg: Vec<ParamId>,
    w_target_edge: ParamId,
    score_w: ParamId,
    num_relations: usize,
}

impl CompileModel {
    /// Build the model over `num_relations` relation ids.
    pub fn new(cfg: BaselineConfig, num_relations: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let rel_emb = store.create(
            "comp_rel_emb",
            init::xavier_uniform(&[num_relations.max(1), cfg.dim], &mut rng),
        );
        let in_dim = |k: usize| if k == 0 { cfg.label_dim() } else { cfg.dim };
        let mut w_edge = Vec::new();
        let mut w_self = Vec::new();
        let mut w_msg = Vec::new();
        for k in 0..cfg.num_layers {
            let d = in_dim(k);
            w_edge.push(store.create(
                &format!("comp_l{k}_edge"),
                init::xavier_uniform(&[cfg.dim, 2 * d + cfg.dim], &mut rng),
            ));
            w_self.push(
                store.create(
                    &format!("comp_l{k}_self"),
                    init::xavier_uniform(&[cfg.dim, d], &mut rng),
                ),
            );
            w_msg.push(store.create(
                &format!("comp_l{k}_msg"),
                init::xavier_uniform(&[cfg.dim, cfg.dim], &mut rng),
            ));
        }
        let w_target_edge = store
            .create("comp_target_edge", init::xavier_uniform(&[cfg.dim, 3 * cfg.dim], &mut rng));
        let score_w = store.create("comp_score_w", init::xavier_uniform(&[4 * cfg.dim], &mut rng));
        CompileModel {
            cfg,
            store,
            rel_emb,
            w_edge,
            w_self,
            w_msg,
            w_target_edge,
            score_w,
            num_relations,
        }
    }
}

impl ScoringModel for CompileModel {
    fn param_store(&self) -> &ParamStore {
        &self.store
    }

    fn param_store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn score_on_tape(
        &self,
        tape: &mut Tape,
        graph: &dyn GraphAccess,
        target: Triple,
        mode: Mode,
        rng: &mut StdRng,
    ) -> Var {
        assert!(target.relation.index() < self.num_relations, "relation outside id space");
        let sample = prepare_entity_sample(graph, target, &self.cfg, mode, rng);
        let rel_table = tape.param(&self.store, self.rel_emb);

        let mut h: Vec<Var> = sample
            .entities
            .iter()
            .map(|e| {
                tape.constant(Tensor::vector(sample.labels[e].one_hot(self.cfg.max_label_dist)))
            })
            .collect();

        for k in 0..self.cfg.num_layers {
            let we = tape.param(&self.store, self.w_edge[k]);
            let ws = tape.param(&self.store, self.w_self[k]);
            let wm = tape.param(&self.store, self.w_msg[k]);
            // edge states from current node states (communicative step)
            let edge_states: Vec<(usize, Var)> = sample
                .sg
                .triples
                .iter()
                .map(|t| {
                    let hi = h[sample.entity_index[&t.head]];
                    let hj = h[sample.entity_index[&t.tail]];
                    let r = tape.row(rel_table, t.relation.index());
                    let cat = tape.concat(&[hi, hj, r]);
                    let lin = tape.matvec(we, cat);
                    (sample.entity_index[&t.tail], tape.relu(lin))
                })
                .collect();
            // node updates consume incoming edge states
            let mut next = Vec::with_capacity(h.len());
            for (idx, _) in sample.entities.iter().enumerate() {
                let mut acc = tape.matvec(ws, h[idx]);
                for (tail_idx, estate) in &edge_states {
                    if *tail_idx == idx {
                        let msg = tape.matvec(wm, *estate);
                        acc = tape.add(acc, msg);
                    }
                }
                next.push(tape.relu(acc));
            }
            h = next;
        }

        let stacked = tape.stack(&h);
        let pool = tape.constant(Tensor::full(&[h.len()], 1.0 / h.len() as f32));
        let h_graph = tape.vecmat(pool, stacked);
        let h_u = h[sample.entity_index[&target.head]];
        let h_v = h[sample.entity_index[&target.tail]];
        // the target's own edge state, from final node representations
        let rt = tape.row(rel_table, target.relation.index());
        let cat_t = tape.concat(&[h_u, h_v, rt]);
        let we_t = tape.param(&self.store, self.w_target_edge);
        let lin_t = tape.matvec(we_t, cat_t);
        let e_target = tape.relu(lin_t);

        let cat = tape.concat(&[h_graph, h_u, h_v, e_target]);
        let w = tape.param(&self.store, self.score_w);
        tape.dot(w, cat)
    }

    fn context_radius(&self) -> usize {
        self.cfg.hop
    }

    fn name(&self) -> String {
        "CoMPILE".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmpi_kg::KnowledgeGraph;

    fn graph() -> KnowledgeGraph {
        KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
        ])
    }

    fn cfg() -> BaselineConfig {
        BaselineConfig { dim: 8, edge_dropout: 0.0, ..Default::default() }
    }

    #[test]
    fn finite_deterministic_scores() {
        let g = graph();
        let model = CompileModel::new(cfg(), 6, 0);
        let t = Triple::new(0u32, 4u32, 3u32);
        let a = model.score(&g, t, &mut StdRng::seed_from_u64(0));
        let b = model.score(&g, t, &mut StdRng::seed_from_u64(4));
        assert!(a.is_finite());
        assert_eq!(a, b);
    }

    #[test]
    fn gradients_reach_edge_weights() {
        let g = graph();
        let mut model = CompileModel::new(cfg(), 6, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape = Tape::new();
        let s =
            model.score_on_tape(&mut tape, &g, Triple::new(0u32, 4u32, 3u32), Mode::Eval, &mut rng);
        tape.backward(s, model.param_store_mut());
        let store = model.param_store();
        assert!(store.grad(store.get("comp_l0_edge").unwrap()).norm() > 0.0);
        assert!(store.grad(store.get("comp_l1_msg").unwrap()).norm() > 0.0);
        assert!(store.grad(store.get("comp_rel_emb").unwrap()).norm() > 0.0);
    }

    #[test]
    fn works_with_a_single_layer() {
        let g = graph();
        let cfg = BaselineConfig { dim: 8, num_layers: 1, edge_dropout: 0.0, ..Default::default() };
        let model = CompileModel::new(cfg, 6, 2);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(model.score(&g, Triple::new(1u32, 4u32, 2u32), &mut rng).is_finite());
    }
}
