//! Shared machinery for the entity-view baselines.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rmpi_core::Mode;
use rmpi_kg::{EntityId, GraphAccess, Triple};
use rmpi_subgraph::{double_radius_labels, enclosing_subgraph, NodeLabel, Subgraph};
use std::collections::HashMap;

/// Hyper-parameters shared by the entity-view baselines.
#[derive(Clone, Copy, Debug)]
pub struct BaselineConfig {
    /// Hidden dimension.
    pub dim: usize,
    /// GNN layers.
    pub num_layers: usize,
    /// Subgraph hop.
    pub hop: usize,
    /// Edge dropout during training.
    pub edge_dropout: f64,
    /// Maximum distance for double-radius labels.
    pub max_label_dist: usize,
    /// Safety cap on subgraph edges.
    pub max_subgraph_edges: usize,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            dim: 32,
            num_layers: 2,
            hop: 2,
            edge_dropout: 0.5,
            max_label_dist: 3,
            max_subgraph_edges: 300,
        }
    }
}

impl BaselineConfig {
    /// Set the hidden dimension.
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Set the number of GNN layers.
    pub fn with_num_layers(mut self, n: usize) -> Self {
        self.num_layers = n;
        self
    }

    /// Set the subgraph hop radius.
    pub fn with_hop(mut self, hop: usize) -> Self {
        self.hop = hop;
        self
    }

    /// Set the edge dropout used during training.
    pub fn with_edge_dropout(mut self, p: f64) -> Self {
        self.edge_dropout = p;
        self
    }

    /// Set the maximum distance for double-radius labels.
    pub fn with_max_label_dist(mut self, d: usize) -> Self {
        self.max_label_dist = d;
        self
    }

    /// Set the safety cap on subgraph edges.
    pub fn with_max_subgraph_edges(mut self, n: usize) -> Self {
        self.max_subgraph_edges = n;
        self
    }

    /// Length of the initial one-hot double-radius features.
    pub fn label_dim(&self) -> usize {
        NodeLabel::one_hot_len(self.max_label_dist)
    }
}

/// An entity-view forward-pass input: the (possibly edge-dropped) enclosing
/// subgraph, its double-radius labels, and a dense entity index.
#[derive(Clone, Debug)]
pub struct EntitySample {
    /// The enclosing subgraph.
    pub sg: Subgraph,
    /// Double-radius label per entity.
    pub labels: HashMap<EntityId, NodeLabel>,
    /// Dense index of each entity (stable ordering).
    pub entity_index: HashMap<EntityId, usize>,
    /// Entities in dense-index order.
    pub entities: Vec<EntityId>,
}

/// Extract and label the enclosing subgraph for `target`.
pub fn prepare_entity_sample<G: GraphAccess + ?Sized>(
    graph: &G,
    target: Triple,
    cfg: &BaselineConfig,
    mode: Mode,
    rng: &mut StdRng,
) -> EntitySample {
    let mut sg = enclosing_subgraph(graph, target, cfg.hop);
    if mode == Mode::Train && cfg.edge_dropout > 0.0 {
        sg.triples.retain(|_| !rng.gen_bool(cfg.edge_dropout));
    }
    if sg.triples.len() > cfg.max_subgraph_edges {
        sg.triples.shuffle(rng);
        sg.triples.truncate(cfg.max_subgraph_edges);
        sg.triples.sort_unstable();
    }
    // entities may have shrunk after dropout; recompute the present set but
    // always keep the target endpoints
    let mut entities: Vec<EntityId> = sg
        .triples
        .iter()
        .flat_map(|t| [t.head, t.tail])
        .chain([target.head, target.tail])
        .collect();
    entities.sort_unstable();
    entities.dedup();
    sg.entities = entities.clone();
    let labels = double_radius_labels(&sg, cfg.max_label_dist);
    let entity_index = entities.iter().enumerate().map(|(i, &e)| (e, i)).collect();
    EntitySample { sg, labels, entity_index, entities }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rmpi_kg::KnowledgeGraph;

    fn graph() -> KnowledgeGraph {
        KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
        ])
    }

    #[test]
    fn builders_chain_over_default() {
        let cfg = BaselineConfig::default()
            .with_dim(64)
            .with_num_layers(3)
            .with_hop(1)
            .with_edge_dropout(0.25)
            .with_max_label_dist(2)
            .with_max_subgraph_edges(100);
        assert_eq!(cfg.dim, 64);
        assert_eq!(cfg.num_layers, 3);
        assert_eq!(cfg.hop, 1);
        assert_eq!(cfg.edge_dropout, 0.25);
        assert_eq!(cfg.max_label_dist, 2);
        assert_eq!(cfg.max_subgraph_edges, 100);
    }

    #[test]
    fn sample_indexes_every_entity() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = BaselineConfig { edge_dropout: 0.0, ..Default::default() };
        let s =
            prepare_entity_sample(&g, Triple::new(0u32, 9u32, 3u32), &cfg, Mode::Eval, &mut rng);
        assert_eq!(s.entities.len(), 4);
        for e in &s.entities {
            assert!(s.labels.contains_key(e), "label missing for {e}");
            assert!(s.entity_index.contains_key(e));
        }
    }

    #[test]
    fn endpoints_survive_total_dropout() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = BaselineConfig { edge_dropout: 0.999, ..Default::default() };
        let s =
            prepare_entity_sample(&g, Triple::new(0u32, 9u32, 3u32), &cfg, Mode::Train, &mut rng);
        assert!(s.entities.contains(&EntityId(0)));
        assert!(s.entities.contains(&EntityId(3)));
    }

    #[test]
    fn label_dim_matches_config() {
        let cfg = BaselineConfig { max_label_dist: 3, ..Default::default() };
        assert_eq!(cfg.label_dim(), 8);
    }
}
