//! MaKEr-lite (Chen et al., IJCAI 2022) — knowledge extrapolation with
//! structurally initialised relation features.
//!
//! MaKEr represents *unseen* relations by predefined topological
//! relationships with other relations, and trains with meta-learning
//! episodes that mimic the testing graph. This reimplementation keeps both
//! properties in a simplified form:
//!
//! * a relation's feature is its learned embedding when the relation is
//!   *seen*, and a structural estimate otherwise: a projection of its
//!   6-pattern connection histogram in the relation view plus the mean
//!   embedding of its seen neighbour relations;
//! * training performs **episodic relation masking** — each sample treats
//!   its target relation as unseen with some probability, forcing the model
//!   to learn the structural pathway (the analogue of MaKEr's episodes).
//!
//! The entity GNN half mirrors GraIL's labelled message passing with shared
//! (relation-agnostic) weights, so unseen relations do not break the layers.

use crate::common::{prepare_entity_sample, BaselineConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmpi_autograd::{init, ParamId, ParamStore, Tape, Tensor, Var};
use rmpi_core::{Mode, ScoringModel};
use rmpi_kg::{GraphAccess, RelationId, Triple};
use rmpi_subgraph::relview::{RelViewGraph, NUM_EDGE_TYPES, TARGET_NODE};
use std::collections::HashSet;

/// The MaKEr-lite model.
#[derive(Clone, Debug)]
pub struct MakerLiteModel {
    cfg: BaselineConfig,
    store: ParamStore,
    rel_emb: ParamId,
    topo_w: ParamId,
    w_self: Vec<ParamId>,
    w_msg: Vec<ParamId>,
    score_w: ParamId,
    num_relations: usize,
    seen: HashSet<RelationId>,
    /// Probability of masking the target relation during training episodes.
    pub episode_mask_prob: f64,
}

/// Dimension of the structural feature vector: 6 pattern counts + log degree
/// + bias.
const TOPO_DIM: usize = NUM_EDGE_TYPES + 2;

impl MakerLiteModel {
    /// Build the model. `seen` lists the relations observed during training —
    /// at evaluation time anything else takes the structural pathway, which
    /// is exactly the information MaKEr assumes (test graphs declare their
    /// new relations).
    pub fn new(
        cfg: BaselineConfig,
        num_relations: usize,
        seen: HashSet<RelationId>,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let rel_emb = store.create(
            "maker_rel_emb",
            init::xavier_uniform(&[num_relations.max(1), cfg.dim], &mut rng),
        );
        let topo_w =
            store.create("maker_topo_w", init::xavier_uniform(&[cfg.dim, TOPO_DIM], &mut rng));
        let in_dim = |k: usize| if k == 0 { cfg.label_dim() } else { cfg.dim };
        let mut w_self = Vec::new();
        let mut w_msg = Vec::new();
        for k in 0..cfg.num_layers {
            let d = in_dim(k);
            w_self.push(store.create(
                &format!("maker_l{k}_self"),
                init::xavier_uniform(&[cfg.dim, d], &mut rng),
            ));
            w_msg.push(store.create(
                &format!("maker_l{k}_msg"),
                init::xavier_uniform(&[cfg.dim, d + cfg.dim], &mut rng),
            ));
        }
        let score_w = store.create("maker_score_w", init::xavier_uniform(&[4 * cfg.dim], &mut rng));
        MakerLiteModel {
            cfg,
            store,
            rel_emb,
            topo_w,
            w_self,
            w_msg,
            score_w,
            num_relations,
            seen,
            episode_mask_prob: 0.3,
        }
    }

    /// Structural feature of `rel` in the sample's relation view: normalised
    /// incoming-pattern histogram over all nodes labelled `rel`, plus log
    /// occurrence count and a bias term.
    fn topo_features(rv: &RelViewGraph, rel: RelationId) -> Tensor {
        let mut hist = [0f32; NUM_EDGE_TYPES];
        let mut occurrences = 0f32;
        for (i, node) in rv.nodes.iter().enumerate() {
            if node.relation != rel {
                continue;
            }
            occurrences += 1.0;
            for e in rv.incoming(i) {
                hist[e.etype.index()] += 1.0;
            }
        }
        let total: f32 = hist.iter().sum::<f32>().max(1.0);
        let mut v = Vec::with_capacity(TOPO_DIM);
        v.extend(hist.iter().map(|&c| c / total));
        v.push((1.0 + occurrences).ln());
        v.push(1.0);
        Tensor::vector(v)
    }

    /// The feature of one relation: learned embedding if usable, else the
    /// structural estimate (topology projection + mean seen-neighbour
    /// embedding of the target node).
    fn relation_feature(
        &self,
        tape: &mut Tape,
        rel_table: Var,
        rv: &RelViewGraph,
        rel: RelationId,
        treat_unseen: bool,
    ) -> Var {
        if !treat_unseen {
            return tape.row(rel_table, rel.index());
        }
        let topo = tape.constant(Self::topo_features(rv, rel));
        let tw = tape.param(&self.store, self.topo_w);
        let projected = tape.matvec(tw, topo);
        // mean embedding of *seen* relations neighbouring the target node
        let neighbor_rels: Vec<RelationId> = rv
            .incoming(TARGET_NODE)
            .iter()
            .map(|e| rv.nodes[e.src].relation)
            .filter(|r| self.seen.contains(r) && *r != rel)
            .collect();
        if neighbor_rels.is_empty() {
            tape.relu(projected)
        } else {
            let embs: Vec<Var> =
                neighbor_rels.iter().map(|r| tape.row(rel_table, r.index())).collect();
            let stacked = tape.stack(&embs);
            let pool = tape.constant(Tensor::full(&[embs.len()], 1.0 / embs.len() as f32));
            let mean = tape.vecmat(pool, stacked);
            let act = tape.relu(projected);
            tape.add(act, mean)
        }
    }

    fn encode_and_score(
        &self,
        tape: &mut Tape,
        sample: &crate::common::EntitySample,
        target: Triple,
        mask_target: bool,
    ) -> Var {
        let rel_table = tape.param(&self.store, self.rel_emb);
        let rv = RelViewGraph::from_subgraph(&sample.sg);
        let rt_feat = {
            let unseen = mask_target || !self.seen.contains(&target.relation);
            self.relation_feature(tape, rel_table, &rv, target.relation, unseen)
        };
        // per-edge relation features (seen edges use embeddings; unseen
        // context relations also take the structural pathway)
        let edge_feats: Vec<Var> = sample
            .sg
            .triples
            .iter()
            .map(|t| {
                let unseen = !self.seen.contains(&t.relation);
                self.relation_feature(tape, rel_table, &rv, t.relation, unseen)
            })
            .collect();

        let mut h: Vec<Var> = sample
            .entities
            .iter()
            .map(|e| {
                tape.constant(Tensor::vector(sample.labels[e].one_hot(self.cfg.max_label_dist)))
            })
            .collect();
        for k in 0..self.cfg.num_layers {
            let ws = tape.param(&self.store, self.w_self[k]);
            let wm = tape.param(&self.store, self.w_msg[k]);
            let mut next = Vec::with_capacity(h.len());
            for (idx, &e) in sample.entities.iter().enumerate() {
                let mut acc = tape.matvec(ws, h[idx]);
                for (t, &feat) in sample.sg.triples.iter().zip(&edge_feats) {
                    if t.tail != e {
                        continue;
                    }
                    let j = sample.entity_index[&t.head];
                    let cat = tape.concat(&[h[j], feat]);
                    let msg = tape.matvec(wm, cat);
                    acc = tape.add(acc, msg);
                }
                next.push(tape.relu(acc));
            }
            h = next;
        }

        let stacked = tape.stack(&h);
        let pool = tape.constant(Tensor::full(&[h.len()], 1.0 / h.len() as f32));
        let h_graph = tape.vecmat(pool, stacked);
        let h_u = h[sample.entity_index[&target.head]];
        let h_v = h[sample.entity_index[&target.tail]];
        let cat = tape.concat(&[h_graph, h_u, h_v, rt_feat]);
        let w = tape.param(&self.store, self.score_w);
        tape.dot(w, cat)
    }
}

impl ScoringModel for MakerLiteModel {
    fn param_store(&self) -> &ParamStore {
        &self.store
    }

    fn param_store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn score_on_tape(
        &self,
        tape: &mut Tape,
        graph: &dyn GraphAccess,
        target: Triple,
        mode: Mode,
        rng: &mut StdRng,
    ) -> Var {
        assert!(target.relation.index() < self.num_relations, "relation outside id space");
        let sample = prepare_entity_sample(graph, target, &self.cfg, mode, rng);
        let mask = mode == Mode::Train && rng.gen_bool(self.episode_mask_prob);
        self.encode_and_score(tape, &sample, target, mask)
    }

    fn context_radius(&self) -> usize {
        self.cfg.hop
    }

    fn name(&self) -> String {
        "MaKEr".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmpi_kg::KnowledgeGraph;

    fn graph() -> KnowledgeGraph {
        KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
        ])
    }

    fn model(seen: &[u32]) -> MakerLiteModel {
        MakerLiteModel::new(
            BaselineConfig { dim: 8, edge_dropout: 0.0, ..Default::default() },
            8,
            seen.iter().map(|&r| RelationId(r)).collect(),
            0,
        )
    }

    #[test]
    fn seen_relation_uses_embedding_pathway() {
        let g = graph();
        let m = model(&[0, 1, 2, 3, 4]);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(m.score(&g, Triple::new(0u32, 4u32, 3u32), &mut rng).is_finite());
    }

    #[test]
    fn unseen_relation_takes_structural_pathway() {
        let g = graph();
        let m = model(&[0, 1, 2, 3]);
        let mut rng = StdRng::seed_from_u64(1);
        // relation 7 unseen: must not panic, and must differ from an
        // identical model that considers 7 seen (different pathway)
        let s_unseen = m.score(&g, Triple::new(0u32, 7u32, 3u32), &mut rng);
        let m2 = model(&[0, 1, 2, 3, 7]);
        let s_seen = m2.score(&g, Triple::new(0u32, 7u32, 3u32), &mut rng);
        assert!(s_unseen.is_finite());
        assert_ne!(s_unseen, s_seen);
    }

    #[test]
    fn topo_features_are_normalized() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = BaselineConfig { dim: 8, edge_dropout: 0.0, ..Default::default() };
        let sample =
            prepare_entity_sample(&g, Triple::new(0u32, 4u32, 3u32), &cfg, Mode::Eval, &mut rng);
        let rv = RelViewGraph::from_subgraph(&sample.sg);
        let f = MakerLiteModel::topo_features(&rv, RelationId(0));
        assert_eq!(f.len(), TOPO_DIM);
        let hist_sum: f32 = f.data()[..NUM_EDGE_TYPES].iter().sum();
        assert!(hist_sum <= 1.0 + 1e-5);
        assert_eq!(f.data()[TOPO_DIM - 1], 1.0);
    }

    #[test]
    fn gradients_flow_through_structural_path() {
        let g = graph();
        let mut m = model(&[0, 1, 2, 3]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut tape = Tape::new();
        let s = m.score_on_tape(&mut tape, &g, Triple::new(0u32, 7u32, 3u32), Mode::Eval, &mut rng);
        tape.backward(s, m.param_store_mut());
        let store = m.param_store();
        assert!(store.grad(store.get("maker_topo_w").unwrap()).norm() > 0.0);
    }
}
