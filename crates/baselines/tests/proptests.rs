//! Property-based tests: every baseline produces finite, rng-independent
//! evaluation scores on arbitrary graphs, and backward passes stay finite.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rmpi_baselines::common::BaselineConfig;
use rmpi_baselines::{CompileModel, GrailModel, MakerLiteModel, TactBaseModel, TactModel};
use rmpi_core::ScoringModel;
use rmpi_kg::{KnowledgeGraph, RelationId, Triple};
use std::collections::HashSet;

const NUM_REL: usize = 5;

fn arb_graph() -> impl Strategy<Value = (KnowledgeGraph, Triple)> {
    (
        prop::collection::vec((0u32..10, 0u32..4, 0u32..10), 1..30),
        (0u32..10, 0u32..NUM_REL as u32, 0u32..10),
    )
        .prop_map(|(edges, (h, r, t))| {
            let triples: Vec<Triple> = edges
                .into_iter()
                .filter(|(a, _, b)| a != b)
                .map(|(a, rel, b)| Triple::new(a, rel, b))
                .collect();
            let triples =
                if triples.is_empty() { vec![Triple::new(0u32, 0u32, 1u32)] } else { triples };
            (KnowledgeGraph::from_triples(triples), Triple::new(h, r, t))
        })
}

fn cfg() -> BaselineConfig {
    BaselineConfig { dim: 6, edge_dropout: 0.0, ..Default::default() }
}

fn check_model<M: ScoringModel>(
    model: &M,
    g: &KnowledgeGraph,
    target: Triple,
) -> Result<(), TestCaseError> {
    let a = model.score(g, target, &mut StdRng::seed_from_u64(0));
    let b = model.score(g, target, &mut StdRng::seed_from_u64(1234));
    prop_assert!(a.is_finite(), "{}: non-finite score", model.name());
    prop_assert_eq!(a, b, "{}: eval score must ignore the rng", model.name());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn grail_and_tact_finite((g, target) in arb_graph(), seed in 0u64..10) {
        check_model(&GrailModel::new(cfg(), NUM_REL + 2, seed), &g, target)?;
        check_model(&TactModel::new(cfg(), NUM_REL + 2, seed), &g, target)?;
        check_model(&TactBaseModel::new(6, 2, NUM_REL + 2, seed), &g, target)?;
    }

    #[test]
    fn compile_and_maker_finite((g, target) in arb_graph(), seed in 0u64..10) {
        check_model(&CompileModel::new(cfg(), NUM_REL + 2, seed), &g, target)?;
        let seen: HashSet<RelationId> = (0..3u32).map(RelationId).collect();
        check_model(&MakerLiteModel::new(cfg(), NUM_REL + 2, seen, seed), &g, target)?;
    }

    #[test]
    fn backward_is_finite_for_entity_baselines((g, target) in arb_graph(), seed in 0u64..6) {
        use rmpi_autograd::Tape;
        use rmpi_core::Mode;
        let mut model = GrailModel::new(cfg(), NUM_REL + 2, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tape = Tape::new();
        let s = model.score_on_tape(&mut tape, &g, target, Mode::Eval, &mut rng);
        tape.backward(s, model.param_store_mut());
        let store = model.param_store();
        for id in store.ids() {
            prop_assert!(store.grad(id).data().iter().all(|x| x.is_finite()));
        }
    }
}
