//! Candidate sharding and exact top-k merging.
//!
//! The router's correctness argument lives here, and it is short:
//!
//! 1. Served scores are **bit-identical** to offline scoring (the engine's
//!    determinism contract), so which replica scores a candidate cannot
//!    change its score.
//! 2. [`shard_slices`] partitions the candidate list into disjoint,
//!    covering, contiguous slices — every candidate is scored exactly once.
//! 3. [`merge_ranked`] orders `(entity, score)` pairs with **the same
//!    comparator** the serving engine's `RANK` uses (descending score, ties
//!    toward the smaller entity id) and truncates to `k`.
//!
//! Therefore the merged top-k over any set of scored slices is bit-identical
//! to ranking the union of those slices in one place. When a shard is lost,
//! the merge over the survivors is exactly the offline ranking of the
//! surviving candidate subset — no wrong entries, no duplicates.

/// Split `candidates` into `n` contiguous slices whose lengths differ by at
/// most one (the first `len % n` slices carry the extra element). Slices are
/// disjoint and cover the input in order; with fewer candidates than shards
/// the tail slices are empty.
pub fn shard_slices(candidates: &[u32], n: usize) -> Vec<&[u32]> {
    assert!(n > 0, "at least one shard");
    let base = candidates.len() / n;
    let extra = candidates.len() % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let len = base + usize::from(i < extra);
        out.push(&candidates[start..start + len]);
        start += len;
    }
    out
}

/// Order `(entity, score)` pairs best-first and truncate to `k`, with the
/// exact comparator of the serving engine's `RANK`: descending score,
/// ties broken toward the smaller entity id. `NaN` scores are dropped
/// before sorting: the engine never serves them, so a `NaN` can only be a
/// damaged shard reply — and it must be *removed* rather than compared,
/// because no placement of `NaN` yields a total order under the engine's
/// comparator, and an inconsistent comparator can panic `sort_by`.
pub fn merge_ranked(mut entries: Vec<(u32, f32)>, k: usize) -> Vec<(u32, f32)> {
    entries.retain(|&(_, score)| !score.is_nan());
    entries.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN filtered above").then(a.0.cmp(&b.0)));
    entries.truncate(k);
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_are_disjoint_covering_and_balanced() {
        for len in [0usize, 1, 5, 8, 24, 97] {
            for n in [1usize, 2, 3, 7, 16] {
                let candidates: Vec<u32> = (0..len as u32).collect();
                let slices = shard_slices(&candidates, n);
                assert_eq!(slices.len(), n);
                let flat: Vec<u32> = slices.iter().flat_map(|s| s.iter().copied()).collect();
                assert_eq!(flat, candidates, "cover in order (len={len}, n={n})");
                let (min, max) = slices
                    .iter()
                    .fold((usize::MAX, 0), |(lo, hi), s| (lo.min(s.len()), hi.max(s.len())));
                assert!(max - min <= 1, "balanced within one (len={len}, n={n})");
            }
        }
    }

    #[test]
    fn merge_matches_a_single_global_sort() {
        let entries =
            vec![(3u32, 0.5f32), (1, 0.75), (9, 0.5), (0, -1.0), (7, 2.5), (4, 0.75), (2, 0.5)];
        let merged = merge_ranked(entries.clone(), 4);
        // ties at 0.75 and 0.5 break toward the smaller id
        assert_eq!(merged, vec![(7, 2.5), (1, 0.75), (4, 0.75), (2, 0.5)]);
        // truncation only ever drops the tail of the full ordering
        let full = merge_ranked(entries, usize::MAX);
        assert_eq!(full[..4], merged[..]);
    }

    /// Regression: `sort_by` on Rust >= 1.81 may panic when the comparator
    /// is not a total order, which NaN-compares-Equal is not (NaN ties by
    /// id while numbers order by score — transitivity breaks). Damaged
    /// replies must be dropped, never sorted.
    #[test]
    fn nan_scores_from_a_damaged_reply_are_dropped_without_panicking() {
        let entries = vec![
            (0u32, f32::NAN),
            (1, 1.5f32),
            (2, f32::NAN),
            (3, -0.5),
            (4, 1.5),
            (5, f32::NAN),
            (6, f32::NEG_INFINITY),
        ];
        let merged = merge_ranked(entries, usize::MAX);
        assert_eq!(merged, vec![(1, 1.5), (4, 1.5), (3, -0.5), (6, f32::NEG_INFINITY)]);
    }

    #[test]
    fn merge_of_shard_parts_equals_merge_of_the_union() {
        let all: Vec<(u32, f32)> =
            (0..30u32).map(|e| (e, ((e * 7919) % 13) as f32 * 0.25)).collect();
        let ids: Vec<u32> = all.iter().map(|&(e, _)| e).collect();
        for n in [1usize, 2, 3, 5] {
            let slices = shard_slices(&ids, n);
            let mut scattered = Vec::new();
            for slice in slices {
                // each shard contributes its slice's pairs in its own order
                let mut part: Vec<(u32, f32)> = slice.iter().map(|&e| all[e as usize]).collect();
                part.reverse();
                scattered.extend(part);
            }
            assert_eq!(
                merge_ranked(scattered, 10),
                merge_ranked(all.clone(), 10),
                "scatter order must not matter (n={n})"
            );
        }
    }
}
