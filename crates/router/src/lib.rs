//! `rmpi-router` — a scatter-gather front end for a fleet of `rmpi-serve`
//! replicas, speaking the same v1/v2 line protocol on both sides.
//!
//! A single replica ranks its whole candidate set per `RANK`; the router
//! splits that work across N shard replicas and merges the per-shard
//! results into a globally correct top-k. The engine's determinism contract
//! (served scores are bit-identical to offline scoring) is what makes the
//! split sound: scoring is entity-independent, so a candidate's score does
//! not depend on which replica computes it, and merging with the engine's
//! exact tie-break reproduces the single-machine ranking byte for byte.
//!
//! - [`merge`]: candidate sharding and the exact top-k merge (the
//!   correctness argument lives there).
//! - [`router`]: the scatter-gather core — per-shard sessions, breakers and
//!   rescue budgets (reusing `rmpi-client`), an end-to-end deadline budget
//!   decremented and propagated to each shard call as a `DEADLINE` hint,
//!   hedged duplicates to a standby when a shard exceeds its latency p99,
//!   and the `fail`/`partial` degradation policy.
//! - [`server`]: the TCP front end — `RANK` scatter-gather, `SCORE`
//!   pass-through with failover, router-level `HEALTH`/`STATS`/`METRICS`
//!   (`router.shard_errors`, `router.hedges`, `router.partial_responses`,
//!   per-shard latency histograms), protocol v2 with `DEADLINE` hints.
//!
//! A partial response is tagged on the wire — `OK partial <covered>/<total>
//! tail:score ...` — and its merged top-k is bit-identical to ranking the
//! surviving candidate subset offline: no wrong entries, no duplicates.

pub mod merge;
pub mod router;
pub mod server;

pub use merge::{merge_ranked, shard_slices};
pub use router::{PartialPolicy, RankOutcome, Router, RouterConfig, RouterError};
pub use server::{serve_router, RouterHandle};
