//! The scatter-gather core: shard fan-out, deadline budgets, hedging and
//! the partial-result policy.
//!
//! A [`Router`] owns one cached pipelined [`Session`] and one circuit
//! breaker per backend shard (plus an optional standby). A `RANK` is served
//! by splitting the configured candidate list into per-shard slices
//! ([`crate::merge::shard_slices`]), scoring each slice on its shard as one
//! `DEADLINE`-hinted `SCORE` batch, and merging the parts with the engine's
//! exact comparator ([`crate::merge::merge_ranked`]).
//!
//! # Deadline budget
//!
//! Every rank runs under one end-to-end deadline. Each shard call is given
//! whatever remains of the budget at the moment it goes on the wire, both as
//! the client-side wait and as a `DEADLINE <ms>` hint the backend batcher
//! honors — so a request that cannot be answered in time is shed upstream
//! (`ERR deadline expired`) instead of scored late.
//!
//! # Hedging
//!
//! Each shard's observed latency feeds a per-shard histogram; once warm, a
//! primary call that exceeds the shard's p99 triggers a duplicate request to
//! the standby (`router.hedges.count`), and whichever answer lands first
//! wins — bit-identical scores make the race benign. Before the histogram
//! warms up a configurable floor ([`RouterConfig::hedge_after`]) stands in
//! for the p99.
//!
//! # Losing a shard mid-rank
//!
//! A failed shard call (connect refused, session death, shed deadline) is
//! first retried on the standby (bounded by a per-shard rescue budget). If
//! no standby can cover the slice, [`RouterConfig::policy`] decides:
//! `Fail` turns the whole rank into an error; `Partial` merges the
//! surviving slices and reports how much of the candidate set the answer
//! covers — the merged top-k is still bit-identical to ranking the
//! surviving subset offline.

use crate::merge;
use rmpi_client::{
    BreakerConfig, BreakerState, BudgetConfig, CircuitBreaker, ClientConfig, ClientError,
    RetryBudget, Session,
};
use rmpi_obs::json::JsonObject;
use rmpi_obs::{Counter, Histogram, MetricsRegistry};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// What to do when a shard's slice cannot be scored by anyone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartialPolicy {
    /// The rank fails: callers prefer an error over an incomplete answer.
    Fail,
    /// The rank degrades: merge the surviving slices and tag the response
    /// `partial <covered>/<total>` so callers know what it covers.
    Partial,
}

/// Router tuning. Build with [`RouterConfig::new`] and adjust fields.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Backend replicas, one candidate slice each (fan-out width).
    pub shards: Vec<SocketAddr>,
    /// Optional standby replica: target of hedged duplicates and of rescue
    /// retries for failed shards. Must hold the same model as the shards.
    pub standby: Option<SocketAddr>,
    /// The global candidate set a `RANK` ranks over, split across shards.
    pub candidates: Vec<u32>,
    /// Degradation policy when a slice is lost mid-rank.
    pub policy: PartialPolicy,
    /// End-to-end budget per rank; shard calls get whatever remains.
    pub deadline: Duration,
    /// Hedge threshold before a shard's latency histogram warms up.
    pub hedge_after: Duration,
    /// Samples a shard's histogram needs before its p99 replaces
    /// [`RouterConfig::hedge_after`] as the hedge threshold.
    pub hedge_min_samples: u64,
    /// Per-connection client tuning (timeouts apply to each shard call).
    pub client: ClientConfig,
    /// Circuit-breaker shape applied to every shard and the standby.
    pub breaker: BreakerConfig,
    /// Per-shard rescue/hedge budget: each standby attempt withdraws one
    /// token, each primary success deposits, so a flapping shard cannot
    /// double the standby's traffic indefinitely.
    pub budget: BudgetConfig,
    /// Cap on concurrent in-flight calls per shard (each holds one detached
    /// worker thread until it resolves or its deadline lapses). A call
    /// arriving at a saturated shard is routed straight to the standby, so
    /// a wedged shard under load cannot grow threads without bound.
    pub max_shard_inflight: usize,
}

impl RouterConfig {
    /// A config over `shards` ranking `candidates`, with `Partial` policy, a
    /// 2 s end-to-end deadline, a 250 ms cold-start hedge threshold and
    /// default client/breaker/budget tuning.
    pub fn new(shards: Vec<SocketAddr>, candidates: Vec<u32>) -> RouterConfig {
        RouterConfig {
            shards,
            standby: None,
            candidates,
            policy: PartialPolicy::Partial,
            deadline: Duration::from_secs(2),
            hedge_after: Duration::from_millis(250),
            hedge_min_samples: 16,
            client: ClientConfig::default(),
            breaker: BreakerConfig::default(),
            budget: BudgetConfig::default(),
            max_shard_inflight: 32,
        }
    }

    /// Set the standby replica.
    pub fn with_standby(mut self, standby: SocketAddr) -> RouterConfig {
        self.standby = Some(standby);
        self
    }

    /// Set the degradation policy.
    pub fn with_policy(mut self, policy: PartialPolicy) -> RouterConfig {
        self.policy = policy;
        self
    }

    /// Set the end-to-end rank deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> RouterConfig {
        self.deadline = deadline;
        self
    }

    /// Set the cold-start hedge threshold.
    pub fn with_hedge_after(mut self, hedge_after: Duration) -> RouterConfig {
        self.hedge_after = hedge_after;
        self
    }
}

/// A router-level failure (the per-shard causes are folded into the text).
#[derive(Debug)]
pub enum RouterError {
    /// The end-to-end budget ran out before the rank completed.
    DeadlineExpired,
    /// Under [`PartialPolicy::Fail`]: at least one slice was lost.
    ShardsLost {
        /// Shards whose slice could not be scored.
        lost: usize,
        /// Total shards in the fan-out.
        total: usize,
        /// The last per-shard failure, for diagnostics.
        last: String,
    },
    /// Even under [`PartialPolicy::Partial`] nothing answered.
    NoCoverage,
    /// A malformed request reached the router front end.
    BadRequest(String),
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // same wording the backends use, so router clients classify it
            // as transient exactly like a backend deadline shed
            RouterError::DeadlineExpired => write!(f, "deadline expired"),
            RouterError::ShardsLost { lost, total, last } => {
                write!(f, "shards lost mid-rank: {lost}/{total} ({last})")
            }
            RouterError::NoCoverage => write!(f, "no shard answered"),
            RouterError::BadRequest(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

impl std::error::Error for RouterError {}

/// A merged ranking and how much of the candidate set it covers.
#[derive(Clone, Debug, PartialEq)]
pub struct RankOutcome {
    /// Up to `k` `(entity, score)` pairs, best first.
    pub ranked: Vec<(u32, f32)>,
    /// Candidates actually scored (== `total` unless shards were lost).
    pub covered: usize,
    /// Size of the configured candidate set.
    pub total: usize,
}

impl RankOutcome {
    /// Whether any candidate slice was lost.
    pub fn is_partial(&self) -> bool {
        self.covered < self.total
    }
}

/// Breaker plus rescue budget, guarded together (both are `&mut` APIs).
struct ShardControl {
    breaker: CircuitBreaker,
    budget: RetryBudget,
}

/// RAII reservation of one in-flight call slot on a shard; freed on drop
/// (in the dispatch path when the call never goes on the wire, otherwise by
/// the worker thread when the call resolves).
struct InflightSlot(Arc<AtomicUsize>);

impl InflightSlot {
    fn try_reserve(counter: &Arc<AtomicUsize>, cap: usize) -> Option<InflightSlot> {
        counter
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| (n < cap).then_some(n + 1))
            .ok()
            .map(|_| InflightSlot(Arc::clone(counter)))
    }
}

impl Drop for InflightSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// One backend endpoint: cached session, breaker/budget, latency histogram.
struct Shard {
    addr: SocketAddr,
    session: Mutex<Option<Arc<Session>>>,
    control: Mutex<ShardControl>,
    latency: Histogram,
    /// Concurrent in-flight calls, bounded by `max_shard_inflight`.
    inflight: Arc<AtomicUsize>,
}

impl Shard {
    fn new(addr: SocketAddr, cfg: &RouterConfig, latency: Histogram) -> Shard {
        Shard {
            addr,
            session: Mutex::new(None),
            control: Mutex::new(ShardControl {
                breaker: CircuitBreaker::new(cfg.breaker.clone()),
                budget: RetryBudget::new(cfg.budget.clone()),
            }),
            latency,
            inflight: Arc::new(AtomicUsize::new(0)),
        }
    }
}

/// The scatter-gather router core (see module docs). All methods take
/// `&self`; one `Router` serves any number of front-end connections.
pub struct Router {
    cfg: RouterConfig,
    shards: Vec<Shard>,
    standby: Option<Shard>,
    registry: Arc<MetricsRegistry>,
    requests: Counter,
    shard_errors: Counter,
    hedges: Counter,
    partials: Counter,
    rank_latency: Histogram,
}

impl Router {
    /// A router recording metrics into the process-global registry.
    pub fn new(cfg: RouterConfig) -> Router {
        Router::with_registry(cfg, Arc::clone(rmpi_obs::global()))
    }

    /// Same, recording into an explicit registry (tests, benches).
    pub fn with_registry(cfg: RouterConfig, registry: Arc<MetricsRegistry>) -> Router {
        assert!(!cfg.shards.is_empty(), "Router needs at least one shard");
        assert!(!cfg.candidates.is_empty(), "Router needs a candidate set");
        let shards = cfg
            .shards
            .iter()
            .enumerate()
            .map(|(i, &addr)| {
                Shard::new(addr, &cfg, registry.histogram(&format!("router.shard{i}.us")))
            })
            .collect();
        let standby =
            cfg.standby.map(|addr| Shard::new(addr, &cfg, registry.histogram("router.standby.us")));
        Router {
            shards,
            standby,
            requests: registry.counter("router.requests.count"),
            shard_errors: registry.counter("router.shard_errors.count"),
            hedges: registry.counter("router.hedges.count"),
            partials: registry.counter("router.partial_responses.count"),
            rank_latency: registry.histogram("router.rank.us"),
            registry,
            cfg,
        }
    }

    /// The router's configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// The registry this router records into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Breaker state per shard, in configuration order (observability).
    pub fn shard_breaker_states(&self) -> Vec<BreakerState> {
        let now = Instant::now();
        self.shards
            .iter()
            .map(|s| s.control.lock().expect("shard control").breaker.state(now))
            .collect()
    }

    /// Whether a standby replica is configured.
    pub fn has_standby(&self) -> bool {
        self.standby.is_some()
    }

    /// Router counters as a single-line JSON object (the `STATS` verb).
    pub fn stats_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("requests", self.requests.get());
        o.field_u64("shard_errors", self.shard_errors.get());
        o.field_u64("hedges", self.hedges.get());
        o.field_u64("partial_responses", self.partials.get());
        o.field_u64("shards", self.shards.len() as u64);
        o.field_bool("standby", self.standby.is_some());
        o.field_u64("candidates", self.cfg.candidates.len() as u64);
        o.finish()
    }

    /// Rank the configured candidate set for `(head, relation, ?)` under the
    /// configured end-to-end deadline.
    pub fn rank(&self, head: u32, relation: u32, k: usize) -> Result<RankOutcome, RouterError> {
        self.rank_deadline(head, relation, k, self.cfg.deadline)
    }

    /// Rank under an explicit end-to-end budget (the front end uses this to
    /// honor a client's `DEADLINE` hint, capped at the configured deadline).
    pub fn rank_deadline(
        &self,
        head: u32,
        relation: u32,
        k: usize,
        budget: Duration,
    ) -> Result<RankOutcome, RouterError> {
        self.requests.inc();
        let t0 = Instant::now();
        let deadline = t0 + budget;
        let slices = merge::shard_slices(&self.cfg.candidates, self.shards.len());
        let results: Vec<Result<Vec<f32>, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = slices
                .iter()
                .enumerate()
                .map(|(i, slice)| {
                    scope.spawn(move || {
                        if slice.is_empty() {
                            return Ok(Vec::new());
                        }
                        let triples: Vec<(u32, u32, u32)> =
                            slice.iter().map(|&t| (head, relation, t)).collect();
                        self.call_shard(i, &triples, deadline)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
        });

        let total = self.cfg.candidates.len();
        let mut entries: Vec<(u32, f32)> = Vec::with_capacity(total);
        let mut covered = 0usize;
        let mut lost = 0usize;
        let mut last_err = String::new();
        for (slice, result) in slices.iter().zip(results) {
            match result {
                Ok(scores) => {
                    covered += slice.len();
                    entries.extend(slice.iter().copied().zip(scores));
                }
                Err(reason) => {
                    lost += 1;
                    last_err = reason;
                }
            }
        }
        if lost > 0 && self.cfg.policy == PartialPolicy::Fail {
            return Err(RouterError::ShardsLost { lost, total: self.shards.len(), last: last_err });
        }
        if covered == 0 {
            return Err(RouterError::NoCoverage);
        }
        if lost > 0 {
            self.partials.inc();
        }
        let ranked = merge::merge_ranked(entries, k);
        self.rank_latency.record_duration(t0.elapsed());
        Ok(RankOutcome { ranked, covered, total })
    }

    /// Score one slice on its shard, hedging to the standby when the shard
    /// is slow and rescuing through the standby when it fails outright.
    fn call_shard(
        &self,
        idx: usize,
        triples: &[(u32, u32, u32)],
        deadline: Instant,
    ) -> Result<Vec<f32>, String> {
        let shard = &self.shards[idx];
        let now = Instant::now();
        // both cheap rejections come BEFORE the breaker check: `allows()` can
        // consume the single half-open probe slot, and a probe admitted but
        // never resolved with an outcome would wedge the breaker HalfOpen
        // forever (every later call rejected until restart)
        let remaining = deadline.saturating_duration_since(now);
        if remaining.is_zero() {
            return Err("deadline expired before dispatch".into());
        }
        let Some(slot) = InflightSlot::try_reserve(&shard.inflight, self.cfg.max_shard_inflight)
        else {
            // saturated: nothing was attempted, so the breaker is untouched
            // (the deadline failures of whatever wedged the shard trip it);
            // the standby may still cover the slice
            return self.rescue(idx, triples, deadline, "shard at in-flight cap".into());
        };
        if !shard.control.lock().expect("shard control").breaker.allows(now) {
            // open breaker: the shard is known-bad, skip the wire entirely
            drop(slot);
            return self.rescue(idx, triples, deadline, "circuit breaker open".into());
        }
        let session = match self.session_for(shard) {
            Ok(s) => s,
            Err(e) => {
                self.note_shard_failure(shard);
                drop(slot);
                return self.rescue(idx, triples, deadline, format!("connect: {e}"));
            }
        };
        let t0 = Instant::now();
        let (tx, rx) = mpsc::channel();
        let owned = triples.to_vec();
        std::thread::spawn(move || {
            // the slot rides with the worker: it frees when the call resolves
            // (or its late reply is dropped), bounding detached threads per
            // shard even when the shard is wedged and callers keep arriving
            let _slot = slot;
            let _ = tx.send(session.score_batch_deadline(&owned, remaining));
        });
        let hedge_wait = self.hedge_threshold(shard).min(remaining);
        match rx.recv_timeout(hedge_wait) {
            Ok(Ok(scores)) => {
                self.note_shard_success(shard, t0);
                return Ok(scores);
            }
            Ok(Err(e)) => {
                self.note_shard_failure(shard);
                return self.rescue(idx, triples, deadline, format!("shard: {e}"));
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                self.note_shard_failure(shard);
                return self.rescue(idx, triples, deadline, "shard worker vanished".into());
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
        }
        // the shard blew past its hedge threshold: fire the duplicate at the
        // standby; the primary keeps racing and whichever lands first wins
        if let Some(standby) = self.standby.as_ref().filter(|_| self.withdraw_rescue(idx)) {
            self.hedges.inc();
            let rem = deadline.saturating_duration_since(Instant::now());
            if !rem.is_zero() {
                if let Ok(scores) = self.call_standby(standby, triples, rem) {
                    // the primary never answered inside its hedge window:
                    // count that against its breaker so a wedged shard
                    // eventually trips (and a half-open probe is never left
                    // dangling) — but not as a wire error, the hedge covered
                    // it; its late reply is dropped with the channel
                    shard
                        .control
                        .lock()
                        .expect("shard control")
                        .breaker
                        .record_failure(Instant::now());
                    return Ok(scores);
                }
            }
        }
        // no standby (or the hedge failed too): wait out the primary up to
        // the caller's deadline
        let rem = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(rem) {
            Ok(Ok(scores)) => {
                self.note_shard_success(shard, t0);
                Ok(scores)
            }
            Ok(Err(e)) => {
                self.note_shard_failure(shard);
                Err(format!("shard: {e}"))
            }
            Err(_) => {
                self.note_shard_failure(shard);
                Err("deadline expired waiting for shard".into())
            }
        }
    }

    /// Cover a failed shard's slice through the standby, bounded by the
    /// shard's rescue budget.
    fn rescue(
        &self,
        idx: usize,
        triples: &[(u32, u32, u32)],
        deadline: Instant,
        cause: String,
    ) -> Result<Vec<f32>, String> {
        let Some(standby) = &self.standby else {
            return Err(cause);
        };
        if !self.withdraw_rescue(idx) {
            return Err(format!("{cause}; rescue budget dry"));
        }
        let rem = deadline.saturating_duration_since(Instant::now());
        if rem.is_zero() {
            return Err(format!("{cause}; deadline expired before rescue"));
        }
        self.call_standby(standby, triples, rem).map_err(|e| format!("{cause}; standby: {e}"))
    }

    /// One scoring attempt against the standby, under its own breaker.
    fn call_standby(
        &self,
        standby: &Shard,
        triples: &[(u32, u32, u32)],
        budget: Duration,
    ) -> Result<Vec<f32>, ClientError> {
        if !standby.control.lock().expect("shard control").breaker.allows(Instant::now()) {
            return Err(ClientError::NoHealthyEndpoint { last: None });
        }
        let session = match self.session_for(standby) {
            Ok(s) => s,
            Err(e) => {
                self.note_shard_failure(standby);
                return Err(e);
            }
        };
        let t0 = Instant::now();
        match session.score_batch_deadline(triples, budget) {
            Ok(scores) => {
                self.note_shard_success(standby, t0);
                Ok(scores)
            }
            Err(e) => {
                self.note_shard_failure(standby);
                Err(e)
            }
        }
    }

    /// The cached session for an endpoint, reconnecting when absent or dead.
    fn session_for(&self, shard: &Shard) -> Result<Arc<Session>, ClientError> {
        let mut cached = shard.session.lock().expect("shard session");
        if let Some(s) = cached.as_ref() {
            if s.is_alive() {
                return Ok(Arc::clone(s));
            }
        }
        let fresh = Arc::new(Session::connect(shard.addr, &self.cfg.client)?);
        *cached = Some(Arc::clone(&fresh));
        Ok(fresh)
    }

    /// This shard's hedge threshold: its observed p99 once the histogram is
    /// warm (floored at 1 ms), the configured floor before that.
    fn hedge_threshold(&self, shard: &Shard) -> Duration {
        let s = shard.latency.summary();
        if s.count >= self.cfg.hedge_min_samples {
            Duration::from_micros(s.p99.max(1_000))
        } else {
            self.cfg.hedge_after
        }
    }

    fn note_shard_success(&self, shard: &Shard, t0: Instant) {
        shard.latency.record_duration(t0.elapsed());
        let mut c = shard.control.lock().expect("shard control");
        c.breaker.record_success();
        c.budget.record_success();
    }

    fn note_shard_failure(&self, shard: &Shard) {
        self.shard_errors.inc();
        let mut c = shard.control.lock().expect("shard control");
        c.breaker.record_failure(Instant::now());
    }

    fn withdraw_rescue(&self, idx: usize) -> bool {
        self.shards[idx].control.lock().expect("shard control").budget.try_withdraw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders_and_outcome_partiality() {
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let cfg = RouterConfig::new(vec![addr], vec![0, 1, 2])
            .with_standby(addr)
            .with_policy(PartialPolicy::Fail)
            .with_deadline(Duration::from_millis(300))
            .with_hedge_after(Duration::from_millis(20));
        assert_eq!(cfg.standby, Some(addr));
        assert_eq!(cfg.policy, PartialPolicy::Fail);
        assert_eq!(cfg.deadline, Duration::from_millis(300));
        assert_eq!(cfg.hedge_after, Duration::from_millis(20));

        let full = RankOutcome { ranked: vec![(1, 0.5)], covered: 3, total: 3 };
        assert!(!full.is_partial());
        let partial = RankOutcome { ranked: vec![(1, 0.5)], covered: 2, total: 3 };
        assert!(partial.is_partial());
    }

    #[test]
    fn error_display_keeps_the_transient_deadline_wording() {
        // router clients reuse the backend's error classifier: the router's
        // deadline error must read exactly like a backend deadline shed
        assert_eq!(RouterError::DeadlineExpired.to_string(), "deadline expired");
        let e = RouterError::ShardsLost { lost: 1, total: 3, last: "connect: refused".into() };
        assert!(e.to_string().contains("1/3"), "{e}");
        assert!(RouterError::BadRequest("nope".into()).to_string().starts_with("bad request:"));
    }

    #[test]
    fn inflight_slots_are_bounded_and_released_on_drop() {
        let counter = Arc::new(AtomicUsize::new(0));
        let a = InflightSlot::try_reserve(&counter, 2).expect("slot 1");
        let b = InflightSlot::try_reserve(&counter, 2).expect("slot 2");
        assert!(InflightSlot::try_reserve(&counter, 2).is_none(), "cap enforced");
        drop(a);
        let c = InflightSlot::try_reserve(&counter, 2).expect("freed slot reusable");
        drop(b);
        drop(c);
        assert_eq!(counter.load(Ordering::Acquire), 0, "all slots returned");
    }

    /// Regression: a rank whose budget is already spent must fail *before*
    /// touching the breaker. `allows()` on an Open breaker whose cooldown
    /// has elapsed consumes the single half-open probe slot; bailing out
    /// afterwards without recording an outcome would wedge the breaker
    /// HalfOpen forever and leave the shard permanently dark.
    #[test]
    fn an_expired_deadline_never_consumes_the_half_open_probe() {
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let registry = Arc::new(MetricsRegistry::new());
        let mut cfg = RouterConfig::new(vec![dead], (0..4).collect())
            .with_deadline(Duration::from_millis(300));
        cfg.breaker = BreakerConfig { trip_after: 1, cooldown: Duration::from_millis(20) };
        let router = Router::with_registry(cfg, Arc::clone(&registry));
        // one refused connect trips the breaker open
        router.rank(0, 0, 2).unwrap_err();
        assert_eq!(router.shard_breaker_states()[0], BreakerState::Open);
        // cooldown elapses; a zero-budget rank arrives exactly when the
        // probe slot opens up
        std::thread::sleep(Duration::from_millis(30));
        let err = router.rank_deadline(0, 0, 2, Duration::ZERO).unwrap_err();
        assert!(matches!(err, RouterError::NoCoverage), "{err}");
        // the probe must still be available: the next rank reaches the wire
        // (counted as a shard error) instead of being breaker-rejected
        let errors_before = registry.counter("router.shard_errors.count").get();
        router.rank(0, 0, 2).unwrap_err();
        assert!(
            registry.counter("router.shard_errors.count").get() > errors_before,
            "breaker wedged HalfOpen: the probe was consumed and never resolved"
        );
    }

    #[test]
    fn dead_shards_without_standby_surface_per_policy() {
        // two never-listening addrs: connects are refused immediately
        let dead = || {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let registry = Arc::new(MetricsRegistry::new());
        let cfg = RouterConfig::new(vec![dead(), dead()], (0..6).collect())
            .with_policy(PartialPolicy::Partial)
            .with_deadline(Duration::from_millis(500));
        let router = Router::with_registry(cfg, Arc::clone(&registry));
        let err = router.rank(0, 0, 3).unwrap_err();
        assert!(matches!(err, RouterError::NoCoverage), "{err}");
        assert!(registry.counter("router.shard_errors.count").get() >= 2);

        let cfg = RouterConfig::new(vec![dead(), dead()], (0..6).collect())
            .with_policy(PartialPolicy::Fail)
            .with_deadline(Duration::from_millis(500));
        let router = Router::with_registry(cfg, Arc::new(MetricsRegistry::new()));
        let err = router.rank(0, 0, 3).unwrap_err();
        assert!(matches!(err, RouterError::ShardsLost { lost: 2, .. }), "{err}");
    }
}
