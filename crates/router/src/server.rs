//! The router's TCP front end: the same v1/v2 line protocol the backends
//! speak, so existing clients (including `rmpi-client` itself) point at the
//! router unmodified.
//!
//! Verbs:
//!
//! ```text
//! PING                         -> OK pong
//! SCORE h r t [h r t ...]      -> pass-through to a backend with failover
//! RANK h r k                   -> scatter-gather over the shards:
//!                                 OK tail:score ...                (full)
//!                                 OK partial <covered>/<total> tail:score ...
//! HEALTH                       -> OK healthy shards=N | OK degraded ... | ERR
//! STATS                        -> OK {router counters}
//! METRICS                      -> OK {full registry dump}
//! PROTO 2                      -> OK proto=2 (connection switches to v2)
//! ```
//!
//! In v2, requests carry `ID <n>` tags (echoed on responses) and may prefix
//! the inner request with `DEADLINE <ms>`: on `RANK` the hint caps the
//! router's end-to-end budget; on `SCORE` it anchors an absolute deadline
//! at arrival, and each upstream forward (failover retries included)
//! carries only the *remaining* budget so the backend batcher sheds late
//! work on the caller's clock. The front end answers a connection's
//! requests in order — in-order delivery is a valid v2 implementation, and
//! pipelined clients still keep many requests in flight.

use crate::router::{RankOutcome, Router};
use rmpi_client::{BreakerState, ClientError, FailoverClient, FailoverConfig, ProtocolClient};
use rmpi_obs::MetricsRegistry;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A running router front end; shuts down on [`RouterHandle::shutdown`] or
/// drop.
pub struct RouterHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl RouterHandle {
    /// The address the front end listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept loop. Connection handlers exit
    /// when their client disconnects.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // unblock the accept loop
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Recipe for a connection's private `SCORE` pass-through client: endpoints
/// and tuning, instantiated per connection so one stalled upstream exchange
/// never serializes other connections' `SCORE`s (metrics still aggregate in
/// the shared registry).
struct PassthroughSpec {
    endpoints: Vec<SocketAddr>,
    cfg: FailoverConfig,
    registry: Arc<MetricsRegistry>,
}

impl PassthroughSpec {
    fn build(&self) -> FailoverClient {
        FailoverClient::with_registry(
            self.endpoints.clone(),
            self.cfg.clone(),
            Arc::clone(&self.registry),
        )
    }
}

/// Serve `router` on an ephemeral localhost port. The `SCORE` pass-through
/// rides a per-connection [`FailoverClient`] over the shards (standby
/// last), recording into the router's registry.
pub fn serve_router(router: Arc<Router>) -> io::Result<RouterHandle> {
    let cfg = router.config();
    let spec = Arc::new(PassthroughSpec {
        endpoints: cfg.shards.iter().copied().chain(cfg.standby).collect(),
        cfg: FailoverConfig { client: cfg.client.clone(), breaker: cfg.breaker.clone() },
        registry: Arc::clone(router.registry()),
    });
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept =
        std::thread::Builder::new().name("rmpi-router-accept".into()).spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(stream) = conn else { continue };
                let router = Arc::clone(&router);
                let spec = Arc::clone(&spec);
                std::thread::spawn(move || handle_conn(router, &spec, stream));
            }
        })?;
    Ok(RouterHandle { addr, stop, accept: Some(accept) })
}

fn handle_conn(router: Arc<Router>, spec: &PassthroughSpec, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut out = stream;
    let mut passthrough = spec.build();
    let mut v2 = false;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        // a DEADLINE hint's budget is spent from the moment the request
        // arrived, not from when an upstream forward happens to go out
        let arrival = Instant::now();
        let trimmed = line.trim();
        let response = if v2 {
            handle_v2_line(&router, &mut passthrough, trimmed, arrival)
        } else if trimmed == "PROTO 2" {
            v2 = true;
            "OK proto=2".to_owned()
        } else {
            dispatch(&router, &mut passthrough, trimmed, None)
        };
        if writeln!(out, "{response}").is_err() {
            return;
        }
    }
}

/// Split a v2 line `ID <n> <request...>` into tag and inner request.
fn split_tag(line: &str) -> Option<(u64, &str)> {
    let rest = line.strip_prefix("ID")?;
    if !rest.starts_with(|c: char| c.is_ascii_whitespace()) {
        return None;
    }
    let rest = rest.trim_start();
    let (tag, inner) = rest.split_once(|c: char| c.is_ascii_whitespace())?;
    let inner = inner.trim();
    if inner.is_empty() {
        return None;
    }
    Some((tag.parse().ok()?, inner))
}

/// Split an optional `DEADLINE <ms> ` prefix off an inner request. A
/// malformed hint is left in place for the normal parser to reject.
fn split_deadline(inner: &str) -> (Option<Duration>, &str) {
    let Some(rest) = inner.strip_prefix("DEADLINE") else {
        return (None, inner);
    };
    if !rest.starts_with(|c: char| c.is_ascii_whitespace()) {
        return (None, inner);
    }
    let rest = rest.trim_start();
    let Some((ms, tail)) = rest.split_once(|c: char| c.is_ascii_whitespace()) else {
        return (None, inner);
    };
    match ms.parse::<u64>() {
        Ok(ms) => (Some(Duration::from_millis(ms)), tail.trim_start()),
        Err(_) => (None, inner),
    }
}

fn handle_v2_line(
    router: &Router,
    passthrough: &mut FailoverClient,
    line: &str,
    arrival: Instant,
) -> String {
    match split_tag(line) {
        Some((tag, inner)) => {
            let response = dispatch_with_deadline(router, passthrough, inner, arrival);
            format!("ID {tag} {response}")
        }
        // untagged: not attributable, answered bare exactly like a backend
        None => "ERR bad request: protocol v2 requests start with `ID <n>`".to_owned(),
    }
}

/// Strip a `DEADLINE` hint and dispatch. A hinted `SCORE` becomes an
/// absolute deadline anchored at the request's arrival: the pass-through
/// re-derives the *remaining* budget at every upstream forward (failover
/// retries included), so a backend serving a retry is never re-granted the
/// caller's original budget. `RANK` converts the hint into the router's
/// end-to-end budget.
fn dispatch_with_deadline(
    router: &Router,
    passthrough: &mut FailoverClient,
    inner: &str,
    arrival: Instant,
) -> String {
    let (budget, stripped) = split_deadline(inner);
    if stripped.split_whitespace().next() == Some("SCORE") {
        return match budget {
            Some(budget) => {
                score_response(passthrough.request_line_deadline(stripped, true, arrival + budget))
            }
            None => handle_score(passthrough, stripped),
        };
    }
    dispatch(router, passthrough, stripped, budget)
}

fn dispatch(
    router: &Router,
    passthrough: &mut FailoverClient,
    line: &str,
    budget: Option<Duration>,
) -> String {
    let Some(verb) = line.split_whitespace().next() else {
        return "ERR bad request: empty request".to_owned();
    };
    match verb {
        "PING" => "OK pong".to_owned(),
        "HEALTH" => health_response(router),
        "STATS" => format!("OK {}", router.stats_json()),
        "METRICS" => format!("OK {}", router.registry().to_json()),
        "SCORE" => handle_score(passthrough, line),
        "RANK" => handle_rank(router, line, budget),
        "PROTO" => {
            // only reachable inside a v2 stream (v1 negotiation is handled
            // by the connection loop): renegotiating the same version is
            // harmlessly idempotent, anything else is a bad request
            if line == "PROTO 2" {
                "OK proto=2".to_owned()
            } else {
                "ERR bad request: only protocol version 2 is supported".to_owned()
            }
        }
        other => format!("ERR bad request: unknown command {other:?}"),
    }
}

fn handle_score(passthrough: &mut FailoverClient, line: &str) -> String {
    score_response(passthrough.request_line(line, true))
}

fn score_response(result: Result<String, ClientError>) -> String {
    match result {
        Ok(payload) if payload.is_empty() => "OK".to_owned(),
        Ok(payload) => format!("OK {payload}"),
        // a definitive backend rejection passes through verbatim
        Err(ClientError::Server { message, .. }) => format!("ERR {message}"),
        Err(e) => format!("ERR router upstream: {e}"),
    }
}

fn handle_rank(router: &Router, line: &str, budget: Option<Duration>) -> String {
    let mut parts = line.split_whitespace();
    parts.next(); // RANK
    let (Some(h), Some(r), Some(k), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return "ERR bad request: RANK takes exactly head, relation, k".to_owned();
    };
    let (Ok(h), Ok(r), Ok(k)) = (h.parse::<u32>(), r.parse::<u32>(), k.parse::<usize>()) else {
        return "ERR bad request: RANK takes numeric head, relation, k".to_owned();
    };
    let cap = router.config().deadline;
    let budget = budget.map_or(cap, |b| b.min(cap));
    match router.rank_deadline(h, r, k, budget) {
        Ok(outcome) => format_rank(&outcome),
        Err(e) => format!("ERR {e}"),
    }
}

/// `OK [partial <covered>/<total>] tail:score ...`, scores in the same
/// shortest-round-trip `f32` formatting the backends use — a full response
/// is byte-identical to one backend ranking the whole candidate set.
fn format_rank(outcome: &RankOutcome) -> String {
    let mut out = String::from("OK");
    if outcome.is_partial() {
        out.push_str(&format!(" partial {}/{}", outcome.covered, outcome.total));
    }
    for (tail, score) in &outcome.ranked {
        out.push_str(&format!(" {tail}:{score}"));
    }
    out
}

fn health_response(router: &Router) -> String {
    let states = router.shard_breaker_states();
    let n = states.len();
    let open = states.iter().filter(|s| **s != BreakerState::Closed).count();
    if open == 0 {
        format!("OK healthy shards={n} candidates={}", router.config().candidates.len())
    } else if open < n || router.has_standby() {
        format!("OK degraded shards={n} open={open}")
    } else {
        "ERR no healthy shards".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RouterConfig;
    use rmpi_client::{ClientConfig, Session};
    use rmpi_core::{RmpiConfig, RmpiModel};
    use rmpi_kg::{KnowledgeGraph, Triple};
    use rmpi_obs::MetricsRegistry;
    use rmpi_serve::{serve, Engine, EngineConfig, ServerConfig, ServerHandle};

    /// Entities 0..8 over 4 relations — small enough to score offline.
    fn test_engine() -> Arc<Engine> {
        let graph = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 2u32),
            Triple::new(2u32, 2u32, 3u32),
            Triple::new(3u32, 3u32, 4u32),
            Triple::new(4u32, 0u32, 5u32),
            Triple::new(5u32, 1u32, 6u32),
            Triple::new(6u32, 2u32, 7u32),
            Triple::new(7u32, 3u32, 0u32),
            Triple::new(0u32, 1u32, 3u32),
            Triple::new(2u32, 0u32, 6u32),
        ]);
        let model = RmpiModel::new(RmpiConfig { dim: 8, ..RmpiConfig::base() }, 4, 0);
        Arc::new(Engine::new(
            model,
            graph,
            EngineConfig::default().with_seed(7).with_cache_capacity(64).with_threads(1),
        ))
    }

    fn replica(engine: &Arc<Engine>) -> ServerHandle {
        serve(Arc::clone(engine), ServerConfig::default()).expect("replica")
    }

    fn candidates() -> Vec<u32> {
        (0..8).collect()
    }

    /// The reference: score every candidate offline and order with the
    /// engine's comparator.
    fn offline_rank(engine: &Engine, head: u32, relation: u32, k: usize) -> Vec<(u32, f32)> {
        let cands = candidates();
        let triples: Vec<Triple> = cands.iter().map(|&t| Triple::new(head, relation, t)).collect();
        let scores = engine.score_batch(&triples).expect("offline scores");
        crate::merge::merge_ranked(cands.into_iter().zip(scores).collect(), k)
    }

    fn router_over(replicas: &[&ServerHandle]) -> Arc<Router> {
        let cfg = RouterConfig::new(replicas.iter().map(|r| r.addr()).collect(), candidates());
        Arc::new(Router::with_registry(cfg, Arc::new(MetricsRegistry::new())))
    }

    fn query(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
        writeln!(stream, "{line}").expect("send");
        let mut response = String::new();
        reader.read_line(&mut response).expect("recv");
        assert!(response.ends_with('\n'), "complete frame");
        response.trim_end().to_owned()
    }

    fn connect(handle: &RouterHandle) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        (stream, reader)
    }

    #[test]
    fn front_end_serves_the_cheap_verbs_and_rejects_malformed_requests() {
        let engine = test_engine();
        let (a, b) = (replica(&engine), replica(&engine));
        let mut handle = serve_router(router_over(&[&a, &b])).expect("router");
        let (mut stream, mut reader) = connect(&handle);
        assert_eq!(query(&mut stream, &mut reader, "PING"), "OK pong");
        assert_eq!(query(&mut stream, &mut reader, "HEALTH"), "OK healthy shards=2 candidates=8");
        let stats = query(&mut stream, &mut reader, "STATS");
        assert!(stats.starts_with("OK {"), "{stats}");
        for field in ["\"requests\"", "\"shard_errors\"", "\"hedges\"", "\"partial_responses\""] {
            assert!(stats.contains(field), "STATS lost {field}: {stats}");
        }
        let metrics = query(&mut stream, &mut reader, "METRICS");
        assert!(metrics.contains("\"router.requests.count\""), "{metrics}");
        for bad in ["", "FROB", "RANK 1 2", "RANK 1 2 3 4", "RANK x 2 3"] {
            let resp = query(&mut stream, &mut reader, bad);
            assert!(resp.starts_with("ERR bad request"), "{bad:?} -> {resp}");
        }
        handle.shutdown();
    }

    #[test]
    fn score_passes_through_bit_identical_and_echoes_backend_rejections() {
        let engine = test_engine();
        let (a, b) = (replica(&engine), replica(&engine));
        let mut handle = serve_router(router_over(&[&a, &b])).expect("router");
        let (mut stream, mut reader) = connect(&handle);
        let resp = query(&mut stream, &mut reader, "SCORE 0 0 1 2 2 3");
        let offline = engine
            .score_batch(&[Triple::new(0u32, 0u32, 1u32), Triple::new(2u32, 2u32, 3u32)])
            .unwrap();
        let expected = format!("OK {} {}", offline[0], offline[1]);
        assert_eq!(resp, expected, "pass-through must not perturb a single bit");
        // a definitive backend rejection comes back verbatim
        let resp = query(&mut stream, &mut reader, "SCORE 0 99 1");
        assert!(resp.starts_with("ERR unknown relation"), "{resp}");
        handle.shutdown();
    }

    #[test]
    fn routed_rank_over_the_wire_matches_the_offline_reference() {
        let engine = test_engine();
        let (a, b, c) = (replica(&engine), replica(&engine), replica(&engine));
        let mut handle = serve_router(router_over(&[&a, &b, &c])).expect("router");
        let (mut stream, mut reader) = connect(&handle);
        let resp = query(&mut stream, &mut reader, "RANK 0 0 5");
        let mut expected = String::from("OK");
        for (t, s) in offline_rank(&engine, 0, 0, 5) {
            expected.push_str(&format!(" {t}:{s}"));
        }
        assert_eq!(resp, expected, "full routed rank is byte-identical to offline");
        handle.shutdown();
    }

    #[test]
    fn the_standard_client_stack_speaks_v2_to_the_router_unmodified() {
        let engine = test_engine();
        let (a, b) = (replica(&engine), replica(&engine));
        let mut handle = serve_router(router_over(&[&a, &b])).expect("router");
        let cfg = ClientConfig::default();
        let session = Session::connect(handle.addr(), &cfg).expect("session");
        assert_eq!(session.proto_version(), 2, "router negotiates v2");
        let offline = engine.score_batch(&[Triple::new(1u32, 1u32, 2u32)]).unwrap();
        assert_eq!(session.score(1, 1, 2).expect("score via router"), offline[0]);
        let ranked = session.rank_tails(0, 0, 4).expect("rank via router");
        assert_eq!(ranked, offline_rank(&engine, 0, 0, 4));
        // the DEADLINE hint flows through the router to the backends
        let scores = session
            .score_batch_deadline(&[(1, 1, 2)], Duration::from_millis(500))
            .expect("deadline-hinted score");
        assert_eq!(scores[0], offline[0]);
        session.ping().expect("ping");
        drop(session);
        handle.shutdown();
    }

    #[test]
    fn tag_and_deadline_parsing() {
        assert_eq!(split_tag("ID 7 PING"), Some((7, "PING")));
        assert_eq!(split_tag("ID 7 DEADLINE 30 RANK 0 0 3"), Some((7, "DEADLINE 30 RANK 0 0 3")));
        assert_eq!(split_tag("PING"), None);
        assert_eq!(split_tag("ID x PING"), None);
        assert_eq!(split_tag("ID7 PING"), None);
        assert_eq!(split_tag("ID 7"), None);

        assert_eq!(
            split_deadline("DEADLINE 30 RANK 0 0 3"),
            (Some(Duration::from_millis(30)), "RANK 0 0 3")
        );
        assert_eq!(split_deadline("RANK 0 0 3"), (None, "RANK 0 0 3"));
        assert_eq!(split_deadline("DEADLINE x RANK 0 0 3"), (None, "DEADLINE x RANK 0 0 3"));
        assert_eq!(split_deadline("DEADLINE 30"), (None, "DEADLINE 30"));
        assert_eq!(split_deadline("DEADLINES 30 PING"), (None, "DEADLINES 30 PING"));
    }
}
