//! Chaos proof for the scatter-gather router: kill one shard mid-rank and
//! verify the degraded answer is *exactly* what correctness demands.
//!
//! The merged top-k of an `OK partial` response must be bit-identical to
//! re-ranking the surviving shards' candidate slices offline — zero wrong
//! entries, zero duplicates, byte-identical score formatting. A second test
//! drives the hedging path: a black-hole shard (accepts, negotiates v2,
//! never answers) forces a hedged duplicate to the standby, and the rank
//! still comes back complete and bit-identical to the full offline ranking.

use rmpi_client::BreakerConfig;
use rmpi_obs::MetricsRegistry;
use rmpi_router::{merge_ranked, serve_router, shard_slices, PartialPolicy, Router, RouterConfig};
use rmpi_serve::{serve, Engine, EngineConfig, ServerConfig, ServerHandle};
use rmpi_testutil::chaos::{ChaosConfig, ChaosProxy};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use rmpi_core::{RmpiConfig, RmpiModel};
use rmpi_kg::{KnowledgeGraph, Triple};

const K: usize = 5;

fn test_engine() -> Arc<Engine> {
    let graph = KnowledgeGraph::from_triples(vec![
        Triple::new(0u32, 0u32, 1u32),
        Triple::new(1u32, 1u32, 2u32),
        Triple::new(2u32, 2u32, 3u32),
        Triple::new(3u32, 3u32, 4u32),
        Triple::new(4u32, 0u32, 5u32),
        Triple::new(5u32, 1u32, 6u32),
        Triple::new(6u32, 2u32, 7u32),
        Triple::new(7u32, 3u32, 0u32),
        Triple::new(0u32, 1u32, 3u32),
        Triple::new(2u32, 0u32, 6u32),
    ]);
    let model = RmpiModel::new(RmpiConfig { dim: 8, ..RmpiConfig::base() }, 4, 0);
    Arc::new(Engine::new(
        model,
        graph,
        EngineConfig::default().with_seed(13).with_cache_capacity(128).with_threads(1),
    ))
}

fn replica(engine: &Arc<Engine>) -> ServerHandle {
    serve(Arc::clone(engine), ServerConfig::default()).expect("replica")
}

fn candidates() -> Vec<u32> {
    (0..8).collect()
}

/// Score `cands` offline on the engine and order with the exact serving
/// comparator — the reference every routed answer is compared against.
fn offline_rank(engine: &Engine, head: u32, relation: u32, cands: &[u32]) -> Vec<(u32, f32)> {
    let triples: Vec<Triple> = cands.iter().map(|&t| Triple::new(head, relation, t)).collect();
    let scores = engine.score_batch(&triples).expect("offline scores");
    merge_ranked(cands.iter().copied().zip(scores).collect(), K)
}

/// `(covered, total)` when the response is tagged `partial`, else `None`.
type Coverage = Option<(usize, usize)>;

/// Parse `OK [partial c/t] tail:score ...` into coverage and exact pairs.
fn parse_rank_response(resp: &str) -> (Coverage, Vec<(u32, f32)>) {
    let rest = resp.strip_prefix("OK").expect("OK response");
    let mut parts = rest.split_whitespace().peekable();
    let coverage = if parts.peek() == Some(&"partial") {
        parts.next();
        let frac = parts.next().expect("covered/total");
        let (c, t) = frac.split_once('/').expect("covered/total");
        Some((c.parse().expect("covered"), t.parse().expect("total")))
    } else {
        None
    };
    let pairs = parts
        .map(|p| {
            let (tail, score) = p.split_once(':').expect("tail:score");
            (tail.parse().expect("tail id"), score.parse().expect("score"))
        })
        .collect();
    (coverage, pairs)
}

fn query(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(stream, "{line}").expect("send");
    let mut response = String::new();
    reader.read_line(&mut response).expect("recv");
    assert!(response.ends_with('\n'), "complete frame: {response:?}");
    response.trim_end().to_owned()
}

#[test]
fn killed_shard_mid_rank_degrades_to_a_bit_identical_partial_top_k() {
    let engine = test_engine();
    let (s0, s1, s2) = (replica(&engine), replica(&engine), replica(&engine));
    // shard 1 sits behind a chaos proxy so it can be killed mid-rank
    let proxy = ChaosProxy::spawn(
        s1.addr(),
        ChaosConfig { seed: 41, fault_rate: 0.0, ..Default::default() },
    )
    .expect("proxy");
    let cands = candidates();
    let cfg = RouterConfig::new(vec![s0.addr(), proxy.addr(), s2.addr()], cands.clone())
        .with_policy(PartialPolicy::Partial)
        .with_deadline(Duration::from_secs(2));
    let registry = Arc::new(MetricsRegistry::new());
    let router = Arc::new(Router::with_registry(cfg, Arc::clone(&registry)));
    let mut handle = serve_router(Arc::clone(&router)).expect("front end");
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // healthy fan-out first: full coverage, byte-identical to offline
    let resp = query(&mut stream, &mut reader, "RANK 0 0 5");
    let (coverage, pairs) = parse_rank_response(&resp);
    assert_eq!(coverage, None, "healthy rank is not partial: {resp}");
    assert_eq!(pairs, offline_rank(&engine, 0, 0, &cands), "healthy merge == offline");

    // kill shard 1: its live session is cut and new connects are refused —
    // from the router's view the shard dies in the middle of the next rank
    proxy.kill();
    let resp = query(&mut stream, &mut reader, "RANK 0 0 5");
    let slices = shard_slices(&cands, 3);
    let survivors: Vec<u32> = slices[0].iter().chain(slices[2].iter()).copied().collect();
    let (coverage, pairs) = parse_rank_response(&resp);
    assert_eq!(
        coverage,
        Some((survivors.len(), cands.len())),
        "partial tag reports surviving coverage: {resp}"
    );
    let reference = offline_rank(&engine, 0, 0, &survivors);
    assert_eq!(
        pairs, reference,
        "merged partial top-k must be bit-identical to offline ranking of the survivors"
    );
    // structural guarantees: no duplicates, nothing from the dead slice
    let mut seen = std::collections::HashSet::new();
    for (tail, _) in &pairs {
        assert!(seen.insert(*tail), "duplicate entity {tail} in {resp}");
        assert!(survivors.contains(tail), "entity {tail} is from the dead shard's slice");
    }
    // the response is also byte-identical to re-serializing the reference
    let mut expected = format!("OK partial {}/{}", survivors.len(), cands.len());
    for (t, s) in &reference {
        expected.push_str(&format!(" {t}:{s}"));
    }
    assert_eq!(resp, expected);

    assert!(registry.counter("router.shard_errors.count").get() >= 1);
    assert!(registry.counter("router.partial_responses.count").get() >= 1);
    let health = query(&mut stream, &mut reader, "HEALTH");
    assert!(health.starts_with("OK"), "two live shards keep the router serving: {health}");
    handle.shutdown();
}

#[test]
fn fail_policy_turns_a_lost_shard_into_an_error() {
    let engine = test_engine();
    let (s0, s2) = (replica(&engine), replica(&engine));
    let proxy = ChaosProxy::spawn(
        s2.addr(),
        ChaosConfig { seed: 43, fault_rate: 0.0, ..Default::default() },
    )
    .expect("proxy");
    proxy.kill();
    let cfg = RouterConfig::new(vec![s0.addr(), proxy.addr()], candidates())
        .with_policy(PartialPolicy::Fail)
        .with_deadline(Duration::from_secs(2));
    let router = Arc::new(Router::with_registry(cfg, Arc::new(MetricsRegistry::new())));
    let mut handle = serve_router(Arc::clone(&router)).expect("front end");
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let resp = query(&mut stream, &mut reader, "RANK 0 0 5");
    assert!(resp.starts_with("ERR shards lost mid-rank: 1/2"), "{resp}");
    handle.shutdown();
}

/// A server that negotiates protocol v2 and then swallows every request —
/// the pathological slow shard that hedging exists for.
fn black_hole() -> (SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let handle = std::thread::spawn(move || {
        // serve at most a few connections, then stop accepting
        for conn in listener.incoming().take(4) {
            let Ok(conn) = conn else { return };
            std::thread::spawn(move || {
                let mut reader = BufReader::new(conn.try_clone().expect("clone"));
                let mut conn = conn;
                let mut line = String::new();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    return;
                }
                if line.trim_end() == "PROTO 2" {
                    let _ = writeln!(conn, "OK proto=2");
                }
                // swallow everything else until the client goes away
                loop {
                    line.clear();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        return;
                    }
                }
            });
        }
    });
    (addr, handle)
}

#[test]
fn slow_shard_hedges_to_the_standby_and_the_rank_stays_complete() {
    let engine = test_engine();
    let good = replica(&engine);
    let standby = replica(&engine);
    let (hole_addr, _hole) = black_hole();
    let cands = candidates();
    let cfg = RouterConfig::new(vec![good.addr(), hole_addr], cands.clone())
        .with_standby(standby.addr())
        .with_policy(PartialPolicy::Partial)
        .with_deadline(Duration::from_secs(3))
        .with_hedge_after(Duration::from_millis(50));
    let registry = Arc::new(MetricsRegistry::new());
    let router = Router::with_registry(cfg, Arc::clone(&registry));

    let outcome = router.rank(0, 0, K).expect("hedged rank succeeds");
    assert!(!outcome.is_partial(), "the standby covered the black-hole slice");
    assert_eq!(outcome.ranked, offline_rank(&engine, 0, 0, &cands));
    assert!(
        registry.counter("router.hedges.count").get() >= 1,
        "the slow shard must have triggered a hedge"
    );
    assert!(
        registry.histogram("router.standby.us").summary().count >= 1,
        "the standby's latency was recorded"
    );
}

#[test]
fn breaker_steers_ranks_away_from_a_dead_shard_after_it_trips() {
    let engine = test_engine();
    let (s0, s1) = (replica(&engine), replica(&engine));
    let proxy = ChaosProxy::spawn(
        s1.addr(),
        ChaosConfig { seed: 47, fault_rate: 0.0, ..Default::default() },
    )
    .expect("proxy");
    proxy.kill();
    let cfg = {
        let mut cfg = RouterConfig::new(vec![s0.addr(), proxy.addr()], candidates())
            .with_policy(PartialPolicy::Partial)
            .with_deadline(Duration::from_secs(2));
        cfg.breaker = BreakerConfig { trip_after: 2, cooldown: Duration::from_secs(60) };
        cfg
    };
    let registry = Arc::new(MetricsRegistry::new());
    let router = Router::with_registry(cfg, Arc::clone(&registry));
    for _ in 0..3 {
        let outcome = router.rank(0, 0, K).expect("partial rank");
        assert!(outcome.is_partial());
    }
    let errors = registry.counter("router.shard_errors.count").get();
    assert_eq!(errors, 2, "after the trip, the dead shard is skipped without a wire attempt");
}
