//! A seeded, in-process TCP **chaos proxy** for resilience tests.
//!
//! [`ChaosProxy`] sits between a client and an upstream server, forwarding
//! bytes both ways while injecting network faults drawn from a deterministic
//! RNG stream: for a fixed seed and fault rate the *sequence* of per-connection
//! fault decisions is identical on every run, which is what lets the soak
//! suite assert exact invariants ("zero wrong scores, bounded error rate")
//! instead of flaky probabilities.
//!
//! # Fault matrix
//!
//! | Fault                     | What the client observes                        |
//! |---------------------------|-------------------------------------------------|
//! | `Refuse`                  | connection accepted then closed immediately     |
//! | `Delay`                   | every byte arrives after an injected latency    |
//! | `TruncateResponse`        | response cut after N bytes, then disconnect     |
//! | `MidResponseDisconnect`   | response cut after its first byte               |
//! | `PartialWriteStall`       | a few bytes, a stall, then a disconnect         |
//! | `PipelineCut`             | N complete response lines, then disconnect      |
//!
//! None of the faults ever *corrupts* bytes — they only delay or cut a
//! prefix — so a line-delimited protocol can always detect the damage (a
//! missing trailing newline) and never mistakes a damaged reply for a
//! complete one. `PipelineCut` is the nasty case for *pipelined* (protocol
//! v2) connections: several responses arrive intact, then the connection
//! dies with requests still in flight — a correct client must deliver the
//! intact responses to their owners and fail every remaining in-flight
//! request with exactly one typed error each.
//!
//! ```no_run
//! use rmpi_testutil::chaos::{ChaosConfig, ChaosProxy};
//! let upstream: std::net::SocketAddr = "127.0.0.1:9000".parse().unwrap();
//! let proxy = ChaosProxy::spawn(upstream, ChaosConfig { seed: 7, fault_rate: 0.25, ..Default::default() }).unwrap();
//! // point the client at proxy.addr() instead of the server
//! assert!(proxy.stats().connections() == 0);
//! ```

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// The per-connection fault kinds the proxy can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Accept, then close immediately without contacting the upstream.
    Refuse,
    /// Forward faithfully, but only after an injected latency.
    Delay,
    /// Forward the upstream response up to `truncate_after` bytes, then cut
    /// the connection.
    TruncateResponse,
    /// Cut the connection after the first response byte.
    MidResponseDisconnect,
    /// Forward a short response prefix, stall, then cut the connection.
    PartialWriteStall,
    /// Forward `cut_after_lines` complete response lines, then cut the
    /// connection **at a line boundary** — mid-pipeline death with intact
    /// responses already delivered.
    PipelineCut,
}

/// Chaos-proxy knobs. `fault_rate` is the probability that a *connection* is
/// disturbed; which fault it gets is a second deterministic draw.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seed for the fault-decision RNG stream.
    pub seed: u64,
    /// Probability in `[0, 1]` that an accepted connection is disturbed.
    pub fault_rate: f64,
    /// Injected latency for [`Fault::Delay`] and the stall length for
    /// [`Fault::PartialWriteStall`].
    pub delay: Duration,
    /// Response bytes forwarded before a [`Fault::TruncateResponse`] /
    /// [`Fault::PartialWriteStall`] cut.
    pub truncate_after: usize,
    /// Complete response lines forwarded before a [`Fault::PipelineCut`]
    /// cut.
    pub cut_after_lines: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            fault_rate: 0.0,
            delay: Duration::from_millis(20),
            truncate_after: 3,
            cut_after_lines: 2,
        }
    }
}

/// Relaxed-atomic fault tallies, readable while the proxy runs.
#[derive(Debug, Default)]
pub struct ChaosStats {
    connections: AtomicU64,
    refused: AtomicU64,
    delayed: AtomicU64,
    truncated: AtomicU64,
    disconnected: AtomicU64,
    stalled: AtomicU64,
    pipeline_cut: AtomicU64,
}

impl ChaosStats {
    /// Connections accepted (disturbed or not).
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Connections disturbed by any fault.
    pub fn faults_injected(&self) -> u64 {
        self.refused.load(Ordering::Relaxed)
            + self.delayed.load(Ordering::Relaxed)
            + self.truncated.load(Ordering::Relaxed)
            + self.disconnected.load(Ordering::Relaxed)
            + self.stalled.load(Ordering::Relaxed)
            + self.pipeline_cut.load(Ordering::Relaxed)
    }

    /// Tally for one fault kind.
    pub fn count(&self, fault: Fault) -> u64 {
        match fault {
            Fault::Refuse => &self.refused,
            Fault::Delay => &self.delayed,
            Fault::TruncateResponse => &self.truncated,
            Fault::MidResponseDisconnect => &self.disconnected,
            Fault::PartialWriteStall => &self.stalled,
            Fault::PipelineCut => &self.pipeline_cut,
        }
        .load(Ordering::Relaxed)
    }

    fn record(&self, fault: Fault) {
        match fault {
            Fault::Refuse => &self.refused,
            Fault::Delay => &self.delayed,
            Fault::TruncateResponse => &self.truncated,
            Fault::MidResponseDisconnect => &self.disconnected,
            Fault::PartialWriteStall => &self.stalled,
            Fault::PipelineCut => &self.pipeline_cut,
        }
        .fetch_add(1, Ordering::Relaxed);
    }
}

/// splitmix64: tiny, deterministic, dependency-free — exactly what a fault
/// stream needs. (The vendored `rand` crate is avoided on purpose so
/// `rmpi-testutil` stays dependency-free.)
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// How often the pump loops wake up to poll the stop flag.
const POLL: Duration = Duration::from_millis(25);

struct ProxyShared {
    stop: AtomicBool,
    /// Shard-kill flag: distinct from `stop` (which tears the proxy down
    /// and joins its threads) — a killed proxy keeps accepting-and-refusing
    /// so callers observe a dead shard, not a vanished listener.
    killed: AtomicBool,
    stats: ChaosStats,
    cfg: ChaosConfig,
    upstream: SocketAddr,
    rng: Mutex<SplitMix64>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Live stream halves (client and upstream sides) registered by
    /// connection handlers so `kill()` can cut them mid-exchange.
    live: Mutex<Vec<TcpStream>>,
}

/// A running chaos proxy; owns its threads. Dropping it (or calling
/// [`ChaosProxy::shutdown`]) stops the proxy and joins everything.
pub struct ChaosProxy {
    shared: Arc<ProxyShared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Bind an ephemeral local port and start proxying to `upstream`.
    pub fn spawn(upstream: SocketAddr, cfg: ChaosConfig) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            stop: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            stats: ChaosStats::default(),
            cfg,
            upstream,
            rng: Mutex::new(SplitMix64(cfg.seed)),
            conn_threads: Mutex::new(Vec::new()),
            live: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("rmpi-chaos-accept".into())
                .spawn(move || accept_loop(&shared, listener))?
        };
        Ok(ChaosProxy { shared, addr, accept_thread: Some(accept) })
    }

    /// The proxy's listen address — point clients here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live fault tallies.
    pub fn stats(&self) -> &ChaosStats {
        &self.shared.stats
    }

    /// Deterministic **shard kill**: cut every live connection mid-exchange
    /// and refuse every new one, while the proxy object (and its stats)
    /// stays alive and queryable. Unlike [`ChaosProxy::shutdown`] the
    /// accept thread keeps running, so clients observe a dead shard —
    /// connections accepted then immediately closed — rather than a
    /// vanished listener. Idempotent; a killed proxy never recovers.
    pub fn kill(&self) {
        if self.shared.killed.swap(true, Ordering::SeqCst) {
            return;
        }
        let streams: Vec<_> =
            self.shared.live.lock().unwrap_or_else(|p| p.into_inner()).drain(..).collect();
        for s in streams {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    /// Whether [`ChaosProxy::kill`] has fired.
    pub fn is_killed(&self) -> bool {
        self.shared.killed.load(Ordering::SeqCst)
    }

    /// Stop proxying: close the listener, cut live connections, join all
    /// threads. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // wake the acceptor out of accept()
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let threads: Vec<_> =
            self.shared.conn_threads.lock().unwrap_or_else(|p| p.into_inner()).drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Arc<ProxyShared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let client = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        if shared.killed.load(Ordering::SeqCst) {
            // a killed shard: accept (the listener exists) then close
            // without ever contacting the upstream
            let _ = client.shutdown(Shutdown::Both);
            continue;
        }
        shared.stats.connections.fetch_add(1, Ordering::Relaxed);
        let fault = draw_fault(shared);
        if let Some(f) = fault {
            shared.stats.record(f);
        }
        if fault == Some(Fault::Refuse) {
            // dropping the stream closes it: the client sees an immediate
            // disconnect, the upstream never hears about it
            let _ = client.shutdown(Shutdown::Both);
            continue;
        }
        let handle = {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name("rmpi-chaos-conn".into())
                .spawn(move || handle_proxy_connection(shared, client, fault))
        };
        if let Ok(h) = handle {
            shared.conn_threads.lock().unwrap_or_else(|p| p.into_inner()).push(h);
        }
    }
}

/// One deterministic draw: disturbed or not, and which fault.
fn draw_fault(shared: &ProxyShared) -> Option<Fault> {
    let mut rng = shared.rng.lock().unwrap_or_else(|p| p.into_inner());
    if rng.next_f64() >= shared.cfg.fault_rate {
        return None;
    }
    Some(match rng.next_u64() % 6 {
        0 => Fault::Refuse,
        1 => Fault::Delay,
        2 => Fault::TruncateResponse,
        3 => Fault::MidResponseDisconnect,
        4 => Fault::PartialWriteStall,
        _ => Fault::PipelineCut,
    })
}

/// What the upstream→client pump does to the response stream.
struct ResponsePlan {
    /// Cut the connection after forwarding this many bytes.
    limit: Option<usize>,
    /// Sleep this long right before the cut (partial-write stall).
    stall: Option<Duration>,
    /// Cut the connection after forwarding this many complete (`\n`-ended)
    /// lines — the cut lands exactly on a line boundary.
    line_limit: Option<usize>,
}

impl ResponsePlan {
    fn faithful() -> ResponsePlan {
        ResponsePlan { limit: None, stall: None, line_limit: None }
    }
}

fn handle_proxy_connection(shared: Arc<ProxyShared>, client: TcpStream, fault: Option<Fault>) {
    let cfg = shared.cfg;
    if fault == Some(Fault::Delay) {
        std::thread::sleep(cfg.delay);
    }
    let upstream = match TcpStream::connect_timeout(&shared.upstream, Duration::from_secs(2)) {
        Ok(s) => s,
        Err(_) => {
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
    };
    // register both halves so kill() can cut this exchange mid-flight; the
    // killed check under the same lock closes the race with a concurrent
    // kill() drain
    {
        let mut live = shared.live.lock().unwrap_or_else(|p| p.into_inner());
        if shared.killed.load(Ordering::SeqCst) {
            let _ = client.shutdown(Shutdown::Both);
            let _ = upstream.shutdown(Shutdown::Both);
            return;
        }
        if let Ok(c) = client.try_clone() {
            live.push(c);
        }
        if let Ok(u) = upstream.try_clone() {
            live.push(u);
        }
    }
    let plan = match fault {
        Some(Fault::TruncateResponse) => {
            ResponsePlan { limit: Some(cfg.truncate_after), ..ResponsePlan::faithful() }
        }
        Some(Fault::MidResponseDisconnect) => {
            ResponsePlan { limit: Some(1), ..ResponsePlan::faithful() }
        }
        Some(Fault::PartialWriteStall) => ResponsePlan {
            limit: Some(cfg.truncate_after),
            stall: Some(cfg.delay),
            line_limit: None,
        },
        Some(Fault::PipelineCut) => {
            ResponsePlan { line_limit: Some(cfg.cut_after_lines), ..ResponsePlan::faithful() }
        }
        _ => ResponsePlan::faithful(),
    };

    // client -> upstream: always faithful. Faults target the response path:
    // cutting *request* bytes could silently change a request's meaning
    // (e.g. truncating a SCORE batch to a shorter but still-valid one),
    // which no cut we model should be able to do undetectably.
    let c2u = {
        let from = match client.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let to = match upstream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let stop = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("rmpi-chaos-c2u".into())
            .spawn(move || pump(from, to, ResponsePlan::faithful(), &stop))
    };

    // upstream -> client: where the chaos happens
    pump(upstream, client, plan, &shared);
    if let Ok(t) = c2u {
        let _ = t.join();
    }
}

/// Copy bytes from `from` to `to` until EOF, stop, error, or the plan's
/// byte/line limit; then cut both directions.
fn pump(mut from: TcpStream, mut to: TcpStream, plan: ResponsePlan, stop: &ProxyShared) {
    let _ = from.set_read_timeout(Some(POLL));
    let mut forwarded = 0usize;
    let mut lines_forwarded = 0usize;
    let mut buf = [0u8; 4096];
    loop {
        if stop.stop.load(Ordering::SeqCst) {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => break,
        };
        let mut send = match plan.limit {
            Some(limit) => {
                let remaining = limit.saturating_sub(forwarded);
                n.min(remaining)
            }
            None => n,
        };
        let mut line_cut = false;
        if let Some(line_limit) = plan.line_limit {
            // forward only up to (and including) the newline that completes
            // the limit-th line, so the cut lands exactly on a line boundary
            let mut boundary = 0usize;
            for (i, &b) in buf[..send].iter().enumerate() {
                if b == b'\n' {
                    lines_forwarded += 1;
                    boundary = i + 1;
                    if lines_forwarded >= line_limit {
                        line_cut = true;
                        break;
                    }
                }
            }
            if line_cut {
                send = boundary;
            }
        }
        if send > 0 && to.write_all(&buf[..send]).is_err() {
            break;
        }
        forwarded += send;
        if line_cut || plan.limit.is_some_and(|limit| forwarded >= limit) {
            if let Some(stall) = plan.stall {
                std::thread::sleep(stall);
            }
            break;
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A trivial upstream echo server: answers every line with `OK <line>`.
    fn echo_server() -> (SocketAddr, Arc<AtomicBool>, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(stream) = stream else { continue };
                let stop3 = Arc::clone(&stop2);
                std::thread::spawn(move || {
                    let mut writer = stream.try_clone().unwrap();
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
                    let mut reader = BufReader::new(stream);
                    let mut line = String::new();
                    loop {
                        if stop3.load(Ordering::SeqCst) {
                            return;
                        }
                        line.clear();
                        match reader.read_line(&mut line) {
                            Ok(0) => return,
                            Ok(_) => {
                                if writeln!(writer, "OK {}", line.trim_end()).is_err() {
                                    return;
                                }
                            }
                            Err(e)
                                if matches!(
                                    e.kind(),
                                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                                ) =>
                            {
                                continue;
                            }
                            Err(_) => return,
                        }
                    }
                });
            }
        });
        (addr, stop, handle)
    }

    fn stop_echo(addr: SocketAddr, stop: &AtomicBool, handle: JoinHandle<()>) {
        stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr);
        let _ = handle.join();
    }

    #[test]
    fn faultless_proxy_is_transparent() {
        let (addr, stop, handle) = echo_server();
        let mut proxy =
            ChaosProxy::spawn(addr, ChaosConfig { fault_rate: 0.0, ..Default::default() }).unwrap();
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for i in 0..3 {
            writeln!(stream, "hello {i}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), format!("OK hello {i}"));
        }
        assert_eq!(proxy.stats().connections(), 1);
        assert_eq!(proxy.stats().faults_injected(), 0);
        proxy.shutdown();
        stop_echo(addr, &stop, handle);
    }

    #[test]
    fn fault_stream_is_deterministic_for_a_seed() {
        // Replaying the decision stream (no sockets involved) must give the
        // same faults in the same order for the same seed.
        let draw_seq = |seed: u64| -> Vec<Option<Fault>> {
            let mut rng = SplitMix64(seed);
            (0..64)
                .map(|_| {
                    if rng.next_f64() >= 0.3 {
                        return None;
                    }
                    Some(match rng.next_u64() % 6 {
                        0 => Fault::Refuse,
                        1 => Fault::Delay,
                        2 => Fault::TruncateResponse,
                        3 => Fault::MidResponseDisconnect,
                        4 => Fault::PartialWriteStall,
                        _ => Fault::PipelineCut,
                    })
                })
                .collect()
        };
        assert_eq!(draw_seq(42), draw_seq(42));
        assert_ne!(draw_seq(42), draw_seq(43), "different seeds should differ");
        let disturbed = draw_seq(42).iter().filter(|f| f.is_some()).count();
        assert!(disturbed > 8, "a 30% rate over 64 draws injects plenty: {disturbed}");
    }

    #[test]
    fn every_fault_kind_fires_and_damage_is_always_detectable() {
        let (addr, stop, handle) = echo_server();
        let mut proxy = ChaosProxy::spawn(
            addr,
            ChaosConfig {
                seed: 9,
                fault_rate: 1.0, // every connection disturbed
                delay: Duration::from_millis(5),
                truncate_after: 2,
                cut_after_lines: 2,
            },
        )
        .unwrap();
        let mut complete = 0u32;
        let mut damaged = 0u32;
        for i in 0..40 {
            let Ok(mut stream) = TcpStream::connect(proxy.addr()) else {
                damaged += 1;
                continue;
            };
            let _ = stream.set_read_timeout(Some(Duration::from_millis(300)));
            if writeln!(stream, "ping {i}").is_err() {
                damaged += 1;
                continue;
            }
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            match reader.read_line(&mut line) {
                // a *complete* line (trailing newline intact) must be the
                // faithful echo — chaos never corrupts, only cuts
                Ok(n) if n > 0 && line.ends_with('\n') => {
                    assert_eq!(line.trim_end(), format!("OK ping {i}"));
                    complete += 1;
                }
                _ => damaged += 1,
            }
        }
        assert!(damaged > 0, "rate=1.0 must visibly damage some exchanges");
        // Delay faults still deliver intact lines, so some completes are fine.
        assert_eq!(proxy.stats().connections(), 40);
        assert_eq!(proxy.stats().faults_injected(), 40);
        let kinds = [
            Fault::Refuse,
            Fault::Delay,
            Fault::TruncateResponse,
            Fault::MidResponseDisconnect,
            Fault::PartialWriteStall,
            Fault::PipelineCut,
        ];
        for kind in kinds {
            assert!(proxy.stats().count(kind) > 0, "{kind:?} never drawn in 40 connections");
        }
        assert!(complete > 0, "delay-only connections should still complete");
        proxy.shutdown();
        stop_echo(addr, &stop, handle);
    }

    #[test]
    fn kill_cuts_live_connections_and_refuses_new_ones() {
        let (addr, stop, handle) = echo_server();
        let mut proxy =
            ChaosProxy::spawn(addr, ChaosConfig { fault_rate: 0.0, ..Default::default() }).unwrap();
        // a healthy exchange first
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        writeln!(stream, "hello").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "OK hello");

        proxy.kill();
        assert!(proxy.is_killed());
        // the live connection is cut: a request in flight can only end in
        // EOF or an error, never a complete reply line
        let _ = writeln!(stream, "are you there");
        line.clear();
        let n = reader.read_line(&mut line).unwrap_or(0);
        assert!(n == 0 || !line.ends_with('\n'), "killed shard answered: {line:?}");

        // new connections are accepted then closed without a byte served
        let refused = TcpStream::connect(proxy.addr()).unwrap();
        let _ = refused.set_read_timeout(Some(Duration::from_secs(2)));
        let mut refused_writer = refused.try_clone().unwrap();
        let _ = writeln!(refused_writer, "hello again");
        line.clear();
        let n = BufReader::new(refused).read_line(&mut line).unwrap_or(0);
        assert_eq!(n, 0, "killed shard must not serve new connections: {line:?}");

        // the proxy object survives the kill for post-mortem inspection
        assert_eq!(proxy.stats().connections(), 1);
        proxy.kill(); // idempotent
        proxy.shutdown();
        stop_echo(addr, &stop, handle);
    }

    #[test]
    fn pipeline_cut_forwards_exactly_n_complete_lines_then_cuts_on_the_boundary() {
        let (addr, stop, handle) = echo_server();
        // force the PipelineCut path deterministically by driving pump()
        // directly: a pipelined burst of 5 requests, a 3-line cut plan
        let upstream = TcpStream::connect(addr).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let proxy_addr = listener.local_addr().unwrap();
        let client_side = TcpStream::connect(proxy_addr).unwrap();
        let (proxy_client, _) = listener.accept().unwrap();
        let shared = Arc::new(ProxyShared {
            stop: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            stats: ChaosStats::default(),
            cfg: ChaosConfig::default(),
            upstream: addr,
            rng: Mutex::new(SplitMix64(0)),
            conn_threads: Mutex::new(Vec::new()),
            live: Mutex::new(Vec::new()),
        });
        // client -> upstream faithful, upstream -> client cut after 3 lines
        let c2u = {
            let from = proxy_client.try_clone().unwrap();
            let to = upstream.try_clone().unwrap();
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || pump(from, to, ResponsePlan::faithful(), &shared))
        };
        let u2c = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                pump(
                    upstream,
                    proxy_client,
                    ResponsePlan { line_limit: Some(3), ..ResponsePlan::faithful() },
                    &shared,
                )
            })
        };

        let mut client_writer = client_side.try_clone().unwrap();
        for i in 0..5 {
            writeln!(client_writer, "req {i}").unwrap();
        }
        let mut reader = BufReader::new(client_side);
        let mut received = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    assert!(line.ends_with('\n'), "cut must land on a line boundary: {line:?}");
                    received.push(line.trim_end().to_owned());
                }
            }
        }
        assert_eq!(
            received,
            vec!["OK req 0", "OK req 1", "OK req 2"],
            "exactly 3 intact lines, then the cut"
        );
        shared.stop.store(true, Ordering::SeqCst);
        c2u.join().unwrap();
        u2c.join().unwrap();
        stop_echo(addr, &stop, handle);
    }
}
