//! A counting global allocator for zero-allocation assertions.
//!
//! Perf-critical paths in this workspace (steady-state subgraph extraction,
//! scratch-backed backward passes) promise *zero heap allocations* once their
//! buffers are warm. That promise is easy to regress silently — a stray
//! `collect()` or format string compiles fine and shows up only as a
//! throughput dip months later. [`CountingAllocator`] turns it into a test:
//!
//! ```ignore
//! // in a dedicated test binary (never in a library — a global allocator
//! // applies to every binary that links it):
//! #[global_allocator]
//! static ALLOC: rmpi_testutil::CountingAllocator = rmpi_testutil::CountingAllocator::new();
//!
//! #[test]
//! fn steady_state_is_allocation_free() {
//!     warm_up();
//!     let before = ALLOC.allocations();
//!     hot_path();
//!     assert_eq!(ALLOC.allocations() - before, 0);
//! }
//! ```
//!
//! The counter is a relaxed atomic increment per `alloc`/`realloc` call on
//! top of the system allocator — cheap enough to leave on for a whole test
//! binary, precise enough to catch a single stray allocation. Note that the
//! count is process-global: run zero-allocation tests on a single thread (or
//! in their own binary) so unrelated test threads don't inflate it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts allocation events.
///
/// `alloc`, `alloc_zeroed` and `realloc` each bump the counter by one;
/// `dealloc` does not (freeing is not the regression being hunted).
pub struct CountingAllocator {
    allocations: AtomicU64,
}

impl CountingAllocator {
    /// A fresh counter around the system allocator.
    pub const fn new() -> Self {
        CountingAllocator { allocations: AtomicU64::new(0) }
    }

    /// Allocation events since process start.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates every operation unchanged to `System`; the counter is a
// relaxed atomic with no effect on returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}
