//! Fault-injection support: named **failpoints** that production code can
//! consult at crash-prone spots (file writes, worker closures, loss
//! computation) and that tests — or an operator via the `RMPI_FAILPOINTS`
//! environment variable — arm with a failure action.
//!
//! The facility is deliberately tiny and dependency-free so every workspace
//! crate can afford the hook: when no failpoint is armed, a call to any of
//! the [`failpoint`] helpers is a single relaxed atomic load.
//!
//! # Arming failpoints
//!
//! Programmatically (tests):
//!
//! ```
//! use rmpi_testutil::failpoint::{self, Action};
//! let _lock = failpoint::exclusive(); // serialise fault tests in one process
//! failpoint::arm("demo::write", Action::IoError("disk full".into()));
//! assert!(failpoint::io("demo::write").is_err());
//! failpoint::disarm("demo::write");
//! assert!(failpoint::io("demo::write").is_ok());
//! ```
//!
//! Or from the environment, read once at first use:
//!
//! ```text
//! RMPI_FAILPOINTS="ckpt::save=io_error;pool::shard=panic(boom)@3"
//! ```
//!
//! The optional `@n` suffix delays the action until the n-th hit (1-based);
//! earlier hits pass through untouched. Supported actions: `off`,
//! `io_error[(msg)]`, `truncate(bytes)`, `panic[(msg)]`, `delay(ms)`, `nan`,
//! `abort`.
//!
//! The crate's second facility is the [`chaos`] module: a seeded in-process
//! TCP proxy that injects *network* faults (refused connections, latency,
//! truncated or cut responses) between a client and a server — failpoints
//! break the process from the inside, the chaos proxy breaks the wire from
//! the outside. The third is [`chaosfile`]: a seeded wrapper over positioned
//! file reads that injects *disk* faults (EIO, short reads, silent bit
//! flips, delays, truncation) underneath streaming readers.

pub mod alloc;
pub mod chaos;
pub mod chaosfile;

pub use alloc::CountingAllocator;

pub mod failpoint {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};
    use std::time::Duration;

    /// What an armed failpoint does when hit.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum Action {
        /// Fail the call site with `std::io::ErrorKind::Other` and this message.
        IoError(String),
        /// For writers: persist only the first `n` bytes, then fail — models a
        /// crash mid-write.
        Truncate(usize),
        /// Panic with this message (exercises unwind isolation).
        Panic(String),
        /// Sleep this long, then continue (exercises deadlines/slow workers).
        Delay(Duration),
        /// Replace the call site's value with `f32::NAN` (divergence guards).
        Nan,
        /// Abort the process — the portable stand-in for `kill -9` mid-step.
        Abort,
    }

    struct Entry {
        action: Action,
        /// Hits remaining before the action fires (0 = fire now and on every
        /// later hit).
        after: u64,
        hits: u64,
    }

    /// Count of armed failpoints: the fast path is one relaxed load of this.
    static ARMED: AtomicUsize = AtomicUsize::new(0);

    fn registry() -> &'static Mutex<HashMap<String, Entry>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Entry>>> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let mut map = HashMap::new();
            if let Ok(spec) = std::env::var("RMPI_FAILPOINTS") {
                for (name, entry) in parse_spec(&spec) {
                    map.insert(name, entry);
                }
                ARMED.store(map.len(), Ordering::Relaxed);
            }
            Mutex::new(map)
        })
    }

    fn lock() -> MutexGuard<'static, HashMap<String, Entry>> {
        registry().lock().unwrap_or_else(|p| p.into_inner())
    }

    /// A process-wide lock for tests that arm failpoints: hold the guard for
    /// the whole test so concurrently running tests never see each other's
    /// injected faults.
    pub fn exclusive() -> MutexGuard<'static, ()> {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Arm `name` with `action`, firing from the first hit.
    pub fn arm(name: &str, action: Action) {
        arm_after(name, action, 0);
    }

    /// Arm `name`, with the action firing on hit `after + 1` and afterwards.
    pub fn arm_after(name: &str, action: Action, after: u64) {
        let mut map = lock();
        map.insert(name.to_owned(), Entry { action, after, hits: 0 });
        ARMED.store(map.len(), Ordering::Relaxed);
    }

    /// Disarm one failpoint.
    pub fn disarm(name: &str) {
        let mut map = lock();
        map.remove(name);
        ARMED.store(map.len(), Ordering::Relaxed);
    }

    /// Disarm everything (test teardown).
    pub fn disarm_all() {
        let mut map = lock();
        map.clear();
        ARMED.store(0, Ordering::Relaxed);
    }

    /// How many times `name` has been hit since it was armed.
    pub fn hits(name: &str) -> u64 {
        lock().get(name).map_or(0, |e| e.hits)
    }

    /// Record a hit on `name` and return the action to apply, if it fires.
    /// This is the primitive the typed helpers below are built on.
    pub fn check(name: &str) -> Option<Action> {
        // Parse RMPI_FAILPOINTS on the first check ever made: the ARMED fast
        // path below would otherwise short-circuit before anything touches
        // the registry, silently ignoring env-armed failpoints in processes
        // that never call arm() (e.g. crash-test children).
        static ENV_PARSED: OnceLock<()> = OnceLock::new();
        ENV_PARSED.get_or_init(|| {
            if std::env::var_os("RMPI_FAILPOINTS").is_some() {
                let _ = registry();
            }
        });
        if ARMED.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let mut map = lock();
        let entry = map.get_mut(name)?;
        entry.hits += 1;
        if entry.hits <= entry.after {
            return None;
        }
        Some(entry.action.clone())
    }

    /// Failpoint for fallible I/O call sites: returns the injected error (or
    /// panics/aborts/delays per the armed action). `Nan` is ignored here.
    pub fn io(name: &str) -> std::io::Result<()> {
        match check(name) {
            Some(Action::IoError(msg)) => {
                Err(std::io::Error::other(format!("failpoint {name}: {msg}")))
            }
            Some(Action::Truncate(n)) => Err(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                format!("failpoint {name}: write truncated at {n} bytes"),
            )),
            Some(other) => {
                side_effect(name, other);
                Ok(())
            }
            None => Ok(()),
        }
    }

    /// Failpoint for infallible call sites (worker loops): applies `Panic`,
    /// `Delay` and `Abort`; value-less actions are ignored.
    pub fn point(name: &str) {
        if let Some(action) = check(name) {
            side_effect(name, action);
        }
    }

    /// Failpoint for float-producing call sites: swaps the value for NaN when
    /// armed with [`Action::Nan`]; other actions behave like [`point`].
    pub fn nan32(name: &str, value: f32) -> f32 {
        match check(name) {
            Some(Action::Nan) => f32::NAN,
            Some(action) => {
                side_effect(name, action);
                value
            }
            None => value,
        }
    }

    /// Failpoint for writers that can simulate partial writes, registering a
    /// single hit: `Ok(None)` = proceed normally, `Ok(Some(n))` = persist
    /// only `n` bytes then fail, `Err` = injected I/O error. Panic, delay and
    /// abort actions are applied as side effects.
    pub fn fs_write(name: &str) -> std::io::Result<Option<usize>> {
        match check(name) {
            None => Ok(None),
            Some(Action::Truncate(n)) => Ok(Some(n)),
            Some(Action::IoError(msg)) => {
                Err(std::io::Error::other(format!("failpoint {name}: {msg}")))
            }
            Some(action) => {
                side_effect(name, action);
                Ok(None)
            }
        }
    }

    fn side_effect(name: &str, action: Action) {
        match action {
            Action::Panic(msg) => panic!("failpoint {name}: {msg}"),
            Action::Delay(d) => std::thread::sleep(d),
            Action::Abort => std::process::abort(),
            Action::IoError(_) | Action::Truncate(_) | Action::Nan => {}
        }
    }

    /// Parse an `RMPI_FAILPOINTS`-style spec: `name=action[;name=action...]`.
    fn parse_spec(spec: &str) -> Vec<(String, Entry)> {
        let mut out = Vec::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some((name, rhs)) = part.split_once('=') else { continue };
            let (rhs, after) = match rhs.rsplit_once('@') {
                Some((a, n)) => match n.trim().parse::<u64>() {
                    Ok(n) => (a, n.saturating_sub(1)),
                    Err(_) => (rhs, 0),
                },
                None => (rhs, 0),
            };
            if let Some(action) = parse_action(rhs.trim()) {
                out.push((name.trim().to_owned(), Entry { action, after, hits: 0 }));
            }
        }
        out
    }

    fn parse_action(s: &str) -> Option<Action> {
        let (head, arg) = match s.split_once('(') {
            Some((h, rest)) => (h, Some(rest.strip_suffix(')').unwrap_or(rest))),
            None => (s, None),
        };
        match head {
            "off" => None,
            "io_error" => Some(Action::IoError(arg.unwrap_or("injected").to_owned())),
            "truncate" => Some(Action::Truncate(arg.and_then(|a| a.parse().ok())?)),
            "panic" => Some(Action::Panic(arg.unwrap_or("injected").to_owned())),
            "delay" => {
                Some(Action::Delay(Duration::from_millis(arg.and_then(|a| a.parse().ok())?)))
            }
            "nan" => Some(Action::Nan),
            "abort" => Some(Action::Abort),
            _ => None,
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unarmed_failpoints_are_noops() {
            let _lock = exclusive();
            disarm_all();
            assert!(io("nothing").is_ok());
            assert_eq!(nan32("nothing", 2.5), 2.5);
            point("nothing");
            assert_eq!(check("nothing"), None);
        }

        #[test]
        fn io_error_and_truncate_fire_and_disarm() {
            let _lock = exclusive();
            disarm_all();
            arm("t::io", Action::IoError("disk full".into()));
            let err = io("t::io").unwrap_err();
            assert!(err.to_string().contains("disk full"), "{err}");
            disarm("t::io");
            assert!(io("t::io").is_ok());

            arm("t::trunc", Action::Truncate(7));
            assert!(matches!(fs_write("t::trunc"), Ok(Some(7))));
            assert!(io("t::trunc").is_err());
            assert!(fs_write("t::io-again").is_ok());
            arm("t::io-again", Action::IoError("gone".into()));
            assert!(fs_write("t::io-again").is_err());
            disarm_all();
        }

        #[test]
        fn nan_injection_swaps_value() {
            let _lock = exclusive();
            disarm_all();
            arm("t::nan", Action::Nan);
            assert!(nan32("t::nan", 1.0).is_nan());
            assert_eq!(nan32("other", 1.0), 1.0);
            disarm_all();
        }

        #[test]
        fn after_threshold_delays_firing() {
            let _lock = exclusive();
            disarm_all();
            // fire on the 3rd hit and afterwards
            arm_after("t::late", Action::IoError("late".into()), 2);
            assert!(io("t::late").is_ok());
            assert!(io("t::late").is_ok());
            assert!(io("t::late").is_err());
            assert!(io("t::late").is_err());
            assert_eq!(hits("t::late"), 4);
            disarm_all();
        }

        #[test]
        #[should_panic(expected = "failpoint t::panic: boom")]
        fn panic_action_panics_with_message() {
            let _lock = exclusive();
            disarm_all();
            arm("t::panic", Action::Panic("boom".into()));
            let out = std::panic::catch_unwind(|| point("t::panic"));
            disarm_all();
            drop(_lock);
            std::panic::resume_unwind(out.unwrap_err());
        }

        #[test]
        fn spec_parsing_covers_every_action() {
            let parsed = parse_spec(
                "a=io_error;b=io_error(full);c=truncate(9);d=panic(x)@3;e=delay(5);f=nan;g=abort;h=off;i=bogus",
            );
            let by_name: HashMap<_, _> =
                parsed.into_iter().map(|(n, e)| (n, (e.action, e.after))).collect();
            assert_eq!(by_name["a"], (Action::IoError("injected".into()), 0));
            assert_eq!(by_name["b"], (Action::IoError("full".into()), 0));
            assert_eq!(by_name["c"], (Action::Truncate(9), 0));
            assert_eq!(by_name["d"], (Action::Panic("x".into()), 2));
            assert_eq!(by_name["e"], (Action::Delay(Duration::from_millis(5)), 0));
            assert_eq!(by_name["f"], (Action::Nan, 0));
            assert_eq!(by_name["g"], (Action::Abort, 0));
            assert!(!by_name.contains_key("h"));
            assert!(!by_name.contains_key("i"));
        }
    }
}
