//! A seeded **chaos file**: positioned reads with injected disk faults.
//!
//! [`ChaosFile`] wraps an open [`File`] and disturbs `pread`-style reads the
//! way a failing disk would, mirroring what [`crate::chaos::ChaosProxy`]
//! does for the network:
//!
//! | Fault        | What the reader observes                                  |
//! |--------------|-----------------------------------------------------------|
//! | EIO          | the read fails with an `Other` I/O error                  |
//! | short read   | the read fails with `Interrupted` (a partial `pread`)     |
//! | delay        | the read succeeds after an injected latency               |
//! | bit flip     | the read *succeeds* with one flipped bit — silent         |
//! | truncation   | reads at/past a byte offset fail with `UnexpectedEof`     |
//!
//! EIO, short reads and delays are **transient**: a retry draws a fresh
//! decision and usually goes through. Bit flips are the adversarial case —
//! the call reports success, so only checksum verification above this layer
//! can catch them. Truncation is sticky: the file behaves as if its tail
//! were gone, which is what a crash mid-append leaves behind.
//!
//! Decisions come from a SplitMix64 stream keyed by `(seed, call index)`,
//! so a single-threaded driver sees an identical fault sequence on every
//! run — benches can assert exact invariants instead of probabilities.

use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Chaos-file knobs. `transient_rate` is the probability that a read draws
/// a recoverable fault (EIO, short read or delay — a second draw picks
/// which); `corrupt_rate` independently flips one bit in a successful
/// read's buffer.
#[derive(Clone, Copy, Debug)]
pub struct ChaosFileConfig {
    /// Seed for the fault-decision stream.
    pub seed: u64,
    /// Probability in `[0, 1]` that a read fails transiently.
    pub transient_rate: f64,
    /// Probability in `[0, 1]` that a successful read has one bit flipped.
    pub corrupt_rate: f64,
    /// Injected latency for the delay fault.
    pub delay: Duration,
    /// When set, reads touching `[truncate_at, ..)` fail with
    /// `UnexpectedEof`, as if the file ended there.
    pub truncate_at: Option<u64>,
}

impl Default for ChaosFileConfig {
    fn default() -> Self {
        ChaosFileConfig {
            seed: 0,
            transient_rate: 0.0,
            corrupt_rate: 0.0,
            delay: Duration::from_millis(1),
            truncate_at: None,
        }
    }
}

/// Relaxed-atomic fault tallies, shared by clones of one [`ChaosFile`]'s
/// stats handle.
#[derive(Debug, Default)]
pub struct ChaosFileStats {
    reads: AtomicU64,
    eio: AtomicU64,
    short_reads: AtomicU64,
    delays: AtomicU64,
    bit_flips: AtomicU64,
    truncated_reads: AtomicU64,
}

impl ChaosFileStats {
    /// Positioned reads attempted (faulted or not).
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Injected EIO failures.
    pub fn eio(&self) -> u64 {
        self.eio.load(Ordering::Relaxed)
    }

    /// Injected short reads.
    pub fn short_reads(&self) -> u64 {
        self.short_reads.load(Ordering::Relaxed)
    }

    /// Reads that succeeded after an injected latency.
    pub fn delays(&self) -> u64 {
        self.delays.load(Ordering::Relaxed)
    }

    /// Reads handed back with one silently flipped bit.
    pub fn bit_flips(&self) -> u64 {
        self.bit_flips.load(Ordering::Relaxed)
    }

    /// Reads refused because they touched the truncated tail.
    pub fn truncated_reads(&self) -> u64 {
        self.truncated_reads.load(Ordering::Relaxed)
    }

    /// Total disturbed reads of any kind.
    pub fn faults_injected(&self) -> u64 {
        self.eio() + self.short_reads() + self.delays() + self.bit_flips() + self.truncated_reads()
    }
}

/// A [`File`] whose positioned reads inject seeded faults. See the module
/// docs for the fault matrix.
#[derive(Debug)]
pub struct ChaosFile {
    file: File,
    cfg: ChaosFileConfig,
    calls: AtomicU64,
    stats: Arc<ChaosFileStats>,
}

impl ChaosFile {
    /// Wrap an open file with fault injection.
    pub fn wrap(file: File, cfg: ChaosFileConfig) -> ChaosFile {
        ChaosFile {
            file,
            cfg,
            calls: AtomicU64::new(0),
            stats: Arc::new(ChaosFileStats::default()),
        }
    }

    /// The fault tallies, readable while reads are in flight.
    pub fn stats(&self) -> Arc<ChaosFileStats> {
        Arc::clone(&self.stats)
    }

    /// The underlying file's metadata length (truncation-fault aware).
    pub fn len(&self) -> io::Result<u64> {
        let real = self.file.metadata()?.len();
        Ok(self.cfg.truncate_at.map_or(real, |t| real.min(t)))
    }

    /// Whether [`ChaosFile::len`] reports zero bytes.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// `pread`-style exact read at `offset`, with fault injection. On `Ok`
    /// the whole buffer is filled — possibly with one flipped bit.
    pub fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        self.stats.reads.fetch_add(1, Ordering::Relaxed);

        if let Some(t) = self.cfg.truncate_at {
            if offset + buf.len() as u64 > t {
                self.stats.truncated_reads.fetch_add(1, Ordering::Relaxed);
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("chaosfile: injected truncation at byte {t}"),
                ));
            }
        }

        let mut state = splitmix_seed(self.cfg.seed, call);
        if u01(&mut state) < self.cfg.transient_rate {
            match splitmix(&mut state) % 3 {
                0 => {
                    self.stats.eio.fetch_add(1, Ordering::Relaxed);
                    return Err(io::Error::other("chaosfile: injected EIO"));
                }
                1 => {
                    self.stats.short_reads.fetch_add(1, Ordering::Relaxed);
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "chaosfile: injected short read",
                    ));
                }
                _ => {
                    self.stats.delays.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.cfg.delay);
                }
            }
        }

        self.file.read_exact_at(buf, offset)?;

        if !buf.is_empty() && u01(&mut state) < self.cfg.corrupt_rate {
            let bit = (splitmix(&mut state) % (buf.len() as u64 * 8)) as usize;
            buf[bit / 8] ^= 1 << (bit % 8);
            self.stats.bit_flips.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }
}

/// SplitMix64 step.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A decision stream keyed by `(seed, call)` — call order alone determines
/// the fault sequence.
fn splitmix_seed(seed: u64, call: u64) -> u64 {
    let mut s = seed ^ call.wrapping_mul(0x2545_f491_4f6c_dd1d);
    // one warm-up step decorrelates adjacent call indices
    splitmix(&mut s);
    s
}

/// Uniform draw in `[0, 1)`.
fn u01(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn scratch_file(tag: &str, bytes: &[u8]) -> (std::path::PathBuf, File) {
        let path =
            std::env::temp_dir().join(format!("rmpi-chaosfile-{tag}-{}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        (path.clone(), File::open(&path).unwrap())
    }

    #[test]
    fn clean_config_reads_faithfully() {
        let data: Vec<u8> = (0..=255).collect();
        let (path, f) = scratch_file("clean", &data);
        let cf = ChaosFile::wrap(f, ChaosFileConfig::default());
        let mut buf = [0u8; 16];
        cf.read_exact_at(&mut buf, 32).unwrap();
        assert_eq!(&buf[..], &data[32..48]);
        assert_eq!(cf.stats().faults_injected(), 0);
        assert_eq!(cf.stats().reads(), 1);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn fault_sequence_is_deterministic_per_seed() {
        let data = vec![7u8; 4096];
        let run = |seed: u64| -> Vec<bool> {
            let (path, f) = scratch_file(&format!("det-{seed}"), &data);
            let cf = ChaosFile::wrap(
                f,
                ChaosFileConfig { seed, transient_rate: 0.5, ..Default::default() },
            );
            let mut outcomes = Vec::new();
            let mut buf = [0u8; 64];
            for i in 0..64u64 {
                outcomes.push(cf.read_exact_at(&mut buf, i * 64).is_ok());
            }
            let _ = std::fs::remove_file(path);
            outcomes
        };
        assert_eq!(run(3), run(3), "same seed, same fault sequence");
        assert_ne!(run(3), run(4), "different seeds should diverge");
        assert!(run(3).iter().any(|ok| !ok), "at 50% some reads must fault");
        assert!(run(3).iter().any(|ok| *ok), "at 50% some reads must pass");
    }

    #[test]
    fn bit_flips_report_success_with_damaged_bytes() {
        let data = vec![0u8; 1024];
        let (path, f) = scratch_file("flip", &data);
        let cf = ChaosFile::wrap(
            f,
            ChaosFileConfig { seed: 11, corrupt_rate: 1.0, ..Default::default() },
        );
        let mut buf = [0u8; 128];
        cf.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(buf.iter().map(|b| b.count_ones()).sum::<u32>(), 1, "exactly one bit flipped");
        assert_eq!(cf.stats().bit_flips(), 1);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn truncation_fails_only_reads_past_the_cut() {
        let data = vec![9u8; 256];
        let (path, f) = scratch_file("trunc", &data);
        let cf = ChaosFile::wrap(
            f,
            ChaosFileConfig { seed: 0, truncate_at: Some(128), ..Default::default() },
        );
        let mut buf = [0u8; 64];
        cf.read_exact_at(&mut buf, 0).unwrap();
        let err = cf.read_exact_at(&mut buf, 100).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert_eq!(cf.len().unwrap(), 128);
        assert_eq!(cf.stats().truncated_reads(), 1);
        let _ = std::fs::remove_file(path);
    }
}
