//! Schema graph model and builder.

use rmpi_kg::{EntityId, KnowledgeGraph, RelationId, Triple};

/// Identifier of an entity class (concept) in a schema graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ClassId(pub u32);

impl ClassId {
    /// The id as an array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The four RDFS vocabularies the paper selects (§III-D.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SchemaVocab {
    /// `rdfs:subPropertyOf` — relation subsumption.
    SubPropertyOf,
    /// `rdfs:domain` — head entity class of a relation.
    Domain,
    /// `rdfs:range` — tail entity class of a relation.
    Range,
    /// `rdfs:subClassOf` — class subsumption.
    SubClassOf,
}

impl SchemaVocab {
    /// Dense index in `0..4`.
    pub fn index(self) -> usize {
        match self {
            SchemaVocab::SubPropertyOf => 0,
            SchemaVocab::Domain => 1,
            SchemaVocab::Range => 2,
            SchemaVocab::SubClassOf => 3,
        }
    }

    /// All four vocabularies, index order.
    pub fn all() -> [SchemaVocab; 4] {
        [
            SchemaVocab::SubPropertyOf,
            SchemaVocab::Domain,
            SchemaVocab::Range,
            SchemaVocab::SubClassOf,
        ]
    }
}

/// A schema graph over `num_kg_relations` KG relations and `num_classes`
/// classes.
///
/// Node id space of the inner graph: KG relation `r` ↦ node `r.0`; class `c`
/// ↦ node `num_kg_relations + c.0`. Edge labels are [`SchemaVocab`] indices.
#[derive(Clone, Debug)]
pub struct SchemaGraph {
    graph: KnowledgeGraph,
    num_kg_relations: usize,
    num_classes: usize,
}

impl SchemaGraph {
    /// The underlying triple graph (for training embedding models on).
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.graph
    }

    /// Number of KG relations covered (seen + unseen).
    pub fn num_kg_relations(&self) -> usize {
        self.num_kg_relations
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Total schema nodes (relations + classes).
    pub fn num_nodes(&self) -> usize {
        self.num_kg_relations + self.num_classes
    }

    /// Number of schema triples.
    pub fn num_triples(&self) -> usize {
        self.graph.num_triples()
    }

    /// The schema node id of a KG relation.
    pub fn relation_node(&self, r: RelationId) -> EntityId {
        assert!((r.index()) < self.num_kg_relations, "relation {r} outside schema coverage");
        EntityId(r.0)
    }

    /// The schema node id of a class.
    pub fn class_node(&self, c: ClassId) -> EntityId {
        assert!((c.index()) < self.num_classes, "class {c:?} outside schema coverage");
        EntityId(self.num_kg_relations as u32 + c.0)
    }
}

/// Incremental [`SchemaGraph`] construction.
#[derive(Clone, Debug)]
pub struct SchemaBuilder {
    num_kg_relations: usize,
    num_classes: usize,
    triples: Vec<Triple>,
}

impl SchemaBuilder {
    /// A builder covering the given relation and class counts.
    pub fn new(num_kg_relations: usize, num_classes: usize) -> Self {
        SchemaBuilder { num_kg_relations, num_classes, triples: Vec::new() }
    }

    fn rel_node(&self, r: RelationId) -> EntityId {
        assert!(r.index() < self.num_kg_relations, "relation {r} out of range");
        EntityId(r.0)
    }

    fn class_node(&self, c: ClassId) -> EntityId {
        assert!(c.index() < self.num_classes, "class {c:?} out of range");
        EntityId(self.num_kg_relations as u32 + c.0)
    }

    /// Assert `child rdfs:subPropertyOf parent`.
    pub fn sub_property_of(&mut self, child: RelationId, parent: RelationId) -> &mut Self {
        let t = Triple {
            head: self.rel_node(child),
            relation: RelationId(SchemaVocab::SubPropertyOf.index() as u32),
            tail: self.rel_node(parent),
        };
        self.triples.push(t);
        self
    }

    /// Assert `relation rdfs:domain class`.
    pub fn domain(&mut self, relation: RelationId, class: ClassId) -> &mut Self {
        let t = Triple {
            head: self.rel_node(relation),
            relation: RelationId(SchemaVocab::Domain.index() as u32),
            tail: self.class_node(class),
        };
        self.triples.push(t);
        self
    }

    /// Assert `relation rdfs:range class`.
    pub fn range(&mut self, relation: RelationId, class: ClassId) -> &mut Self {
        let t = Triple {
            head: self.rel_node(relation),
            relation: RelationId(SchemaVocab::Range.index() as u32),
            tail: self.class_node(class),
        };
        self.triples.push(t);
        self
    }

    /// Assert `child rdfs:subClassOf parent`.
    pub fn sub_class_of(&mut self, child: ClassId, parent: ClassId) -> &mut Self {
        let t = Triple {
            head: self.class_node(child),
            relation: RelationId(SchemaVocab::SubClassOf.index() as u32),
            tail: self.class_node(parent),
        };
        self.triples.push(t);
        self
    }

    /// Number of assertions so far.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// `true` when no assertions have been made.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Finish construction.
    pub fn build(self) -> SchemaGraph {
        let mut triples = self.triples;
        triples.sort_unstable();
        triples.dedup();
        // The embedding tables are sized from num_nodes(), not from the inner
        // graph's entity capacity, so relations/classes without assertions
        // still get (untrained) vectors.
        let graph = KnowledgeGraph::from_triples(triples);
        SchemaGraph {
            graph,
            num_kg_relations: self.num_kg_relations,
            num_classes: self.num_classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SchemaGraph {
        // relations: 0 = husband_of, 1 = spouse_of, 2 = works_for
        // classes: 0 = Person, 1 = Organisation, 2 = Agent
        let mut b = SchemaBuilder::new(3, 3);
        b.sub_property_of(RelationId(0), RelationId(1))
            .domain(RelationId(0), ClassId(0))
            .range(RelationId(0), ClassId(0))
            .domain(RelationId(2), ClassId(0))
            .range(RelationId(2), ClassId(1))
            .sub_class_of(ClassId(0), ClassId(2))
            .sub_class_of(ClassId(1), ClassId(2));
        b.build()
    }

    #[test]
    fn node_id_spaces_do_not_collide() {
        let s = sample();
        assert_eq!(s.relation_node(RelationId(2)), EntityId(2));
        assert_eq!(s.class_node(ClassId(0)), EntityId(3));
        assert_eq!(s.num_nodes(), 6);
    }

    #[test]
    fn assertions_become_triples() {
        let s = sample();
        assert_eq!(s.num_triples(), 7);
        let g = s.graph();
        // husband_of --subPropertyOf--> spouse_of
        assert!(g.contains(&Triple::new(0u32, SchemaVocab::SubPropertyOf.index() as u32, 1u32)));
        // works_for --range--> Organisation (= node 3 + 1)
        assert!(g.contains(&Triple::new(2u32, SchemaVocab::Range.index() as u32, 4u32)));
    }

    #[test]
    fn duplicate_assertions_deduped() {
        let mut b = SchemaBuilder::new(2, 1);
        b.domain(RelationId(0), ClassId(0));
        b.domain(RelationId(0), ClassId(0));
        assert_eq!(b.len(), 2);
        let s = b.build();
        assert_eq!(s.num_triples(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_relation_rejected() {
        let mut b = SchemaBuilder::new(1, 1);
        b.domain(RelationId(5), ClassId(0));
    }

    #[test]
    fn vocab_indices_are_dense() {
        let idxs: Vec<usize> = SchemaVocab::all().iter().map(|v| v.index()).collect();
        assert_eq!(idxs, vec![0, 1, 2, 3]);
    }
}
