//! Ontological schema graphs and schema embeddings (paper §III-D.2).
//!
//! A KG's RDFS ontology relates its relations through four vocabularies —
//! `rdfs:subPropertyOf`, `rdfs:domain`, `rdfs:range`, `rdfs:subClassOf` —
//! forming a *schema graph* whose nodes are KG relations and entity classes.
//! RMPI pre-trains TransE on this graph and injects the resulting relation
//! vectors as initial node features of the relation-view subgraph, which is
//! what lets it say something meaningful about *unseen* relations: they are
//! connected to seen relations through shared classes.
//!
//! * [`SchemaGraph`] — the schema graph, stored as a [`rmpi_kg::KnowledgeGraph`]
//!   over a dedicated node id space (KG relations first, then classes);
//! * [`SchemaBuilder`] — incremental construction from vocabulary assertions;
//! * [`transe`] — a from-scratch TransE trainer (closed-form gradients, no
//!   autograd needed) producing the semantic vectors `h^onto`.

pub mod ontology;
pub mod transe;

pub use ontology::{ClassId, SchemaBuilder, SchemaGraph, SchemaVocab};
pub use transe::{TransEConfig, TransEModel};
