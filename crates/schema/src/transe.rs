//! TransE (Bordes et al., 2013) trained on a schema graph.
//!
//! TransE models a triple `(h, r, t)` as a translation `h + r ≈ t` and is
//! trained with a margin ranking loss over corrupted triples. Gradients are
//! closed-form, so this is a direct SGD implementation — no tape needed.
//! The paper pre-trains TransE on the schema graph to obtain 300-d semantic
//! vectors for *all* relations (seen and unseen), which RMPI then projects
//! into its message passing space (Eq. 10).

use crate::ontology::SchemaGraph;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rmpi_kg::{EntityId, KnowledgeGraph, RelationId, Triple};

/// TransE training configuration.
#[derive(Clone, Copy, Debug)]
pub struct TransEConfig {
    /// Embedding dimension (paper: 300 for schema vectors).
    pub dim: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Ranking margin γ.
    pub margin: f32,
    /// Number of epochs over the triple set.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransEConfig {
    fn default() -> Self {
        TransEConfig { dim: 300, lr: 0.01, margin: 1.0, epochs: 200, seed: 7 }
    }
}

/// A trained TransE model over a schema graph's node and vocabulary spaces.
#[derive(Clone, Debug)]
pub struct TransEModel {
    dim: usize,
    entity_emb: Vec<Vec<f32>>,
    relation_emb: Vec<Vec<f32>>,
}

impl TransEModel {
    /// Train TransE on `schema`'s triple graph. The relation table always
    /// covers the full RDFS vocabulary, even if some vocabularies are unused.
    pub fn train(schema: &SchemaGraph, cfg: TransEConfig) -> Self {
        let g = schema.graph();
        let num_vocab = crate::ontology::SchemaVocab::all().len().max(g.num_relations());
        Self::train_on_graph(g, schema.num_nodes(), num_vocab, cfg)
    }

    /// Train TransE on an arbitrary triple graph with explicit table sizes.
    pub fn train_on_graph(
        g: &KnowledgeGraph,
        num_entities: usize,
        num_relations: usize,
        cfg: TransEConfig,
    ) -> Self {
        assert!(cfg.dim > 0, "dimension must be positive");
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
        let bound = 6.0 / (cfg.dim as f32).sqrt();
        let mut init = |n: usize| -> Vec<Vec<f32>> {
            (0..n).map(|_| (0..cfg.dim).map(|_| rng.gen_range(-bound..bound)).collect()).collect()
        };
        let mut entity_emb = init(num_entities.max(1));
        let mut relation_emb = init(num_relations.max(1));
        for r in &mut relation_emb {
            normalize(r);
        }

        let triples: Vec<Triple> = g.triples().to_vec();
        if triples.is_empty() {
            for e in &mut entity_emb {
                normalize(e);
            }
            return TransEModel { dim: cfg.dim, entity_emb, relation_emb };
        }
        let pool: Vec<EntityId> = (0..num_entities as u32).map(EntityId).collect();
        let mut order: Vec<usize> = (0..triples.len()).collect();

        for _ in 0..cfg.epochs {
            for e in &mut entity_emb {
                normalize(e);
            }
            order.shuffle(&mut rng);
            for &i in &order {
                let pos = triples[i];
                // corrupt head or tail uniformly; resample a few times to
                // avoid known facts
                let neg = {
                    let corrupt_head = rng.gen_bool(0.5);
                    let mut cand = pos;
                    for _ in 0..16 {
                        let e = *pool.choose(&mut rng).expect("entity pool");
                        cand = if corrupt_head { pos.with_head(e) } else { pos.with_tail(e) };
                        if !g.contains(&cand) {
                            break;
                        }
                    }
                    cand
                };
                sgd_step(&mut entity_emb, &mut relation_emb, pos, neg, cfg.lr, cfg.margin);
            }
        }
        for e in &mut entity_emb {
            normalize(e);
        }
        TransEModel { dim: cfg.dim, entity_emb, relation_emb }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embedding of a schema node.
    pub fn node_vector(&self, node: EntityId) -> &[f32] {
        &self.entity_emb[node.index()]
    }

    /// Semantic vector `h^onto` of a KG relation (its schema-node embedding).
    pub fn kg_relation_vector(&self, schema: &SchemaGraph, r: RelationId) -> &[f32] {
        self.node_vector(schema.relation_node(r))
    }

    /// TransE energy `||h + r - t||_2` — lower means more plausible.
    pub fn energy(&self, t: Triple) -> f32 {
        let h = &self.entity_emb[t.head.index()];
        let r = &self.relation_emb[t.relation.index()];
        let tt = &self.entity_emb[t.tail.index()];
        (0..self.dim).map(|k| (h[k] + r[k] - tt[k]).powi(2)).sum::<f32>().sqrt()
    }

    /// Cosine similarity between two schema nodes' vectors.
    pub fn similarity(&self, a: EntityId, b: EntityId) -> f32 {
        cosine(&self.entity_emb[a.index()], &self.entity_emb[b.index()])
    }
}

fn normalize(v: &mut [f32]) {
    let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if n > 1e-12 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na < 1e-12 || nb < 1e-12 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// One margin-ranking SGD step on (pos, neg) with L2 energy.
fn sgd_step(
    ents: &mut [Vec<f32>],
    rels: &mut [Vec<f32>],
    pos: Triple,
    neg: Triple,
    lr: f32,
    margin: f32,
) {
    let d_pos = energy_of(ents, rels, pos);
    let d_neg = energy_of(ents, rels, neg);
    if d_pos + margin <= d_neg {
        return; // margin satisfied, zero loss
    }
    // dL/d(h+r-t) for the positive = (h+r-t)/||.||, negated for the negative.
    apply_grad(ents, rels, pos, lr, 1.0);
    apply_grad(ents, rels, neg, lr, -1.0);
}

fn energy_of(ents: &[Vec<f32>], rels: &[Vec<f32>], t: Triple) -> f32 {
    let h = &ents[t.head.index()];
    let r = &rels[t.relation.index()];
    let tt = &ents[t.tail.index()];
    h.iter().zip(r).zip(tt).map(|((x, y), z)| (x + y - z).powi(2)).sum::<f32>().sqrt()
}

fn apply_grad(ents: &mut [Vec<f32>], rels: &mut [Vec<f32>], t: Triple, lr: f32, sign: f32) {
    let dim = rels[t.relation.index()].len();
    let norm = energy_of(ents, rels, t).max(1e-6);
    for k in 0..dim {
        let diff = ents[t.head.index()][k] + rels[t.relation.index()][k] - ents[t.tail.index()][k];
        let g = sign * lr * diff / norm;
        ents[t.head.index()][k] -= g;
        rels[t.relation.index()][k] -= g;
        ents[t.tail.index()][k] += g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::{ClassId, SchemaBuilder};
    use rand::SeedableRng;

    fn family_schema() -> SchemaGraph {
        // relations 0..4: husband_of, wife_of, spouse_of, works_for
        // classes 0..2: Person, Org, Agent
        let mut b = SchemaBuilder::new(4, 3);
        b.sub_property_of(RelationId(0), RelationId(2))
            .sub_property_of(RelationId(1), RelationId(2))
            .domain(RelationId(0), ClassId(0))
            .range(RelationId(0), ClassId(0))
            .domain(RelationId(1), ClassId(0))
            .range(RelationId(1), ClassId(0))
            .domain(RelationId(2), ClassId(0))
            .range(RelationId(2), ClassId(0))
            .domain(RelationId(3), ClassId(0))
            .range(RelationId(3), ClassId(1))
            .sub_class_of(ClassId(0), ClassId(2))
            .sub_class_of(ClassId(1), ClassId(2));
        b.build()
    }

    fn small_cfg() -> TransEConfig {
        TransEConfig { dim: 16, lr: 0.05, margin: 1.0, epochs: 150, seed: 3 }
    }

    #[test]
    fn positive_energy_below_negative_after_training() {
        let schema = family_schema();
        let model = TransEModel::train(&schema, small_cfg());
        let g = schema.graph();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut wins = 0;
        let mut total = 0;
        for &pos in g.triples() {
            for _ in 0..8 {
                let corrupt: u32 = rng.gen_range(0..schema.num_nodes() as u32);
                let neg = pos.with_tail(EntityId(corrupt));
                if g.contains(&neg) || neg == pos {
                    continue;
                }
                total += 1;
                if model.energy(pos) < model.energy(neg) {
                    wins += 1;
                }
            }
        }
        assert!(total > 0);
        let rate = wins as f32 / total as f32;
        assert!(rate > 0.8, "TransE should rank positives above corruptions: rate {rate}");
    }

    #[test]
    fn sibling_relations_are_more_similar_than_unrelated() {
        let schema = family_schema();
        let model = TransEModel::train(&schema, small_cfg());
        let husband = schema.relation_node(RelationId(0));
        let wife = schema.relation_node(RelationId(1));
        let works = schema.relation_node(RelationId(3));
        let sib = model.similarity(husband, wife);
        let far = model.similarity(husband, works);
        assert!(
            sib > far,
            "siblings under spouse_of should embed closer: sib {sib} vs unrelated {far}"
        );
    }

    #[test]
    fn vectors_are_normalized() {
        let schema = family_schema();
        let model = TransEModel::train(&schema, small_cfg());
        for node in 0..schema.num_nodes() as u32 {
            let n: f32 =
                model.node_vector(EntityId(node)).iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-3, "node {node} norm {n}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let schema = family_schema();
        let a = TransEModel::train(&schema, small_cfg());
        let b = TransEModel::train(&schema, small_cfg());
        assert_eq!(a.node_vector(EntityId(0)), b.node_vector(EntityId(0)));
    }

    #[test]
    fn kg_relation_vector_has_requested_dim() {
        let schema = family_schema();
        let model = TransEModel::train(&schema, TransEConfig { dim: 24, epochs: 5, ..small_cfg() });
        assert_eq!(model.kg_relation_vector(&schema, RelationId(2)).len(), 24);
        assert_eq!(model.dim(), 24);
    }

    #[test]
    fn empty_schema_still_yields_vectors() {
        let schema = SchemaBuilder::new(2, 1).build();
        let model = TransEModel::train(&schema, TransEConfig { dim: 8, epochs: 3, ..small_cfg() });
        assert_eq!(model.kg_relation_vector(&schema, RelationId(1)).len(), 8);
    }
}
