//! Property-based tests for schema graphs and TransE.

use proptest::prelude::*;
use rmpi_kg::{EntityId, RelationId};
use rmpi_schema::{ClassId, SchemaBuilder, SchemaVocab, TransEConfig, TransEModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn node_spaces_never_collide(num_rel in 1usize..30, num_cls in 1usize..20) {
        let s = SchemaBuilder::new(num_rel, num_cls).build();
        for r in 0..num_rel as u32 {
            for c in 0..num_cls as u32 {
                prop_assert_ne!(s.relation_node(RelationId(r)), s.class_node(ClassId(c)));
            }
        }
        prop_assert_eq!(s.num_nodes(), num_rel + num_cls);
    }

    #[test]
    fn assertions_produce_valid_triples(
        rels in prop::collection::vec((0u32..8, 0u32..8), 1..20),
        doms in prop::collection::vec((0u32..8, 0u32..5), 1..20),
    ) {
        let mut b = SchemaBuilder::new(8, 5);
        for (c, p) in rels {
            b.sub_property_of(RelationId(c), RelationId(p));
        }
        for (r, c) in doms {
            b.domain(RelationId(r), ClassId(c));
            b.range(RelationId(r), ClassId(c));
        }
        let s = b.build();
        let g = s.graph();
        for t in g.triples() {
            prop_assert!(t.relation.index() < SchemaVocab::all().len());
            prop_assert!((t.head.0 as usize) < s.num_nodes());
            prop_assert!((t.tail.0 as usize) < s.num_nodes());
        }
    }

    #[test]
    fn transe_vectors_unit_norm_and_finite(seed in 0u64..100) {
        let mut b = SchemaBuilder::new(4, 3);
        b.sub_property_of(RelationId(0), RelationId(1))
            .domain(RelationId(2), ClassId(0))
            .range(RelationId(3), ClassId(2))
            .sub_class_of(ClassId(1), ClassId(0));
        let s = b.build();
        let m = TransEModel::train(&s, TransEConfig { dim: 8, epochs: 10, seed, ..Default::default() });
        for n in 0..s.num_nodes() as u32 {
            let v = m.node_vector(EntityId(n));
            prop_assert!(v.iter().all(|x| x.is_finite()));
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            prop_assert!((norm - 1.0).abs() < 1e-3, "node {n} norm {norm}");
        }
    }

    #[test]
    fn transe_energy_nonnegative(seed in 0u64..50, h in 0u32..7, r in 0u32..4, t in 0u32..7) {
        let mut b = SchemaBuilder::new(4, 3);
        b.domain(RelationId(0), ClassId(0));
        let s = b.build();
        let m = TransEModel::train(&s, TransEConfig { dim: 6, epochs: 2, seed, ..Default::default() });
        let e = m.energy(rmpi_kg::Triple::new(h, r, t));
        prop_assert!(e >= 0.0 && e.is_finite());
    }
}
