//! Synthetic inductive KGC benchmarks.
//!
//! The paper evaluates on inductive splits of WN18RR, FB15k-237 and NELL-995
//! (GraIL's 12 benchmarks), four recombined fully-inductive datasets
//! (`XXX.vi.vj`), and MaKEr's FB-Ext / NELL-Ext. Those raw files are not
//! available offline, so this crate generates *worlds* with the property the
//! benchmarks actually test: entity-independent relational regularities that
//! transfer to disjoint entity sets.
//!
//! A [`World`] plants logical rules over typed entities — compositions
//! (`r1(x,y) ∧ r2(y,z) → r3(x,z)`), confusable long chains (two conclusions
//! sharing first/last premises, distinguishable only at hop 2), inversions,
//! symmetry and subsumption — and derives each graph's triples by sampling
//! base facts and closing over the rules. The same world's type system
//! yields the ontological [`rmpi_schema::SchemaGraph`]: domains, ranges,
//! relation and class hierarchies, with relations of the same rule role
//! sharing abstract schema parents so that *unseen* relations are connected
//! to seen ones exactly as in NELL's ontology.
//!
//! Builders:
//! * [`benchmark::partial_benchmark`] — GraIL-style partially inductive
//!   splits (disjoint entities, shared relations);
//! * [`fully::fully_inductive_benchmark`] — `XXX.vi.vj` recombination with
//!   `TE(semi)` and `TE(fully)` testing graphs;
//! * [`ext::ext_benchmark`] — MaKEr-style splits with `u_ent` / `u_rel` /
//!   `u_both` target buckets;
//! * [`registry`] — the named dataset catalogue with fixed seeds and the
//!   paper-vs-generated statistics used by Table I.

pub mod benchmark;
pub mod ext;
pub mod fully;
pub mod io;
pub mod registry;
pub mod rules;
pub mod stream;
pub mod world;

pub use benchmark::{Benchmark, TestSet, TrainSet};
pub use registry::{build_benchmark, registry_names, Scale};
pub use rules::{GroupKind, Role, Rule, RuleGroup};
pub use stream::StreamingWorld;
pub use world::{World, WorldConfig};
