//! Fully inductive benchmark recombination (`XXX.vi.vj`, paper §IV-A).
//!
//! The training graph comes from version `vi`'s rule groups; the testing
//! graph from version `vj`'s larger group set, over disjoint entities. Two
//! testing graphs are derived:
//!
//! * `TE(semi)` — the full testing graph (seen + unseen relations);
//! * `TE(fully)` — the testing graph filtered to triples whose relation is
//!   unseen, i.e. an entirely new graph with only unseen entities *and*
//!   only unseen relations.

use crate::benchmark::{make_test_set, make_train_set, Benchmark, TestSet};
use crate::world::{GraphGenConfig, World};
use rmpi_kg::{KnowledgeGraph, RelationId};
use std::collections::HashSet;

/// Build a fully inductive benchmark from two group sets of one world.
///
/// `train_groups` must be a subset of `test_groups`; the difference supplies
/// the unseen relations.
pub fn fully_inductive_benchmark(
    name: &str,
    world: World,
    train_groups: &[usize],
    test_groups: &[usize],
    train_gen: GraphGenConfig,
    test_gen: GraphGenConfig,
) -> Benchmark {
    let train_set: HashSet<usize> = train_groups.iter().copied().collect();
    assert!(
        train_groups.iter().all(|g| test_groups.contains(g)),
        "train groups must be a subset of test groups"
    );
    assert!(
        test_groups.iter().any(|g| !train_set.contains(g)),
        "test groups must add at least one unseen group"
    );
    let test_gen = GraphGenConfig {
        entity_offset: train_gen.num_entities as u32,
        seed: test_gen.seed ^ 0xa5a5_5a5a_0f0f_f0f0,
        ..test_gen
    };

    let tr = world.generate_triples(train_groups, &train_gen);
    let te = world.generate_triples(test_groups, &test_gen);
    let train = make_train_set(tr, train_gen.seed.wrapping_add(1));
    let seen_relations: HashSet<RelationId> = train.graph.present_relations().into_iter().collect();

    let semi = make_test_set("TE(semi)", te, test_gen.seed.wrapping_add(2));
    let fully = filter_to_unseen(&semi, &seen_relations);

    Benchmark { name: name.to_owned(), world, seen_relations, train, tests: vec![semi, fully] }
}

/// Derive the `TE(fully)` set: keep only context triples and targets whose
/// relation is unseen.
fn filter_to_unseen(semi: &TestSet, seen: &HashSet<RelationId>) -> TestSet {
    let context: Vec<_> =
        semi.graph.triples().iter().filter(|t| !seen.contains(&t.relation)).copied().collect();
    let targets: Vec<_> =
        semi.targets.iter().filter(|t| !seen.contains(&t.relation)).copied().collect();
    TestSet { name: "TE(fully)".to_owned(), graph: KnowledgeGraph::from_triples(context), targets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use rmpi_kg::EntityId;

    fn bench() -> Benchmark {
        let world = World::new(WorldConfig {
            comp_groups: 3,
            long_groups: 2,
            inv_groups: 2,
            sym_groups: 1,
            sub_groups: 1,
            ..Default::default()
        });
        let all: Vec<usize> = (0..world.groups().len()).collect();
        let train: Vec<usize> = all.iter().copied().filter(|g| g % 2 == 0).collect();
        fully_inductive_benchmark(
            "toy.vi.vj",
            world,
            &train,
            &all,
            GraphGenConfig {
                num_entities: 220,
                num_base_triples: 700,
                seed: 3,
                ..Default::default()
            },
            GraphGenConfig {
                num_entities: 160,
                num_base_triples: 520,
                seed: 4,
                ..Default::default()
            },
        )
    }

    #[test]
    fn has_semi_and_fully_test_sets() {
        let b = bench();
        assert!(b.test("TE(semi)").is_some());
        assert!(b.test("TE(fully)").is_some());
    }

    #[test]
    fn semi_contains_both_seen_and_unseen_relations() {
        let b = bench();
        let semi = b.test("TE(semi)").unwrap();
        let rels: HashSet<RelationId> = semi.graph.present_relations().into_iter().collect();
        assert!(rels.iter().any(|r| b.is_unseen(*r)), "semi TE needs unseen relations");
        assert!(rels.iter().any(|r| !b.is_unseen(*r)), "semi TE keeps seen relations");
    }

    #[test]
    fn fully_contains_only_unseen_relations() {
        let b = bench();
        let fully = b.test("TE(fully)").unwrap();
        assert!(!fully.targets.is_empty(), "fully TE must have targets");
        for t in fully.graph.triples().iter().chain(&fully.targets) {
            assert!(b.is_unseen(t.relation), "seen relation {} in TE(fully)", t.relation);
        }
    }

    #[test]
    fn entities_disjoint_from_training() {
        let b = bench();
        let tr: HashSet<EntityId> = b.train.graph.present_entities().into_iter().collect();
        for ts in &b.tests {
            let te: HashSet<EntityId> = ts.graph.present_entities().into_iter().collect();
            assert!(tr.is_disjoint(&te), "{} overlaps train entities", ts.name);
        }
    }

    #[test]
    #[should_panic(expected = "subset")]
    fn train_groups_must_be_subset() {
        let world = World::new(WorldConfig::default());
        fully_inductive_benchmark(
            "bad",
            world,
            &[0, 1],
            &[1, 2],
            GraphGenConfig::default(),
            GraphGenConfig::default(),
        );
    }
}
