//! MaKEr-style Ext benchmarks (paper §IV-C, Tables IV–V).
//!
//! FB-Ext / NELL-Ext test graphs contain *both* seen and unseen entities and
//! relations. The prediction targets are bucketed as in MaKEr:
//!
//! * `u_ent`  — all entities unseen, all relations seen;
//! * `u_rel`  — all entities seen, relation unseen;
//! * `u_both` — unseen relation and at least one unseen entity.
//!
//! The test graph is generated over an entity range that *includes* the
//! training entities plus a fresh range, with the full (seen ∪ unseen)
//! relation group set.

use crate::benchmark::{make_train_set, Benchmark, TestSet};
use crate::world::{GraphGenConfig, World};
use rmpi_kg::{split_triples, EntityId, KnowledgeGraph, RelationId, Triple};
use std::collections::HashSet;

/// Build an Ext-style benchmark. `train_groups ⊂ test_groups` as in
/// [`crate::fully::fully_inductive_benchmark`]; `extra_entities` is the count
/// of new (unseen) entities added for the testing graph.
pub fn ext_benchmark(
    name: &str,
    world: World,
    train_groups: &[usize],
    test_groups: &[usize],
    train_gen: GraphGenConfig,
    extra_entities: usize,
    test_seed: u64,
) -> Benchmark {
    assert!(
        train_groups.iter().all(|g| test_groups.contains(g)),
        "train groups must be a subset of test groups"
    );
    let tr = world.generate_triples(train_groups, &train_gen);
    let train = make_train_set(tr, train_gen.seed.wrapping_add(1));
    let seen_relations: HashSet<RelationId> = train.graph.present_relations().into_iter().collect();
    let seen_entities: HashSet<EntityId> = train.graph.present_entities().into_iter().collect();

    // testing graph over old + new entity ranges, full relation set
    let test_gen = GraphGenConfig {
        num_entities: train_gen.num_entities + extra_entities,
        entity_offset: 0,
        seed: test_seed,
        ..train_gen
    };
    let te = world.generate_triples(test_groups, &test_gen);
    let split = split_triples(&te, 0.0, 0.12, test_seed.wrapping_add(9));
    let context = {
        let mut c = split.train;
        c.extend(split.valid);
        KnowledgeGraph::from_triples(c)
    };

    let is_seen_entity = |e: EntityId| seen_entities.contains(&e);
    let mut u_ent = Vec::new();
    let mut u_rel = Vec::new();
    let mut u_both = Vec::new();
    for t in split.test {
        let rel_seen = seen_relations.contains(&t.relation);
        let h_seen = is_seen_entity(t.head);
        let t_seen = is_seen_entity(t.tail);
        match (rel_seen, h_seen, t_seen) {
            (true, false, false) => u_ent.push(t),
            (false, true, true) => u_rel.push(t),
            (false, _, _) => u_both.push(t), // unseen relation + ≥1 unseen entity
            _ => {} // transductive or mixed-entity seen-relation cases: dropped
        }
    }

    let mk = |bucket: &str, targets: Vec<Triple>| TestSet {
        name: bucket.to_owned(),
        graph: context.clone(),
        targets,
    };
    Benchmark {
        name: name.to_owned(),
        world,
        seen_relations,
        train,
        tests: vec![mk("u_ent", u_ent), mk("u_rel", u_rel), mk("u_both", u_both)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn bench() -> Benchmark {
        let world = World::new(WorldConfig {
            comp_groups: 3,
            long_groups: 1,
            inv_groups: 2,
            sym_groups: 1,
            sub_groups: 1,
            ..Default::default()
        });
        let all: Vec<usize> = (0..world.groups().len()).collect();
        let train: Vec<usize> = all.iter().copied().filter(|g| g % 2 == 0).collect();
        ext_benchmark(
            "toy-ext",
            world,
            &train,
            &all,
            GraphGenConfig {
                num_entities: 260,
                num_base_triples: 900,
                seed: 21,
                ..Default::default()
            },
            180,
            77,
        )
    }

    #[test]
    fn buckets_exist_and_nonempty() {
        let b = bench();
        for bucket in ["u_ent", "u_rel", "u_both"] {
            let ts = b.test(bucket).unwrap_or_else(|| panic!("{bucket} missing"));
            assert!(!ts.targets.is_empty(), "{bucket} should have targets");
        }
    }

    #[test]
    fn u_ent_bucket_is_pure() {
        let b = bench();
        let seen_e: HashSet<EntityId> = b.train.graph.present_entities().into_iter().collect();
        for t in &b.test("u_ent").unwrap().targets {
            assert!(!b.is_unseen(t.relation));
            assert!(!seen_e.contains(&t.head) && !seen_e.contains(&t.tail));
        }
    }

    #[test]
    fn u_rel_bucket_is_pure() {
        let b = bench();
        let seen_e: HashSet<EntityId> = b.train.graph.present_entities().into_iter().collect();
        for t in &b.test("u_rel").unwrap().targets {
            assert!(b.is_unseen(t.relation));
            assert!(seen_e.contains(&t.head) && seen_e.contains(&t.tail));
        }
    }

    #[test]
    fn u_both_bucket_is_pure() {
        let b = bench();
        let seen_e: HashSet<EntityId> = b.train.graph.present_entities().into_iter().collect();
        for t in &b.test("u_both").unwrap().targets {
            assert!(b.is_unseen(t.relation));
            assert!(!seen_e.contains(&t.head) || !seen_e.contains(&t.tail));
        }
    }

    #[test]
    fn test_graph_mixes_seen_and_unseen_entities() {
        let b = bench();
        let seen_e: HashSet<EntityId> = b.train.graph.present_entities().into_iter().collect();
        let te = &b.test("u_ent").unwrap().graph;
        let ents = te.present_entities();
        assert!(ents.iter().any(|e| seen_e.contains(e)));
        assert!(ents.iter().any(|e| !seen_e.contains(e)));
    }
}
