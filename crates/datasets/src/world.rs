//! Rule-based world generation.
//!
//! A [`World`] fixes a type system (classes with a hierarchy), a relation
//! vocabulary organised into [`RuleGroup`]s, and the planted rules. Graphs
//! are then *derived* from the world: sample typed base facts, plant premise
//! chains, close over the rules, sprinkle noise. Two graphs generated from
//! the same world over disjoint entity ranges share exactly the relational
//! regularities an inductive model is supposed to transfer — and nothing
//! else.

use crate::rules::{GroupKind, Role, Rule, RuleGroup};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rmpi_kg::{EntityId, RelationId, Triple};
use rmpi_schema::{ClassId, SchemaBuilder, SchemaGraph};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// World construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct WorldConfig {
    /// Number of concrete entity classes.
    pub num_classes: usize,
    /// Number of archetypes; groups of the same archetype share abstract
    /// schema parents per role.
    pub num_archetypes: usize,
    /// Short composition groups (3 relations each).
    pub comp_groups: usize,
    /// Confusable long-chain pair groups (6 relations each).
    pub long_groups: usize,
    /// Inverse pairs (2 relations each).
    pub inv_groups: usize,
    /// Symmetric relations (1 each).
    pub sym_groups: usize,
    /// Subsumption pairs (2 relations each).
    pub sub_groups: usize,
    /// Free relations with no rules.
    pub noise_relations: usize,
    /// World seed (relation/class wiring).
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            num_classes: 8,
            num_archetypes: 2,
            comp_groups: 2,
            long_groups: 1,
            inv_groups: 1,
            sym_groups: 1,
            sub_groups: 1,
            noise_relations: 1,
            seed: 0,
        }
    }
}

impl WorldConfig {
    /// Set the number of concrete entity classes.
    pub fn with_num_classes(mut self, n: usize) -> Self {
        self.num_classes = n;
        self
    }

    /// Set the number of archetypes.
    pub fn with_num_archetypes(mut self, n: usize) -> Self {
        self.num_archetypes = n;
        self
    }

    /// Set the number of short composition groups.
    pub fn with_comp_groups(mut self, n: usize) -> Self {
        self.comp_groups = n;
        self
    }

    /// Set the number of confusable long-chain pair groups.
    pub fn with_long_groups(mut self, n: usize) -> Self {
        self.long_groups = n;
        self
    }

    /// Set the number of inverse pairs.
    pub fn with_inv_groups(mut self, n: usize) -> Self {
        self.inv_groups = n;
        self
    }

    /// Set the number of symmetric relations.
    pub fn with_sym_groups(mut self, n: usize) -> Self {
        self.sym_groups = n;
        self
    }

    /// Set the number of subsumption pairs.
    pub fn with_sub_groups(mut self, n: usize) -> Self {
        self.sub_groups = n;
        self
    }

    /// Set the number of free relations with no rules.
    pub fn with_noise_relations(mut self, n: usize) -> Self {
        self.noise_relations = n;
        self
    }

    /// Set the world seed (relation/class wiring).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Typing and role metadata of one concrete relation.
#[derive(Clone, Copy, Debug)]
pub struct RelationSpec {
    /// Head entity class.
    pub domain: ClassId,
    /// Tail entity class.
    pub range: ClassId,
    /// Role within its rule group.
    pub role: Role,
    /// Owning group index (None for noise relations).
    pub group: Option<usize>,
}

/// Graph generation parameters (per graph, not per world).
#[derive(Clone, Copy, Debug)]
pub struct GraphGenConfig {
    /// Number of entities in this graph.
    pub num_entities: usize,
    /// Base facts sampled before rule closure.
    pub num_base_triples: usize,
    /// First entity id (use disjoint ranges for inductive splits).
    pub entity_offset: u32,
    /// Probability that an applicable rule instance fires.
    pub rule_apply_prob: f64,
    /// Rule closure passes.
    pub closure_passes: usize,
    /// Extra random (type-violating) triples, as a fraction of the total.
    pub noise_frac: f64,
    /// Hard cap on generated triples.
    pub max_triples: usize,
    /// Graph seed (independent of the world seed).
    pub seed: u64,
}

impl Default for GraphGenConfig {
    fn default() -> Self {
        GraphGenConfig {
            num_entities: 300,
            num_base_triples: 900,
            entity_offset: 0,
            rule_apply_prob: 0.85,
            closure_passes: 2,
            noise_frac: 0.05,
            max_triples: 100_000,
            seed: 1,
        }
    }
}

/// A generated world: classes, typed relations, rule groups and the derived
/// ontological schema.
#[derive(Clone, Debug)]
pub struct World {
    config: WorldConfig,
    relations: Vec<RelationSpec>,
    groups: Vec<RuleGroup>,
    /// Abstract schema-only parent per (archetype, role), allocated after the
    /// concrete relations.
    abstract_parents: HashMap<(usize, Role), RelationId>,
    class_parent: Vec<Option<ClassId>>,
}

impl World {
    /// Build a world from `config` (deterministic in `config.seed`).
    pub fn new(config: WorldConfig) -> Self {
        assert!(config.num_classes >= 2, "need at least two classes");
        assert!(config.num_archetypes >= 1, "need at least one archetype");
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let mut relations: Vec<RelationSpec> = Vec::new();
        let mut groups: Vec<RuleGroup> = Vec::new();

        let rand_class =
            |rng: &mut rand::rngs::StdRng| ClassId(rng.gen_range(0..config.num_classes as u32));
        let add_rel = |relations: &mut Vec<RelationSpec>,
                       d: ClassId,
                       r: ClassId,
                       role: Role,
                       group: Option<usize>| {
            relations.push(RelationSpec { domain: d, range: r, role, group });
            RelationId(relations.len() as u32 - 1)
        };

        let total_groups = config.comp_groups
            + config.long_groups
            + config.inv_groups
            + config.sym_groups
            + config.sub_groups;
        let mut gi = 0usize;
        for _ in 0..config.comp_groups {
            let archetype = gi % config.num_archetypes;
            let (a, b, c) = (rand_class(&mut rng), rand_class(&mut rng), rand_class(&mut rng));
            let p1 = add_rel(&mut relations, a, b, Role::First, Some(gi));
            let p2 = add_rel(&mut relations, b, c, Role::Second, Some(gi));
            let concl = add_rel(&mut relations, a, c, Role::Conclusion, Some(gi));
            groups.push(RuleGroup {
                archetype,
                kind: GroupKind::Composition,
                rules: vec![Rule::Composition { p1, p2, conclusion: concl }],
                relations: vec![(p1, Role::First), (p2, Role::Second), (concl, Role::Conclusion)],
            });
            gi += 1;
        }
        for _ in 0..config.long_groups {
            let archetype = gi % config.num_archetypes;
            let (a, b, c, d) = (
                rand_class(&mut rng),
                rand_class(&mut rng),
                rand_class(&mut rng),
                rand_class(&mut rng),
            );
            let p1 = add_rel(&mut relations, a, b, Role::First, Some(gi));
            let mid_a = add_rel(&mut relations, b, c, Role::MidA, Some(gi));
            let mid_b = add_rel(&mut relations, b, c, Role::MidB, Some(gi));
            let p3 = add_rel(&mut relations, c, d, Role::Second, Some(gi));
            let concl_a = add_rel(&mut relations, a, d, Role::Conclusion, Some(gi));
            let concl_b = add_rel(&mut relations, a, d, Role::ConclusionB, Some(gi));
            groups.push(RuleGroup {
                archetype,
                kind: GroupKind::LongPair,
                rules: vec![
                    Rule::LongComposition { p1, mid: mid_a, p3, conclusion: concl_a },
                    Rule::LongComposition { p1, mid: mid_b, p3, conclusion: concl_b },
                ],
                relations: vec![
                    (p1, Role::First),
                    (mid_a, Role::MidA),
                    (mid_b, Role::MidB),
                    (p3, Role::Second),
                    (concl_a, Role::Conclusion),
                    (concl_b, Role::ConclusionB),
                ],
            });
            gi += 1;
        }
        for _ in 0..config.inv_groups {
            let archetype = gi % config.num_archetypes;
            let (a, b) = (rand_class(&mut rng), rand_class(&mut rng));
            let of = add_rel(&mut relations, a, b, Role::Base, Some(gi));
            let inv = add_rel(&mut relations, b, a, Role::Inverted, Some(gi));
            groups.push(RuleGroup {
                archetype,
                kind: GroupKind::Inverse,
                rules: vec![Rule::Inverse { of, inverse: inv }],
                relations: vec![(of, Role::Base), (inv, Role::Inverted)],
            });
            gi += 1;
        }
        for _ in 0..config.sym_groups {
            let archetype = gi % config.num_archetypes;
            let a = rand_class(&mut rng);
            let r = add_rel(&mut relations, a, a, Role::Sym, Some(gi));
            groups.push(RuleGroup {
                archetype,
                kind: GroupKind::Symmetric,
                rules: vec![Rule::Symmetric { relation: r }],
                relations: vec![(r, Role::Sym)],
            });
            gi += 1;
        }
        for _ in 0..config.sub_groups {
            let archetype = gi % config.num_archetypes;
            let (a, b) = (rand_class(&mut rng), rand_class(&mut rng));
            let child = add_rel(&mut relations, a, b, Role::Child, Some(gi));
            let parent = add_rel(&mut relations, a, b, Role::Parent, Some(gi));
            groups.push(RuleGroup {
                archetype,
                kind: GroupKind::Subsumption,
                rules: vec![Rule::Subsumption { child, parent }],
                relations: vec![(child, Role::Child), (parent, Role::Parent)],
            });
            gi += 1;
        }
        debug_assert_eq!(gi, total_groups);
        for _ in 0..config.noise_relations {
            let (a, b) = (rand_class(&mut rng), rand_class(&mut rng));
            add_rel(&mut relations, a, b, Role::Noise, None);
        }

        // abstract schema parents per (archetype, role)
        let mut abstract_parents = HashMap::new();
        let mut next = relations.len() as u32;
        for g in &groups {
            for &(_, role) in &g.relations {
                abstract_parents.entry((g.archetype, role)).or_insert_with(|| {
                    let id = RelationId(next);
                    next += 1;
                    id
                });
            }
        }

        // class hierarchy: binary tree towards class 0
        let class_parent = (0..config.num_classes)
            .map(|i| if i == 0 { None } else { Some(ClassId(((i - 1) / 2) as u32)) })
            .collect();

        World { config, relations, groups, abstract_parents, class_parent }
    }

    /// The construction parameters.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Number of concrete relations (usable in triples).
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Number of schema relation nodes (concrete + abstract parents).
    pub fn num_schema_relations(&self) -> usize {
        self.relations.len() + self.abstract_parents.len()
    }

    /// Typing/role metadata for a concrete relation.
    pub fn relation(&self, r: RelationId) -> &RelationSpec {
        &self.relations[r.index()]
    }

    /// The rule groups.
    pub fn groups(&self) -> &[RuleGroup] {
        &self.groups
    }

    /// Ids of the noise relations (active in every benchmark version).
    pub fn noise_relation_ids(&self) -> Vec<RelationId> {
        self.relations
            .iter()
            .enumerate()
            .filter(|(_, s)| s.role == Role::Noise)
            .map(|(i, _)| RelationId(i as u32))
            .collect()
    }

    /// Concrete relations of the given groups, plus the noise relations.
    pub fn active_relations(&self, active_groups: &[usize]) -> Vec<RelationId> {
        let mut out: Vec<RelationId> =
            active_groups.iter().flat_map(|&g| self.groups[g].relation_ids()).collect();
        out.extend(self.noise_relation_ids());
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Build the ontological schema graph covering every concrete and
    /// abstract relation: domains, ranges, role parents, subsumption pairs
    /// and the class hierarchy.
    pub fn schema_graph(&self) -> SchemaGraph {
        let mut b = SchemaBuilder::new(self.num_schema_relations(), self.config.num_classes);
        for (i, spec) in self.relations.iter().enumerate() {
            let r = RelationId(i as u32);
            b.domain(r, spec.domain);
            b.range(r, spec.range);
            if let Some(g) = spec.group {
                let parent = self.abstract_parents[&(self.groups[g].archetype, spec.role)];
                b.sub_property_of(r, parent);
            }
        }
        for g in &self.groups {
            for rule in &g.rules {
                if let Rule::Subsumption { child, parent } = *rule {
                    b.sub_property_of(child, parent);
                }
            }
        }
        for (i, parent) in self.class_parent.iter().enumerate() {
            if let Some(p) = parent {
                b.sub_class_of(ClassId(i as u32), *p);
            }
        }
        b.build()
    }

    /// Generate a graph's triples using only the rules/relations of
    /// `active_groups` (plus noise relations).
    pub fn generate_triples(&self, active_groups: &[usize], gen: &GraphGenConfig) -> Vec<Triple> {
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(gen.seed ^ self.config.seed.rotate_left(17));
        let n_class = self.config.num_classes;

        // class assignment: round-robin so every class is populated, shuffled
        let mut entities: Vec<EntityId> =
            (0..gen.num_entities as u32).map(|i| EntityId(gen.entity_offset + i)).collect();
        entities.shuffle(&mut rng);
        let mut by_class: Vec<Vec<EntityId>> = vec![Vec::new(); n_class];
        for (i, &e) in entities.iter().enumerate() {
            by_class[i % n_class].push(e);
        }
        let pick = |class: ClassId, rng: &mut rand::rngs::StdRng| -> EntityId {
            *by_class[class.index()].choose(rng).expect("every class populated")
        };

        let active_rels = self.active_relations(active_groups);
        let premise_rels: Vec<RelationId> = active_rels
            .iter()
            .copied()
            .filter(|r| {
                !matches!(
                    self.relations[r.index()].role,
                    Role::Conclusion | Role::ConclusionB | Role::Parent
                )
            })
            .collect();
        let active_rules: Vec<Rule> =
            active_groups.iter().flat_map(|&g| self.groups[g].rules.iter().copied()).collect();

        let mut triples: BTreeSet<Triple> = BTreeSet::new();
        // base facts: half independent samples, half planted premise chains
        let n_single = gen.num_base_triples / 2;
        for _ in 0..n_single {
            if triples.len() >= gen.max_triples {
                break;
            }
            let r = *premise_rels.choose(&mut rng).expect("premise relations");
            let spec = &self.relations[r.index()];
            let h = pick(spec.domain, &mut rng);
            let t = pick(spec.range, &mut rng);
            if h != t {
                triples.insert(Triple { head: h, relation: r, tail: t });
            }
        }
        let mut planted = 0usize;
        while planted < gen.num_base_triples - n_single
            && !active_rules.is_empty()
            && triples.len() < gen.max_triples
        {
            let rule = *active_rules.choose(&mut rng).expect("rules");
            match rule {
                Rule::Composition { p1, p2, .. } => {
                    let (s1, s2) = (&self.relations[p1.index()], &self.relations[p2.index()]);
                    let x = pick(s1.domain, &mut rng);
                    let y = pick(s1.range, &mut rng);
                    let z = pick(s2.range, &mut rng);
                    insert_edge(&mut triples, x, p1, y);
                    insert_edge(&mut triples, y, p2, z);
                    planted += 2;
                }
                Rule::LongComposition { p1, mid, p3, .. } => {
                    let (s1, sm, s3) = (
                        &self.relations[p1.index()],
                        &self.relations[mid.index()],
                        &self.relations[p3.index()],
                    );
                    let x = pick(s1.domain, &mut rng);
                    let y = pick(s1.range, &mut rng);
                    let z = pick(sm.range, &mut rng);
                    let w = pick(s3.range, &mut rng);
                    insert_edge(&mut triples, x, p1, y);
                    insert_edge(&mut triples, y, mid, z);
                    insert_edge(&mut triples, z, p3, w);
                    planted += 3;
                }
                Rule::Inverse { of, .. } | Rule::Subsumption { child: of, .. } => {
                    let s = &self.relations[of.index()];
                    let h = pick(s.domain, &mut rng);
                    let t = pick(s.range, &mut rng);
                    if h != t {
                        triples.insert(Triple { head: h, relation: of, tail: t });
                    }
                    planted += 1;
                }
                Rule::Symmetric { relation } => {
                    let s = &self.relations[relation.index()];
                    let h = pick(s.domain, &mut rng);
                    let t = pick(s.range, &mut rng);
                    if h != t {
                        triples.insert(Triple { head: h, relation, tail: t });
                    }
                    planted += 1;
                }
            }
        }

        // rule closure
        for _ in 0..gen.closure_passes {
            if triples.len() >= gen.max_triples {
                break;
            }
            let mut by_rel: BTreeMap<RelationId, Vec<(EntityId, EntityId)>> = BTreeMap::new();
            for t in &triples {
                by_rel.entry(t.relation).or_default().push((t.head, t.tail));
            }
            let mut new_facts: Vec<Triple> = Vec::new();
            for rule in &active_rules {
                match *rule {
                    Rule::Composition { p1, p2, conclusion } => {
                        join2(&by_rel, p1, p2, |x, z| {
                            if x != z && rng.gen_bool(gen.rule_apply_prob) {
                                new_facts.push(Triple { head: x, relation: conclusion, tail: z });
                            }
                        });
                    }
                    Rule::LongComposition { p1, mid, p3, conclusion } => {
                        // join p1 ∘ mid into temp pairs, then temp ∘ p3
                        let mut temp: Vec<(EntityId, EntityId)> = Vec::new();
                        join2(&by_rel, p1, mid, |x, z| temp.push((x, z)));
                        let mut mid_index: HashMap<EntityId, Vec<EntityId>> = HashMap::new();
                        for &(h, t) in by_rel.get(&p3).map(Vec::as_slice).unwrap_or(&[]) {
                            mid_index.entry(h).or_default().push(t);
                        }
                        for (x, z) in temp {
                            if let Some(ws) = mid_index.get(&z) {
                                for &w in ws {
                                    if x != w && rng.gen_bool(gen.rule_apply_prob) {
                                        new_facts.push(Triple {
                                            head: x,
                                            relation: conclusion,
                                            tail: w,
                                        });
                                    }
                                }
                            }
                        }
                    }
                    Rule::Inverse { of, inverse } => {
                        for &(h, t) in by_rel.get(&of).map(Vec::as_slice).unwrap_or(&[]) {
                            if rng.gen_bool(gen.rule_apply_prob) {
                                new_facts.push(Triple { head: t, relation: inverse, tail: h });
                            }
                        }
                    }
                    Rule::Symmetric { relation } => {
                        for &(h, t) in by_rel.get(&relation).map(Vec::as_slice).unwrap_or(&[]) {
                            if rng.gen_bool(gen.rule_apply_prob) {
                                new_facts.push(Triple { head: t, relation, tail: h });
                            }
                        }
                    }
                    Rule::Subsumption { child, parent } => {
                        for &(h, t) in by_rel.get(&child).map(Vec::as_slice).unwrap_or(&[]) {
                            if rng.gen_bool(gen.rule_apply_prob) {
                                new_facts.push(Triple { head: h, relation: parent, tail: t });
                            }
                        }
                    }
                }
            }
            for f in new_facts {
                if triples.len() >= gen.max_triples {
                    break;
                }
                triples.insert(f);
            }
        }

        // noise: random active-relation triples over random entities
        let n_noise = (triples.len() as f64 * gen.noise_frac) as usize;
        for _ in 0..n_noise {
            if triples.len() >= gen.max_triples {
                break;
            }
            let r = *active_rels.choose(&mut rng).expect("active relations");
            let h = *entities.choose(&mut rng).expect("entities");
            let t = *entities.choose(&mut rng).expect("entities");
            if h != t {
                triples.insert(Triple { head: h, relation: r, tail: t });
            }
        }

        let mut out: Vec<Triple> = triples.into_iter().collect();
        out.sort_unstable();
        out
    }
}

/// Insert `head --rel--> tail` unless it would be a self-loop. Generated
/// worlds guarantee loop-freeness (an invariant the subgraph tests rely on).
fn insert_edge(
    triples: &mut BTreeSet<Triple>,
    head: EntityId,
    relation: RelationId,
    tail: EntityId,
) {
    if head != tail {
        triples.insert(Triple { head, relation, tail });
    }
}

/// For each `(x, y) ∈ r1` and `(y, z) ∈ r2`, call `f(x, z)`.
fn join2(
    by_rel: &BTreeMap<RelationId, Vec<(EntityId, EntityId)>>,
    r1: RelationId,
    r2: RelationId,
    mut f: impl FnMut(EntityId, EntityId),
) {
    let mut index: HashMap<EntityId, Vec<EntityId>> = HashMap::new();
    for &(h, t) in by_rel.get(&r2).map(Vec::as_slice).unwrap_or(&[]) {
        index.entry(h).or_default().push(t);
    }
    for &(x, y) in by_rel.get(&r1).map(Vec::as_slice).unwrap_or(&[]) {
        if let Some(zs) = index.get(&y) {
            for &z in zs {
                f(x, z);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmpi_kg::KnowledgeGraph;
    use std::collections::HashSet;

    fn world() -> World {
        World::new(WorldConfig::default())
    }

    #[test]
    fn builders_chain_over_default() {
        let cfg = WorldConfig::default()
            .with_num_classes(12)
            .with_num_archetypes(3)
            .with_comp_groups(4)
            .with_long_groups(2)
            .with_inv_groups(2)
            .with_sym_groups(2)
            .with_sub_groups(2)
            .with_noise_relations(5)
            .with_seed(99);
        assert_eq!(cfg.num_classes, 12);
        assert_eq!(cfg.num_archetypes, 3);
        assert_eq!(cfg.comp_groups, 4);
        assert_eq!(cfg.long_groups, 2);
        assert_eq!(cfg.inv_groups, 2);
        assert_eq!(cfg.sym_groups, 2);
        assert_eq!(cfg.sub_groups, 2);
        assert_eq!(cfg.noise_relations, 5);
        assert_eq!(cfg.seed, 99);
    }

    #[test]
    fn relation_counts_add_up() {
        let w = world();
        // 2 comp * 3 + 1 long * 6 + 1 inv * 2 + 1 sym + 1 sub * 2 + 1 noise = 18
        assert_eq!(w.num_relations(), 18);
        assert!(w.num_schema_relations() > w.num_relations());
        assert_eq!(w.groups().len(), 6);
    }

    #[test]
    fn deterministic_world_and_graph() {
        let a = World::new(WorldConfig::default());
        let b = World::new(WorldConfig::default());
        let g = GraphGenConfig::default();
        let active: Vec<usize> = (0..a.groups().len()).collect();
        assert_eq!(a.generate_triples(&active, &g), b.generate_triples(&active, &g));
    }

    #[test]
    fn generated_triples_respect_entity_range() {
        let w = world();
        let gen = GraphGenConfig { num_entities: 100, entity_offset: 1000, ..Default::default() };
        let active: Vec<usize> = (0..w.groups().len()).collect();
        for t in w.generate_triples(&active, &gen) {
            assert!((1000..1100).contains(&t.head.0));
            assert!((1000..1100).contains(&t.tail.0));
        }
    }

    #[test]
    fn inactive_group_relations_never_appear() {
        let w = world();
        let gen = GraphGenConfig::default();
        let active = vec![0usize]; // only the first composition group
        let allowed: HashSet<RelationId> = w.active_relations(&active).into_iter().collect();
        for t in w.generate_triples(&active, &gen) {
            assert!(allowed.contains(&t.relation), "relation {} not active", t.relation);
        }
    }

    #[test]
    fn composition_rule_fires() {
        let w = world();
        let gen = GraphGenConfig { noise_frac: 0.0, ..Default::default() };
        let active: Vec<usize> = (0..w.groups().len()).collect();
        let triples = w.generate_triples(&active, &gen);
        let g = KnowledgeGraph::from_triples(triples);
        // find the first composition rule and check its conclusion exists and
        // is mostly supported by premise paths
        let rule = w.groups()[0].rules[0];
        if let Rule::Composition { p1, p2, conclusion } = rule {
            let concl_count = g.relation_count(conclusion);
            assert!(concl_count > 0, "conclusion facts should be derived");
            // verify support: for most conclusion facts a premise path exists
            let mut supported = 0;
            let mut total = 0;
            for t in g.triples().iter().filter(|t| t.relation == conclusion) {
                total += 1;
                let has_path = g.out_edges(t.head).iter().any(|e1| {
                    e1.relation == p1
                        && g.out_edges(e1.neighbor)
                            .iter()
                            .any(|e2| e2.relation == p2 && e2.neighbor == t.tail)
                });
                if has_path {
                    supported += 1;
                }
            }
            assert!(
                supported as f64 >= 0.9 * total as f64,
                "conclusions should be rule-supported: {supported}/{total}"
            );
        } else {
            panic!("group 0 should be a composition");
        }
    }

    #[test]
    fn symmetric_rule_fires() {
        let w = world();
        let gen = GraphGenConfig { noise_frac: 0.0, ..Default::default() };
        let active: Vec<usize> = (0..w.groups().len()).collect();
        let g = KnowledgeGraph::from_triples(w.generate_triples(&active, &gen));
        let sym_rel = w
            .groups()
            .iter()
            .find(|gr| gr.kind == GroupKind::Symmetric)
            .and_then(|gr| gr.rules.first())
            .map(|r| r.conclusion())
            .unwrap();
        let pairs: Vec<Triple> =
            g.triples().iter().filter(|t| t.relation == sym_rel).copied().collect();
        assert!(!pairs.is_empty());
        let mirrored = pairs.iter().filter(|t| g.contains(&t.reversed())).count();
        assert!(
            mirrored as f64 >= 0.6 * pairs.len() as f64,
            "symmetric facts should usually be mirrored: {mirrored}/{}",
            pairs.len()
        );
    }

    #[test]
    fn schema_covers_all_relations() {
        let w = world();
        let schema = w.schema_graph();
        assert_eq!(schema.num_kg_relations(), w.num_schema_relations());
        assert!(schema.num_triples() > 0);
        // every concrete grouped relation has a subPropertyOf assertion
        let g = schema.graph();
        for (i, spec) in w.relations.iter().enumerate() {
            if spec.group.is_some() {
                let node = schema.relation_node(RelationId(i as u32));
                let has_parent = g
                    .out_edges(node)
                    .iter()
                    .any(|e| e.relation.index() == rmpi_schema::SchemaVocab::SubPropertyOf.index());
                assert!(has_parent, "relation {i} missing schema parent");
            }
        }
    }

    #[test]
    fn max_triples_cap_respected() {
        let w = world();
        let gen = GraphGenConfig { max_triples: 50, ..Default::default() };
        let active: Vec<usize> = (0..w.groups().len()).collect();
        let triples = w.generate_triples(&active, &gen);
        // noise can add a few beyond the cap-checked closure, bound loosely
        assert!(triples.len() <= 60, "cap exceeded: {}", triples.len());
    }

    #[test]
    fn same_archetype_roles_share_abstract_parent() {
        // 4 comp groups, 2 archetypes: groups 0/2 share parents, 0/1 differ
        let w = World::new(WorldConfig { comp_groups: 4, num_archetypes: 2, ..Default::default() });
        let parent_of = |g: usize, role: Role| w.abstract_parents[&(w.groups()[g].archetype, role)];
        assert_eq!(parent_of(0, Role::Conclusion), parent_of(2, Role::Conclusion));
        assert_ne!(parent_of(0, Role::Conclusion), parent_of(1, Role::Conclusion));
    }
}
