//! Common benchmark containers and the partially inductive builder.

use crate::world::{GraphGenConfig, World};
use rmpi_kg::{split_triples, KnowledgeGraph, RelationId, Triple};
use std::collections::HashSet;

/// The training side of a benchmark: a context graph plus target splits.
#[derive(Clone, Debug)]
pub struct TrainSet {
    /// The training graph (context for subgraph extraction). Target triples
    /// are members of this graph; extraction excludes the target edge itself.
    pub graph: KnowledgeGraph,
    /// Triples to train on (the graph's own triples).
    pub targets: Vec<Triple>,
    /// Held-out validation triples (not in `graph`).
    pub valid: Vec<Triple>,
}

/// One testing graph with its prediction targets.
#[derive(Clone, Debug)]
pub struct TestSet {
    /// Label, e.g. `"TE"`, `"TE(semi)"`, `"TE(fully)"`, `"u_rel"`.
    pub name: String,
    /// Context graph for subgraph extraction at test time.
    pub graph: KnowledgeGraph,
    /// Target triples to predict (not in `graph`).
    pub targets: Vec<Triple>,
}

/// A complete inductive benchmark.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Dataset name (e.g. `"nell.v2.v3"`).
    pub name: String,
    /// The generating world (source of the relation vocabulary and schema).
    pub world: World,
    /// Relations present in the training graph — everything else is unseen.
    pub seen_relations: HashSet<RelationId>,
    /// Training side.
    pub train: TrainSet,
    /// One or more testing graphs.
    pub tests: Vec<TestSet>,
}

impl Benchmark {
    /// Relation id space size (the world's concrete relations).
    pub fn num_relations(&self) -> usize {
        self.world.num_relations()
    }

    /// `true` when `r` did not occur in the training graph.
    pub fn is_unseen(&self, r: RelationId) -> bool {
        !self.seen_relations.contains(&r)
    }

    /// Look up a test set by name.
    pub fn test(&self, name: &str) -> Option<&TestSet> {
        self.tests.iter().find(|t| t.name == name)
    }
}

/// Split one generated triple pool into a [`TrainSet`] following the paper's
/// protocol: 80% context+targets, 10% validation, 10% reserved (folded into
/// validation candidates here — the paper leaves it as extra targets).
pub fn make_train_set(triples: Vec<Triple>, seed: u64) -> TrainSet {
    let split = split_triples(&triples, 0.1, 0.1, seed);
    let graph = KnowledgeGraph::from_triples(split.train.clone());
    TrainSet { graph, targets: split.train, valid: split.valid }
}

/// Split a generated test-graph pool into context (90%) and targets (10%).
pub fn make_test_set(name: &str, triples: Vec<Triple>, seed: u64) -> TestSet {
    let split = split_triples(&triples, 0.0, 0.1, seed);
    let mut context = split.train;
    context.extend(split.valid);
    TestSet {
        name: name.to_owned(),
        graph: KnowledgeGraph::from_triples(context),
        targets: split.test,
    }
}

/// Build a GraIL-style **partially inductive** benchmark: the training and
/// testing graphs are generated from the same world and rule groups over
/// disjoint entity ranges, so the relation vocabulary is shared but every
/// test entity is unseen.
pub fn partial_benchmark(
    name: &str,
    world: World,
    active_groups: &[usize],
    train_gen: GraphGenConfig,
    test_gen: GraphGenConfig,
) -> Benchmark {
    assert_eq!(train_gen.entity_offset, 0, "train entities start at 0 by convention");
    let test_gen = GraphGenConfig {
        entity_offset: train_gen.num_entities as u32,
        seed: test_gen.seed ^ 0x9e3779b97f4a7c15,
        ..test_gen
    };
    let tr = world.generate_triples(active_groups, &train_gen);
    let te = world.generate_triples(active_groups, &test_gen);
    let train = make_train_set(tr, train_gen.seed.wrapping_add(1));
    let seen_relations = train.graph.present_relations().into_iter().collect();
    let test = make_test_set("TE", te, test_gen.seed.wrapping_add(2));
    Benchmark { name: name.to_owned(), world, seen_relations, train, tests: vec![test] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use rmpi_kg::EntityId;

    fn bench() -> Benchmark {
        let world = World::new(WorldConfig::default());
        let groups: Vec<usize> = (0..world.groups().len()).collect();
        partial_benchmark(
            "toy",
            world,
            &groups,
            GraphGenConfig {
                num_entities: 200,
                num_base_triples: 600,
                seed: 11,
                ..Default::default()
            },
            GraphGenConfig {
                num_entities: 120,
                num_base_triples: 360,
                seed: 12,
                ..Default::default()
            },
        )
    }

    #[test]
    fn entity_sets_are_disjoint() {
        let b = bench();
        let tr: HashSet<EntityId> = b.train.graph.present_entities().into_iter().collect();
        let te: HashSet<EntityId> = b.tests[0].graph.present_entities().into_iter().collect();
        assert!(tr.is_disjoint(&te), "inductive split requires disjoint entities");
        assert!(!tr.is_empty() && !te.is_empty());
    }

    #[test]
    fn test_relations_are_seen_in_partial_setting() {
        let b = bench();
        for t in b.tests[0].graph.triples().iter().chain(&b.tests[0].targets) {
            assert!(
                !b.is_unseen(t.relation),
                "partial benchmark must not contain unseen relations: {}",
                t.relation
            );
        }
    }

    #[test]
    fn targets_not_in_context_graphs() {
        let b = bench();
        for v in &b.train.valid {
            assert!(!b.train.graph.contains(v), "validation triple leaked into context");
        }
        for t in &b.tests[0].targets {
            assert!(!b.tests[0].graph.contains(t), "test target leaked into context");
        }
    }

    #[test]
    fn train_targets_are_graph_members() {
        let b = bench();
        for t in &b.train.targets {
            assert!(b.train.graph.contains(t));
        }
    }

    #[test]
    fn split_proportions_roughly_80_10_10() {
        let b = bench();
        let n = b.train.targets.len() + b.train.valid.len();
        let frac_valid = b.train.valid.len() as f64 / n as f64;
        assert!(frac_valid > 0.05 && frac_valid < 0.2, "valid fraction {frac_valid}");
    }

    #[test]
    fn deterministic_by_name_inputs() {
        let a = bench();
        let b = bench();
        assert_eq!(a.train.targets, b.train.targets);
        assert_eq!(a.tests[0].targets, b.tests[0].targets);
    }
}
