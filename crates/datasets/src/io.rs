//! Benchmark persistence: save a generated [`Benchmark`] to a directory of
//! TSV files (GraIL's on-disk layout) and load it back.
//!
//! Layout of a saved benchmark directory:
//!
//! ```text
//! <dir>/
//!   meta.tsv            # key \t value lines (name, seen relations, test names)
//!   train_graph.tsv     # training context triples
//!   train_valid.tsv     # validation targets
//!   test_<i>_graph.tsv  # context of the i-th test set
//!   test_<i>_targets.tsv
//! ```
//!
//! Entities and relations are written as `e<id>` / `r<id>` names so the ids
//! of the generating world survive the round trip exactly — required because
//! model relation tables are indexed by world relation id.

use crate::benchmark::{Benchmark, TestSet, TrainSet};
use crate::world::World;
use rmpi_kg::{io as kgio, KgError, KnowledgeGraph, RelationId, Triple, Vocab};
use std::collections::HashSet;
use std::fs;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

/// A benchmark loaded from disk: everything except the generating [`World`]
/// (worlds are code + seed, not data; the file set is self-contained for
/// training and evaluation).
#[derive(Clone, Debug)]
pub struct SavedBenchmark {
    /// Dataset name.
    pub name: String,
    /// Relations present in the training graph.
    pub seen_relations: HashSet<RelationId>,
    /// Training side.
    pub train: TrainSet,
    /// Test sets, in saved order.
    pub tests: Vec<TestSet>,
    /// Size of the relation id space.
    pub num_relations: usize,
}

fn id_vocab(num_entities: usize, num_relations: usize) -> Vocab {
    let mut v = Vocab::new();
    for e in 0..num_entities {
        v.entity(&format!("e{e}"));
    }
    for r in 0..num_relations {
        v.relation(&format!("r{r}"));
    }
    v
}

fn max_entity(triples: &[Triple]) -> usize {
    triples.iter().map(|t| t.head.0.max(t.tail.0) as usize + 1).max().unwrap_or(0)
}

/// Write `benchmark` under `dir` (created if missing).
pub fn save_benchmark(dir: &Path, benchmark: &Benchmark) -> Result<(), KgError> {
    fs::create_dir_all(dir)?;
    let num_relations = benchmark.num_relations();
    let all_triples: Vec<&[Triple]> = std::iter::once(benchmark.train.graph.triples())
        .chain(std::iter::once(benchmark.train.valid.as_slice()))
        .chain(benchmark.tests.iter().flat_map(|t| [t.graph.triples(), t.targets.as_slice()]))
        .collect();
    let num_entities = all_triples.iter().map(|t| max_entity(t)).max().unwrap_or(0);
    let vocab = id_vocab(num_entities, num_relations);

    let write = |file: &str, triples: &[Triple]| -> Result<(), KgError> {
        let mut w = BufWriter::new(fs::File::create(dir.join(file))?);
        kgio::write_triples(&mut w, triples, &vocab)
    };
    write("train_graph.tsv", benchmark.train.graph.triples())?;
    write("train_valid.tsv", &benchmark.train.valid)?;
    for (i, t) in benchmark.tests.iter().enumerate() {
        write(&format!("test_{i}_graph.tsv"), t.graph.triples())?;
        write(&format!("test_{i}_targets.tsv"), &t.targets)?;
    }

    let mut meta = BufWriter::new(fs::File::create(dir.join("meta.tsv"))?);
    writeln!(meta, "name\t{}", benchmark.name)?;
    writeln!(meta, "num_relations\t{num_relations}")?;
    let mut seen: Vec<u32> = benchmark.seen_relations.iter().map(|r| r.0).collect();
    seen.sort_unstable();
    writeln!(
        meta,
        "seen_relations\t{}",
        seen.iter().map(u32::to_string).collect::<Vec<_>>().join(",")
    )?;
    for (i, t) in benchmark.tests.iter().enumerate() {
        writeln!(meta, "test_{i}\t{}", t.name)?;
    }
    Ok(())
}

/// Read a benchmark previously written by [`save_benchmark`].
pub fn load_benchmark(dir: &Path) -> Result<SavedBenchmark, KgError> {
    let meta = fs::read_to_string(dir.join("meta.tsv"))?;
    let mut name = String::new();
    let mut num_relations = 0usize;
    let mut seen_relations = HashSet::new();
    let mut test_names: Vec<(usize, String)> = Vec::new();
    for (lineno, line) in meta.lines().enumerate() {
        let Some((key, value)) = line.split_once('\t') else {
            return Err(KgError::Parse {
                line: lineno + 1,
                message: format!("bad meta line {line:?}"),
            });
        };
        match key {
            "name" => name = value.to_owned(),
            "num_relations" => {
                num_relations = value.parse().map_err(|e| KgError::Parse {
                    line: lineno + 1,
                    message: format!("bad num_relations: {e}"),
                })?
            }
            "seen_relations" => {
                for part in value.split(',').filter(|p| !p.is_empty()) {
                    let id: u32 = part.parse().map_err(|e| KgError::Parse {
                        line: lineno + 1,
                        message: format!("bad relation id: {e}"),
                    })?;
                    seen_relations.insert(RelationId(id));
                }
            }
            k if k.starts_with("test_") => {
                let idx: usize = k[5..].parse().map_err(|e| KgError::Parse {
                    line: lineno + 1,
                    message: format!("bad test index: {e}"),
                })?;
                test_names.push((idx, value.to_owned()));
            }
            other => {
                return Err(KgError::Parse {
                    line: lineno + 1,
                    message: format!("unknown meta key {other:?}"),
                })
            }
        }
    }
    test_names.sort();

    // ids are parsed from "e<id>"/"r<id>" names directly
    let read = |file: &str| -> Result<Vec<Triple>, KgError> {
        let rd = BufReader::new(fs::File::open(dir.join(file))?);
        let mut vocab = Vocab::new();
        let named = kgio::read_triples(rd, &mut vocab)?;
        named
            .into_iter()
            .map(|t| {
                let parse_id = |name: &str, kind: char| -> Result<u32, KgError> {
                    name.strip_prefix(kind)
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| KgError::UnknownName(name.to_owned()))
                };
                Ok(Triple::new(
                    parse_id(vocab.entity_name(t.head)?, 'e')?,
                    parse_id(vocab.relation_name(t.relation)?, 'r')?,
                    parse_id(vocab.entity_name(t.tail)?, 'e')?,
                ))
            })
            .collect()
    };

    let train_triples = read("train_graph.tsv")?;
    let train = TrainSet {
        graph: KnowledgeGraph::from_triples(train_triples.clone()),
        targets: train_triples,
        valid: read("train_valid.tsv")?,
    };
    let mut tests = Vec::new();
    for (idx, tname) in test_names {
        tests.push(TestSet {
            name: tname,
            graph: KnowledgeGraph::from_triples(read(&format!("test_{idx}_graph.tsv"))?),
            targets: read(&format!("test_{idx}_targets.tsv"))?,
        });
    }
    Ok(SavedBenchmark { name, seen_relations, train, tests, num_relations })
}

impl SavedBenchmark {
    /// Look up a test set by name.
    pub fn test(&self, name: &str) -> Option<&TestSet> {
        self.tests.iter().find(|t| t.name == name)
    }
}

/// Save the benchmark generated by a world, keeping a reference note on how
/// to regenerate it.
pub fn regeneration_note(world: &World) -> String {
    format!(
        "regenerate with World::new(seed={:#x}) — see rmpi_datasets::registry",
        world.config().seed
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{build_benchmark, Scale};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rmpi-io-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let b = build_benchmark("nell.v1.v3", Scale::Quick);
        let dir = tmpdir("roundtrip");
        save_benchmark(&dir, &b).unwrap();
        let loaded = load_benchmark(&dir).unwrap();
        assert_eq!(loaded.name, b.name);
        assert_eq!(loaded.num_relations, b.num_relations());
        assert_eq!(loaded.seen_relations, b.seen_relations);
        assert_eq!(loaded.train.graph.triples(), b.train.graph.triples());
        assert_eq!(loaded.train.valid, b.train.valid);
        assert_eq!(loaded.tests.len(), b.tests.len());
        for (l, o) in loaded.tests.iter().zip(&b.tests) {
            assert_eq!(l.name, o.name);
            assert_eq!(l.graph.triples(), o.graph.triples());
            assert_eq!(l.targets, o.targets);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_meta_is_an_error() {
        let dir = tmpdir("missing");
        fs::create_dir_all(&dir).unwrap();
        assert!(load_benchmark(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_meta_reports_line() {
        let dir = tmpdir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("meta.tsv"), "name\tx\nnot a pair\n").unwrap();
        match load_benchmark(&dir) {
            Err(KgError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn regeneration_note_mentions_seed() {
        let b = build_benchmark("wn.v1", Scale::Quick);
        assert!(regeneration_note(&b.world).contains("0x574e"));
    }
}
